//! # htapg-taxonomy
//!
//! The storage-engine design taxonomy of *Pinnecke et al., "Are Databases Fit
//! for Hybrid Workloads on GPUs? A Storage Engine's Perspective", ICDE 2017*,
//! encoded as Rust types.
//!
//! The paper proposes (Section III) a set of classification properties for
//! storage engines — layout handling, layout flexibility, layout adaptability,
//! data location/locality, fragment linearization, and fragment scheme — and
//! arranges them into a taxonomy (Figure 4). It then classifies ten
//! state-of-the-art engines along those axes (Table 1) and derives a
//! *reference design* for HTAP engines on CPU/GPU platforms (Section IV-C).
//!
//! This crate provides:
//!
//! * [`props`] — each classification property as an enum, with the exact
//!   vocabulary of the paper;
//! * [`Classification`] — a full Table 1 row;
//! * [`survey`] — the paper's Table 1 verbatim, as data (used as the expected
//!   value when the engine implementations in `htapg-engines` classify
//!   themselves);
//! * [`table`] — renderers that regenerate Table 1;
//! * [`tree`] — a renderer that regenerates the taxonomy tree of Figure 4;
//! * [`reference`][mod@reference] — the six reference-design requirements of Section IV-C
//!   as an executable checklist.

pub mod props;
pub mod reference;
pub mod survey;
pub mod table;
pub mod tree;

pub use props::{
    DataLocality, DataLocation, FragmentLinearization, FragmentScheme, LayoutAdaptability,
    LayoutFlexibility, LayoutHandling, ProcessorSupport, StorageMedium, WorkloadSupport,
};

/// A complete classification of one storage engine — one row of the paper's
/// Table 1 plus bibliographic metadata.
///
/// Locality is stored explicitly (not derived) because Table 1 classifies
/// locality by *physical place* — a disk array (Fractured Mirrors) or a
/// shared-nothing cluster (ES²) is distributed even when every tuplet sits in
/// "host" media of some machine. [`DataLocation::locality`] gives the
/// single-machine default used by engines that construct their own
/// classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Classification {
    /// Engine name as printed in Table 1 (e.g. `"HYRISE"`).
    pub name: &'static str,
    pub layout_handling: LayoutHandling,
    pub layout_flexibility: LayoutFlexibility,
    pub layout_adaptability: LayoutAdaptability,
    pub data_location: DataLocation,
    pub data_locality: DataLocality,
    pub fragment_linearization: FragmentLinearization,
    pub fragment_scheme: FragmentScheme,
    pub processor_support: ProcessorSupport,
    pub workload_support: WorkloadSupport,
    /// Publication year, as in Table 1's "Date / Paper" column.
    pub year: u16,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_rows_are_complete_and_ordered_by_date() {
        let rows = survey::paper_table1();
        assert_eq!(rows.len(), 10);
        for w in rows.windows(2) {
            assert!(w[0].year <= w[1].year, "Table 1 is ordered by date");
        }
    }

    #[test]
    fn mirrors_and_es2_are_distributed_despite_host_media() {
        let rows = survey::paper_table1();
        let mirrors = rows.iter().find(|r| r.name == "FRAC. MIRRORS").unwrap();
        assert_eq!(mirrors.data_locality, DataLocality::Distributed);
        let es2 = rows.iter().find(|r| r.name == "ES2").unwrap();
        assert_eq!(es2.data_locality, DataLocality::Distributed);
    }
}
