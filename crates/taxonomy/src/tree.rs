//! The taxonomy tree of Figure 4, as data and as an ASCII rendering.

/// A node in the taxonomy tree.
#[derive(Debug, Clone)]
pub struct Node {
    pub label: &'static str,
    pub children: Vec<Node>,
}

impl Node {
    fn leaf(label: &'static str) -> Node {
        Node { label, children: Vec::new() }
    }

    fn inner(label: &'static str, children: Vec<Node>) -> Node {
        Node { label, children }
    }

    /// Total number of nodes in this subtree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Node::size).sum::<usize>()
    }

    /// Depth of this subtree (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(Node::depth).max().unwrap_or(0)
    }
}

/// The complete taxonomy of Figure 4, rooted at "Storage Engine".
pub fn figure4() -> Node {
    Node::inner(
        "Storage Engine",
        vec![
            Node::inner(
                "Layout Handling",
                vec![
                    Node::leaf("Single Layout"),
                    Node::inner(
                        "Multi Layout",
                        vec![Node::leaf("Built-In"), Node::leaf("Emulated")],
                    ),
                ],
            ),
            Node::inner(
                "Layout Flexibility",
                vec![
                    Node::leaf("Inflexible"),
                    Node::inner(
                        "Flexible",
                        vec![
                            Node::leaf("Weak"),
                            Node::inner(
                                "Strong",
                                vec![Node::leaf("Constrained"), Node::leaf("Unconstrained")],
                            ),
                        ],
                    ),
                ],
            ),
            Node::inner(
                "Layout Adaptability",
                vec![Node::leaf("Static"), Node::leaf("Responsive")],
            ),
            Node::inner(
                "Data Location",
                vec![
                    Node::inner(
                        "Target",
                        vec![
                            Node::leaf("Host-Memory-Only"),
                            Node::leaf("Device-Memory-Only"),
                            Node::leaf("Mixed"),
                        ],
                    ),
                    Node::inner(
                        "Locality",
                        vec![Node::leaf("Centralized"), Node::leaf("Distributed")],
                    ),
                ],
            ),
            Node::inner(
                "Fragment Linearization",
                vec![
                    Node::inner(
                        "Fat Fragments",
                        vec![
                            Node::leaf("NSM-Fixed"),
                            Node::leaf("DSM-Fixed"),
                            Node::leaf("Variable"),
                        ],
                    ),
                    Node::inner(
                        "Thin Fragments",
                        vec![
                            Node::leaf("Direct Linearization"),
                            Node::inner(
                                "Emulated Linearization",
                                vec![
                                    Node::leaf("NSM"),
                                    Node::leaf("DSM"),
                                    Node::inner(
                                        "Variable",
                                        vec![
                                            Node::leaf("DSM-Fixed Partially NSM-Emulated"),
                                            Node::leaf("NSM-Fixed Partially DSM-Emulated"),
                                        ],
                                    ),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
            Node::inner(
                "Fragment Scheme",
                vec![Node::leaf("Replication-Based"), Node::leaf("Delegation-Based")],
            ),
        ],
    )
}

/// Render a tree as ASCII art (box-drawing characters).
pub fn render(root: &Node) -> String {
    let mut out = String::new();
    out.push_str(root.label);
    out.push('\n');
    render_children(&root.children, "", &mut out);
    out
}

fn render_children(children: &[Node], prefix: &str, out: &mut String) {
    for (i, child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        out.push_str(prefix);
        out.push_str(if last { "└── " } else { "├── " });
        out.push_str(child.label);
        out.push('\n');
        let child_prefix = format!("{prefix}{}", if last { "    " } else { "│   " });
        render_children(&child.children, &child_prefix, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_has_six_classification_axes() {
        let tree = figure4();
        assert_eq!(tree.children.len(), 6);
        let labels: Vec<_> = tree.children.iter().map(|c| c.label).collect();
        assert_eq!(
            labels,
            vec![
                "Layout Handling",
                "Layout Flexibility",
                "Layout Adaptability",
                "Data Location",
                "Fragment Linearization",
                "Fragment Scheme",
            ]
        );
    }

    #[test]
    fn figure4_shape() {
        let tree = figure4();
        assert_eq!(tree.size(), 40);
        assert_eq!(tree.depth(), 6);
    }

    #[test]
    fn render_contains_all_labels() {
        let tree = figure4();
        let art = render(&tree);
        fn collect<'a>(n: &'a Node, out: &mut Vec<&'a str>) {
            out.push(n.label);
            for c in &n.children {
                collect(c, out);
            }
        }
        let mut labels = Vec::new();
        collect(&tree, &mut labels);
        for label in labels {
            assert!(art.contains(label), "missing label {label}");
        }
    }
}
