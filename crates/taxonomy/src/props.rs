//! Classification properties (Section III of the paper), one enum per axis.
//!
//! The vocabulary follows the paper exactly; each variant's doc comment
//! quotes the defining sentence of Section III.

use std::fmt;

/// **Layout handling** — how many layouts a relation may have.
///
/// "If a storage engine limits a relation R to have exactly one layout, then
/// R has a single layout. Otherwise R is multi-layout."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutHandling {
    /// Exactly one layout per relation.
    Single,
    /// Multiple layouts, natively managed by the engine.
    MultiBuiltIn,
    /// Multiple layouts emulated "by holding relations R1..Rn under the same
    /// name, but \[with\] pair-wise different fragments ... following a data
    /// replication strategy".
    MultiEmulated,
}

impl fmt::Display for LayoutHandling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LayoutHandling::Single => "single",
            LayoutHandling::MultiBuiltIn => "built-in multi",
            LayoutHandling::MultiEmulated => "emulated multi",
        })
    }
}

/// **Layout flexibility** — how fragments may partition a layout.
///
/// "A storage engine is inflexible if it supports only one fragment per
/// layout. ... A flexible storage engine is weak if all layouts apply the
/// same partitioning technique ... strong if it supports layouts that combine
/// vertical and horizontal partitioning."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutFlexibility {
    /// One fragment per layout.
    Inflexible,
    /// All fragments of a layout come from a single partitioning technique
    /// (either all-horizontal or all-vertical).
    WeakFlexible,
    /// Layouts may combine vertical and horizontal partitioning.
    StrongFlexible {
        /// "If the definition of a fragment has side-effects to adjacent
        /// fragments ... or if the order of the partitioning is pre-defined,
        /// then the layout flexibility is called constrained."
        constrained: bool,
    },
}

impl LayoutFlexibility {
    pub const fn is_flexible(self) -> bool {
        !matches!(self, LayoutFlexibility::Inflexible)
    }
}

impl fmt::Display for LayoutFlexibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutFlexibility::Inflexible => f.write_str("inflex."),
            LayoutFlexibility::WeakFlexible => f.write_str("weak flex."),
            LayoutFlexibility::StrongFlexible { .. } => f.write_str("strong flex."),
        }
    }
}

/// **Layout adaptability** — whether layouts re-organize at runtime.
///
/// "If a storage engine supports this dynamic re-organization of layouts, the
/// storage engine's layout adaptability is responsive. Otherwise ... static."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutAdaptability {
    Static,
    Responsive,
}

impl fmt::Display for LayoutAdaptability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LayoutAdaptability::Static => "static",
            LayoutAdaptability::Responsive => "respons.",
        })
    }
}

/// A storage medium on which tuplets may reside.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageMedium {
    /// Main memory of the host platform.
    HostMemory,
    /// Memory of a compute device (e.g. a graphics card).
    DeviceMemory,
    /// Secondary storage (hard drive / flash).
    Disk,
}

impl fmt::Display for StorageMedium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StorageMedium::HostMemory => "Host",
            StorageMedium::DeviceMemory => "Dev.",
            StorageMedium::Disk => "Disc",
        })
    }
}

/// **Data location** — where tuplets are stored.
///
/// Table 1 prints this as a pair "primary + working" (e.g. "Host + Disc",
/// "Dev. + Dev.") or as "Mixed". A location is *mixed* when it is "neither
/// host-memory-only nor device-memory-only".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataLocation {
    /// All tuplets on exactly one class of media; the pair records the
    /// primary store and the working/secondary store as printed in Table 1.
    Pair(StorageMedium, StorageMedium),
    /// Tuplets may simultaneously live on host and device media.
    Mixed,
}

impl DataLocation {
    pub const fn host_only() -> Self {
        DataLocation::Pair(StorageMedium::HostMemory, StorageMedium::HostMemory)
    }
    pub const fn host_and_disk() -> Self {
        DataLocation::Pair(StorageMedium::HostMemory, StorageMedium::Disk)
    }
    pub const fn device_only() -> Self {
        DataLocation::Pair(StorageMedium::DeviceMemory, StorageMedium::DeviceMemory)
    }
    pub const fn mixed() -> Self {
        DataLocation::Mixed
    }

    /// "If the data location is host-memory-only or device-memory-only, the
    /// data locality is called centralized. ... If the storage engine
    /// supports data locations that are neither host-memory-only nor
    /// device-memory-only, the data location is called mixed and the data
    /// locality is distributed."
    ///
    /// Table 1 additionally marks Fractured Mirrors (host + disc over a disk
    /// array) and ES² (host memory over a cluster) as distributed; we model
    /// that by treating any pair whose two media *span multiple physical
    /// places* as distributed when flagged via [`DataLocation::Mixed`], and
    /// expose [`Classification`](crate::Classification) with an explicit
    /// locality override where the survey requires it.
    pub fn locality(&self) -> DataLocality {
        match self {
            DataLocation::Pair(a, b) if a == b => DataLocality::Centralized,
            DataLocation::Pair(StorageMedium::HostMemory, StorageMedium::Disk) => {
                // A classic buffer-managed single machine: centralized.
                DataLocality::Centralized
            }
            DataLocation::Pair(_, _) => DataLocality::Distributed,
            DataLocation::Mixed => DataLocality::Distributed,
        }
    }
}

impl fmt::Display for DataLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataLocation::Pair(a, b) => write!(f, "{a} + {b}"),
            DataLocation::Mixed => f.write_str("Mixed"),
        }
    }
}

/// **Data locality**, derived from the data location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataLocality {
    Centralized,
    Distributed,
}

impl fmt::Display for DataLocality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataLocality::Centralized => "centr.",
            DataLocality::Distributed => "distr.",
        })
    }
}

/// **Fragment linearization** (Section III and Figure 3).
///
/// Fat fragments (≥ 2 tuplets and ≥ 2 attributes) are two-dimensional and
/// must be linearized with NSM or DSM; thin fragments are one-dimensional and
/// are stored *directly*. Engines that split relations into thin-only
/// fragments *emulate* NSM or DSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FragmentLinearization {
    /// Fat fragments, always NSM.
    FatNsmFixed,
    /// Fat fragments, always DSM.
    FatDsmFixed,
    /// Fat fragments fixed to NSM in one layout and DSM in a mirrored layout
    /// (Fractured Mirrors' "NSM-fixed/DSM-fixed technique").
    FatNsmPlusDsmFixed,
    /// Fat fragments, either NSM or DSM per fragment.
    FatVariable,
    /// Thin-only fragments arranged so the relation behaves row-wise.
    ThinNsmEmulated,
    /// Thin-only fragments arranged so the relation behaves column-wise
    /// (columns as distinct vectors).
    ThinDsmEmulated,
    /// Mixed: remaining fat fragments DSM-fixed, the rest DSM via thin
    /// fragments ("variable DSM-fixed partially NSM-emulated").
    VariableDsmFixedPartiallyNsmEmulated,
    /// Mixed: remaining fat fragments NSM-fixed, the rest DSM via thin
    /// fragments ("variable NSM-fixed partially DSM-emulated").
    VariableNsmFixedPartiallyDsmEmulated,
}

impl FragmentLinearization {
    /// Whether this linearization can serve *both* row-wise and column-wise
    /// access without reorganization (needed by the reference design,
    /// requirement 4).
    pub const fn covers_nsm_and_dsm(self) -> bool {
        matches!(
            self,
            FragmentLinearization::FatVariable
                | FragmentLinearization::FatNsmPlusDsmFixed
                | FragmentLinearization::VariableDsmFixedPartiallyNsmEmulated
                | FragmentLinearization::VariableNsmFixedPartiallyDsmEmulated
        )
    }
}

impl fmt::Display for FragmentLinearization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FragmentLinearization::FatNsmFixed => "fat, NSM-fixed",
            FragmentLinearization::FatDsmFixed => "fat, DSM-fixed",
            FragmentLinearization::FatNsmPlusDsmFixed => "fat, NSM+DSM-fixed",
            FragmentLinearization::FatVariable => "fat, variable",
            FragmentLinearization::ThinNsmEmulated => "thin, NSM-emulated",
            FragmentLinearization::ThinDsmEmulated => "thin, DSM-emulated",
            FragmentLinearization::VariableDsmFixedPartiallyNsmEmulated => {
                "v. DSM-fixed p. NSM-emul."
            }
            FragmentLinearization::VariableNsmFixedPartiallyDsmEmulated => {
                "v. NSM-fixed p. DSM-emul."
            }
        })
    }
}

/// **Fragment scheme** — how redundant fragments across layouts are managed.
///
/// "A replication-based approach holds copies of tuplets ... A
/// delegation-based approach restricts the access of certain regions from
/// certain layouts, since some tuplets are exclusively stored in certain
/// layouts."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FragmentScheme {
    /// Single-layout engines need no scheme; printed as "—" in Table 1.
    None,
    ReplicationBased,
    DelegationBased,
}

impl fmt::Display for FragmentScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FragmentScheme::None => "-",
            FragmentScheme::ReplicationBased => "replication",
            FragmentScheme::DelegationBased => "delegated",
        })
    }
}

/// Which processors the engine was designed to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProcessorSupport {
    Cpu,
    Gpu,
    CpuGpu,
}

impl fmt::Display for ProcessorSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProcessorSupport::Cpu => "CPU",
            ProcessorSupport::Gpu => "GPU",
            ProcessorSupport::CpuGpu => "CPU/GPU",
        })
    }
}

/// Which workload class the engine targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadSupport {
    Oltp,
    Olap,
    Htap,
}

impl fmt::Display for WorkloadSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WorkloadSupport::Oltp => "OLTP",
            WorkloadSupport::Olap => "OLAP",
            WorkloadSupport::Htap => "HTAP",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_only_is_centralized() {
        assert_eq!(DataLocation::host_only().locality(), DataLocality::Centralized);
        assert_eq!(DataLocation::device_only().locality(), DataLocality::Centralized);
    }

    #[test]
    fn buffer_managed_disk_is_centralized() {
        assert_eq!(DataLocation::host_and_disk().locality(), DataLocality::Centralized);
    }

    #[test]
    fn mixed_is_distributed() {
        assert_eq!(DataLocation::mixed().locality(), DataLocality::Distributed);
    }

    #[test]
    fn linearization_coverage() {
        assert!(FragmentLinearization::FatVariable.covers_nsm_and_dsm());
        assert!(FragmentLinearization::FatNsmPlusDsmFixed.covers_nsm_and_dsm());
        assert!(!FragmentLinearization::FatDsmFixed.covers_nsm_and_dsm());
        assert!(!FragmentLinearization::ThinDsmEmulated.covers_nsm_and_dsm());
    }

    #[test]
    fn display_matches_table1_vocabulary() {
        assert_eq!(LayoutHandling::MultiBuiltIn.to_string(), "built-in multi");
        assert_eq!(
            LayoutFlexibility::StrongFlexible { constrained: true }.to_string(),
            "strong flex."
        );
        assert_eq!(LayoutAdaptability::Responsive.to_string(), "respons.");
        assert_eq!(DataLocation::host_and_disk().to_string(), "Host + Disc");
        assert_eq!(FragmentScheme::DelegationBased.to_string(), "delegated");
    }

    #[test]
    fn flexibility_predicate() {
        assert!(!LayoutFlexibility::Inflexible.is_flexible());
        assert!(LayoutFlexibility::WeakFlexible.is_flexible());
        assert!(LayoutFlexibility::StrongFlexible { constrained: false }.is_flexible());
    }
}
