//! The paper's Table 1, verbatim, as data.
//!
//! These rows are the *ground truth* against which the engine implementations
//! in `htapg-engines` are tested: every engine's `classify()` must equal its
//! row here (asserted in the workspace integration test `tests/table1.rs`).

use crate::props::*;
use crate::Classification;

/// PAX (Ailamaki et al., 2002): page-level decomposition; single layout of
/// horizontal fat fragments, DSM-fixed minipages, disk-based buffer-managed.
pub fn pax() -> Classification {
    Classification {
        name: "PAX",
        layout_handling: LayoutHandling::Single,
        layout_flexibility: LayoutFlexibility::Inflexible,
        layout_adaptability: LayoutAdaptability::Static,
        data_location: DataLocation::host_and_disk(),
        data_locality: DataLocality::Centralized,
        fragment_linearization: FragmentLinearization::FatDsmFixed,
        fragment_scheme: FragmentScheme::None,
        processor_support: ProcessorSupport::Cpu,
        workload_support: WorkloadSupport::Htap,
        year: 2002,
    }
}

/// Fractured Mirrors (Ramamurthy et al., 2002): two replicated layouts, one
/// NSM one DSM, pages spread over a disk array.
pub fn fractured_mirrors() -> Classification {
    Classification {
        name: "FRAC. MIRRORS",
        layout_handling: LayoutHandling::MultiBuiltIn,
        layout_flexibility: LayoutFlexibility::Inflexible,
        layout_adaptability: LayoutAdaptability::Static,
        data_location: DataLocation::host_and_disk(),
        data_locality: DataLocality::Distributed,
        fragment_linearization: FragmentLinearization::FatNsmPlusDsmFixed,
        fragment_scheme: FragmentScheme::ReplicationBased,
        processor_support: ProcessorSupport::Cpu,
        workload_support: WorkloadSupport::Htap,
        year: 2002,
    }
}

/// HYRISE (Grund et al., 2010): vertical containers of variable width, NSM or
/// DSM per container, workload-driven re-partitioning.
pub fn hyrise() -> Classification {
    Classification {
        name: "HYRISE",
        layout_handling: LayoutHandling::Single,
        layout_flexibility: LayoutFlexibility::WeakFlexible,
        layout_adaptability: LayoutAdaptability::Responsive,
        data_location: DataLocation::host_only(),
        data_locality: DataLocality::Centralized,
        fragment_linearization: FragmentLinearization::FatVariable,
        fragment_scheme: FragmentScheme::None,
        processor_support: ProcessorSupport::Cpu,
        workload_support: WorkloadSupport::Htap,
        year: 2010,
    }
}

/// ES² (Cao et al., 2011): elastic cloud storage; vertical co-access grouping
/// then horizontal partitioning over a shared-nothing cluster; PAX-formatted
/// tuplets on a distributed file system.
pub fn es2() -> Classification {
    Classification {
        name: "ES2",
        layout_handling: LayoutHandling::MultiBuiltIn,
        layout_flexibility: LayoutFlexibility::StrongFlexible { constrained: true },
        layout_adaptability: LayoutAdaptability::Responsive,
        data_location: DataLocation::host_and_disk(),
        data_locality: DataLocality::Distributed,
        fragment_linearization: FragmentLinearization::FatDsmFixed,
        fragment_scheme: FragmentScheme::DelegationBased,
        processor_support: ProcessorSupport::Cpu,
        workload_support: WorkloadSupport::Htap,
        year: 2011,
    }
}

/// GPUTx (He & Yu, 2011): device-resident thin-fragment columns, bulk
/// transaction processing on the GPU, host-side result pool.
pub fn gputx() -> Classification {
    Classification {
        name: "GPUTX",
        layout_handling: LayoutHandling::Single,
        layout_flexibility: LayoutFlexibility::WeakFlexible,
        layout_adaptability: LayoutAdaptability::Static,
        data_location: DataLocation::device_only(),
        data_locality: DataLocality::Centralized,
        fragment_linearization: FragmentLinearization::ThinDsmEmulated,
        fragment_scheme: FragmentScheme::None,
        processor_support: ProcessorSupport::Gpu,
        workload_support: WorkloadSupport::Oltp,
        year: 2011,
    }
}

/// H₂O (Alagiannis et al., 2014): horizontal NSM-fixed partitions that may
/// shed single-attribute (thin) columns; lazy adoption of better layouts.
pub fn h2o() -> Classification {
    Classification {
        name: "H2O",
        layout_handling: LayoutHandling::Single,
        layout_flexibility: LayoutFlexibility::WeakFlexible,
        layout_adaptability: LayoutAdaptability::Responsive,
        data_location: DataLocation::host_only(),
        data_locality: DataLocality::Centralized,
        fragment_linearization: FragmentLinearization::VariableNsmFixedPartiallyDsmEmulated,
        fragment_scheme: FragmentScheme::None,
        processor_support: ProcessorSupport::Cpu,
        workload_support: WorkloadSupport::Htap,
        year: 2014,
    }
}

/// HyPer's renewed storage engine (Funke et al.; Table 1 dates it 2015):
/// partitions → chunks → thin vectors; hot/cold compaction.
pub fn hyper() -> Classification {
    Classification {
        name: "HYPER",
        layout_handling: LayoutHandling::Single,
        layout_flexibility: LayoutFlexibility::StrongFlexible { constrained: true },
        layout_adaptability: LayoutAdaptability::Responsive,
        data_location: DataLocation::host_only(),
        data_locality: DataLocality::Centralized,
        fragment_linearization: FragmentLinearization::ThinDsmEmulated,
        fragment_scheme: FragmentScheme::None,
        processor_support: ProcessorSupport::Cpu,
        workload_support: WorkloadSupport::Htap,
        year: 2015,
    }
}

/// CoGaDB (Breß et al.; Table 1 dates it 2016): columns replicated between
/// host and device memory, all-or-nothing device placement, HYPE scheduler.
pub fn cogadb() -> Classification {
    Classification {
        name: "COGADB",
        layout_handling: LayoutHandling::MultiBuiltIn,
        layout_flexibility: LayoutFlexibility::WeakFlexible,
        layout_adaptability: LayoutAdaptability::Static,
        data_location: DataLocation::mixed(),
        data_locality: DataLocality::Distributed,
        fragment_linearization: FragmentLinearization::ThinDsmEmulated,
        fragment_scheme: FragmentScheme::ReplicationBased,
        processor_support: ProcessorSupport::CpuGpu,
        workload_support: WorkloadSupport::Olap,
        year: 2016,
    }
}

/// L-Store (Sadoghi et al., 2016): per-attribute base/tail page pairs behind
/// a page dictionary; lineage-based updates enable historic querying.
pub fn lstore() -> Classification {
    Classification {
        name: "L-STORE",
        layout_handling: LayoutHandling::Single,
        layout_flexibility: LayoutFlexibility::StrongFlexible { constrained: true },
        layout_adaptability: LayoutAdaptability::Responsive,
        data_location: DataLocation::host_only(),
        data_locality: DataLocality::Centralized,
        fragment_linearization: FragmentLinearization::ThinDsmEmulated,
        fragment_scheme: FragmentScheme::DelegationBased,
        processor_support: ProcessorSupport::Cpu,
        workload_support: WorkloadSupport::Htap,
        year: 2016,
    }
}

/// Peloton's tile-based architecture (Arulraj et al., 2016): tile groups →
/// logical tiles referencing physical tiles, NSM or DSM per physical tile.
pub fn peloton() -> Classification {
    Classification {
        name: "PELOTON DBMS",
        layout_handling: LayoutHandling::MultiBuiltIn,
        layout_flexibility: LayoutFlexibility::StrongFlexible { constrained: true },
        layout_adaptability: LayoutAdaptability::Responsive,
        data_location: DataLocation::host_only(),
        data_locality: DataLocality::Centralized,
        fragment_linearization: FragmentLinearization::FatVariable,
        fragment_scheme: FragmentScheme::DelegationBased,
        processor_support: ProcessorSupport::Cpu,
        workload_support: WorkloadSupport::Htap,
        year: 2016,
    }
}

/// The full Table 1, in the paper's order (by date).
pub fn paper_table1() -> Vec<Classification> {
    vec![
        pax(),
        fractured_mirrors(),
        hyrise(),
        es2(),
        gputx(),
        h2o(),
        hyper(),
        cogadb(),
        lstore(),
        peloton(),
    ]
}

/// Look up a Table 1 row by engine name.
pub fn by_name(name: &str) -> Option<Classification> {
    paper_table1().into_iter().find(|c| c.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        assert!(by_name("HYRISE").is_some());
        assert!(by_name("PELOTON DBMS").is_some());
        assert!(by_name("NOPE").is_none());
    }

    #[test]
    fn only_gputx_is_oltp_only() {
        let oltp: Vec<_> = paper_table1()
            .into_iter()
            .filter(|c| c.workload_support == WorkloadSupport::Oltp)
            .collect();
        assert_eq!(oltp.len(), 1);
        assert_eq!(oltp[0].name, "GPUTX");
    }

    #[test]
    fn only_cogadb_uses_both_processors() {
        let both: Vec<_> = paper_table1()
            .into_iter()
            .filter(|c| c.processor_support == ProcessorSupport::CpuGpu)
            .collect();
        assert_eq!(both.len(), 1);
        assert_eq!(both[0].name, "COGADB");
    }

    #[test]
    fn no_surveyed_engine_meets_the_reference_design() {
        // The paper's core finding: "not yet".
        for c in paper_table1() {
            assert!(
                !crate::reference::check(&c).satisfied(),
                "{} unexpectedly satisfies the full reference design",
                c.name
            );
        }
    }
}
