//! Renderers that regenerate the paper's Table 1 from [`Classification`]s.

use crate::Classification;

/// Column headers, matching Table 1.
pub const HEADERS: [&str; 10] = [
    "",
    "Layout handling",
    "Layout flexibility",
    "Layout adaptability",
    "Data location",
    "Fragment linearization",
    "Fragment scheme",
    "Processor support",
    "Workload support",
    "Date",
];

/// One rendered row (cells as strings, in header order).
pub fn row_cells(c: &Classification) -> [String; 10] {
    [
        c.name.to_string(),
        c.layout_handling.to_string(),
        c.layout_flexibility.to_string(),
        c.layout_adaptability.to_string(),
        format!("{} {}", c.data_location, c.data_locality),
        c.fragment_linearization.to_string(),
        c.fragment_scheme.to_string(),
        c.processor_support.to_string(),
        c.workload_support.to_string(),
        c.year.to_string(),
    ]
}

/// Render a set of classifications as a GitHub-flavoured markdown table.
pub fn render_markdown(rows: &[Classification]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in HEADERS {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in HEADERS {
        out.push_str("---|");
    }
    out.push('\n');
    for c in rows {
        out.push('|');
        for cell in row_cells(c) {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Render a set of classifications as an aligned plain-text table
/// (the form used by the `repro --table1` harness).
pub fn render_text(rows: &[Classification]) -> String {
    let mut cells: Vec<[String; 10]> = Vec::with_capacity(rows.len() + 1);
    cells.push(HEADERS.map(|h| h.to_string()));
    for c in rows {
        cells.push(row_cells(c));
    }
    let mut widths = [0usize; 10];
    for row in &cells {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in cells.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
        }
        out.push('\n');
        if ri == 0 {
            for w in widths {
                out.push_str(&"-".repeat(w));
                out.push_str("  ");
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::survey;

    #[test]
    fn markdown_has_one_line_per_engine_plus_header() {
        let md = render_markdown(&survey::paper_table1());
        assert_eq!(md.lines().count(), 12); // header + separator + 10 rows
        assert!(md.contains("| PAX |"));
        assert!(md.contains("| PELOTON DBMS |"));
    }

    #[test]
    fn text_table_aligns_and_contains_key_vocabulary() {
        let txt = render_text(&survey::paper_table1());
        assert!(txt.contains("GPUTX"));
        assert!(txt.contains("thin, DSM-emulated"));
        assert!(txt.contains("Host + Disc centr."));
        assert!(txt.contains("Mixed distr."));
    }

    #[test]
    fn row_cells_match_paper_sample_row() {
        // HYRISE row from Table 1:
        // "single | weak flex. | respons. | Host + Host centr. | fat, variable | - | CPU | HTAP | 2010"
        let cells = row_cells(&survey::hyrise());
        assert_eq!(cells[1], "single");
        assert_eq!(cells[2], "weak flex.");
        assert_eq!(cells[3], "respons.");
        assert_eq!(cells[4], "Host + Host centr.");
        assert_eq!(cells[5], "fat, variable");
        assert_eq!(cells[6], "-");
        assert_eq!(cells[7], "CPU");
        assert_eq!(cells[8], "HTAP");
        assert_eq!(cells[9], "2010");
    }
}
