//! The Section IV-C reference storage-engine design, as an executable
//! checklist.
//!
//! "To contribute to bridging this gap, we next present our suggestion for a
//! reference storage engine design: (1) at least constrained strong flexible
//! layout support, (2) layout responsive to changes in workloads, (3) mixed
//! data location and distributed data locality, (4) fragmentation
//! linearization that cover NSM and DSM, (5) built-in multi layout handling
//! for relations, and (6) fragment scheme supports delegation."

use crate::props::*;
use crate::Classification;

/// One of the six reference-design requirements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Requirement {
    /// (1) at least constrained strong flexible layout support.
    StrongFlexibleLayouts,
    /// (2) layout responsive to changes in workloads.
    ResponsiveAdaptability,
    /// (3) mixed data location and distributed data locality.
    MixedLocationDistributedLocality,
    /// (4) fragmentation linearization that covers NSM and DSM.
    NsmAndDsmLinearization,
    /// (5) built-in multi layout handling for relations.
    BuiltInMultiLayout,
    /// (6) fragment scheme supports delegation.
    DelegationScheme,
}

impl Requirement {
    pub const ALL: [Requirement; 6] = [
        Requirement::StrongFlexibleLayouts,
        Requirement::ResponsiveAdaptability,
        Requirement::MixedLocationDistributedLocality,
        Requirement::NsmAndDsmLinearization,
        Requirement::BuiltInMultiLayout,
        Requirement::DelegationScheme,
    ];

    /// The paper's wording for this requirement.
    pub fn description(self) -> &'static str {
        match self {
            Requirement::StrongFlexibleLayouts => {
                "(1) at least constrained strong flexible layout support"
            }
            Requirement::ResponsiveAdaptability => "(2) layout responsive to changes in workloads",
            Requirement::MixedLocationDistributedLocality => {
                "(3) mixed data location and distributed data locality"
            }
            Requirement::NsmAndDsmLinearization => {
                "(4) fragmentation linearization that covers NSM and DSM"
            }
            Requirement::BuiltInMultiLayout => "(5) built-in multi layout handling for relations",
            Requirement::DelegationScheme => "(6) fragment scheme supports delegation",
        }
    }

    /// Does `c` meet this requirement?
    pub fn met_by(self, c: &Classification) -> bool {
        match self {
            Requirement::StrongFlexibleLayouts => {
                matches!(c.layout_flexibility, LayoutFlexibility::StrongFlexible { .. })
            }
            Requirement::ResponsiveAdaptability => {
                c.layout_adaptability == LayoutAdaptability::Responsive
            }
            Requirement::MixedLocationDistributedLocality => {
                c.data_location == DataLocation::Mixed
                    && c.data_locality == DataLocality::Distributed
            }
            Requirement::NsmAndDsmLinearization => c.fragment_linearization.covers_nsm_and_dsm(),
            Requirement::BuiltInMultiLayout => c.layout_handling == LayoutHandling::MultiBuiltIn,
            Requirement::DelegationScheme => c.fragment_scheme == FragmentScheme::DelegationBased,
        }
    }
}

/// Result of checking a classification against all six requirements.
#[derive(Debug, Clone)]
pub struct Checklist {
    pub engine: &'static str,
    pub results: Vec<(Requirement, bool)>,
}

impl Checklist {
    /// True iff every requirement is met.
    pub fn satisfied(&self) -> bool {
        self.results.iter().all(|(_, ok)| *ok)
    }

    /// Requirements the engine fails.
    pub fn missing(&self) -> Vec<Requirement> {
        self.results.iter().filter(|(_, ok)| !ok).map(|(r, _)| *r).collect()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!("reference-design check for {}:\n", self.engine);
        for (req, ok) in &self.results {
            out.push_str(&format!("  [{}] {}\n", if *ok { "x" } else { " " }, req.description()));
        }
        out.push_str(&format!(
            "  => {}\n",
            if self.satisfied() { "SATISFIED" } else { "NOT SATISFIED" }
        ));
        out
    }
}

/// Check a classification against the full reference design.
pub fn check(c: &Classification) -> Checklist {
    Checklist {
        engine: c.name,
        results: Requirement::ALL.iter().map(|r| (*r, r.met_by(c))).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::survey;

    #[test]
    fn hyrise_fails_exactly_the_expected_requirements() {
        let chk = check(&survey::hyrise());
        let missing = chk.missing();
        assert!(missing.contains(&Requirement::StrongFlexibleLayouts));
        assert!(missing.contains(&Requirement::MixedLocationDistributedLocality));
        assert!(missing.contains(&Requirement::BuiltInMultiLayout));
        assert!(missing.contains(&Requirement::DelegationScheme));
        assert!(!missing.contains(&Requirement::ResponsiveAdaptability));
        // HYRISE's fat-variable linearization does cover NSM and DSM.
        assert!(!missing.contains(&Requirement::NsmAndDsmLinearization));
    }

    #[test]
    fn cogadb_meets_location_but_not_workload_axes() {
        let chk = check(&survey::cogadb());
        assert!(Requirement::MixedLocationDistributedLocality.met_by(&survey::cogadb()));
        assert!(!chk.satisfied());
    }

    #[test]
    fn a_synthetic_ideal_engine_satisfies_everything() {
        use crate::props::*;
        let ideal = Classification {
            name: "IDEAL",
            layout_handling: LayoutHandling::MultiBuiltIn,
            layout_flexibility: LayoutFlexibility::StrongFlexible { constrained: true },
            layout_adaptability: LayoutAdaptability::Responsive,
            data_location: DataLocation::Mixed,
            data_locality: DataLocality::Distributed,
            fragment_linearization: FragmentLinearization::FatVariable,
            fragment_scheme: FragmentScheme::DelegationBased,
            processor_support: ProcessorSupport::CpuGpu,
            workload_support: WorkloadSupport::Htap,
            year: 2017,
        };
        assert!(check(&ideal).satisfied());
    }

    #[test]
    fn render_lists_all_six() {
        let s = check(&survey::pax()).render();
        for req in Requirement::ALL {
            assert!(s.contains(req.description()));
        }
        assert!(s.contains("NOT SATISFIED"));
    }
}
