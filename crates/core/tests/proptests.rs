//! Property-based tests over the core data structures and invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use htapg_core::compress::{self, Codec, Dictionary, ForBitPack, Rle};
use htapg_core::index::{BPlusTree, HashIndex};
use htapg_core::txn::{MvStore, TxnManager};
use htapg_core::{
    DataType, GroupOrder, Layout, LayoutTemplate, Linearization, Schema, Value, VerticalGroup,
};

// ---------------------------------------------------------------------
// Values: encode/decode identity for every type.
// ---------------------------------------------------------------------

fn arb_value_and_type() -> impl Strategy<Value = (Value, DataType)> {
    prop_oneof![
        any::<bool>().prop_map(|b| (Value::Bool(b), DataType::Bool)),
        any::<i32>().prop_map(|v| (Value::Int32(v), DataType::Int32)),
        any::<i64>().prop_map(|v| (Value::Int64(v), DataType::Int64)),
        any::<f64>().prop_filter("NaN breaks PartialEq", |v| !v.is_nan())
            .prop_map(|v| (Value::Float64(v), DataType::Float64)),
        any::<i32>().prop_map(|v| (Value::Date(v), DataType::Date)),
        "[a-zA-Z0-9 ]{0,12}".prop_map(|s| {
            let trimmed = s.trim_end().to_string();
            (Value::Text(trimmed), DataType::Text(12))
        }),
    ]
}

proptest! {
    #[test]
    fn value_roundtrip((v, ty) in arb_value_and_type()) {
        let mut buf = vec![0u8; ty.width()];
        v.encode_into(ty, &mut buf).unwrap();
        prop_assert_eq!(Value::decode(ty, &buf), v);
    }
}

// ---------------------------------------------------------------------
// Layouts: every template stores and retrieves identically.
// ---------------------------------------------------------------------

fn test_schema() -> Schema {
    Schema::of(&[
        ("a", DataType::Int64),
        ("b", DataType::Int32),
        ("c", DataType::Float64),
        ("d", DataType::Text(6)),
    ])
}

fn arb_template() -> impl Strategy<Value = LayoutTemplate> {
    let s = test_schema();
    let chunk = prop_oneof![Just(None), (2u64..64).prop_map(Some)];
    // A selection of valid group partitions of {a,b,c,d}.
    let groups = prop_oneof![
        Just(vec![VerticalGroup::new(vec![0, 1, 2, 3], GroupOrder::Nsm)]),
        Just(vec![VerticalGroup::new(vec![0, 1, 2, 3], GroupOrder::Dsm)]),
        Just(vec![VerticalGroup::new(vec![0, 1, 2, 3], GroupOrder::ThinPerAttr)]),
        Just(vec![
            VerticalGroup::new(vec![0, 3], GroupOrder::Nsm),
            VerticalGroup::new(vec![1, 2], GroupOrder::Dsm),
        ]),
        Just(vec![
            VerticalGroup::new(vec![2], GroupOrder::ThinPerAttr),
            VerticalGroup::new(vec![0, 1, 3], GroupOrder::Nsm),
        ]),
    ];
    let _ = s;
    (groups, chunk).prop_map(|(g, c)| LayoutTemplate::grouped(g, c))
}

fn arb_record() -> impl Strategy<Value = Vec<Value>> {
    (
        any::<i64>(),
        any::<i32>(),
        any::<f64>().prop_filter("NaN", |v| !v.is_nan()),
        "[a-z]{0,6}",
    )
        .prop_map(|(a, b, c, d)| {
            vec![Value::Int64(a), Value::Int32(b), Value::Float64(c), Value::Text(d)]
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_layout_roundtrips_records(
        template in arb_template(),
        records in vec(arb_record(), 1..120),
    ) {
        let s = test_schema();
        template.validate(&s).unwrap();
        let mut layout = Layout::new(&s, template).unwrap();
        for (i, rec) in records.iter().enumerate() {
            let row = layout.append(&s, rec).unwrap();
            prop_assert_eq!(row, i as u64);
        }
        for (i, rec) in records.iter().enumerate() {
            prop_assert_eq!(&layout.read_record(&s, i as u64).unwrap(), rec);
        }
        // Column iteration covers every row once, in order.
        let mut rows = Vec::new();
        layout.for_each_field(0, |row, _| rows.push(row)).unwrap();
        prop_assert_eq!(rows, (0..records.len() as u64).collect::<Vec<_>>());
    }

    #[test]
    fn rebuild_to_any_template_preserves_content(
        from in arb_template(),
        to in arb_template(),
        records in vec(arb_record(), 1..60),
    ) {
        let s = test_schema();
        let mut layout = Layout::new(&s, from).unwrap();
        for rec in &records {
            layout.append(&s, rec).unwrap();
        }
        let rebuilt = layout.rebuild(&s, to).unwrap();
        for (i, rec) in records.iter().enumerate() {
            prop_assert_eq!(&rebuilt.read_record(&s, i as u64).unwrap(), rec);
        }
    }

    #[test]
    fn relinearize_is_lossless(
        records in vec(arb_record(), 2..50),
        to_dsm in any::<bool>(),
    ) {
        let s = test_schema();
        let order = if to_dsm { Linearization::Dsm } else { Linearization::Nsm };
        let other = if to_dsm { Linearization::Nsm } else { Linearization::Dsm };
        let mut frag = htapg_core::Fragment::new(
            &s,
            htapg_core::FragmentSpec {
                first_row: 0,
                capacity: records.len() as u64,
                attrs: vec![0, 1, 2, 3],
                order,
            },
        )
        .unwrap();
        for rec in &records {
            frag.append(&s, rec).unwrap();
        }
        let re = frag.relinearize(&s, other).unwrap();
        for i in 0..records.len() as u64 {
            prop_assert_eq!(frag.read_tuplet(&s, i).unwrap(), re.read_tuplet(&s, i).unwrap());
        }
    }
}

// ---------------------------------------------------------------------
// Compression: decode(encode(x)) == x for every codec.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codecs_roundtrip(values in vec(any::<u64>(), 0..400)) {
        for codec in [&Rle as &dyn Codec, &Dictionary, &ForBitPack] {
            let block = codec.encode(&values);
            prop_assert_eq!(&codec.decode(&block).unwrap(), &values);
        }
        let auto = compress::auto_encode(&values);
        prop_assert_eq!(&compress::decode(&auto).unwrap(), &values);
    }

    #[test]
    fn codecs_roundtrip_skewed(raw in vec((0u64..8, 1u64..50), 0..60)) {
        // Runs of low-cardinality values: the shapes codecs exploit.
        let values: Vec<u64> = raw.iter().flat_map(|&(v, n)| std::iter::repeat_n(v, n as usize)).collect();
        for codec in [&Rle as &dyn Codec, &Dictionary, &ForBitPack] {
            let block = codec.encode(&values);
            prop_assert_eq!(&codec.decode(&block).unwrap(), &values);
        }
    }
}

// ---------------------------------------------------------------------
// B+-tree: model-based equivalence with BTreeMap.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
}

fn arb_tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        any::<u16>().prop_map(TreeOp::Remove),
        any::<u16>().prop_map(TreeOp::Get),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bptree_matches_btreemap(ops in vec(arb_tree_op(), 1..400)) {
        let mut tree = BPlusTree::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    prop_assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                TreeOp::Get(k) => {
                    prop_assert_eq!(tree.get(&k), model.get(&k));
                }
                TreeOp::Range(lo, hi) => {
                    let got = tree.range_keys(Bound::Included(&lo), Bound::Excluded(&hi));
                    let want: Vec<u16> = model.range(lo..hi).map(|(k, _)| *k).collect();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants();
        // Full ordered iteration agrees.
        let mut got = Vec::new();
        tree.for_each(&mut |k, v| got.push((*k, *v)));
        let want: Vec<(u16, u32)> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn hash_index_matches_model(ops in vec(arb_tree_op(), 1..300)) {
        let mut index = HashIndex::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    prop_assert_eq!(index.insert(k, v), model.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    prop_assert_eq!(index.remove(&k), model.remove(&k));
                }
                TreeOp::Get(k) | TreeOp::Range(k, _) => {
                    prop_assert_eq!(index.get(&k), model.get(&k));
                }
            }
        }
        prop_assert_eq!(index.len(), model.len());
    }
}

// ---------------------------------------------------------------------
// MVCC: serial history equivalence — committed transactions applied in
// commit order produce the same final state as a sequential map; aborted
// transactions leave no trace; snapshots are stable.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mvcc_committed_history_matches_model(
        steps in vec((0u8..4, any::<u8>(), any::<u16>()), 1..150),
    ) {
        let mgr = Arc::new(TxnManager::new());
        let store: MvStore<u8, u16> = MvStore::new(mgr.clone());
        let mut model: BTreeMap<u8, u16> = BTreeMap::new();
        for (kind, key, value) in steps {
            let txn = mgr.begin();
            match kind {
                0 => {
                    // put + commit
                    if store.put(&txn, key, value).is_ok() {
                        store.commit(&txn).unwrap();
                        model.insert(key, value);
                    } else {
                        store.abort(&txn).unwrap();
                    }
                }
                1 => {
                    // put + abort: no trace (aborted whether or not the
                    // put itself conflicted)
                    let _ = store.put(&txn, key, value);
                    store.abort(&txn).unwrap();
                }
                2 => {
                    // delete + commit
                    if store.delete(&txn, key).is_ok() {
                        store.commit(&txn).unwrap();
                        model.remove(&key);
                    } else {
                        store.abort(&txn).unwrap();
                    }
                }
                _ => {
                    // read must match the model
                    prop_assert_eq!(store.get(&txn, &key), model.get(&key).copied());
                    store.abort(&txn).unwrap();
                }
            }
        }
        // Final committed view equals the model.
        let reader = mgr.begin();
        for k in 0u8..4 {
            prop_assert_eq!(store.get(&reader, &k), model.get(&k).copied());
        }
    }

    #[test]
    fn mvcc_snapshots_are_immutable(writes in vec((0u8..3, any::<u16>()), 1..60)) {
        let mgr = Arc::new(TxnManager::new());
        let store: MvStore<u8, u16> = MvStore::new(mgr.clone());
        // Commit an initial state, snapshot it, then mutate heavily.
        let init = mgr.begin();
        store.put(&init, 0, 111).unwrap();
        store.commit(&init).unwrap();
        let snapshot = mgr.begin();
        let frozen = store.get(&snapshot, &0);
        for (key, value) in writes {
            let t = mgr.begin();
            if store.put(&t, key, value).is_ok() {
                store.commit(&t).unwrap();
            } else {
                store.abort(&t).unwrap();
            }
            prop_assert_eq!(store.get(&snapshot, &0), frozen, "snapshot drifted");
        }
    }
}
