//! Randomized property tests over the core data structures and invariants.
//!
//! Cases are driven by the in-repo deterministic [`Prng`]; the base seed
//! honors `HTAPG_SEED` and is printed on failure (see
//! `htapg_core::prng::check_cases`), so any CI failure replays locally.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use htapg_core::calibrate::CalibrationProfiles;
use htapg_core::compress::{self, Codec, Dictionary, ForBitPack, Rle};
use htapg_core::index::{BPlusTree, HashIndex};
use htapg_core::prng::{check_cases, Prng};
use htapg_core::txn::{MvStore, TxnManager};
use htapg_core::{
    DataType, GroupOrder, Layout, LayoutTemplate, Linearization, Schema, Value, VerticalGroup,
};

// ---------------------------------------------------------------------
// Random-value helpers.
// ---------------------------------------------------------------------

fn arb_f64(rng: &mut Prng) -> f64 {
    // Full bit patterns (minus NaN, which breaks PartialEq) so encode/decode
    // sees subnormals, infinities, and negative zero too.
    loop {
        let v = f64::from_bits(rng.next_u64());
        if !v.is_nan() {
            return v;
        }
    }
}

fn arb_text(rng: &mut Prng, max: usize) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ";
    let len = rng.gen_range(0usize..=max);
    let s: String = (0..len).map(|_| CHARS[rng.gen_range(0usize..CHARS.len())] as char).collect();
    s.trim_end().to_string()
}

fn arb_value_and_type(rng: &mut Prng) -> (Value, DataType) {
    match rng.gen_range(0usize..6) {
        0 => (Value::Bool(rng.gen_bool(0.5)), DataType::Bool),
        1 => (Value::Int32(rng.next_u64() as i32), DataType::Int32),
        2 => (Value::Int64(rng.next_u64() as i64), DataType::Int64),
        3 => (Value::Float64(arb_f64(rng)), DataType::Float64),
        4 => (Value::Date(rng.next_u64() as i32), DataType::Date),
        _ => (Value::Text(arb_text(rng, 12)), DataType::Text(12)),
    }
}

// ---------------------------------------------------------------------
// Values: encode/decode identity for every type.
// ---------------------------------------------------------------------

#[test]
fn value_roundtrip() {
    check_cases("value_roundtrip", 256, 0xC0DE_0001, |_, rng| {
        let (v, ty) = arb_value_and_type(rng);
        let mut buf = vec![0u8; ty.width()];
        v.encode_into(ty, &mut buf).unwrap();
        assert_eq!(Value::decode(ty, &buf), v);
    });
}

// ---------------------------------------------------------------------
// Layouts: every template stores and retrieves identically.
// ---------------------------------------------------------------------

fn test_schema() -> Schema {
    Schema::of(&[
        ("a", DataType::Int64),
        ("b", DataType::Int32),
        ("c", DataType::Float64),
        ("d", DataType::Text(6)),
    ])
}

fn arb_template(rng: &mut Prng) -> LayoutTemplate {
    let groups = match rng.gen_range(0usize..5) {
        0 => vec![VerticalGroup::new(vec![0, 1, 2, 3], GroupOrder::Nsm)],
        1 => vec![VerticalGroup::new(vec![0, 1, 2, 3], GroupOrder::Dsm)],
        2 => vec![VerticalGroup::new(vec![0, 1, 2, 3], GroupOrder::ThinPerAttr)],
        3 => vec![
            VerticalGroup::new(vec![0, 3], GroupOrder::Nsm),
            VerticalGroup::new(vec![1, 2], GroupOrder::Dsm),
        ],
        _ => vec![
            VerticalGroup::new(vec![2], GroupOrder::ThinPerAttr),
            VerticalGroup::new(vec![0, 1, 3], GroupOrder::Nsm),
        ],
    };
    let chunk = if rng.gen_bool(0.5) { None } else { Some(rng.gen_range(2u64..64)) };
    LayoutTemplate::grouped(groups, chunk)
}

fn arb_record(rng: &mut Prng) -> Vec<Value> {
    vec![
        Value::Int64(rng.next_u64() as i64),
        Value::Int32(rng.next_u64() as i32),
        Value::Float64(arb_f64(rng)),
        Value::Text(arb_text(rng, 6).trim_end().to_string()),
    ]
}

#[test]
fn any_layout_roundtrips_records() {
    check_cases("any_layout_roundtrips_records", 64, 0xC0DE_0002, |_, rng| {
        let template = arb_template(rng);
        let records: Vec<_> = (0..rng.gen_range(1usize..120)).map(|_| arb_record(rng)).collect();
        let s = test_schema();
        template.validate(&s).unwrap();
        let mut layout = Layout::new(&s, template).unwrap();
        for (i, rec) in records.iter().enumerate() {
            let row = layout.append(&s, rec).unwrap();
            assert_eq!(row, i as u64);
        }
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(&layout.read_record(&s, i as u64).unwrap(), rec);
        }
        // Column iteration covers every row once, in order.
        let mut rows = Vec::new();
        layout.for_each_field(0, |row, _| rows.push(row)).unwrap();
        assert_eq!(rows, (0..records.len() as u64).collect::<Vec<_>>());
    });
}

#[test]
fn rebuild_to_any_template_preserves_content() {
    check_cases("rebuild_to_any_template_preserves_content", 64, 0xC0DE_0003, |_, rng| {
        let from = arb_template(rng);
        let to = arb_template(rng);
        let records: Vec<_> = (0..rng.gen_range(1usize..60)).map(|_| arb_record(rng)).collect();
        let s = test_schema();
        let mut layout = Layout::new(&s, from).unwrap();
        for rec in &records {
            layout.append(&s, rec).unwrap();
        }
        let rebuilt = layout.rebuild(&s, to).unwrap();
        for (i, rec) in records.iter().enumerate() {
            assert_eq!(&rebuilt.read_record(&s, i as u64).unwrap(), rec);
        }
    });
}

#[test]
fn relinearize_is_lossless() {
    check_cases("relinearize_is_lossless", 64, 0xC0DE_0004, |_, rng| {
        let records: Vec<_> = (0..rng.gen_range(2usize..50)).map(|_| arb_record(rng)).collect();
        let to_dsm = rng.gen_bool(0.5);
        let s = test_schema();
        let order = if to_dsm { Linearization::Dsm } else { Linearization::Nsm };
        let other = if to_dsm { Linearization::Nsm } else { Linearization::Dsm };
        let mut frag = htapg_core::Fragment::new(
            &s,
            htapg_core::FragmentSpec {
                first_row: 0,
                capacity: records.len() as u64,
                attrs: vec![0, 1, 2, 3],
                order,
            },
        )
        .unwrap();
        for rec in &records {
            frag.append(&s, rec).unwrap();
        }
        let re = frag.relinearize(&s, other).unwrap();
        for i in 0..records.len() as u64 {
            assert_eq!(frag.read_tuplet(&s, i).unwrap(), re.read_tuplet(&s, i).unwrap());
        }
    });
}

// ---------------------------------------------------------------------
// Compression: decode(encode(x)) == x for every codec.
// ---------------------------------------------------------------------

#[test]
fn codecs_roundtrip() {
    check_cases("codecs_roundtrip", 128, 0xC0DE_0005, |_, rng| {
        let values: Vec<u64> = (0..rng.gen_range(0usize..400)).map(|_| rng.next_u64()).collect();
        for codec in [&Rle as &dyn Codec, &Dictionary, &ForBitPack] {
            let block = codec.encode(&values);
            assert_eq!(&codec.decode(&block).unwrap(), &values);
        }
        let auto = compress::auto_encode(&values);
        assert_eq!(&compress::decode(&auto).unwrap(), &values);
    });
}

#[test]
fn codecs_roundtrip_skewed() {
    check_cases("codecs_roundtrip_skewed", 128, 0xC0DE_0006, |_, rng| {
        // Runs of low-cardinality values: the shapes codecs exploit.
        let runs = rng.gen_range(0usize..60);
        let mut values = Vec::new();
        for _ in 0..runs {
            let v = rng.gen_range(0u64..8);
            let n = rng.gen_range(1u64..50);
            values.extend(std::iter::repeat_n(v, n as usize));
        }
        for codec in [&Rle as &dyn Codec, &Dictionary, &ForBitPack] {
            let block = codec.encode(&values);
            assert_eq!(&codec.decode(&block).unwrap(), &values);
        }
    });
}

// ---------------------------------------------------------------------
// B+-tree: model-based equivalence with BTreeMap.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
    Range(u16, u16),
}

fn arb_tree_op(rng: &mut Prng) -> TreeOp {
    let k = rng.next_u64() as u16;
    match rng.gen_range(0usize..4) {
        0 => TreeOp::Insert(k, rng.next_u64() as u32),
        1 => TreeOp::Remove(k),
        2 => TreeOp::Get(k),
        _ => {
            let other = rng.next_u64() as u16;
            TreeOp::Range(k.min(other), k.max(other))
        }
    }
}

#[test]
fn bptree_matches_btreemap() {
    check_cases("bptree_matches_btreemap", 64, 0xC0DE_0007, |_, rng| {
        let ops: Vec<_> = (0..rng.gen_range(1usize..400)).map(|_| arb_tree_op(rng)).collect();
        let mut tree = BPlusTree::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    assert_eq!(tree.insert(k, v), model.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    assert_eq!(tree.remove(&k), model.remove(&k));
                }
                TreeOp::Get(k) => {
                    assert_eq!(tree.get(&k), model.get(&k));
                }
                TreeOp::Range(lo, hi) => {
                    let got = tree.range_keys(Bound::Included(&lo), Bound::Excluded(&hi));
                    let want: Vec<u16> = model.range(lo..hi).map(|(k, _)| *k).collect();
                    assert_eq!(got, want);
                }
            }
            assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants();
        // Full ordered iteration agrees.
        let mut got = Vec::new();
        tree.for_each(&mut |k, v| got.push((*k, *v)));
        let want: Vec<(u16, u32)> = model.into_iter().collect();
        assert_eq!(got, want);
    });
}

#[test]
fn hash_index_matches_model() {
    check_cases("hash_index_matches_model", 64, 0xC0DE_0008, |_, rng| {
        let ops: Vec<_> = (0..rng.gen_range(1usize..300)).map(|_| arb_tree_op(rng)).collect();
        let mut index = HashIndex::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    assert_eq!(index.insert(k, v), model.insert(k, v));
                }
                TreeOp::Remove(k) => {
                    assert_eq!(index.remove(&k), model.remove(&k));
                }
                TreeOp::Get(k) | TreeOp::Range(k, _) => {
                    assert_eq!(index.get(&k), model.get(&k));
                }
            }
        }
        assert_eq!(index.len(), model.len());
    });
}

// ---------------------------------------------------------------------
// MVCC: serial history equivalence — committed transactions applied in
// commit order produce the same final state as a sequential map; aborted
// transactions leave no trace; snapshots are stable.
// ---------------------------------------------------------------------

#[test]
fn mvcc_committed_history_matches_model() {
    check_cases("mvcc_committed_history_matches_model", 48, 0xC0DE_0009, |_, rng| {
        let steps: Vec<(u8, u8, u16)> = (0..rng.gen_range(1usize..150))
            .map(|_| (rng.gen_range(0u8..4), rng.next_u64() as u8, rng.next_u64() as u16))
            .collect();
        let mgr = Arc::new(TxnManager::new());
        let store: MvStore<u8, u16> = MvStore::new(mgr.clone());
        let mut model: BTreeMap<u8, u16> = BTreeMap::new();
        for (kind, key, value) in steps {
            let txn = mgr.begin();
            match kind {
                0 => {
                    // put + commit
                    if store.put(&txn, key, value).is_ok() {
                        store.commit(&txn).unwrap();
                        model.insert(key, value);
                    } else {
                        store.abort(&txn).unwrap();
                    }
                }
                1 => {
                    // put + abort: no trace (aborted whether or not the
                    // put itself conflicted)
                    let _ = store.put(&txn, key, value);
                    store.abort(&txn).unwrap();
                }
                2 => {
                    // delete + commit
                    if store.delete(&txn, key).is_ok() {
                        store.commit(&txn).unwrap();
                        model.remove(&key);
                    } else {
                        store.abort(&txn).unwrap();
                    }
                }
                _ => {
                    // read must match the model
                    assert_eq!(store.get(&txn, &key), model.get(&key).copied());
                    store.abort(&txn).unwrap();
                }
            }
        }
        // Final committed view equals the model.
        let reader = mgr.begin();
        for k in 0u8..4 {
            assert_eq!(store.get(&reader, &k), model.get(&k).copied());
        }
    });
}

// ---------------------------------------------------------------------
// Calibration: EWMA factors converge to the true cost ratio, stay
// positive/finite under arbitrary residual streams, and snapshot
// byte-identically under the same seed.
// ---------------------------------------------------------------------

#[test]
fn calibration_converges_monotonically_to_true_ratio() {
    check_cases("calibration_converges_monotonically_to_true_ratio", 64, 0xC0DE_000B, |_, rng| {
        // A constant true ratio r: every observation reports actual =
        // r * raw. Restricted to ratios and estimates where integer
        // truncation of `actual` is far below the EWMA step, so the
        // convergence error is monotone up to a tiny additive slack.
        let r = rng.gen_range(1e-2..1e4);
        let mut prev_err = f64::INFINITY;
        let p = CalibrationProfiles::new();
        for _ in 0..24 {
            let raw = rng.gen_range(10_000u64..1_000_000);
            let actual = (raw as f64 * r) as u64;
            p.observe("plan.aggregate.sum", "device-pipelined", raw, actual);
            let f = p.learned_factor("plan.aggregate.sum", "device-pipelined").unwrap();
            assert!(f.is_finite() && f > 0.0, "factor {f}");
            let err = (f - r).abs();
            assert!(
                err <= prev_err + r * 1e-2,
                "convergence not monotone: err {err} after prev {prev_err} (r = {r})"
            );
            prev_err = err;
        }
        let f = p.learned_factor("plan.aggregate.sum", "device-pipelined").unwrap();
        assert!((f - r).abs() / r < 0.02, "factor {f} should be within 2% of true ratio {r}");
    });
}

#[test]
fn calibration_factors_never_nan_zero_or_negative() {
    check_cases("calibration_factors_never_nan_zero_or_negative", 64, 0xC0DE_000C, |_, rng| {
        let p = CalibrationProfiles::new();
        for _ in 0..rng.gen_range(1usize..200) {
            // Adversarial residuals: zeros, u64::MAX, and everything
            // in between, on a handful of keys.
            let raw = match rng.gen_range(0usize..4) {
                0 => 0,
                1 => u64::MAX,
                _ => rng.next_u64() >> rng.gen_range(0u64..64),
            };
            let actual = match rng.gen_range(0usize..4) {
                0 => 0,
                1 => u64::MAX,
                _ => rng.next_u64() >> rng.gen_range(0u64..64),
            };
            let op =
                ["plan.scan", "plan.aggregate.sum", "plan.point_read"][rng.gen_range(0usize..3)];
            let route = ["inline-volcano", "device-pipelined"][rng.gen_range(0usize..2)];
            p.observe(op, route, raw, actual);
            let f = p.learned_factor(op, route).unwrap();
            assert!(f.is_finite(), "factor {f} for ({op}, {route})");
            assert!(f > 0.0, "factor {f} for ({op}, {route})");
            let cal = p.calibrated_ns(op, route, raw);
            let _ = cal; // must not panic/overflow; saturates at u64::MAX
        }
        for e in p.snapshot().entries {
            assert!(e.factor.is_finite() && e.factor > 0.0, "{e:?}");
        }
    });
}

#[test]
fn calibration_is_byte_identical_under_same_seed() {
    // Two profiles fed the identical seeded residual stream snapshot to
    // byte-identical factors (f64::to_bits equality), independent of
    // HTAPG_THREADS — observation order is the only input.
    check_cases("calibration_is_byte_identical_under_same_seed", 32, 0xC0DE_000D, |case, _| {
        let run = |seed: u64| {
            let mut rng = Prng::seed_from_u64(seed);
            let p = CalibrationProfiles::new();
            for _ in 0..50 {
                let raw = rng.gen_range(1u64..1_000_000);
                let actual = rng.gen_range(0u64..1_000_000);
                let op = ["plan.scan", "plan.aggregate.sum"][rng.gen_range(0usize..2)];
                p.observe(op, "inline-volcano", raw, actual);
            }
            p.snapshot()
        };
        let a = run(case);
        let b = run(case);
        assert_eq!(a.entries.len(), b.entries.len());
        for (x, y) in a.entries.iter().zip(&b.entries) {
            assert_eq!(x.op, y.op);
            assert_eq!(x.route, y.route);
            assert_eq!(x.observations, y.observations);
            assert_eq!(x.factor.to_bits(), y.factor.to_bits(), "factors differ in bits");
        }
    });
}

#[test]
fn mvcc_snapshots_are_immutable() {
    check_cases("mvcc_snapshots_are_immutable", 48, 0xC0DE_000A, |_, rng| {
        let writes: Vec<(u8, u16)> = (0..rng.gen_range(1usize..60))
            .map(|_| (rng.gen_range(0u8..3), rng.next_u64() as u16))
            .collect();
        let mgr = Arc::new(TxnManager::new());
        let store: MvStore<u8, u16> = MvStore::new(mgr.clone());
        // Commit an initial state, snapshot it, then mutate heavily.
        let init = mgr.begin();
        store.put(&init, 0, 111).unwrap();
        store.commit(&init).unwrap();
        let snapshot = mgr.begin();
        let frozen = store.get(&snapshot, &0);
        for (key, value) in writes {
            let t = mgr.begin();
            if store.put(&t, key, value).is_ok() {
                store.commit(&t).unwrap();
            } else {
                store.abort(&t).unwrap();
            }
            assert_eq!(store.get(&snapshot, &0), frozen, "snapshot drifted");
        }
    });
}
