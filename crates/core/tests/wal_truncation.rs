//! WAL truncation property: for a log of N framed records, truncation at
//! EVERY byte offset must (1) never panic, (2) never replay a corrupt or
//! invented record — the replayed sequence is always an exact prefix of
//! what was logged — and (3) report `torn_tail` precisely when the cut
//! fell strictly inside a frame (a cut on a frame boundary is a clean EOF).

use htapg_core::prng::{check_cases, Prng};
use htapg_core::wal::{LogRecord, LogStorage, MemStorage, Wal};
use htapg_core::{DataType, Schema, Value};

/// Log `records`, then replay every possible truncation prefix and check
/// the contract. `ctx` goes into assertion messages (seed/case for
/// randomized callers).
fn assert_every_truncation(records: &[LogRecord], ctx: &str) {
    let wal = Wal::new(MemStorage::new());
    // boundaries[i] = byte length of the log after i records.
    let mut boundaries = vec![0usize];
    for rec in records {
        wal.log(rec).unwrap();
        boundaries.push(wal.storage().lock().len());
    }
    let full = wal.storage().lock().read_all().unwrap();
    assert_eq!(full.len(), *boundaries.last().unwrap());

    for cut in 0..=full.len() {
        let wal = Wal::new(MemStorage::from_bytes(full[..cut].to_vec()));
        let mut seen = Vec::new();
        let report = wal
            .replay(|r| {
                seen.push(r);
                Ok(())
            })
            .unwrap_or_else(|e| panic!("cut {cut}: replay errored: {e} ({ctx})"));

        // Frames wholly inside the prefix replay; nothing else does.
        let intact = boundaries[1..].iter().filter(|&&b| b <= cut).count();
        assert_eq!(
            report.records, intact as u64,
            "cut {cut}: {} records replayed, {intact} frames intact ({ctx})",
            report.records
        );
        assert_eq!(
            seen,
            records[..intact],
            "cut {cut}: replay must be an exact prefix of the logged records ({ctx})"
        );
        // A torn tail iff the cut is not a frame boundary.
        let on_boundary = boundaries[intact] == cut;
        assert_eq!(
            report.torn_tail, !on_boundary,
            "cut {cut}: torn_tail={} but boundary={on_boundary} ({ctx})",
            report.torn_tail
        );
    }
}

fn fixed_records() -> Vec<LogRecord> {
    let schema = Schema::of(&[
        ("k", DataType::Int64),
        ("price", DataType::Float64),
        ("flag", DataType::Bool),
        ("name", DataType::Text(8)),
    ]);
    vec![
        LogRecord::CreateRelation { rel: 0, schema },
        LogRecord::Insert {
            rel: 0,
            row: 0,
            values: vec![
                Value::Int64(-7),
                Value::Float64(3.25),
                Value::Bool(true),
                Value::Text("tuple".into()),
            ],
        },
        LogRecord::Update { rel: 0, row: 0, attr: 1, value: Value::Float64(-0.5), txn: 9 },
        LogRecord::Commit { txn: 9 },
        LogRecord::Update { rel: 0, row: 0, attr: 0, value: Value::Int64(i64::MIN), txn: 10 },
        LogRecord::Commit { txn: 10 },
    ]
}

#[test]
fn every_truncation_offset_of_a_fixed_log_replays_a_clean_prefix() {
    assert_every_truncation(&fixed_records(), "fixed log");
}

#[test]
fn empty_log_replays_clean() {
    assert_every_truncation(&[], "empty log");
}

fn random_value(rng: &mut Prng, ty: DataType) -> Value {
    match ty {
        DataType::Bool => Value::Bool(rng.gen_bool(0.5)),
        DataType::Int32 => Value::Int32(rng.next_u64() as i32),
        DataType::Int64 => Value::Int64(rng.next_u64() as i64),
        DataType::Float64 => Value::Float64(rng.next_f64() * 2e6 - 1e6),
        DataType::Date => Value::Date(rng.next_u64() as i32),
        DataType::Text(n) => {
            let len = rng.gen_range(0usize..n as usize + 1);
            Value::Text("x".repeat(len))
        }
    }
}

fn random_records(rng: &mut Prng) -> Vec<LogRecord> {
    let types = [DataType::Int64, DataType::Float64, DataType::Text(6), DataType::Bool];
    let arity = rng.gen_range(1usize..4);
    let attrs: Vec<(&str, DataType)> =
        (0..arity).map(|i| (["a", "b", "c"][i], types[rng.gen_range(0usize..4)])).collect();
    let schema = Schema::of(&attrs);
    let mut out = vec![LogRecord::CreateRelation { rel: 0, schema: schema.clone() }];
    let n = rng.gen_range(1usize..8);
    for row in 0..n as u64 {
        let values: Vec<Value> =
            (0..arity).map(|a| random_value(rng, schema.attrs()[a].ty)).collect();
        out.push(LogRecord::Insert { rel: 0, row, values });
        if rng.gen_bool(0.5) {
            let attr = rng.gen_range(0usize..arity) as u16;
            let value = random_value(rng, schema.attrs()[attr as usize].ty);
            out.push(LogRecord::Update { rel: 0, row, attr, value, txn: row + 100 });
            out.push(LogRecord::Commit { txn: row + 100 });
        }
    }
    out
}

#[test]
fn every_truncation_offset_of_random_logs_replays_a_clean_prefix() {
    check_cases("wal_truncation", 6, 0x7A11_57ED, |case, rng| {
        let records = random_records(rng);
        assert_every_truncation(&records, &format!("case {case}"));
    });
}
