//! Typed values with fixed-width binary encodings.
//!
//! All attribute types are fixed-width so that tuplets have a fixed size and
//! fragments can address fields arithmetically — the property the paper's
//! cache-line arguments (Section II) rely on. Variable-length text is stored
//! as fixed-width, space-padded fields, as TPC-C does for `C_LAST` etc.

use crate::error::{Error, Result};

/// A fixed-width attribute data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 1-byte boolean.
    Bool,
    /// 4-byte signed integer.
    Int32,
    /// 8-byte signed integer.
    Int64,
    /// 8-byte IEEE-754 double.
    Float64,
    /// 4-byte date, encoded as days since 1970-01-01.
    Date,
    /// Fixed-width text of `len` bytes, space padded.
    Text(u16),
}

impl DataType {
    /// Encoded width in bytes.
    pub const fn width(self) -> usize {
        match self {
            DataType::Bool => 1,
            DataType::Int32 => 4,
            DataType::Int64 => 8,
            DataType::Float64 => 8,
            DataType::Date => 4,
            DataType::Text(n) => n as usize,
        }
    }

    pub const fn name(self) -> &'static str {
        match self {
            DataType::Bool => "bool",
            DataType::Int32 => "int32",
            DataType::Int64 => "int64",
            DataType::Float64 => "float64",
            DataType::Date => "date",
            DataType::Text(_) => "text",
        }
    }

    /// Whether [`Value::as_f64`] can represent every value of this type —
    /// i.e. whether the type can feed a numeric aggregate.
    pub const fn is_numeric(self) -> bool {
        !matches!(self, DataType::Bool | DataType::Text(_))
    }
}

/// A typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Bool(bool),
    Int32(i32),
    Int64(i64),
    Float64(f64),
    /// Days since the Unix epoch.
    Date(i32),
    Text(String),
}

impl Value {
    pub const fn type_name(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int32(_) => "int32",
            Value::Int64(_) => "int64",
            Value::Float64(_) => "float64",
            Value::Date(_) => "date",
            Value::Text(_) => "text",
        }
    }

    /// Whether this value inhabits `ty`.
    pub fn matches(&self, ty: DataType) -> bool {
        matches!(
            (self, ty),
            (Value::Bool(_), DataType::Bool)
                | (Value::Int32(_), DataType::Int32)
                | (Value::Int64(_), DataType::Int64)
                | (Value::Float64(_), DataType::Float64)
                | (Value::Date(_), DataType::Date)
                | (Value::Text(_), DataType::Text(_))
        )
    }

    /// Encode into exactly `ty.width()` bytes at `out`.
    ///
    /// Returns an error on a type mismatch or an over-long text value;
    /// panics if `out` has the wrong length (an addressing bug, not a data
    /// error).
    pub fn encode_into(&self, ty: DataType, out: &mut [u8]) -> Result<()> {
        assert_eq!(out.len(), ty.width(), "field slot width mismatch");
        if !self.matches(ty) {
            return Err(Error::TypeMismatch { expected: ty.name(), got: self.type_name() });
        }
        match (self, ty) {
            (Value::Bool(b), DataType::Bool) => out[0] = *b as u8,
            (Value::Int32(v), DataType::Int32) => out.copy_from_slice(&v.to_le_bytes()),
            (Value::Int64(v), DataType::Int64) => out.copy_from_slice(&v.to_le_bytes()),
            (Value::Float64(v), DataType::Float64) => out.copy_from_slice(&v.to_le_bytes()),
            (Value::Date(v), DataType::Date) => out.copy_from_slice(&v.to_le_bytes()),
            (Value::Text(s), DataType::Text(n)) => {
                let bytes = s.as_bytes();
                if bytes.len() > n as usize {
                    return Err(Error::TextTooLong { max: n as usize, got: bytes.len() });
                }
                out[..bytes.len()].copy_from_slice(bytes);
                out[bytes.len()..].fill(b' ');
            }
            _ => unreachable!("matches() checked above"),
        }
        Ok(())
    }

    /// Decode a value of type `ty` from exactly `ty.width()` bytes.
    pub fn decode(ty: DataType, bytes: &[u8]) -> Value {
        assert_eq!(bytes.len(), ty.width(), "field slot width mismatch");
        match ty {
            DataType::Bool => Value::Bool(bytes[0] != 0),
            DataType::Int32 => Value::Int32(i32::from_le_bytes(bytes.try_into().unwrap())),
            DataType::Int64 => Value::Int64(i64::from_le_bytes(bytes.try_into().unwrap())),
            DataType::Float64 => Value::Float64(f64::from_le_bytes(bytes.try_into().unwrap())),
            DataType::Date => Value::Date(i32::from_le_bytes(bytes.try_into().unwrap())),
            DataType::Text(_) => {
                let end = bytes.iter().rposition(|&b| b != b' ').map_or(0, |p| p + 1);
                Value::Text(String::from_utf8_lossy(&bytes[..end]).into_owned())
            }
        }
    }

    /// Numeric view used by aggregation operators; errors for non-numeric
    /// values.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int32(v) => Ok(*v as f64),
            Value::Int64(v) => Ok(*v as f64),
            Value::Float64(v) => Ok(*v),
            Value::Date(v) => Ok(*v as f64),
            Value::Bool(_) | Value::Text(_) => {
                Err(Error::TypeMismatch { expected: "numeric", got: self.type_name() })
            }
        }
    }

    /// Integer view; errors for non-integer values.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int32(v) => Ok(*v as i64),
            Value::Int64(v) => Ok(*v),
            Value::Date(v) => Ok(*v as i64),
            _ => Err(Error::TypeMismatch { expected: "integer", got: self.type_name() }),
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int32(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int32(v) => write!(f, "{v}"),
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Date(v) => write!(f, "d{v}"),
            Value::Text(v) => write!(f, "{v:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value, ty: DataType) {
        let mut buf = vec![0u8; ty.width()];
        v.encode_into(ty, &mut buf).unwrap();
        assert_eq!(Value::decode(ty, &buf), v);
    }

    #[test]
    fn roundtrip_all_types() {
        roundtrip(Value::Bool(true), DataType::Bool);
        roundtrip(Value::Bool(false), DataType::Bool);
        roundtrip(Value::Int32(-123456), DataType::Int32);
        roundtrip(Value::Int64(i64::MIN), DataType::Int64);
        roundtrip(Value::Float64(3.5e100), DataType::Float64);
        roundtrip(Value::Date(19723), DataType::Date);
        roundtrip(Value::Text("hello".into()), DataType::Text(16));
    }

    #[test]
    fn text_pads_and_trims_spaces() {
        let mut buf = vec![0u8; 8];
        Value::Text("ab".into()).encode_into(DataType::Text(8), &mut buf).unwrap();
        assert_eq!(&buf, b"ab      ");
        assert_eq!(Value::decode(DataType::Text(8), &buf), Value::Text("ab".into()));
    }

    #[test]
    fn text_too_long_is_an_error() {
        let mut buf = vec![0u8; 4];
        let err =
            Value::Text("abcdef".into()).encode_into(DataType::Text(4), &mut buf).unwrap_err();
        assert_eq!(err, Error::TextTooLong { max: 4, got: 6 });
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let mut buf = vec![0u8; 8];
        let err = Value::Int32(1).encode_into(DataType::Int64, &mut buf).unwrap_err();
        assert!(matches!(err, Error::TypeMismatch { .. }));
    }

    #[test]
    fn widths() {
        assert_eq!(DataType::Bool.width(), 1);
        assert_eq!(DataType::Int32.width(), 4);
        assert_eq!(DataType::Int64.width(), 8);
        assert_eq!(DataType::Float64.width(), 8);
        assert_eq!(DataType::Date.width(), 4);
        assert_eq!(DataType::Text(21).width(), 21);
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int32(7).as_f64().unwrap(), 7.0);
        assert_eq!(Value::Float64(2.5).as_f64().unwrap(), 2.5);
        assert!(Value::Text("x".into()).as_f64().is_err());
        assert_eq!(Value::Int64(9).as_i64().unwrap(), 9);
        assert!(Value::Float64(1.0).as_i64().is_err());
    }

    #[test]
    fn empty_text_roundtrip() {
        roundtrip(Value::Text(String::new()), DataType::Text(4));
    }

    #[test]
    fn from_conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(3i32), Value::Int32(3));
        assert_eq!(Value::from(3i64), Value::Int64(3));
        assert_eq!(Value::from(1.5f64), Value::Float64(1.5));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(String::from("ho")), Value::Text("ho".into()));
    }
}
