//! Write-ahead logging: the durability substrate a production storage
//! engine needs under any of the paper's layouts (the physical layout is a
//! *projection* of the logical history — which is exactly why responsive
//! engines can rewrite layouts freely as long as the log survives).
//!
//! Records are framed as `[len: u32][crc32: u32][payload]`; the CRC covers
//! the payload, so torn tails from a crash are detected and replay stops at
//! the last intact frame. Storage is pluggable: [`MemStorage`] (tests,
//! simulations) or [`FileStorage`] (a real append-only file).

use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use crate::obs;
use crate::retry::{with_retry, BackoffClock, NoClock, RetryPolicy};
use crate::sync::Mutex;

use crate::error::{Error, Result};
use crate::schema::{Attribute, RelationId, RowId, Schema};
use crate::types::{DataType, Value};

/// CRC-32 (IEEE 802.3), bitwise implementation — no tables, no deps.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One logical log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A relation was created with this schema.
    CreateRelation { rel: RelationId, schema: Schema },
    /// A record was inserted at `row`.
    Insert { rel: RelationId, row: RowId, values: Vec<Value> },
    /// A field update by transaction `txn` (only redone if its
    /// [`LogRecord::Commit`] follows in the log).
    Update { rel: RelationId, row: RowId, attr: u16, value: Value, txn: u64 },
    /// A transaction commit boundary: all prior `Update`s of `txn` are
    /// atomic with it.
    Commit { txn: u64 },
}

// ---------------------------------------------------------------------
// Binary encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| Error::Internal("truncated log record".into()))?;
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }
}

fn encode_type(out: &mut Vec<u8>, ty: DataType) {
    match ty {
        DataType::Bool => out.push(0),
        DataType::Int32 => out.push(1),
        DataType::Int64 => out.push(2),
        DataType::Float64 => out.push(3),
        DataType::Date => out.push(4),
        DataType::Text(n) => {
            out.push(5);
            out.extend_from_slice(&n.to_le_bytes());
        }
    }
}

fn decode_type(c: &mut Cursor<'_>) -> Result<DataType> {
    Ok(match c.take(1)?[0] {
        0 => DataType::Bool,
        1 => DataType::Int32,
        2 => DataType::Int64,
        3 => DataType::Float64,
        4 => DataType::Date,
        5 => DataType::Text(u16::from_le_bytes(c.take(2)?.try_into().unwrap())),
        t => return Err(Error::Internal(format!("unknown type tag {t}"))),
    })
}

fn encode_value(out: &mut Vec<u8>, v: &Value) -> Result<()> {
    let ty = match v {
        Value::Bool(_) => DataType::Bool,
        Value::Int32(_) => DataType::Int32,
        Value::Int64(_) => DataType::Int64,
        Value::Float64(_) => DataType::Float64,
        Value::Date(_) => DataType::Date,
        Value::Text(s) => DataType::Text(s.len().min(u16::MAX as usize) as u16),
    };
    encode_type(out, ty);
    let mut buf = vec![0u8; ty.width()];
    v.encode_into(ty, &mut buf)?;
    out.extend_from_slice(&buf);
    Ok(())
}

fn decode_value(c: &mut Cursor<'_>) -> Result<Value> {
    let ty = decode_type(c)?;
    Ok(Value::decode(ty, c.take(ty.width())?))
}

impl LogRecord {
    /// Encode the record payload (without framing).
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        match self {
            LogRecord::CreateRelation { rel, schema } => {
                out.push(0);
                put_u32(&mut out, *rel);
                put_u32(&mut out, schema.arity() as u32);
                for a in schema.attrs() {
                    put_bytes(&mut out, a.name.as_bytes());
                    encode_type(&mut out, a.ty);
                }
            }
            LogRecord::Insert { rel, row, values } => {
                out.push(1);
                put_u32(&mut out, *rel);
                put_u64(&mut out, *row);
                put_u32(&mut out, values.len() as u32);
                for v in values {
                    encode_value(&mut out, v)?;
                }
            }
            LogRecord::Update { rel, row, attr, value, txn } => {
                out.push(2);
                put_u32(&mut out, *rel);
                put_u64(&mut out, *row);
                out.extend_from_slice(&attr.to_le_bytes());
                put_u64(&mut out, *txn);
                encode_value(&mut out, value)?;
            }
            LogRecord::Commit { txn } => {
                out.push(3);
                put_u64(&mut out, *txn);
            }
        }
        Ok(out)
    }

    /// Decode a payload produced by [`LogRecord::encode`].
    pub fn decode(payload: &[u8]) -> Result<LogRecord> {
        let mut c = Cursor { data: payload, pos: 0 };
        let tag = c.take(1)?[0];
        Ok(match tag {
            0 => {
                let rel = c.u32()?;
                let n = c.u32()? as usize;
                let mut attrs = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = String::from_utf8_lossy(c.bytes()?).into_owned();
                    let ty = decode_type(&mut c)?;
                    attrs.push(Attribute::new(name, ty));
                }
                LogRecord::CreateRelation { rel, schema: Schema::new(attrs) }
            }
            1 => {
                let rel = c.u32()?;
                let row = c.u64()?;
                let n = c.u32()? as usize;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(decode_value(&mut c)?);
                }
                LogRecord::Insert { rel, row, values }
            }
            2 => {
                let rel = c.u32()?;
                let row = c.u64()?;
                let attr = u16::from_le_bytes(c.take(2)?.try_into().unwrap());
                let txn = c.u64()?;
                let value = decode_value(&mut c)?;
                LogRecord::Update { rel, row, attr, value, txn }
            }
            3 => LogRecord::Commit { txn: c.u64()? },
            t => return Err(Error::Internal(format!("unknown log tag {t}"))),
        })
    }
}

// ---------------------------------------------------------------------
// Storage backends
// ---------------------------------------------------------------------

/// Append-only byte storage behind the log.
///
/// `storage_len`/`truncate_to` exist so the log can *repair* a torn append
/// before retrying it: snapshot the length, and on a failed append cut the
/// storage back to it, discarding any partial frame the fault left behind.
pub trait LogStorage: Send {
    fn append(&mut self, bytes: &[u8]) -> Result<()>;
    fn read_all(&mut self) -> Result<Vec<u8>>;
    /// Current storage length in bytes.
    fn storage_len(&mut self) -> Result<u64>;
    /// Discard everything past `len` bytes.
    fn truncate_to(&mut self, len: u64) -> Result<()>;
}

/// In-memory storage (tests and simulations).
#[derive(Debug, Default)]
pub struct MemStorage {
    data: Vec<u8>,
}

impl MemStorage {
    pub fn new() -> Self {
        Self::default()
    }

    /// Storage pre-loaded with raw log bytes (replay/truncation tests,
    /// snapshots shipped from elsewhere).
    pub fn from_bytes(data: Vec<u8>) -> Self {
        MemStorage { data }
    }

    /// Simulate a crash that tears the last `n` bytes off the log tail.
    pub fn tear_tail(&mut self, n: usize) {
        let keep = self.data.len().saturating_sub(n);
        self.data.truncate(keep);
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl LogStorage for MemStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.data.extend_from_slice(bytes);
        Ok(())
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        Ok(self.data.clone())
    }

    fn storage_len(&mut self) -> Result<u64> {
        Ok(self.data.len() as u64)
    }

    fn truncate_to(&mut self, len: u64) -> Result<()> {
        self.data.truncate(len as usize);
        Ok(())
    }
}

/// A real append-only file.
#[derive(Debug)]
pub struct FileStorage {
    file: std::fs::File,
}

impl FileStorage {
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)
            .map_err(|e| Error::Internal(format!("open log: {e}")))?;
        Ok(FileStorage { file })
    }
}

impl LogStorage for FileStorage {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.file
            .write_all(bytes)
            .and_then(|_| self.file.sync_data())
            .map_err(|e| Error::Internal(format!("append log: {e}")))
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        self.file
            .seek(SeekFrom::Start(0))
            .and_then(|_| self.file.read_to_end(&mut out))
            .map_err(|e| Error::Internal(format!("read log: {e}")))?;
        Ok(out)
    }

    fn storage_len(&mut self) -> Result<u64> {
        self.file.metadata().map(|m| m.len()).map_err(|e| Error::Internal(format!("stat log: {e}")))
    }

    fn truncate_to(&mut self, len: u64) -> Result<()> {
        self.file
            .set_len(len)
            .and_then(|_| self.file.sync_data())
            .map_err(|e| Error::Internal(format!("truncate log: {e}")))
    }
}

// ---------------------------------------------------------------------
// The log
// ---------------------------------------------------------------------

/// A write-ahead log over any [`LogStorage`].
///
/// Appends are retried on [transient](Error::is_transient) storage faults
/// under a [`RetryPolicy`]; before each retry, any torn prefix the failed
/// append left behind is truncated away so retries never stack garbage
/// mid-log. Backoff is virtual time, charged to the configured
/// [`BackoffClock`] (a device cost ledger in the simulations).
pub struct Wal<S: LogStorage> {
    storage: Mutex<S>,
    retry: RetryPolicy,
    clock: Option<Arc<dyn BackoffClock + Send + Sync>>,
}

impl<S: LogStorage> Wal<S> {
    pub fn new(storage: S) -> Self {
        Self::with_retry_policy(storage, RetryPolicy::default(), None)
    }

    /// A log with an explicit retry budget and backoff clock.
    pub fn with_retry_policy(
        storage: S,
        retry: RetryPolicy,
        clock: Option<Arc<dyn BackoffClock + Send + Sync>>,
    ) -> Self {
        Wal { storage: Mutex::new(storage), retry, clock }
    }

    /// Append one record (framed + checksummed), durably.
    ///
    /// On a transient storage fault, truncates any partial frame back off
    /// the log and retries under the configured policy.
    pub fn log(&self, record: &LogRecord) -> Result<()> {
        let mut span = obs::span("wal", "wal.append");
        let payload = record.encode()?;
        let mut frame = Vec::with_capacity(8 + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        if span.is_recording() {
            span.arg("bytes", frame.len());
        }
        obs::metrics().counter("wal.appends").inc();
        let mut storage = self.storage.lock();
        let start = storage.storage_len()?;
        let clock: &dyn BackoffClock = match &self.clock {
            Some(c) => c.as_ref(),
            None => &NoClock,
        };
        with_retry(&self.retry, &clock, || match storage.append(&frame) {
            Ok(()) => Ok(()),
            Err(e) => {
                // Repair: cut any torn prefix so a retry starts clean.
                if storage.storage_len()? > start {
                    storage.truncate_to(start)?;
                }
                Err(e)
            }
        })
    }

    /// Replay every intact record in order. Stops (without error) at a torn
    /// or corrupt tail — the crash-recovery contract.
    pub fn replay(&self, mut apply: impl FnMut(LogRecord) -> Result<()>) -> Result<ReplayReport> {
        let mut span = obs::span("wal", "wal.replay");
        let data = self.storage.lock().read_all()?;
        let mut pos = 0usize;
        let mut report = ReplayReport::default();
        while pos + 8 <= data.len() {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let end = match start.checked_add(len) {
                Some(e) if e <= data.len() => e,
                _ => {
                    report.torn_tail = true;
                    break;
                }
            };
            let payload = &data[start..end];
            if crc32(payload) != crc {
                report.torn_tail = true;
                break;
            }
            apply(LogRecord::decode(payload)?)?;
            report.records += 1;
            pos = end;
        }
        // Fewer than 8 trailing bytes can't even hold a frame header —
        // that's a torn tail too, not clean EOF.
        if pos < data.len() {
            report.torn_tail = true;
        }
        if span.is_recording() {
            span.arg("records", report.records);
            span.arg("torn_tail", report.torn_tail);
        }
        obs::metrics().counter("wal.replays").inc();
        Ok(report)
    }

    /// Access the underlying storage (e.g. to tear the tail in tests).
    pub fn storage(&self) -> &Mutex<S> {
        &self.storage
    }
}

/// Object-safe logging facade, so engines can hold `Arc<dyn WalSink>`
/// without becoming generic over the storage backend.
pub trait WalSink: Send + Sync {
    fn log(&self, record: &LogRecord) -> Result<()>;
}

impl<S: LogStorage> WalSink for Wal<S> {
    fn log(&self, record: &LogRecord) -> Result<()> {
        Wal::log(self, record)
    }
}

/// Outcome of a replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// Intact records applied.
    pub records: u64,
    /// Whether a torn/corrupt tail was detected (and skipped).
    pub torn_tail: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<LogRecord> {
        let schema = Schema::of(&[("k", DataType::Int64), ("t", DataType::Text(5))]);
        vec![
            LogRecord::CreateRelation { rel: 0, schema },
            LogRecord::Insert {
                rel: 0,
                row: 0,
                values: vec![Value::Int64(7), Value::Text("abc".into())],
            },
            LogRecord::Update { rel: 0, row: 0, attr: 0, value: Value::Int64(-1), txn: 42 },
            LogRecord::Commit { txn: 42 },
        ]
    }

    #[test]
    fn records_roundtrip() {
        for rec in sample_records() {
            let payload = rec.encode().unwrap();
            assert_eq!(LogRecord::decode(&payload).unwrap(), rec);
        }
    }

    #[test]
    fn crc32_known_vector() {
        // "123456789" → 0xCBF43926 (the classic check value).
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn log_and_replay_in_order() {
        let wal = Wal::new(MemStorage::new());
        for rec in sample_records() {
            wal.log(&rec).unwrap();
        }
        let mut seen = Vec::new();
        let report = wal
            .replay(|r| {
                seen.push(r);
                Ok(())
            })
            .unwrap();
        assert_eq!(report.records, 4);
        assert!(!report.torn_tail);
        assert_eq!(seen, sample_records());
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let wal = Wal::new(MemStorage::new());
        for rec in sample_records() {
            wal.log(&rec).unwrap();
        }
        wal.storage().lock().tear_tail(3); // rip into the last frame
        let mut seen = 0;
        let report = wal
            .replay(|_| {
                seen += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(report.records, 3);
        assert!(report.torn_tail);
        assert_eq!(seen, 3);
    }

    #[test]
    fn corrupt_payload_detected_by_crc() {
        let wal = Wal::new(MemStorage::new());
        wal.log(&LogRecord::Commit { txn: 1 }).unwrap();
        wal.log(&LogRecord::Commit { txn: 2 }).unwrap();
        {
            let mut st = wal.storage().lock();
            // Flip a byte inside the second frame's payload.
            let n = st.len();
            st.data[n - 1] ^= 0xFF;
        }
        let report = wal.replay(|_| Ok(())).unwrap();
        assert_eq!(report.records, 1);
        assert!(report.torn_tail);
    }

    #[test]
    fn header_fragment_is_a_torn_tail() {
        let wal = Wal::new(MemStorage::new());
        wal.log(&LogRecord::Commit { txn: 1 }).unwrap();
        // A crash mid-header leaves fewer than 8 stray bytes.
        wal.storage().lock().data.extend_from_slice(&[1, 2, 3]);
        let report = wal.replay(|_| Ok(())).unwrap();
        assert_eq!(report.records, 1);
        assert!(report.torn_tail, "stray <8-byte tail must be flagged");
    }

    /// Storage that fails (optionally tearing a prefix in) the first N
    /// appends, then behaves.
    struct FlakyStorage {
        inner: MemStorage,
        failures_left: u32,
        tear: bool,
    }

    impl LogStorage for FlakyStorage {
        fn append(&mut self, bytes: &[u8]) -> Result<()> {
            if self.failures_left > 0 {
                self.failures_left -= 1;
                if self.tear {
                    self.inner.append(&bytes[..bytes.len() / 2])?;
                }
                return Err(Error::Transient { site: "test", fault: "flake" });
            }
            self.inner.append(bytes)
        }

        fn read_all(&mut self) -> Result<Vec<u8>> {
            self.inner.read_all()
        }

        fn storage_len(&mut self) -> Result<u64> {
            self.inner.storage_len()
        }

        fn truncate_to(&mut self, len: u64) -> Result<()> {
            self.inner.truncate_to(len)
        }
    }

    #[test]
    fn torn_appends_are_repaired_and_retried() {
        let wal = Wal::new(FlakyStorage { inner: MemStorage::new(), failures_left: 2, tear: true });
        for rec in sample_records() {
            wal.log(&rec).unwrap();
        }
        let mut seen = Vec::new();
        let report = wal
            .replay(|r| {
                seen.push(r);
                Ok(())
            })
            .unwrap();
        assert_eq!(report.records, 4, "torn prefixes must not survive the retry");
        assert!(!report.torn_tail);
        assert_eq!(seen, sample_records());
    }

    #[test]
    fn retry_budget_exhaustion_leaves_clean_log() {
        let wal = Wal::new(FlakyStorage {
            inner: MemStorage::new(),
            failures_left: 100, // more than any budget
            tear: true,
        });
        wal.log(&LogRecord::Commit { txn: 7 }).unwrap_err();
        // The failed append must not have left garbage behind.
        let report = wal.replay(|_| Ok(())).unwrap();
        assert_eq!(report.records, 0);
        assert!(!report.torn_tail);
    }

    #[test]
    fn file_storage_roundtrip() {
        let path = std::env::temp_dir().join(format!("htapg-wal-test-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::new(FileStorage::open(&path).unwrap());
            for rec in sample_records() {
                wal.log(&rec).unwrap();
            }
        }
        // Re-open and replay: durability across "process restart".
        let wal = Wal::new(FileStorage::open(&path).unwrap());
        let mut seen = Vec::new();
        wal.replay(|r| {
            seen.push(r);
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, sample_records());
        std::fs::remove_file(&path).unwrap();
    }
}
