//! Cache-line cost model for physical layouts.
//!
//! Section II-B: "The chosen physical record layout has a direct impact on
//! the query execution performance, since the format affects which parts of
//! the data are co-located and loaded in advance by hardware data
//! prefetchers. If data is misplaced, the penalty is (i) a cache miss ...
//! and (ii) an unnecessary loading of additional data into the cache."
//!
//! The model estimates the number of cache lines an access pattern touches
//! under a given layout template. It is used by the layout advisor
//! ([`crate::adapt`]) to compare candidate layouts, and by the ablation
//! benches to sanity-check measured trends. It deliberately models only the
//! first-order effect the paper argues from: bytes pulled through the cache
//! hierarchy.

use crate::layout::{GroupOrder, LayoutTemplate};
use crate::schema::{AttrId, Schema};

/// Cache geometry of the host platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheSpec {
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Approximate cost (ns) of a line miss to main memory.
    pub miss_ns: f64,
    /// Approximate cost (ns) of a line that the prefetcher hides
    /// (sequential access).
    pub sequential_line_ns: f64,
}

impl Default for CacheSpec {
    /// Defaults modeled on the paper's host (i7-6700HQ): 64 B lines,
    /// ~80 ns random miss, ~4 ns per sequentially streamed line
    /// (~16 GB/s effective).
    fn default() -> Self {
        CacheSpec { line_bytes: 64, miss_ns: 80.0, sequential_line_ns: 4.0 }
    }
}

/// Width of the storage unit that co-locates `attr` in a template group.
fn group_stride(schema: &Schema, template: &LayoutTemplate, attr: AttrId) -> (usize, usize) {
    // Returns (stride bytes between consecutive values of attr,
    //          useful bytes of attr per stride).
    for g in &template.groups {
        if !g.attrs.contains(&attr) {
            continue;
        }
        let attr_w = schema.attr(attr).map(|a| a.ty.width()).unwrap_or(8);
        return match g.order {
            GroupOrder::ThinPerAttr => (attr_w, attr_w),
            GroupOrder::Dsm => (attr_w, attr_w),
            GroupOrder::Nsm => {
                let group_w: usize = g
                    .attrs
                    .iter()
                    .map(|&a| schema.attr(a).map(|x| x.ty.width()).unwrap_or(8))
                    .sum();
                (group_w, attr_w)
            }
        };
    }
    (schema.tuple_width(), 8)
}

/// Estimated cache lines touched by a full attribute-centric scan of `attr`
/// over `rows` rows.
pub fn scan_lines(
    schema: &Schema,
    template: &LayoutTemplate,
    attr: AttrId,
    rows: u64,
    cache: &CacheSpec,
) -> u64 {
    let (stride, _useful) = group_stride(schema, template, attr);
    // Sequential walk over `rows * stride` bytes; each line holds
    // line_bytes / stride values when stride <= line, else one value per
    // `ceil(stride / line)` lines but only the line containing the value is
    // needed when stride > line (hardware still fetches whole lines).
    let bytes = rows.saturating_mul(stride as u64);
    let line = cache.line_bytes as u64;
    if stride <= cache.line_bytes {
        bytes.div_ceil(line)
    } else {
        // One touched line per value (the rest of the tuple is skipped).
        rows
    }
}

/// Estimated nanoseconds for an attribute-centric scan (prefetch-friendly).
pub fn scan_ns(
    schema: &Schema,
    template: &LayoutTemplate,
    attr: AttrId,
    rows: u64,
    cache: &CacheSpec,
) -> f64 {
    let lines = scan_lines(schema, template, attr, rows, cache);
    let (stride, _) = group_stride(schema, template, attr);
    if stride <= cache.line_bytes {
        lines as f64 * cache.sequential_line_ns
    } else {
        // Strided access defeats the prefetcher once the stride exceeds a
        // line: charge miss latency (bounded below by streaming cost).
        lines as f64 * cache.miss_ns.max(cache.sequential_line_ns)
    }
}

/// Estimated cache lines touched materializing `attrs` of one random record.
pub fn record_lines(
    schema: &Schema,
    template: &LayoutTemplate,
    attrs: &[AttrId],
    cache: &CacheSpec,
) -> u64 {
    // Under NSM-ish grouping, attributes of the same group share lines;
    // under column layouts each attribute is its own random access.
    let mut lines = 0u64;
    for g in &template.groups {
        let touched: Vec<AttrId> = g.attrs.iter().copied().filter(|a| attrs.contains(a)).collect();
        if touched.is_empty() {
            continue;
        }
        match g.order {
            GroupOrder::Nsm => {
                // One tuplet region: contiguous bytes of the group.
                let group_w: usize = g
                    .attrs
                    .iter()
                    .map(|&a| schema.attr(a).map(|x| x.ty.width()).unwrap_or(8))
                    .sum();
                lines += group_w.div_ceil(cache.line_bytes) as u64;
            }
            GroupOrder::Dsm | GroupOrder::ThinPerAttr => {
                // One random line per touched attribute (separate column
                // locations).
                lines += touched.len() as u64;
            }
        }
    }
    lines.max(1)
}

/// Estimated nanoseconds to materialize `attrs` of one random record
/// (random misses; no prefetch help).
pub fn record_ns(
    schema: &Schema,
    template: &LayoutTemplate,
    attrs: &[AttrId],
    cache: &CacheSpec,
) -> f64 {
    record_lines(schema, template, attrs, cache) as f64 * cache.miss_ns
}

/// Expected cost of a workload mix, used by the advisor to rank templates.
///
/// `scan_weight[a]` — relative frequency of full scans of attribute `a`;
/// `record_weight` — relative frequency of full-record point reads;
/// `rows` — current table size.
pub fn workload_ns(
    schema: &Schema,
    template: &LayoutTemplate,
    scan_weight: &[f64],
    record_weight: f64,
    rows: u64,
    cache: &CacheSpec,
) -> f64 {
    let (scan, record) =
        workload_ns_split(schema, template, scan_weight, record_weight, rows, cache);
    scan + record
}

/// [`workload_ns`] with the scan and point-read contributions kept
/// apart, so callers (the calibrated advisor) can scale each half by an
/// independently learned correction factor.
pub fn workload_ns_split(
    schema: &Schema,
    template: &LayoutTemplate,
    scan_weight: &[f64],
    record_weight: f64,
    rows: u64,
    cache: &CacheSpec,
) -> (f64, f64) {
    let mut scan_total = 0.0;
    for (a, w) in scan_weight.iter().enumerate() {
        if *w > 0.0 {
            scan_total += w * scan_ns(schema, template, a as AttrId, rows, cache);
        }
    }
    let mut record_total = 0.0;
    if record_weight > 0.0 {
        let all: Vec<AttrId> = schema.attr_ids().collect();
        record_total = record_weight * record_ns(schema, template, &all, cache);
    }
    (scan_total, record_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn wide_schema() -> Schema {
        // 96-byte, 21-field record like the paper's customer table.
        let mut attrs = Vec::new();
        attrs.push(("pk", DataType::Int64));
        for _ in 0..20 {
            attrs.push(("f", DataType::Int32));
        }
        Schema::new(attrs.into_iter().map(|(n, t)| crate::schema::Attribute::new(n, t)).collect())
    }

    #[test]
    fn dsm_scans_fewer_lines_than_nsm() {
        let s = wide_schema();
        let cache = CacheSpec::default();
        let rows = 1_000_000;
        let nsm = scan_lines(&s, &LayoutTemplate::nsm(&s), 1, rows, &cache);
        let dsm = scan_lines(&s, &LayoutTemplate::dsm_emulated(&s), 1, rows, &cache);
        // 88-byte tuple vs 4-byte column: at least an order of magnitude.
        assert!(nsm > dsm * 10, "nsm={nsm} dsm={dsm}");
    }

    #[test]
    fn nsm_materializes_records_in_fewer_lines() {
        let s = wide_schema();
        let cache = CacheSpec::default();
        let all: Vec<AttrId> = s.attr_ids().collect();
        let nsm = record_lines(&s, &LayoutTemplate::nsm(&s), &all, &cache);
        let dsm = record_lines(&s, &LayoutTemplate::dsm_emulated(&s), &all, &cache);
        assert!(nsm < dsm, "nsm={nsm} dsm={dsm}");
        // 88-byte tuple spans 2 lines; 21 columns are 21 random lines.
        assert_eq!(nsm, 2);
        assert_eq!(dsm, 21);
    }

    #[test]
    fn workload_mix_crosses_over() {
        let s = wide_schema();
        let cache = CacheSpec::default();
        let rows = 100_000;
        let nsm = LayoutTemplate::nsm(&s);
        let dsm = LayoutTemplate::dsm_emulated(&s);
        let mut scan_w = vec![0.0; s.arity()];
        scan_w[1] = 1.0;
        // Pure scans: DSM wins.
        assert!(
            workload_ns(&s, &dsm, &scan_w, 0.0, rows, &cache)
                < workload_ns(&s, &nsm, &scan_w, 0.0, rows, &cache)
        );
        // Pure point reads: NSM wins.
        let zero = vec![0.0; s.arity()];
        assert!(
            workload_ns(&s, &nsm, &zero, 1.0, rows, &cache)
                < workload_ns(&s, &dsm, &zero, 1.0, rows, &cache)
        );
    }

    #[test]
    fn strided_wide_tuples_touch_one_line_per_row() {
        let s = Schema::of(&[("a", DataType::Int64), ("pad", DataType::Text(120))]);
        let cache = CacheSpec::default();
        // 128-byte tuples: scanning `a` under NSM touches one line per row.
        assert_eq!(scan_lines(&s, &LayoutTemplate::nsm(&s), 0, 1000, &cache), 1000);
    }
}
