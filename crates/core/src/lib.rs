//! # htapg-core
//!
//! Core storage-engine primitives for the `htapg` workspace — a
//! reproduction of *Pinnecke et al., "Are Databases Fit for Hybrid Workloads
//! on GPUs? A Storage Engine's Perspective", ICDE 2017*.
//!
//! The paper's terminology (Section III, Figure 3) is realized directly:
//!
//! * [`types`] / [`schema`] — fixed-width typed values and relation schemas;
//! * [`fragment`] — fat/thin fragments with NSM, DSM, and direct
//!   linearization;
//! * [`layout`] — layouts built from declarative templates (vertical groups
//!   × horizontal chunks), with taxonomy classification derived from the
//!   template;
//! * [`scheme`] / [`relation`] — multi-layout relations with replication- or
//!   delegation-based fragment schemes;
//! * [`compress`] — column codecs (RLE, dictionary, frame-of-reference) for
//!   cold/read-optimized fragments (L-Store base pages, HyPer compaction);
//! * [`index`] — B+-tree and hash indexes for record-centric access;
//! * [`txn`] — an MVCC transaction manager (snapshot isolation,
//!   first-updater-wins) for the HTAP side;
//! * [`costmodel`] — the cache-line cost model behind layout advice;
//! * [`calibrate`] — online EWMA calibration of the planner's cost
//!   estimates from observed virtual-time residuals;
//! * [`adapt`] — workload tracking and the layout advisor that makes engines
//!   *responsive*;
//! * [`wal`] — write-ahead logging (framed, checksummed, torn-tail-safe)
//!   over in-memory or file storage;
//! * [`prng`] / [`sync`] / [`retry`] — offline-friendly utilities: a
//!   deterministic SplitMix64 generator (seeds honor `HTAPG_SEED`), std-sync
//!   wrappers with guard-returning lock APIs, and bounded retry with
//!   virtual-time backoff for transient substrate faults;
//! * [`obs`] — virtual-time span tracing, metrics registry, Chrome-trace
//!   export, and EXPLAIN cost breakdowns (deterministic under
//!   `HTAPG_SEED`);
//! * [`engine`] — the common [`engine::StorageEngine`] API all surveyed
//!   engine archetypes in `htapg-engines` implement.

pub mod adapt;
pub mod calibrate;
pub mod compress;
pub mod costmodel;
pub mod engine;
pub mod error;
pub mod fragment;
pub mod index;
pub mod layout;
pub mod obs;
pub mod plan;
pub mod prng;
pub mod relation;
pub mod retry;
pub mod schema;
pub mod scheme;
pub mod sync;
pub mod txn;
pub mod types;
pub mod wal;

pub use error::{Error, Result};
pub use fragment::{ColumnView, Fragment, FragmentSpec, Linearization, Location};
pub use layout::{GroupOrder, Layout, LayoutTemplate, VerticalGroup};
pub use plan::{
    LogicalPlan, NetCostProfile, PhysicalPlan, Route, ScanStrategy, ShardEvidence,
    ShardPlanEvidence, Sharding, ShardingKind,
};
pub use relation::Relation;
pub use schema::{AttrId, Attribute, Record, RelationId, RowId, Schema};
pub use scheme::{AccessHint, DelegationPolicy, DelegationRule, Scheme};
pub use types::{DataType, Value};
