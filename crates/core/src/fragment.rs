//! Fragments and tuplets — the paper's central physical concepts.
//!
//! "A layout is a complete relation divided into a set of possibly
//! overlapping fragments. A fragment spans a 'gapless' region of data in a
//! relation. The per-tuple portion that falls inside a given fragment is
//! called a tuplet." (Section III)
//!
//! A fragment is *fat* iff it contains at least two tuplets and at least two
//! attributes; fat fragments are two-dimensional and must be *linearized*
//! with NSM or DSM. A *thin* fragment is one-dimensional and stored
//! *directly* (Figure 3).

use crate::error::{Error, Result};
use crate::schema::{AttrId, RowId, Schema};
use crate::types::Value;

/// How a (fat) fragment serializes its two-dimensional region into linear
/// memory, or `Direct` for thin fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Linearization {
    /// N-ary storage model: tuplet after tuplet.
    Nsm,
    /// Decomposed storage model: column block after column block, inside a
    /// single contiguous allocation.
    Dsm,
    /// Thin fragments only: the single dimension is stored as-is.
    Direct,
}

/// Where a fragment's bytes physically live.
///
/// Core fragments always carry their bytes in host memory; the location tag
/// records the *logical* placement used by engines (a device-resident
/// fragment is mirrored into a simulated device buffer by `htapg-device`,
/// a disk fragment is staged through `SimDisk`, a node fragment lives on a
/// `SimCluster` node).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// Host main memory.
    Host,
    /// Memory of simulated device `id`.
    Device(u32),
    /// Simulated secondary storage `id`.
    Disk(u32),
    /// Node `id` of a simulated shared-nothing cluster.
    Node(u32),
}

/// Immutable description of a fragment: which rectangle of the relation it
/// covers and how it is linearized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentSpec {
    /// First row id covered.
    pub first_row: RowId,
    /// Maximum number of rows (tuplets) this fragment can hold.
    pub capacity: u64,
    /// Covered attributes, in storage order.
    pub attrs: Vec<AttrId>,
    /// Linearization of the covered region.
    pub order: Linearization,
}

impl FragmentSpec {
    /// Structural fat/thin classification: "A fragment is fat iff it contains
    /// at least two tuplets and at least two attributes in its schema."
    pub fn is_fat(&self) -> bool {
        self.capacity >= 2 && self.attrs.len() >= 2
    }

    /// Row range covered at full capacity.
    pub fn row_range(&self) -> std::ops::Range<RowId> {
        self.first_row..self.first_row + self.capacity
    }

    fn validate(&self) -> Result<()> {
        if self.attrs.is_empty() {
            return Err(Error::InvalidLayout("fragment covers no attributes".into()));
        }
        if self.capacity == 0 {
            return Err(Error::InvalidLayout("fragment has zero capacity".into()));
        }
        let mut seen = std::collections::HashSet::new();
        for a in &self.attrs {
            if !seen.insert(*a) {
                return Err(Error::InvalidLayout(format!("attribute {a} covered twice")));
            }
        }
        match self.order {
            Linearization::Direct if self.is_fat() => Err(Error::InvalidLayout(
                "fat fragments are two-dimensional and require NSM or DSM linearization".into(),
            )),
            Linearization::Nsm | Linearization::Dsm if !self.is_fat() => Err(Error::InvalidLayout(
                "thin fragments are one-dimensional and use direct linearization".into(),
            )),
            _ => Ok(()),
        }
    }
}

/// A zero-copy view of one attribute's fields inside a fragment: base bytes
/// plus stride arithmetic. The hot path of the execution layer — threaded
/// scans partition a view by rows without going through `Value`.
#[derive(Debug, Clone, Copy)]
pub struct ColumnView<'a> {
    /// The fragment's raw bytes.
    pub data: &'a [u8],
    /// Byte offset of the field in the first row.
    pub offset: usize,
    /// Byte distance between consecutive rows' fields (== `width` when the
    /// column is contiguous, > `width` when strided through NSM tuplets).
    pub stride: usize,
    /// Field width in bytes.
    pub width: usize,
    /// Number of populated rows.
    pub rows: u64,
    /// Row id of the first populated row.
    pub first_row: RowId,
}

impl<'a> ColumnView<'a> {
    /// Whether fields are contiguous (a raw column block).
    pub fn is_contiguous(&self) -> bool {
        self.stride == self.width
    }

    /// Bytes of the field at local row index `i` (0-based within the view).
    #[inline]
    pub fn field(&self, i: usize) -> &'a [u8] {
        let off = self.offset + i * self.stride;
        &self.data[off..off + self.width]
    }

    /// Restrict the view to local rows `[from, to)`.
    pub fn slice_rows(&self, from: u64, to: u64) -> ColumnView<'a> {
        assert!(from <= to && to <= self.rows, "row slice out of range");
        ColumnView {
            data: self.data,
            offset: self.offset + from as usize * self.stride,
            stride: self.stride,
            width: self.width,
            rows: to - from,
            first_row: self.first_row + from,
        }
    }

    /// The contiguous byte block, if [`ColumnView::is_contiguous`].
    pub fn contiguous_bytes(&self) -> Option<&'a [u8]> {
        if self.is_contiguous() {
            Some(&self.data[self.offset..self.offset + self.rows as usize * self.width])
        } else {
            None
        }
    }
}

/// A materialized fragment: spec + typed addressing + raw bytes.
#[derive(Debug, Clone)]
pub struct Fragment {
    spec: FragmentSpec,
    /// Per covered attribute: byte width.
    widths: Vec<usize>,
    /// Per covered attribute: offset within an NSM tuplet of this fragment.
    nsm_offsets: Vec<usize>,
    /// Per covered attribute: start of its column block under DSM (computed
    /// with full capacity, so appends never move data).
    col_starts: Vec<usize>,
    tuplet_width: usize,
    len: u64,
    location: Location,
    data: Vec<u8>,
}

impl Fragment {
    /// Allocate a fragment for `spec` against `schema`, zero-filled, empty.
    pub fn new(schema: &Schema, spec: FragmentSpec) -> Result<Fragment> {
        Self::new_at(schema, spec, Location::Host)
    }

    /// Like [`Fragment::new`] with an explicit location tag.
    pub fn new_at(schema: &Schema, spec: FragmentSpec, location: Location) -> Result<Fragment> {
        spec.validate()?;
        let mut widths = Vec::with_capacity(spec.attrs.len());
        for &a in &spec.attrs {
            widths.push(schema.width(a)?);
        }
        let mut nsm_offsets = Vec::with_capacity(widths.len());
        let mut off = 0usize;
        for w in &widths {
            nsm_offsets.push(off);
            off += w;
        }
        let tuplet_width = off;
        let mut col_starts = Vec::with_capacity(widths.len());
        let mut cs = 0usize;
        for w in &widths {
            col_starts.push(cs);
            cs += w * spec.capacity as usize;
        }
        let data = vec![0u8; tuplet_width * spec.capacity as usize];
        Ok(Fragment { spec, widths, nsm_offsets, col_starts, tuplet_width, len: 0, location, data })
    }

    /// Rehydrate a fragment from previously serialized raw bytes (the page
    /// image a buffer manager read back from disk). `len` is the number of
    /// populated tuplets; `bytes` must be a full-capacity image as produced
    /// by [`Fragment::raw`].
    pub fn from_raw(
        schema: &Schema,
        spec: FragmentSpec,
        bytes: Vec<u8>,
        len: u64,
        location: Location,
    ) -> Result<Fragment> {
        let mut f = Fragment::new_at(schema, spec, location)?;
        if bytes.len() != f.data.len() {
            return Err(Error::Internal(format!(
                "page image of {} bytes does not match fragment capacity {}",
                bytes.len(),
                f.data.len()
            )));
        }
        if len > f.spec.capacity {
            return Err(Error::Internal("page image len exceeds capacity".into()));
        }
        f.data = bytes;
        f.len = len;
        Ok(f)
    }

    pub fn spec(&self) -> &FragmentSpec {
        &self.spec
    }

    pub fn location(&self) -> Location {
        self.location
    }

    pub fn set_location(&mut self, loc: Location) {
        self.location = loc;
    }

    /// Number of tuplets currently stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the fragment is at capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.spec.capacity
    }

    /// Width of one tuplet of this fragment, in bytes.
    pub fn tuplet_width(&self) -> usize {
        self.tuplet_width
    }

    /// Bytes currently in use (len × tuplet width).
    pub fn used_bytes(&self) -> usize {
        self.len as usize * self.tuplet_width
    }

    /// Row range currently populated.
    pub fn present_rows(&self) -> std::ops::Range<RowId> {
        self.spec.first_row..self.spec.first_row + self.len
    }

    /// Does this fragment cover `(row, attr)` among *present* rows?
    pub fn contains(&self, row: RowId, attr: AttrId) -> bool {
        self.present_rows().contains(&row) && self.spec.attrs.contains(&attr)
    }

    /// Does this fragment's region cover `attr` at all?
    pub fn covers_attr(&self, attr: AttrId) -> bool {
        self.spec.attrs.contains(&attr)
    }

    fn attr_index(&self, attr: AttrId) -> Result<usize> {
        self.spec.attrs.iter().position(|&a| a == attr).ok_or(Error::UnknownAttribute(attr))
    }

    /// Byte offset of field `(row, attr)` inside `self.data`.
    ///
    /// This is the linearization function of Figure 3: NSM places tuplets
    /// sequentially, DSM places column blocks sequentially. Thin (direct)
    /// fragments degenerate to the same arithmetic in either view.
    fn field_offset(&self, row: RowId, idx: usize) -> usize {
        let r = (row - self.spec.first_row) as usize;
        match self.spec.order {
            Linearization::Nsm => r * self.tuplet_width + self.nsm_offsets[idx],
            Linearization::Dsm => self.col_starts[idx] + r * self.widths[idx],
            // A thin fragment is one-dimensional: either one attribute
            // (column vector — DSM arithmetic) or one tuplet (row vector —
            // NSM arithmetic). Both formulas agree in both cases.
            Linearization::Direct => self.col_starts[idx] + r * self.widths[idx],
        }
    }

    fn check_row(&self, row: RowId) -> Result<()> {
        if !self.present_rows().contains(&row) {
            return Err(Error::UnknownRow(row));
        }
        Ok(())
    }

    /// Append one tuplet (values for covered attributes, in spec order).
    ///
    /// Returns the row id assigned.
    pub fn append(&mut self, schema: &Schema, values: &[Value]) -> Result<RowId> {
        if values.len() != self.spec.attrs.len() {
            return Err(Error::Arity { expected: self.spec.attrs.len(), got: values.len() });
        }
        if self.is_full() {
            return Err(Error::InvalidLayout("fragment is full".into()));
        }
        let row = self.spec.first_row + self.len;
        self.len += 1;
        for (idx, v) in values.iter().enumerate() {
            let ty = schema.ty(self.spec.attrs[idx])?;
            let off = self.field_offset(row, idx);
            let w = self.widths[idx];
            v.encode_into(ty, &mut self.data[off..off + w])?;
        }
        Ok(row)
    }

    /// Read the field `(row, attr)`.
    pub fn read_value(&self, schema: &Schema, row: RowId, attr: AttrId) -> Result<Value> {
        self.check_row(row)?;
        let idx = self.attr_index(attr)?;
        let ty = schema.ty(attr)?;
        let off = self.field_offset(row, idx);
        Ok(Value::decode(ty, &self.data[off..off + self.widths[idx]]))
    }

    /// Overwrite the field `(row, attr)`.
    pub fn write_value(
        &mut self,
        schema: &Schema,
        row: RowId,
        attr: AttrId,
        v: &Value,
    ) -> Result<()> {
        self.check_row(row)?;
        let idx = self.attr_index(attr)?;
        let ty = schema.ty(attr)?;
        let off = self.field_offset(row, idx);
        let w = self.widths[idx];
        v.encode_into(ty, &mut self.data[off..off + w])
    }

    /// Read the whole tuplet at `row` (values in spec attribute order).
    pub fn read_tuplet(&self, schema: &Schema, row: RowId) -> Result<Vec<Value>> {
        self.check_row(row)?;
        let mut out = Vec::with_capacity(self.spec.attrs.len());
        for (idx, &a) in self.spec.attrs.iter().enumerate() {
            let ty = schema.ty(a)?;
            let off = self.field_offset(row, idx);
            out.push(Value::decode(ty, &self.data[off..off + self.widths[idx]]));
        }
        Ok(out)
    }

    /// Contiguous bytes of `attr`'s column, if this fragment stores the
    /// column contiguously (DSM fat fragments and thin column fragments).
    ///
    /// This is the fast path attribute-centric scans use; NSM fragments
    /// return `None` and force strided access — exactly the cache behaviour
    /// the paper's Figure 2 measures.
    pub fn column_bytes(&self, attr: AttrId) -> Option<&[u8]> {
        let idx = self.attr_index(attr).ok()?;
        match self.spec.order {
            Linearization::Nsm if self.spec.attrs.len() > 1 => None,
            _ => {
                let start = self.col_starts[idx];
                let bytes = self.widths[idx] * self.len as usize;
                Some(&self.data[start..start + bytes])
            }
        }
    }

    /// Zero-copy view of `attr`'s fields in this fragment.
    pub fn column_view(&self, attr: AttrId) -> Result<ColumnView<'_>> {
        let idx = self.attr_index(attr)?;
        let w = self.widths[idx];
        let (offset, stride) = match self.spec.order {
            Linearization::Nsm => (self.nsm_offsets[idx], self.tuplet_width),
            Linearization::Dsm | Linearization::Direct => (self.col_starts[idx], w),
        };
        Ok(ColumnView {
            data: &self.data,
            offset,
            stride,
            width: w,
            rows: self.len,
            first_row: self.spec.first_row,
        })
    }

    /// All raw bytes currently used by this fragment (for transfers).
    pub fn raw(&self) -> &[u8] {
        &self.data
    }

    /// The full linearized byte stream in storage order, truncated to the
    /// populated region — the exact byte sequences shown in Figure 3.
    pub fn linearized_bytes(&self) -> Vec<u8> {
        match self.spec.order {
            Linearization::Nsm => self.data[..self.used_bytes()].to_vec(),
            Linearization::Dsm | Linearization::Direct => {
                let mut out = Vec::with_capacity(self.used_bytes());
                for (idx, w) in self.widths.iter().enumerate() {
                    let start = self.col_starts[idx];
                    out.extend_from_slice(&self.data[start..start + w * self.len as usize]);
                }
                out
            }
        }
    }

    /// Grow the fragment's capacity in place (amortized-O(1) appends for
    /// unchunked layouts). Present data is preserved; under DSM the column
    /// blocks are re-based bytewise.
    pub fn grow(&mut self, new_capacity: u64) {
        assert!(new_capacity >= self.spec.capacity, "grow cannot shrink");
        if new_capacity == self.spec.capacity {
            return;
        }
        match self.spec.order {
            Linearization::Nsm => {
                self.data.resize(self.tuplet_width * new_capacity as usize, 0);
            }
            Linearization::Dsm | Linearization::Direct => {
                let mut new_data = vec![0u8; self.tuplet_width * new_capacity as usize];
                let mut new_starts = Vec::with_capacity(self.widths.len());
                let mut cs = 0usize;
                for w in &self.widths {
                    new_starts.push(cs);
                    cs += w * new_capacity as usize;
                }
                for (idx, w) in self.widths.iter().enumerate() {
                    let used = w * self.len as usize;
                    let src = self.col_starts[idx];
                    let dst = new_starts[idx];
                    new_data[dst..dst + used].copy_from_slice(&self.data[src..src + used]);
                }
                self.data = new_data;
                self.col_starts = new_starts;
            }
        }
        self.spec.capacity = new_capacity;
    }

    /// Iterate the raw bytes of every present field of `attr`, in row order.
    ///
    /// This is the hot scan path: contiguous for DSM/thin fragments, strided
    /// for NSM fat fragments — reproducing the cache behaviour contrast of
    /// the paper's Figure 2 without per-field `Value` allocation.
    pub fn for_each_field(&self, attr: AttrId, mut f: impl FnMut(RowId, &[u8])) -> Result<()> {
        let idx = self.attr_index(attr)?;
        let w = self.widths[idx];
        match self.spec.order {
            Linearization::Nsm => {
                let base = self.nsm_offsets[idx];
                let stride = self.tuplet_width;
                for r in 0..self.len as usize {
                    let off = base + r * stride;
                    f(self.spec.first_row + r as u64, &self.data[off..off + w]);
                }
            }
            Linearization::Dsm | Linearization::Direct => {
                let start = self.col_starts[idx];
                for r in 0..self.len as usize {
                    let off = start + r * w;
                    f(self.spec.first_row + r as u64, &self.data[off..off + w]);
                }
            }
        }
        Ok(())
    }

    /// Re-linearize this fragment's populated region under a new order,
    /// returning a new fragment (used by responsive reorganization).
    pub fn relinearize(&self, schema: &Schema, order: Linearization) -> Result<Fragment> {
        let spec = FragmentSpec { order, ..self.spec.clone() };
        let mut out = Fragment::new_at(schema, spec, self.location)?;
        for row in self.present_rows() {
            let tuplet = self.read_tuplet(schema, row)?;
            out.append(schema, &tuplet)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::of(&[
            ("a", DataType::Int32),
            ("b", DataType::Int32),
            ("c", DataType::Int32),
            ("d", DataType::Int32),
            ("e", DataType::Int32),
        ])
    }

    fn frag(attrs: Vec<AttrId>, order: Linearization, cap: u64) -> Fragment {
        Fragment::new(&schema(), FragmentSpec { first_row: 0, capacity: cap, attrs, order })
            .unwrap()
    }

    #[test]
    fn fat_thin_classification() {
        let fat = FragmentSpec {
            first_row: 0,
            capacity: 4,
            attrs: vec![0, 1],
            order: Linearization::Nsm,
        };
        assert!(fat.is_fat());
        let thin_col = FragmentSpec {
            first_row: 0,
            capacity: 4,
            attrs: vec![0],
            order: Linearization::Direct,
        };
        assert!(!thin_col.is_fat());
        let thin_row = FragmentSpec {
            first_row: 0,
            capacity: 1,
            attrs: vec![0, 1],
            order: Linearization::Direct,
        };
        assert!(!thin_row.is_fat());
    }

    #[test]
    fn fat_requires_nsm_or_dsm() {
        let s = schema();
        let bad = FragmentSpec {
            first_row: 0,
            capacity: 4,
            attrs: vec![0, 1],
            order: Linearization::Direct,
        };
        assert!(Fragment::new(&s, bad).is_err());
        let bad2 =
            FragmentSpec { first_row: 0, capacity: 4, attrs: vec![0], order: Linearization::Nsm };
        assert!(Fragment::new(&s, bad2).is_err());
    }

    #[test]
    fn nsm_field_roundtrip_and_order() {
        let s = schema();
        let mut f = frag(vec![0, 1, 2], Linearization::Nsm, 4);
        for i in 0..4 {
            f.append(&s, &[Value::Int32(10 + i), Value::Int32(20 + i), Value::Int32(30 + i)])
                .unwrap();
        }
        assert_eq!(f.read_value(&s, 2, 1).unwrap(), Value::Int32(22));
        // NSM-Fixed (Fig. 3): a1 b1 c1 a2 b2 c2 ...
        let bytes = f.linearized_bytes();
        let ints: Vec<i32> =
            bytes.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(ints, vec![10, 20, 30, 11, 21, 31, 12, 22, 32, 13, 23, 33]);
    }

    #[test]
    fn dsm_field_roundtrip_and_order() {
        let s = schema();
        let mut f = frag(vec![0, 1, 2], Linearization::Dsm, 4);
        for i in 0..4 {
            f.append(&s, &[Value::Int32(10 + i), Value::Int32(20 + i), Value::Int32(30 + i)])
                .unwrap();
        }
        assert_eq!(f.read_value(&s, 3, 2).unwrap(), Value::Int32(33));
        // DSM-Fixed (Fig. 3): a1 a2 a3 a4 b1 b2 b3 b4 c1 c2 c3 c4
        let ints: Vec<i32> = f
            .linearized_bytes()
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(ints, vec![10, 11, 12, 13, 20, 21, 22, 23, 30, 31, 32, 33]);
    }

    #[test]
    fn thin_direct_column() {
        let s = schema();
        let mut f = frag(vec![3], Linearization::Direct, 4);
        for i in 0..4 {
            f.append(&s, &[Value::Int32(40 + i)]).unwrap();
        }
        let ints: Vec<i32> = f
            .linearized_bytes()
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        assert_eq!(ints, vec![40, 41, 42, 43]);
        assert!(f.column_bytes(3).is_some());
    }

    #[test]
    fn column_bytes_fast_path() {
        let s = schema();
        let mut nsm = frag(vec![0, 1], Linearization::Nsm, 3);
        let mut dsm = frag(vec![0, 1], Linearization::Dsm, 3);
        for i in 0..3 {
            nsm.append(&s, &[Value::Int32(i), Value::Int32(-i)]).unwrap();
            dsm.append(&s, &[Value::Int32(i), Value::Int32(-i)]).unwrap();
        }
        assert!(nsm.column_bytes(0).is_none(), "NSM fat fragments are strided");
        let col = dsm.column_bytes(1).unwrap();
        let ints: Vec<i32> =
            col.chunks_exact(4).map(|c| i32::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(ints, vec![0, -1, -2]);
    }

    #[test]
    fn updates_in_place() {
        let s = schema();
        let mut f = frag(vec![0, 1, 2], Linearization::Dsm, 2);
        f.append(&s, &[Value::Int32(1), Value::Int32(2), Value::Int32(3)]).unwrap();
        f.write_value(&s, 0, 1, &Value::Int32(99)).unwrap();
        assert_eq!(f.read_value(&s, 0, 1).unwrap(), Value::Int32(99));
        assert_eq!(
            f.read_tuplet(&s, 0).unwrap(),
            vec![Value::Int32(1), Value::Int32(99), Value::Int32(3)]
        );
    }

    #[test]
    fn bounds_errors() {
        let s = schema();
        let mut f = frag(vec![0, 1], Linearization::Nsm, 2);
        assert!(f.read_value(&s, 0, 0).is_err(), "row not yet present");
        f.append(&s, &[Value::Int32(1), Value::Int32(2)]).unwrap();
        assert!(f.read_value(&s, 0, 4).is_err(), "attr not covered");
        assert!(f.read_value(&s, 1, 0).is_err(), "row beyond len");
        f.append(&s, &[Value::Int32(3), Value::Int32(4)]).unwrap();
        assert!(f.append(&s, &[Value::Int32(5), Value::Int32(6)]).is_err(), "full");
    }

    #[test]
    fn relinearize_preserves_content() {
        let s = schema();
        let mut f = frag(vec![0, 1, 2], Linearization::Nsm, 4);
        for i in 0..3 {
            f.append(&s, &[Value::Int32(i), Value::Int32(i * 2), Value::Int32(i * 3)]).unwrap();
        }
        let g = f.relinearize(&s, Linearization::Dsm).unwrap();
        for row in 0..3u64 {
            assert_eq!(f.read_tuplet(&s, row).unwrap(), g.read_tuplet(&s, row).unwrap());
        }
        assert_ne!(f.linearized_bytes(), g.linearized_bytes());
    }

    #[test]
    fn grow_preserves_data_nsm_and_dsm() {
        let s = schema();
        for order in [Linearization::Nsm, Linearization::Dsm] {
            let mut f = frag(vec![0, 1, 2], order, 2);
            f.append(&s, &[Value::Int32(1), Value::Int32(2), Value::Int32(3)]).unwrap();
            f.append(&s, &[Value::Int32(4), Value::Int32(5), Value::Int32(6)]).unwrap();
            assert!(f.is_full());
            f.grow(8);
            assert!(!f.is_full());
            f.append(&s, &[Value::Int32(7), Value::Int32(8), Value::Int32(9)]).unwrap();
            assert_eq!(
                f.read_tuplet(&s, 0).unwrap(),
                vec![Value::Int32(1), Value::Int32(2), Value::Int32(3)]
            );
            assert_eq!(
                f.read_tuplet(&s, 2).unwrap(),
                vec![Value::Int32(7), Value::Int32(8), Value::Int32(9)]
            );
        }
    }

    #[test]
    fn for_each_field_orders_match() {
        let s = schema();
        for order in [Linearization::Nsm, Linearization::Dsm] {
            let mut f = frag(vec![0, 1], order, 4);
            for i in 0..4 {
                f.append(&s, &[Value::Int32(i), Value::Int32(100 + i)]).unwrap();
            }
            let mut seen = Vec::new();
            f.for_each_field(1, |row, bytes| {
                seen.push((row, i32::from_le_bytes(bytes.try_into().unwrap())));
            })
            .unwrap();
            assert_eq!(seen, vec![(0, 100), (1, 101), (2, 102), (3, 103)]);
        }
    }

    #[test]
    fn nonzero_first_row() {
        let s = schema();
        let mut f = Fragment::new(
            &s,
            FragmentSpec {
                first_row: 100,
                capacity: 2,
                attrs: vec![0, 1],
                order: Linearization::Dsm,
            },
        )
        .unwrap();
        let r = f.append(&s, &[Value::Int32(7), Value::Int32(8)]).unwrap();
        assert_eq!(r, 100);
        assert!(f.contains(100, 0));
        assert!(!f.contains(99, 0));
        assert_eq!(f.read_value(&s, 100, 1).unwrap(), Value::Int32(8));
    }
}
