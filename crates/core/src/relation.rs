//! Relations: schema + one or more layouts + a fragment scheme.
//!
//! A relation owns its layouts. Multi-layout relations route reads and
//! writes through their [`Scheme`]: replication keeps all layouts current
//! and picks the best layout per access pattern; delegation gives each
//! region exactly one authoritative layout.
//!
//! Under delegation, inserts seed every layout (so row ids stay aligned
//! across layouts, mirroring L-Store/Peloton's shared-tuplet references),
//! but *updates* and *reads* only touch the authoritative layout — the
//! non-authoritative copy of a delegated region is never consulted and may
//! go stale, exactly the "restricted access" the paper describes.

use crate::error::{Error, Result};
use crate::layout::{Layout, LayoutTemplate};
use crate::schema::{AttrId, Record, RowId, Schema};
use crate::scheme::{AccessHint, Scheme};
use crate::types::Value;
use htapg_taxonomy::FragmentLinearization;

/// A relation with one or more alternative layouts.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    layouts: Vec<Layout>,
    scheme: Scheme,
    rows: u64,
}

impl Relation {
    /// Single-layout relation.
    pub fn new(schema: Schema, template: LayoutTemplate) -> Result<Relation> {
        let layout = Layout::new(&schema, template)?;
        Ok(Relation { schema, layouts: vec![layout], scheme: Scheme::Single, rows: 0 })
    }

    /// Multi-layout relation with an explicit scheme.
    pub fn with_layouts(
        schema: Schema,
        templates: Vec<LayoutTemplate>,
        scheme: Scheme,
    ) -> Result<Relation> {
        if templates.is_empty() {
            return Err(Error::InvalidLayout("relation needs at least one layout".into()));
        }
        if matches!(scheme, Scheme::Single) && templates.len() != 1 {
            return Err(Error::InvalidLayout("single scheme requires exactly one layout".into()));
        }
        let mut layouts = Vec::with_capacity(templates.len());
        for t in templates {
            layouts.push(Layout::new(&schema, t)?);
        }
        Ok(Relation { schema, layouts, scheme, rows: 0 })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn scheme(&self) -> &Scheme {
        &self.scheme
    }

    /// Mutable access to the scheme — re-delegation installs a new policy
    /// here. Callers are responsible for synchronizing data into the newly
    /// authoritative layout first (see `htapg-engines`' reference engine).
    pub fn scheme_mut(&mut self) -> &mut Scheme {
        &mut self.scheme
    }

    pub fn layouts(&self) -> &[Layout] {
        &self.layouts
    }

    pub fn layouts_mut(&mut self) -> &mut [Layout] {
        &mut self.layouts
    }

    pub fn row_count(&self) -> u64 {
        self.rows
    }

    /// Append a record. Every layout receives the record so row ids stay
    /// aligned; see the module docs for delegation semantics.
    pub fn insert(&mut self, record: &Record) -> Result<RowId> {
        self.schema.check_record(record)?;
        let mut assigned = None;
        for layout in &mut self.layouts {
            let row = layout.append(&self.schema, record)?;
            match assigned {
                None => assigned = Some(row),
                Some(prev) => debug_assert_eq!(prev, row, "layouts out of sync"),
            }
        }
        self.rows += 1;
        Ok(assigned.expect("at least one layout"))
    }

    /// Pick the replication read layout for an access pattern: record-centric
    /// readers prefer row-structured layouts, attribute-centric readers
    /// prefer column-structured ones.
    fn pick_replica(&self, hint: AccessHint) -> usize {
        let score = |class: FragmentLinearization| -> i32 {
            let row_ish = matches!(
                class,
                FragmentLinearization::FatNsmFixed
                    | FragmentLinearization::ThinNsmEmulated
                    | FragmentLinearization::VariableNsmFixedPartiallyDsmEmulated
            );
            match hint {
                AccessHint::RecordCentric => {
                    if row_ish {
                        2
                    } else {
                        0
                    }
                }
                AccessHint::AttributeCentric => {
                    if row_ish {
                        0
                    } else {
                        2
                    }
                }
            }
        };
        (0..self.layouts.len())
            .max_by_key(|&i| score(self.layouts[i].template().linearization_class()))
            .unwrap_or(0)
    }

    /// The layout index that must answer `(row, attr)` reads.
    pub fn route_read(&self, row: RowId, attr: AttrId, hint: AccessHint) -> Result<usize> {
        match &self.scheme {
            Scheme::Single => Ok(0),
            Scheme::Replication => Ok(self.pick_replica(hint)),
            Scheme::Delegation(policy) => policy.route(row, attr),
        }
    }

    pub fn read_value(&self, row: RowId, attr: AttrId, hint: AccessHint) -> Result<Value> {
        let li = self.route_read(row, attr, hint)?;
        self.layouts[li].read_value(&self.schema, row, attr)
    }

    pub fn read_record(&self, row: RowId) -> Result<Record> {
        let mut out = Vec::with_capacity(self.schema.arity());
        for a in self.schema.attr_ids() {
            out.push(self.read_value(row, a, AccessHint::RecordCentric)?);
        }
        Ok(out)
    }

    /// Update one field. Replication updates every layout; delegation only
    /// the authoritative one.
    pub fn update_field(&mut self, row: RowId, attr: AttrId, v: &Value) -> Result<()> {
        match &self.scheme {
            Scheme::Single => self.layouts[0].write_value(&self.schema, row, attr, v),
            Scheme::Replication => {
                for layout in &mut self.layouts {
                    layout.write_value(&self.schema, row, attr, v)?;
                }
                Ok(())
            }
            Scheme::Delegation(policy) => {
                let li = policy.route(row, attr)?;
                self.layouts[li].write_value(&self.schema, row, attr, v)
            }
        }
    }

    /// Visit the raw bytes of every field of `attr`, row order.
    pub fn for_each_field(&self, attr: AttrId, mut f: impl FnMut(RowId, &[u8])) -> Result<()> {
        match &self.scheme {
            Scheme::Single => self.layouts[0].for_each_field(attr, f),
            Scheme::Replication => {
                let li = self.pick_replica(AccessHint::AttributeCentric);
                self.layouts[li].for_each_field(attr, f)
            }
            Scheme::Delegation(policy) => {
                // Fast path: one layout owns the whole column.
                if let Ok(li) = policy.route(0, attr) {
                    let uniform = (0..self.rows)
                        .step_by(1.max(self.rows as usize / 16))
                        .all(|r| policy.route(r, attr) == Ok(li))
                        && policy.route(self.rows.saturating_sub(1), attr) == Ok(li);
                    if uniform {
                        return self.layouts[li].for_each_field(attr, f);
                    }
                }
                // General path: route each row.
                let mut buf = Vec::new();
                for row in 0..self.rows {
                    let li = policy.route(row, attr)?;
                    let v = self.layouts[li].read_value(&self.schema, row, attr)?;
                    buf.clear();
                    let ty = self.schema.ty(attr)?;
                    buf.resize(ty.width(), 0);
                    v.encode_into(ty, &mut buf)?;
                    f(row, &buf);
                }
                Ok(())
            }
        }
    }

    /// Contiguous-column fast path; `false` when strided or routed.
    pub fn with_column_bytes(&self, attr: AttrId, f: &mut dyn FnMut(&[u8])) -> Result<bool> {
        match &self.scheme {
            Scheme::Single => self.layouts[0].with_column_bytes(attr, f),
            Scheme::Replication => {
                let li = self.pick_replica(AccessHint::AttributeCentric);
                self.layouts[li].with_column_bytes(attr, f)
            }
            Scheme::Delegation(_) => Ok(false),
        }
    }

    /// Replace layout `idx` with a rebuild under `template` (responsive
    /// reorganization).
    pub fn reorganize_layout(&mut self, idx: usize, template: LayoutTemplate) -> Result<()> {
        let layout = self
            .layouts
            .get(idx)
            .ok_or_else(|| Error::InvalidLayout(format!("no layout {idx}")))?;
        let rebuilt = layout.rebuild(&self.schema, template)?;
        self.layouts[idx] = rebuilt;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{GroupOrder, VerticalGroup};
    use crate::scheme::{DelegationPolicy, DelegationRule};
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::of(&[("k", DataType::Int64), ("v", DataType::Int64), ("t", DataType::Text(6))])
    }

    fn rec(i: i64) -> Record {
        vec![Value::Int64(i), Value::Int64(i * 7), Value::Text(format!("x{}", i % 10))]
    }

    #[test]
    fn single_layout_crud() {
        let s = schema();
        let mut r = Relation::new(s.clone(), LayoutTemplate::nsm(&s)).unwrap();
        for i in 0..20 {
            assert_eq!(r.insert(&rec(i)).unwrap(), i as u64);
        }
        assert_eq!(r.read_record(5).unwrap(), rec(5));
        r.update_field(5, 1, &Value::Int64(0)).unwrap();
        assert_eq!(r.read_value(5, 1, AccessHint::RecordCentric).unwrap(), Value::Int64(0));
    }

    #[test]
    fn replication_routes_by_hint() {
        let s = schema();
        let mut r = Relation::with_layouts(
            s.clone(),
            vec![LayoutTemplate::nsm(&s), LayoutTemplate::dsm_emulated(&s)],
            Scheme::Replication,
        )
        .unwrap();
        for i in 0..10 {
            r.insert(&rec(i)).unwrap();
        }
        // Record-centric picks the NSM layout (index 0), attribute-centric
        // the DSM-emulated one (index 1).
        assert_eq!(r.route_read(0, 0, AccessHint::RecordCentric).unwrap(), 0);
        assert_eq!(r.route_read(0, 0, AccessHint::AttributeCentric).unwrap(), 1);
        // Both replicas answer identically.
        assert_eq!(
            r.read_value(3, 1, AccessHint::RecordCentric).unwrap(),
            r.read_value(3, 1, AccessHint::AttributeCentric).unwrap()
        );
        // Updates reach both replicas.
        r.update_field(3, 1, &Value::Int64(-5)).unwrap();
        assert_eq!(r.read_value(3, 1, AccessHint::RecordCentric).unwrap(), Value::Int64(-5));
        assert_eq!(r.read_value(3, 1, AccessHint::AttributeCentric).unwrap(), Value::Int64(-5));
    }

    #[test]
    fn delegation_routes_and_isolates() {
        let s = schema();
        // Attribute 1 is owned by the column layout (1), the rest by the
        // row layout (0).
        let policy = DelegationPolicy::new(vec![
            DelegationRule { attrs: Some(vec![1]), row_from: 0, row_to: RowId::MAX, layout: 1 },
            DelegationRule { attrs: None, row_from: 0, row_to: RowId::MAX, layout: 0 },
        ]);
        let mut r = Relation::with_layouts(
            s.clone(),
            vec![LayoutTemplate::nsm(&s), LayoutTemplate::dsm_emulated(&s)],
            Scheme::Delegation(policy),
        )
        .unwrap();
        for i in 0..10 {
            r.insert(&rec(i)).unwrap();
        }
        r.update_field(4, 1, &Value::Int64(123)).unwrap();
        // The authoritative read sees the update…
        assert_eq!(r.read_value(4, 1, AccessHint::RecordCentric).unwrap(), Value::Int64(123));
        // …while the non-authoritative replica was intentionally not written
        // (the delegated region is exclusive).
        assert_eq!(
            r.layouts()[0].read_value(r.schema(), 4, 1).unwrap(),
            Value::Int64(28),
            "stale non-authoritative copy is never consulted"
        );
        assert_eq!(r.read_record(4).unwrap()[1], Value::Int64(123));
    }

    #[test]
    fn delegated_column_scan_fast_path() {
        let s = schema();
        let policy = DelegationPolicy::new(vec![
            DelegationRule { attrs: Some(vec![1]), row_from: 0, row_to: RowId::MAX, layout: 1 },
            DelegationRule { attrs: None, row_from: 0, row_to: RowId::MAX, layout: 0 },
        ]);
        let mut r = Relation::with_layouts(
            s.clone(),
            vec![LayoutTemplate::nsm(&s), LayoutTemplate::dsm_emulated(&s)],
            Scheme::Delegation(policy),
        )
        .unwrap();
        for i in 0..100 {
            r.insert(&rec(i)).unwrap();
        }
        r.update_field(50, 1, &Value::Int64(0)).unwrap();
        let mut sum = 0i64;
        r.for_each_field(1, |_, b| sum += i64::from_le_bytes(b.try_into().unwrap())).unwrap();
        let expected: i64 = (0..100).map(|i| i * 7).sum::<i64>() - 350;
        assert_eq!(sum, expected);
    }

    #[test]
    fn reorganize_layout_in_place() {
        let s = schema();
        let mut r = Relation::new(s.clone(), LayoutTemplate::nsm(&s)).unwrap();
        for i in 0..30 {
            r.insert(&rec(i)).unwrap();
        }
        r.reorganize_layout(0, LayoutTemplate::dsm_emulated(&s)).unwrap();
        assert_eq!(r.read_record(29).unwrap(), rec(29));
        let mut blocks = 0;
        assert!(r.with_column_bytes(1, &mut |_| blocks += 1).unwrap());
        assert!(blocks >= 1);
    }

    #[test]
    fn mixed_group_relation() {
        let s = schema();
        let t = LayoutTemplate::grouped(
            vec![
                VerticalGroup::new(vec![0, 2], GroupOrder::Nsm),
                VerticalGroup::new(vec![1], GroupOrder::ThinPerAttr),
            ],
            Some(8),
        );
        let mut r = Relation::new(s.clone(), t).unwrap();
        for i in 0..20 {
            r.insert(&rec(i)).unwrap();
        }
        assert_eq!(r.read_record(19).unwrap(), rec(19));
    }
}
