//! Error type shared across the `htapg` workspace.

use std::fmt;

/// Errors produced by storage engines and substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Referenced relation does not exist.
    UnknownRelation(u32),
    /// Referenced attribute is out of range for the relation's schema.
    UnknownAttribute(u16),
    /// Referenced row id does not exist (or is deleted / not visible).
    UnknownRow(u64),
    /// A value did not match the attribute's declared data type.
    TypeMismatch { expected: &'static str, got: &'static str },
    /// A record had the wrong number of fields for the schema.
    Arity { expected: usize, got: usize },
    /// A fixed-width text value exceeded its declared length.
    TextTooLong { max: usize, got: usize },
    /// A layout failed validation (coverage / overlap / capacity rules).
    InvalidLayout(String),
    /// Device memory exhausted (the "all or nothing" placement wall).
    DeviceOutOfMemory { requested: usize, free: usize },
    /// Requested device does not exist.
    UnknownDevice(u32),
    /// A transaction conflicted and was aborted (first-updater-wins).
    TxnConflict { txn: u64 },
    /// Operation on a transaction that is no longer active.
    TxnNotActive { txn: u64 },
    /// Delegation policy has no authoritative layout for a region.
    NoDelegate { row: u64, attr: u16 },
    /// A uniqueness constraint (e.g. primary key) was violated.
    DuplicateKey,
    /// An aggregate (sum / group-sum) was asked to run over a column whose
    /// type cannot feed it — e.g. summing a text column. Distinct from
    /// [`Error::TypeMismatch`]: the *stored* value matches its declared
    /// type; the declared type is simply not aggregatable.
    NonNumericAggregate { attr: u16, got: &'static str },
    /// A simulated substrate operation failed transiently (injected fault:
    /// I/O error, dropped message, failed transfer, ...). Retry-safe.
    Transient { site: &'static str, fault: &'static str },
    /// A simulated cluster node is unreachable (injected fault). Not
    /// retry-safe on the same node; callers should fail over to a replica.
    NodeUnreachable { node: u32 },
    /// Internal invariant violation; indicates a bug.
    Internal(String),
}

impl Error {
    /// Whether a bounded retry of the same operation can reasonably
    /// succeed. Used by [`crate::retry::with_retry`].
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Transient { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownRelation(id) => write!(f, "unknown relation {id}"),
            Error::UnknownAttribute(id) => write!(f, "unknown attribute {id}"),
            Error::UnknownRow(id) => write!(f, "unknown row {id}"),
            Error::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: expected {expected}, got {got}")
            }
            Error::Arity { expected, got } => {
                write!(f, "record arity mismatch: expected {expected} fields, got {got}")
            }
            Error::TextTooLong { max, got } => {
                write!(f, "text value of {got} bytes exceeds fixed width {max}")
            }
            Error::InvalidLayout(msg) => write!(f, "invalid layout: {msg}"),
            Error::DeviceOutOfMemory { requested, free } => {
                write!(f, "device out of memory: requested {requested} B, {free} B free")
            }
            Error::UnknownDevice(id) => write!(f, "unknown device {id}"),
            Error::TxnConflict { txn } => write!(f, "transaction {txn} aborted on conflict"),
            Error::TxnNotActive { txn } => write!(f, "transaction {txn} is not active"),
            Error::NoDelegate { row, attr } => {
                write!(f, "no authoritative layout delegated for row {row}, attribute {attr}")
            }
            Error::DuplicateKey => write!(f, "duplicate key"),
            Error::NonNumericAggregate { attr, got } => {
                write!(f, "aggregate over non-numeric column {attr} (type {got})")
            }
            Error::Transient { site, fault } => {
                write!(f, "transient fault at {site}: {fault}")
            }
            Error::NodeUnreachable { node } => write!(f, "node {node} unreachable"),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;
