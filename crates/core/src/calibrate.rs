//! Online cost-model calibration: closing the loop between the planner's
//! estimates and the executor's observed virtual time.
//!
//! The static router in [`crate::plan`] prices every node from first
//! principles (cache model + device profile), but first principles drift:
//! BENCH_planner.json showed `rel_err ≈ 1.0` on many (engine, op) points,
//! which means the host/device routing decision — the paper's central
//! "which island runs this op" question — was flying blind. This module
//! holds per-`(op, route)` **multiplicative correction factors** learned
//! from EXPLAIN's estimated-vs-actual residuals:
//!
//! ```text
//! ratio_t  = actual_ns / raw_estimated_ns           (clamped positive)
//! factor_t = (1 - α) · factor_{t-1} + α · ratio_t   (EWMA, first obs = ratio)
//! ```
//!
//! A factor is only *consulted* once its key has at least
//! [`CalibrationConfig::warmup`] observations — before that the planner
//! sees `1.0` and behaves exactly like the uncalibrated router, so every
//! pinned routing decision is preserved until evidence accumulates.
//! Factors are a convex combination of clamped positive ratios, so they
//! can never become `NaN`, zero, or negative, and the whole state is
//! snapshot/restore-able ([`CalibrationSnapshot`]) and deterministic under
//! `HTAPG_SEED` (observation order is the only input).
//!
//! The pieces:
//!
//! * [`CalibrationProfiles`] — the learned state, held per engine;
//! * [`bounded_rel_err`] — the noise-floored relative-error metric shared
//!   by the planner bench, the divergence test, and CI;
//! * [`Calibrated`] — a wrapper engine that replans through its own
//!   profiles (the per-*engine* dimension of the (engine, op, route) key:
//!   each engine carries its own `CalibrationProfiles` instance).

use std::collections::BTreeMap;
use std::sync::Arc;

use htapg_taxonomy::Classification;

use crate::costmodel::CacheSpec;
use crate::engine::{MaintenanceReport, StorageEngine};
use crate::error::Result;
use crate::obs;
use crate::plan::{
    self, ColumnEvidence, DeviceCostProfile, EngineCapabilities, LogicalPlan, PhysicalPlan,
    Predicate, TableEvidence,
};
use crate::schema::{AttrId, Record, RelationId, RowId, Schema};
use crate::types::Value;

/// Differences below this many virtual ns are below the cost model's
/// resolution (a kernel launch is 5 µs, a PCIe transfer latency 10 µs) and
/// cannot flip a routing decision, so the error metric does not grade
/// them. Without the floor, an 80 ns estimate against a 0 ns actual counts
/// as 100 % error — the "trivially wrong" rel_err points of ISSUE 6.
pub const NOISE_FLOOR_NS: u64 = 1_000;

/// Relative error between an estimate and an actual, bounded to `[0, 1]`
/// and floored at [`NOISE_FLOOR_NS`]: `|est - actual| / max(est, actual,
/// floor)`. Symmetric in its arguments.
pub fn bounded_rel_err(est_ns: u64, actual_ns: u64) -> f64 {
    est_ns.abs_diff(actual_ns) as f64 / est_ns.max(actual_ns).max(NOISE_FLOOR_NS) as f64
}

/// Knobs of the calibration loop (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// EWMA smoothing weight of the newest ratio.
    pub alpha: f64,
    /// Observations a key needs before its factor is consulted.
    pub warmup: u64,
    /// Replanning trigger: a warmed node whose observed cost differs from
    /// its calibrated estimate by more than this bounded relative error is
    /// *diverged*.
    pub tolerance: f64,
    /// Lower clamp on ratios and factors (keeps them strictly positive).
    pub min_factor: f64,
    /// Upper clamp on ratios and factors.
    pub max_factor: f64,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        CalibrationConfig {
            alpha: 0.5,
            warmup: 4,
            tolerance: 0.5,
            min_factor: 1e-9,
            max_factor: 1e9,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Cell {
    factor: f64,
    observations: u64,
}

/// One `(op, route)` entry of a [`CalibrationSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationEntry {
    pub op: String,
    pub route: String,
    pub factor: f64,
    pub observations: u64,
}

/// A restorable copy of the learned state, ordered by `(op, route)` — the
/// `BTreeMap` iteration order, so two identically-fed profiles snapshot to
/// byte-identical entry lists.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CalibrationSnapshot {
    pub entries: Vec<CalibrationEntry>,
}

/// Per-(op, route) EWMA correction factors for one engine.
#[derive(Debug, Default)]
pub struct CalibrationProfiles {
    config: CalibrationConfig,
    cells: crate::sync::Mutex<BTreeMap<(String, String), Cell>>,
}

impl CalibrationProfiles {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_config(config: CalibrationConfig) -> Self {
        CalibrationProfiles { config, cells: crate::sync::Mutex::new(BTreeMap::new()) }
    }

    pub fn config(&self) -> CalibrationConfig {
        self.config
    }

    /// Feed one residual: the *raw* (uncalibrated) estimate of a node
    /// against the virtual ns its execution actually charged. Keyed by the
    /// node's span name and the route that actually executed.
    pub fn observe(&self, op: &str, route: &str, raw_est_ns: u64, actual_ns: u64) {
        let ratio = (actual_ns as f64 / raw_est_ns.max(1) as f64)
            .clamp(self.config.min_factor, self.config.max_factor);
        let mut cells = self.cells.lock();
        let cell = cells
            .entry((op.to_string(), route.to_string()))
            .or_insert(Cell { factor: ratio, observations: 0 });
        if cell.observations > 0 {
            cell.factor = ((1.0 - self.config.alpha) * cell.factor + self.config.alpha * ratio)
                .clamp(self.config.min_factor, self.config.max_factor);
        }
        cell.observations += 1;
    }

    /// The correction factor the planner multiplies raw estimates by:
    /// `1.0` until the key has warmed up, the EWMA factor afterwards.
    pub fn factor(&self, op: &str, route: &str) -> f64 {
        let cells = self.cells.lock();
        match cells.get(&(op.to_string(), route.to_string())) {
            Some(c) if c.observations >= self.config.warmup => c.factor,
            _ => 1.0,
        }
    }

    /// The learned factor regardless of warm-up (for tests and reports).
    pub fn learned_factor(&self, op: &str, route: &str) -> Option<f64> {
        self.cells.lock().get(&(op.to_string(), route.to_string())).map(|c| c.factor)
    }

    /// Observation count for one key.
    pub fn observations(&self, op: &str, route: &str) -> u64 {
        self.cells.lock().get(&(op.to_string(), route.to_string())).map_or(0, |c| c.observations)
    }

    /// Whether the key has enough observations for its factor to be
    /// consulted.
    pub fn is_warmed(&self, op: &str, route: &str) -> bool {
        self.observations(op, route) >= self.config.warmup
    }

    /// Apply the (possibly unwarmed ⇒ identity) factor to a raw estimate.
    /// Truncating, saturating cast: a factor at the upper clamp times a
    /// large estimate must not wrap.
    pub fn calibrated_ns(&self, op: &str, route: &str, raw_est_ns: u64) -> u64 {
        let v = raw_est_ns as f64 * self.factor(op, route);
        if v >= u64::MAX as f64 {
            u64::MAX
        } else {
            v as u64
        }
    }

    /// The replanning trigger: the key is warmed and the observed cost
    /// falls outside the tolerance band around the calibrated estimate.
    pub fn diverged(&self, op: &str, route: &str, calibrated_est_ns: u64, actual_ns: u64) -> bool {
        self.is_warmed(op, route)
            && bounded_rel_err(calibrated_est_ns, actual_ns) > self.config.tolerance
    }

    /// Mean warmed factor of `op` over the given routes (`1.0` when none
    /// are warmed) — the residual signal the adaptivity advisor scales its
    /// cache-model predictions by.
    pub fn mean_factor(&self, op: &str, routes: &[&str]) -> f64 {
        let cells = self.cells.lock();
        let warmed: Vec<f64> = routes
            .iter()
            .filter_map(|r| cells.get(&(op.to_string(), r.to_string())))
            .filter(|c| c.observations >= self.config.warmup)
            .map(|c| c.factor)
            .collect();
        if warmed.is_empty() {
            1.0
        } else {
            warmed.iter().sum::<f64>() / warmed.len() as f64
        }
    }

    /// Number of distinct (op, route) keys observed so far.
    pub fn len(&self) -> usize {
        self.cells.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.lock().is_empty()
    }

    /// Copy out the learned state, ordered by `(op, route)`.
    pub fn snapshot(&self) -> CalibrationSnapshot {
        let cells = self.cells.lock();
        CalibrationSnapshot {
            entries: cells
                .iter()
                .map(|((op, route), c)| CalibrationEntry {
                    op: op.clone(),
                    route: route.clone(),
                    factor: c.factor,
                    observations: c.observations,
                })
                .collect(),
        }
    }

    /// Replace the learned state with a snapshot's.
    pub fn restore(&self, snapshot: &CalibrationSnapshot) {
        let mut cells = self.cells.lock();
        cells.clear();
        for e in &snapshot.entries {
            cells.insert(
                (e.op.clone(), e.route.clone()),
                Cell { factor: e.factor, observations: e.observations },
            );
        }
    }

    /// Feed every residual of a finished trace (see
    /// [`obs::TraceReport::residuals`]).
    pub fn absorb(&self, residuals: &[obs::Residual]) {
        for r in residuals {
            self.observe(&r.op, &r.route, r.raw_est_ns, r.actual_ns);
        }
    }
}

/// A calibrating wrapper around any [`StorageEngine`]: every call is
/// delegated, but [`StorageEngine::plan`] routes through this wrapper's
/// own [`CalibrationProfiles`] (and an optional device-profile override,
/// used by the route-flip tests to seed a deliberately mis-priced device).
pub struct Calibrated {
    inner: Box<dyn StorageEngine>,
    profiles: Arc<CalibrationProfiles>,
    device_override: Option<DeviceCostProfile>,
}

impl Calibrated {
    pub fn new(inner: Box<dyn StorageEngine>) -> Self {
        Self::with_config(inner, CalibrationConfig::default())
    }

    pub fn with_config(inner: Box<dyn StorageEngine>, config: CalibrationConfig) -> Self {
        Calibrated {
            inner,
            profiles: Arc::new(CalibrationProfiles::with_config(config)),
            device_override: None,
        }
    }

    /// Replace the planner's device cost profile (the inner engine's
    /// actual device behavior is untouched — that is the point: the lie
    /// shows up as residuals).
    pub fn with_device_profile(mut self, profile: DeviceCostProfile) -> Self {
        self.device_override = Some(profile);
        self
    }

    pub fn profiles(&self) -> Arc<CalibrationProfiles> {
        Arc::clone(&self.profiles)
    }

    pub fn inner(&self) -> &dyn StorageEngine {
        self.inner.as_ref()
    }
}

impl StorageEngine for Calibrated {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn classification(&self) -> Classification {
        self.inner.classification()
    }

    fn create_relation(&self, schema: Schema) -> Result<RelationId> {
        self.inner.create_relation(schema)
    }

    fn schema(&self, rel: RelationId) -> Result<Schema> {
        self.inner.schema(rel)
    }

    fn insert(&self, rel: RelationId, record: &Record) -> Result<RowId> {
        self.inner.insert(rel, record)
    }

    fn read_record(&self, rel: RelationId, row: RowId) -> Result<Record> {
        self.inner.read_record(rel, row)
    }

    fn read_field(&self, rel: RelationId, row: RowId, attr: AttrId) -> Result<Value> {
        self.inner.read_field(rel, row, attr)
    }

    fn update_field(&self, rel: RelationId, row: RowId, attr: AttrId, value: &Value) -> Result<()> {
        self.inner.update_field(rel, row, attr, value)
    }

    fn scan_column(
        &self,
        rel: RelationId,
        attr: AttrId,
        visit: &mut dyn FnMut(RowId, &Value),
    ) -> Result<()> {
        self.inner.scan_column(rel, attr, visit)
    }

    fn with_column_bytes(
        &self,
        rel: RelationId,
        attr: AttrId,
        visit: &mut dyn FnMut(&[u8]),
    ) -> Result<bool> {
        self.inner.with_column_bytes(rel, attr, visit)
    }

    fn sum_column_f64(&self, rel: RelationId, attr: AttrId) -> Result<f64> {
        self.inner.sum_column_f64(rel, attr)
    }

    fn materialize_rows(&self, rel: RelationId, rows: &[RowId]) -> Result<Vec<Record>> {
        self.inner.materialize_rows(rel, rows)
    }

    fn row_count(&self, rel: RelationId) -> Result<u64> {
        self.inner.row_count(rel)
    }

    fn maintain(&self) -> Result<MaintenanceReport> {
        self.inner.maintain()
    }

    fn capabilities(&self) -> EngineCapabilities {
        self.inner.capabilities()
    }

    fn device_cost_profile(&self) -> Option<DeviceCostProfile> {
        self.device_override.or_else(|| self.inner.device_cost_profile())
    }

    fn column_evidence(&self, rel: RelationId, attr: AttrId) -> Result<ColumnEvidence> {
        self.inner.column_evidence(rel, attr)
    }

    fn table_evidence(&self, rel: RelationId) -> Result<TableEvidence> {
        self.inner.table_evidence(rel)
    }

    fn plan(&self, logical: &LogicalPlan) -> Result<PhysicalPlan> {
        let caps = self.capabilities();
        let device = self.device_cost_profile();
        let cache = CacheSpec::default();
        plan::build_plan(
            logical,
            &plan::PlannerContext {
                caps: &caps,
                device: device.as_ref(),
                cache: &cache,
                calibration: Some(&self.profiles),
            },
            &mut |rel, attr| self.column_evidence(rel, attr),
            &mut |rel| self.table_evidence(rel),
        )
    }

    fn device_sum_column(&self, rel: RelationId, attr: AttrId) -> Result<f64> {
        self.inner.device_sum_column(rel, attr)
    }

    fn device_filter_sum(&self, rel: RelationId, attr: AttrId, pred: &Predicate) -> Result<f64> {
        self.inner.device_filter_sum(rel, attr, pred)
    }

    fn device_group_sum(
        &self,
        rel: RelationId,
        key_attr: AttrId,
        value_attr: AttrId,
    ) -> Result<Vec<(i64, f64)>> {
        self.inner.device_group_sum(rel, key_attr, value_attr)
    }

    fn trace_clock(&self) -> Option<Arc<dyn obs::VirtualClock>> {
        self.inner.trace_clock()
    }

    fn calibration(&self) -> Option<Arc<CalibrationProfiles>> {
        Some(Arc::clone(&self.profiles))
    }

    fn explain(&self, report: &obs::TraceReport) -> String {
        self.inner.explain(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_seeds_the_factor_then_ewma_tracks() {
        let p = CalibrationProfiles::new();
        p.observe("plan.scan", "inline-volcano", 1_000, 4_000);
        assert_eq!(p.learned_factor("plan.scan", "inline-volcano"), Some(4.0));
        // EWMA with α = 0.5 toward ratio 2.0: (4 + 2) / 2 = 3.
        p.observe("plan.scan", "inline-volcano", 1_000, 2_000);
        assert_eq!(p.learned_factor("plan.scan", "inline-volcano"), Some(3.0));
    }

    #[test]
    fn factor_is_identity_until_warmup() {
        let p = CalibrationProfiles::new();
        for i in 0..4 {
            assert_eq!(p.factor("plan.scan", "inline-volcano"), 1.0, "before obs {i}");
            assert!(!p.is_warmed("plan.scan", "inline-volcano"));
            p.observe("plan.scan", "inline-volcano", 1_000, 3_000);
        }
        assert!(p.is_warmed("plan.scan", "inline-volcano"));
        assert_eq!(p.factor("plan.scan", "inline-volcano"), 3.0);
        assert_eq!(p.calibrated_ns("plan.scan", "inline-volcano", 2_000), 6_000);
        // Unknown keys stay identity.
        assert_eq!(p.calibrated_ns("plan.scan", "device-pipelined", 2_000), 2_000);
    }

    #[test]
    fn factors_stay_positive_and_finite_under_extremes() {
        let p = CalibrationProfiles::new();
        for (raw, actual) in [(0u64, 0u64), (0, u64::MAX), (u64::MAX, 0), (1, 1)] {
            p.observe("op", "r", raw, actual);
            let f = p.learned_factor("op", "r").unwrap();
            assert!(f.is_finite() && f > 0.0, "raw={raw} actual={actual} factor={f}");
        }
        // Saturating calibrated estimate at the upper clamp.
        let q = CalibrationProfiles::new();
        for _ in 0..4 {
            q.observe("op", "r", 1, u64::MAX);
        }
        assert_eq!(q.calibrated_ns("op", "r", u64::MAX), u64::MAX);
    }

    #[test]
    fn bounded_rel_err_has_a_noise_floor() {
        assert_eq!(bounded_rel_err(0, 0), 0.0);
        assert_eq!(bounded_rel_err(100, 0), 0.1);
        assert_eq!(bounded_rel_err(0, 100), 0.1);
        assert_eq!(bounded_rel_err(50, 100), 0.05);
        assert_eq!(bounded_rel_err(5_000, 10_000), 0.5);
        assert!(bounded_rel_err(0, u64::MAX) <= 1.0);
    }

    #[test]
    fn divergence_requires_warmup_and_tolerance_breach() {
        let p = CalibrationProfiles::new();
        // Cold: never diverged, whatever the residual.
        assert!(!p.diverged("op", "r", 1_000, 1_000_000));
        for _ in 0..4 {
            p.observe("op", "r", 1_000, 1_000);
        }
        assert!(!p.diverged("op", "r", 1_000, 1_400), "within tolerance");
        assert!(p.diverged("op", "r", 1_000, 1_000_000), "beyond tolerance");
    }

    #[test]
    fn snapshot_restores_exactly() {
        let p = CalibrationProfiles::new();
        p.observe("plan.scan", "inline-volcano", 100, 700);
        p.observe("plan.aggregate.sum", "device-pipelined", 5_000, 2_500);
        let snap = p.snapshot();
        assert_eq!(snap.entries.len(), 2);
        // Ordered by (op, route).
        assert_eq!(snap.entries[0].op, "plan.aggregate.sum");

        let q = CalibrationProfiles::new();
        q.observe("noise", "r", 1, 2);
        q.restore(&snap);
        assert_eq!(q.snapshot(), snap);
        assert_eq!(q.learned_factor("plan.scan", "inline-volcano"), Some(7.0));
        assert_eq!(q.observations("noise", "r"), 0);
    }

    #[test]
    fn mean_factor_averages_warmed_routes_only() {
        let p = CalibrationProfiles::new();
        for _ in 0..4 {
            p.observe("plan.aggregate.sum", "inline-volcano", 1_000, 2_000);
        }
        p.observe("plan.aggregate.sum", "host-pooled-morsel", 1_000, 8_000);
        // Only the warmed route contributes.
        let m = p.mean_factor("plan.aggregate.sum", &["inline-volcano", "host-pooled-morsel"]);
        assert_eq!(m, 2.0);
        assert_eq!(p.mean_factor("plan.point_read", &["inline-volcano"]), 1.0);
    }
}
