//! Layouts: complete divisions of a relation into fragments, built from
//! declarative templates, with taxonomy classification derived from the
//! actual fragment structure.
//!
//! "Relations can have multiple alternative layouts; a layout is a complete
//! relation divided into a set of possibly overlapping fragments."
//! (Section III)

use crate::error::{Error, Result};
use crate::fragment::{Fragment, FragmentSpec, Linearization, Location};
use crate::schema::{AttrId, Record, RowId, Schema};
use crate::types::Value;
use htapg_taxonomy::{FragmentLinearization, LayoutFlexibility};

/// How a vertical group of attributes is physically stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GroupOrder {
    /// One fat fragment per chunk, tuplets sequential (row-wise).
    Nsm,
    /// One fat fragment per chunk, column blocks sequential inside a single
    /// allocation (column-wise, "columns in one single vector").
    Dsm,
    /// One thin fragment per attribute per chunk ("columns equivalent to
    /// multiple distinct vectors" — the *emulated* DSM of Section III).
    ThinPerAttr,
}

/// A vertical group: a set of attributes stored together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerticalGroup {
    pub attrs: Vec<AttrId>,
    pub order: GroupOrder,
}

impl VerticalGroup {
    pub fn new(attrs: Vec<AttrId>, order: GroupOrder) -> Self {
        VerticalGroup { attrs, order }
    }

    /// Number of fragments this group contributes per horizontal chunk.
    fn slots(&self) -> usize {
        match self.order {
            GroupOrder::ThinPerAttr => self.attrs.len(),
            _ => 1,
        }
    }
}

/// Declarative description of a layout: vertical groups (sub-relations)
/// optionally chunked horizontally.
///
/// This template language expresses every layout the survey needs:
///
/// * plain NSM row store — one group, [`GroupOrder::Nsm`], unchunked;
/// * plain DSM column store — one group, [`GroupOrder::Dsm`], unchunked;
/// * emulated DSM (HyPer vectors, CoGaDB/GPUTx/L-Store columns) — groups of
///   [`GroupOrder::ThinPerAttr`];
/// * PAX — one group, [`GroupOrder::Dsm`], chunked at page granularity;
/// * HYRISE containers — several groups with per-group NSM/DSM;
/// * H₂O — NSM group plus broken-out thin columns;
/// * HyPer / Peloton — groups × chunks (strong, constrained).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutTemplate {
    pub groups: Vec<VerticalGroup>,
    /// Horizontal chunking: `Some(n)` splits the relation into fragments of
    /// `n` rows; `None` keeps a single growable fragment per group slot.
    pub chunk_rows: Option<u64>,
}

impl LayoutTemplate {
    /// Row-store template: one NSM fat fragment over the whole schema.
    pub fn nsm(schema: &Schema) -> Self {
        LayoutTemplate {
            groups: vec![VerticalGroup::new(schema.attr_ids().collect(), GroupOrder::Nsm)],
            chunk_rows: None,
        }
    }

    /// Column-store template with a single allocation (DSM-fixed).
    pub fn dsm(schema: &Schema) -> Self {
        LayoutTemplate {
            groups: vec![VerticalGroup::new(schema.attr_ids().collect(), GroupOrder::Dsm)],
            chunk_rows: None,
        }
    }

    /// Column-store template with one thin fragment per attribute
    /// (DSM-emulated).
    pub fn dsm_emulated(schema: &Schema) -> Self {
        LayoutTemplate {
            groups: vec![VerticalGroup::new(schema.attr_ids().collect(), GroupOrder::ThinPerAttr)],
            chunk_rows: None,
        }
    }

    /// PAX template: horizontal pages, DSM-fixed minipages inside each page.
    pub fn pax(schema: &Schema, rows_per_page: u64) -> Self {
        LayoutTemplate {
            groups: vec![VerticalGroup::new(schema.attr_ids().collect(), GroupOrder::Dsm)],
            chunk_rows: Some(rows_per_page),
        }
    }

    pub fn grouped(groups: Vec<VerticalGroup>, chunk_rows: Option<u64>) -> Self {
        LayoutTemplate { groups, chunk_rows }
    }

    /// Validate: groups must disjointly cover the schema; chunk size > 0.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if let Some(0) = self.chunk_rows {
            return Err(Error::InvalidLayout("chunk size must be positive".into()));
        }
        if self.groups.is_empty() {
            return Err(Error::InvalidLayout("layout has no vertical groups".into()));
        }
        let mut covered = vec![false; schema.arity()];
        for g in &self.groups {
            if g.attrs.is_empty() {
                return Err(Error::InvalidLayout("empty vertical group".into()));
            }
            for &a in &g.attrs {
                let idx = a as usize;
                if idx >= schema.arity() {
                    return Err(Error::UnknownAttribute(a));
                }
                if covered[idx] {
                    return Err(Error::InvalidLayout(format!(
                        "attribute {a} appears in two vertical groups"
                    )));
                }
                covered[idx] = true;
            }
        }
        if let Some(missing) = covered.iter().position(|c| !c) {
            return Err(Error::InvalidLayout(format!(
                "attribute {missing} is not covered by any vertical group"
            )));
        }
        Ok(())
    }

    /// Total fragment slots per horizontal chunk.
    pub fn slots_per_chunk(&self) -> usize {
        self.groups.iter().map(VerticalGroup::slots).sum()
    }

    /// Taxonomy: layout flexibility implied by this template (Section III,
    /// "Layout flexibility").
    pub fn flexibility(&self) -> LayoutFlexibility {
        let vertical = self.slots_per_chunk() > 1;
        let horizontal = self.chunk_rows.is_some();
        match (vertical, horizontal) {
            (false, false) => LayoutFlexibility::Inflexible,
            (true, false) | (false, true) => LayoutFlexibility::WeakFlexible,
            // Combining vertical and horizontal partitioning with a fixed
            // order (vertical first, chunk boundaries dictated to every
            // group) is the paper's *constrained* strong flexibility — the
            // HyPer/Peloton case.
            (true, true) => LayoutFlexibility::StrongFlexible { constrained: true },
        }
    }

    /// Taxonomy: fragment linearization class implied by this template
    /// (Section III, "Fragment linearization properties"; Figure 3).
    pub fn linearization_class(&self) -> FragmentLinearization {
        let mut has_fat_nsm = false;
        let mut has_fat_dsm = false;
        let mut has_thin = false;
        for g in &self.groups {
            match (g.order, g.attrs.len()) {
                (GroupOrder::ThinPerAttr, _) | (_, 1) => has_thin = true,
                (GroupOrder::Nsm, _) => has_fat_nsm = true,
                (GroupOrder::Dsm, _) => has_fat_dsm = true,
            }
        }
        match (has_fat_nsm, has_fat_dsm, has_thin) {
            (true, false, false) => FragmentLinearization::FatNsmFixed,
            (false, true, false) => FragmentLinearization::FatDsmFixed,
            (true, true, false) => FragmentLinearization::FatVariable,
            (false, false, true) => FragmentLinearization::ThinDsmEmulated,
            (true, false, true) => FragmentLinearization::VariableNsmFixedPartiallyDsmEmulated,
            // Thin column fragments are the DSM-emulated side; with fat DSM
            // fragments the whole layout remains column-structured, which the
            // paper's vocabulary folds into the DSM-fixed partial class.
            (false, true, true) => FragmentLinearization::VariableDsmFixedPartiallyNsmEmulated,
            (true, true, true) => FragmentLinearization::FatVariable,
            (false, false, false) => unreachable!("validated template has groups"),
        }
    }
}

/// Default capacity of the initial fragment of an unchunked group slot.
const INITIAL_CAPACITY: u64 = 1024;

/// A materialized layout: fragments created on demand from a template as
/// rows are appended.
#[derive(Debug, Clone)]
pub struct Layout {
    template: LayoutTemplate,
    /// Fragments in chunk-major, slot-minor order: chunk `c`'s fragments
    /// occupy `[c * slots, (c+1) * slots)`. Unchunked layouts have exactly
    /// one chunk with growable fragments.
    fragments: Vec<Fragment>,
    /// Slot index (within a chunk) covering each attribute.
    attr_slot: Vec<usize>,
    rows: u64,
    location: Location,
}

impl Layout {
    pub fn new(schema: &Schema, template: LayoutTemplate) -> Result<Layout> {
        Self::new_at(schema, template, Location::Host)
    }

    pub fn new_at(schema: &Schema, template: LayoutTemplate, location: Location) -> Result<Layout> {
        template.validate(schema)?;
        let mut attr_slot = vec![usize::MAX; schema.arity()];
        let mut slot = 0usize;
        for g in &template.groups {
            match g.order {
                GroupOrder::ThinPerAttr => {
                    for &a in &g.attrs {
                        attr_slot[a as usize] = slot;
                        slot += 1;
                    }
                }
                _ => {
                    for &a in &g.attrs {
                        attr_slot[a as usize] = slot;
                    }
                    slot += 1;
                }
            }
        }
        Ok(Layout { template, fragments: Vec::new(), attr_slot, rows: 0, location })
    }

    pub fn template(&self) -> &LayoutTemplate {
        &self.template
    }

    pub fn row_count(&self) -> u64 {
        self.rows
    }

    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    pub fn fragments_mut(&mut self) -> &mut [Fragment] {
        &mut self.fragments
    }

    pub fn location(&self) -> Location {
        self.location
    }

    /// Specs to instantiate one chunk starting at `first_row` with `capacity`
    /// rows.
    fn chunk_specs(&self, first_row: RowId, capacity: u64) -> Vec<FragmentSpec> {
        let mut specs = Vec::with_capacity(self.template.slots_per_chunk());
        for g in &self.template.groups {
            match g.order {
                GroupOrder::ThinPerAttr => {
                    for &a in &g.attrs {
                        specs.push(FragmentSpec {
                            first_row,
                            capacity,
                            attrs: vec![a],
                            order: Linearization::Direct,
                        });
                    }
                }
                GroupOrder::Nsm | GroupOrder::Dsm => {
                    let order = if g.attrs.len() == 1 {
                        Linearization::Direct
                    } else if g.order == GroupOrder::Nsm {
                        Linearization::Nsm
                    } else {
                        Linearization::Dsm
                    };
                    // A chunk of a single row would be thin; fragments with
                    // capacity 1 only occur with chunk_rows == 1, where the
                    // direct order is the correct degenerate form.
                    let order = if capacity == 1 { Linearization::Direct } else { order };
                    specs.push(FragmentSpec { first_row, capacity, attrs: g.attrs.clone(), order });
                }
            }
        }
        specs
    }

    /// Append a full-schema record; returns the assigned row id.
    pub fn append(&mut self, schema: &Schema, record: &Record) -> Result<RowId> {
        schema.check_record(record)?;
        let row = self.rows;
        let slots = self.template.slots_per_chunk();
        match self.template.chunk_rows {
            Some(chunk) => {
                let chunk_idx = (row / chunk) as usize;
                if chunk_idx == self.fragments.len() / slots {
                    for spec in self.chunk_specs(chunk_idx as u64 * chunk, chunk) {
                        self.fragments.push(Fragment::new_at(schema, spec, self.location)?);
                    }
                }
            }
            None => {
                if self.fragments.is_empty() {
                    for spec in self.chunk_specs(0, INITIAL_CAPACITY) {
                        self.fragments.push(Fragment::new_at(schema, spec, self.location)?);
                    }
                } else if self.fragments[0].is_full() {
                    let cap = self.fragments[0].spec().capacity;
                    for f in &mut self.fragments {
                        f.grow(cap * 2);
                    }
                }
            }
        }
        // Write the record's values into the fragments of the last chunk.
        let base = self.fragments.len() - slots;
        let mut values_per_slot: Vec<Vec<Value>> = vec![Vec::new(); slots];
        for (frag_slot, slot_values) in values_per_slot.iter_mut().enumerate() {
            let spec = self.fragments[base + frag_slot].spec();
            for &a in &spec.attrs {
                slot_values.push(record[a as usize].clone());
            }
        }
        for (frag_slot, vals) in values_per_slot.into_iter().enumerate() {
            let got = self.fragments[base + frag_slot].append(schema, &vals)?;
            debug_assert_eq!(got, row);
        }
        self.rows += 1;
        Ok(row)
    }

    fn locate(&self, row: RowId, attr: AttrId) -> Result<usize> {
        if row >= self.rows {
            return Err(Error::UnknownRow(row));
        }
        let slot = *self.attr_slot.get(attr as usize).ok_or(Error::UnknownAttribute(attr))?;
        let slots = self.template.slots_per_chunk();
        let chunk_idx = match self.template.chunk_rows {
            Some(chunk) => (row / chunk) as usize,
            None => 0,
        };
        Ok(chunk_idx * slots + slot)
    }

    pub fn read_value(&self, schema: &Schema, row: RowId, attr: AttrId) -> Result<Value> {
        let fi = self.locate(row, attr)?;
        self.fragments[fi].read_value(schema, row, attr)
    }

    pub fn write_value(
        &mut self,
        schema: &Schema,
        row: RowId,
        attr: AttrId,
        v: &Value,
    ) -> Result<()> {
        let fi = self.locate(row, attr)?;
        self.fragments[fi].write_value(schema, row, attr, v)
    }

    /// Read a full-schema record.
    pub fn read_record(&self, schema: &Schema, row: RowId) -> Result<Record> {
        let mut out = Vec::with_capacity(schema.arity());
        for a in schema.attr_ids() {
            out.push(self.read_value(schema, row, a)?);
        }
        Ok(out)
    }

    /// Visit the raw bytes of every field of `attr`, in row order across all
    /// chunks.
    pub fn for_each_field(&self, attr: AttrId, mut f: impl FnMut(RowId, &[u8])) -> Result<()> {
        let slot = *self.attr_slot.get(attr as usize).ok_or(Error::UnknownAttribute(attr))?;
        let slots = self.template.slots_per_chunk();
        let chunks = if self.fragments.is_empty() { 0 } else { self.fragments.len() / slots };
        for c in 0..chunks {
            self.fragments[c * slots + slot].for_each_field(attr, &mut f)?;
        }
        Ok(())
    }

    /// Invoke `f` once per contiguous column block of `attr`, if every
    /// fragment covering `attr` stores it contiguously. Returns `false`
    /// (calling `f` never) when the column is strided (NSM).
    pub fn with_column_bytes(&self, attr: AttrId, f: &mut dyn FnMut(&[u8])) -> Result<bool> {
        let slot = *self.attr_slot.get(attr as usize).ok_or(Error::UnknownAttribute(attr))?;
        let slots = self.template.slots_per_chunk();
        let chunks = if self.fragments.is_empty() { 0 } else { self.fragments.len() / slots };
        let mut blocks = Vec::with_capacity(chunks);
        for c in 0..chunks {
            match self.fragments[c * slots + slot].column_bytes(attr) {
                Some(b) => blocks.push(b),
                None => return Ok(false),
            }
        }
        for b in blocks {
            f(b);
        }
        Ok(true)
    }

    /// Zero-copy views of `attr`'s fields, one per chunk, in row order.
    pub fn column_views(&self, attr: AttrId) -> Result<Vec<crate::fragment::ColumnView<'_>>> {
        let slot = *self.attr_slot.get(attr as usize).ok_or(Error::UnknownAttribute(attr))?;
        let slots = self.template.slots_per_chunk();
        let chunks = if self.fragments.is_empty() { 0 } else { self.fragments.len() / slots };
        let mut out = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let view = self.fragments[c * slots + slot].column_view(attr)?;
            if view.rows > 0 {
                out.push(view);
            }
        }
        Ok(out)
    }

    /// Rebuild this layout's data under a new template (responsive
    /// reorganization). Row ids are preserved.
    pub fn rebuild(&self, schema: &Schema, template: LayoutTemplate) -> Result<Layout> {
        let mut out = Layout::new_at(schema, template, self.location)?;
        for row in 0..self.rows {
            let rec = self.read_record(schema, row)?;
            let got = out.append(schema, &rec)?;
            debug_assert_eq!(got, row);
        }
        Ok(out)
    }

    /// Bytes currently used by all fragments.
    pub fn used_bytes(&self) -> usize {
        self.fragments.iter().map(Fragment::used_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::of(&[
            ("a", DataType::Int32),
            ("b", DataType::Int64),
            ("c", DataType::Float64),
            ("d", DataType::Text(8)),
        ])
    }

    fn rec(i: i64) -> Record {
        vec![
            Value::Int32(i as i32),
            Value::Int64(i * 10),
            Value::Float64(i as f64 / 2.0),
            Value::Text(format!("r{i}")),
        ]
    }

    fn fill(layout: &mut Layout, schema: &Schema, n: i64) {
        for i in 0..n {
            layout.append(schema, &rec(i)).unwrap();
        }
    }

    #[test]
    fn nsm_dsm_emulated_roundtrip() {
        let s = schema();
        for template in [
            LayoutTemplate::nsm(&s),
            LayoutTemplate::dsm(&s),
            LayoutTemplate::dsm_emulated(&s),
            LayoutTemplate::pax(&s, 7),
        ] {
            let mut l = Layout::new(&s, template).unwrap();
            fill(&mut l, &s, 100);
            assert_eq!(l.row_count(), 100);
            for i in [0i64, 1, 6, 7, 49, 99] {
                assert_eq!(l.read_record(&s, i as u64).unwrap(), rec(i));
            }
            assert!(l.read_record(&s, 100).is_err());
        }
    }

    #[test]
    fn growth_beyond_initial_capacity() {
        let s = schema();
        let mut l = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        fill(&mut l, &s, 3000); // > INITIAL_CAPACITY, forces grow
        assert_eq!(l.read_record(&s, 2999).unwrap(), rec(2999));
        assert_eq!(l.read_record(&s, 0).unwrap(), rec(0));
    }

    #[test]
    fn pax_creates_one_fragment_per_page() {
        let s = schema();
        let mut l = Layout::new(&s, LayoutTemplate::pax(&s, 10)).unwrap();
        fill(&mut l, &s, 25);
        assert_eq!(l.fragments().len(), 3); // ceil(25/10) pages
        assert!(l.fragments().iter().all(|f| f.spec().order == Linearization::Dsm));
    }

    #[test]
    fn update_then_read() {
        let s = schema();
        let mut l = Layout::new(&s, LayoutTemplate::nsm(&s)).unwrap();
        fill(&mut l, &s, 10);
        l.write_value(&s, 5, 1, &Value::Int64(-1)).unwrap();
        assert_eq!(l.read_value(&s, 5, 1).unwrap(), Value::Int64(-1));
        assert_eq!(l.read_value(&s, 5, 0).unwrap(), Value::Int32(5));
    }

    #[test]
    fn column_scan_over_chunks() {
        let s = schema();
        let mut l = Layout::new(&s, LayoutTemplate::pax(&s, 8)).unwrap();
        fill(&mut l, &s, 20);
        let mut sum = 0i64;
        let mut rows = Vec::new();
        l.for_each_field(1, |row, bytes| {
            rows.push(row);
            sum += i64::from_le_bytes(bytes.try_into().unwrap());
        })
        .unwrap();
        assert_eq!(rows, (0..20u64).collect::<Vec<_>>());
        assert_eq!(sum, (0..20i64).map(|i| i * 10).sum::<i64>());
    }

    #[test]
    fn contiguous_column_fast_path() {
        let s = schema();
        let mut dsm = Layout::new(&s, LayoutTemplate::dsm(&s)).unwrap();
        let mut nsm = Layout::new(&s, LayoutTemplate::nsm(&s)).unwrap();
        fill(&mut dsm, &s, 10);
        fill(&mut nsm, &s, 10);
        let mut blocks = 0;
        assert!(dsm.with_column_bytes(2, &mut |_| blocks += 1).unwrap());
        assert_eq!(blocks, 1);
        assert!(!nsm.with_column_bytes(2, &mut |_| ()).unwrap());
    }

    #[test]
    fn template_validation() {
        let s = schema();
        // Attribute 3 missing.
        let t =
            LayoutTemplate::grouped(vec![VerticalGroup::new(vec![0, 1, 2], GroupOrder::Nsm)], None);
        assert!(t.validate(&s).is_err());
        // Attribute 0 twice.
        let t = LayoutTemplate::grouped(
            vec![
                VerticalGroup::new(vec![0, 1], GroupOrder::Nsm),
                VerticalGroup::new(vec![0, 2, 3], GroupOrder::Dsm),
            ],
            None,
        );
        assert!(t.validate(&s).is_err());
        // Zero chunk size.
        let t = LayoutTemplate::grouped(
            vec![VerticalGroup::new(vec![0, 1, 2, 3], GroupOrder::Nsm)],
            Some(0),
        );
        assert!(t.validate(&s).is_err());
    }

    #[test]
    fn flexibility_classes() {
        let s = schema();
        assert_eq!(LayoutTemplate::nsm(&s).flexibility(), LayoutFlexibility::Inflexible);
        assert_eq!(LayoutTemplate::dsm(&s).flexibility(), LayoutFlexibility::Inflexible);
        assert_eq!(LayoutTemplate::dsm_emulated(&s).flexibility(), LayoutFlexibility::WeakFlexible);
        assert_eq!(LayoutTemplate::pax(&s, 64).flexibility(), LayoutFlexibility::WeakFlexible);
        let hyper_like = LayoutTemplate::grouped(
            vec![
                VerticalGroup::new(vec![0, 1], GroupOrder::ThinPerAttr),
                VerticalGroup::new(vec![2, 3], GroupOrder::ThinPerAttr),
            ],
            Some(1024),
        );
        assert_eq!(
            hyper_like.flexibility(),
            LayoutFlexibility::StrongFlexible { constrained: true }
        );
    }

    #[test]
    fn linearization_classes() {
        let s = schema();
        assert_eq!(
            LayoutTemplate::nsm(&s).linearization_class(),
            FragmentLinearization::FatNsmFixed
        );
        assert_eq!(
            LayoutTemplate::dsm(&s).linearization_class(),
            FragmentLinearization::FatDsmFixed
        );
        assert_eq!(
            LayoutTemplate::dsm_emulated(&s).linearization_class(),
            FragmentLinearization::ThinDsmEmulated
        );
        let hyrise_like = LayoutTemplate::grouped(
            vec![
                VerticalGroup::new(vec![0, 1], GroupOrder::Nsm),
                VerticalGroup::new(vec![2, 3], GroupOrder::Dsm),
            ],
            None,
        );
        assert_eq!(hyrise_like.linearization_class(), FragmentLinearization::FatVariable);
        let h2o_like = LayoutTemplate::grouped(
            vec![
                VerticalGroup::new(vec![0, 1, 3], GroupOrder::Nsm),
                VerticalGroup::new(vec![2], GroupOrder::ThinPerAttr),
            ],
            None,
        );
        assert_eq!(
            h2o_like.linearization_class(),
            FragmentLinearization::VariableNsmFixedPartiallyDsmEmulated
        );
    }

    #[test]
    fn rebuild_preserves_rows() {
        let s = schema();
        let mut l = Layout::new(&s, LayoutTemplate::nsm(&s)).unwrap();
        fill(&mut l, &s, 50);
        let r = l.rebuild(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        assert_eq!(r.row_count(), 50);
        for i in [0i64, 17, 49] {
            assert_eq!(r.read_record(&s, i as u64).unwrap(), rec(i));
        }
    }

    #[test]
    fn grouped_layout_mixed_orders_roundtrip() {
        let s = schema();
        let t = LayoutTemplate::grouped(
            vec![
                VerticalGroup::new(vec![3, 0], GroupOrder::Nsm),
                VerticalGroup::new(vec![1], GroupOrder::ThinPerAttr),
                VerticalGroup::new(vec![2], GroupOrder::ThinPerAttr),
            ],
            Some(16),
        );
        let mut l = Layout::new(&s, t).unwrap();
        fill(&mut l, &s, 40);
        for i in [0i64, 15, 16, 39] {
            assert_eq!(l.read_record(&s, i as u64).unwrap(), rec(i));
        }
    }
}
