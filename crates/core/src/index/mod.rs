//! Index substrates for record-centric access.
//!
//! The paper's record-centric pattern (Q1: `SELECT * FROM R WHERE pk = c`)
//! requires point access without scanning; ES² additionally manages
//! *distributed secondary indexes* (Section IV-A4). This module provides the
//! two classic structures engines build on:
//!
//! * [`bptree::BPlusTree`] — an ordered index with range scans (primary-key
//!   indexes, ES² secondary indexes);
//! * [`hash::HashIndex`] — an unordered index with O(1) point lookups
//!   (L-Store page dictionary, GPUTx key lookup).

pub mod bptree;
pub mod hash;

pub use bptree::BPlusTree;
pub use hash::HashIndex;
