//! A chained hash index with a fast multiplicative hasher (FxHash-style),
//! for O(1) point lookups on keys without useful order.

use std::hash::{Hash, Hasher};

/// FxHash-style hasher: multiply-rotate over input words. Not HashDoS-safe,
/// which is fine for engine-internal keys (row ids, page ids, integer PKs).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

fn hash_of<K: Hash>(key: &K) -> u64 {
    let mut h = FxHasher::default();
    key.hash(&mut h);
    h.finish()
}

/// A chained hash map tuned for engine-internal lookups.
#[derive(Debug, Clone)]
pub struct HashIndex<K, V> {
    buckets: Vec<Vec<(K, V)>>,
    len: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> Default for HashIndex<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq + Clone, V: Clone> HashIndex<K, V> {
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    pub fn with_capacity(cap: usize) -> Self {
        let n = cap.next_power_of_two().max(16);
        HashIndex { buckets: vec![Vec::new(); n], len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_of(&self, key: &K) -> usize {
        (hash_of(key) as usize) & (self.buckets.len() - 1)
    }

    /// Insert `key → value`; returns the previous value if present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if self.len * 4 >= self.buckets.len() * 3 {
            self.grow();
        }
        let b = self.bucket_of(&key);
        for slot in &mut self.buckets[b] {
            if slot.0 == key {
                return Some(std::mem::replace(&mut slot.1, value));
            }
        }
        self.buckets[b].push((key, value));
        self.len += 1;
        None
    }

    pub fn get(&self, key: &K) -> Option<&V> {
        let b = self.bucket_of(key);
        self.buckets[b].iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let b = self.bucket_of(key);
        self.buckets[b].iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    pub fn remove(&mut self, key: &K) -> Option<V> {
        let b = self.bucket_of(key);
        let pos = self.buckets[b].iter().position(|(k, _)| k == key)?;
        self.len -= 1;
        Some(self.buckets[b].swap_remove(pos).1)
    }

    fn grow(&mut self) {
        let new_n = self.buckets.len() * 2;
        let old = std::mem::replace(&mut self.buckets, vec![Vec::new(); new_n]);
        for bucket in old {
            for (k, v) in bucket {
                let b = (hash_of(&k) as usize) & (new_n - 1);
                self.buckets[b].push((k, v));
            }
        }
    }

    /// Visit every entry (unordered).
    pub fn for_each(&self, f: &mut dyn FnMut(&K, &V)) {
        for bucket in &self.buckets {
            for (k, v) in bucket {
                f(k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_update_remove() {
        let mut m = HashIndex::new();
        assert_eq!(m.insert("a", 1), None);
        assert_eq!(m.insert("b", 2), None);
        assert_eq!(m.insert("a", 10), Some(1));
        assert_eq!(m.get(&"a"), Some(&10));
        assert_eq!(m.len(), 2);
        assert_eq!(m.remove(&"a"), Some(10));
        assert_eq!(m.remove(&"a"), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn survives_growth() {
        let mut m = HashIndex::with_capacity(4);
        let n = 10_000u64;
        for i in 0..n {
            m.insert(i, i * 3);
        }
        assert_eq!(m.len(), n as usize);
        for i in 0..n {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
    }

    #[test]
    fn get_mut_mutates() {
        let mut m = HashIndex::new();
        m.insert(7u32, vec![1]);
        m.get_mut(&7).unwrap().push(2);
        assert_eq!(m.get(&7), Some(&vec![1, 2]));
    }

    #[test]
    fn for_each_visits_all() {
        let mut m = HashIndex::new();
        for i in 0..100u32 {
            m.insert(i, ());
        }
        let mut seen = [false; 100];
        m.for_each(&mut |k, _| seen[*k as usize] = true);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn hasher_spreads_sequential_keys() {
        // Sequential integer keys should not collide into few buckets.
        let mut m = HashIndex::with_capacity(1024);
        for i in 0..768u64 {
            m.insert(i, ());
        }
        let max_chain = m.buckets.iter().map(Vec::len).max().unwrap();
        assert!(max_chain <= 8, "pathological chaining: {max_chain}");
    }

    #[test]
    fn string_keys() {
        let mut m = HashIndex::new();
        for i in 0..500 {
            m.insert(format!("key-{i}"), i);
        }
        for i in (0..500).step_by(17) {
            assert_eq!(m.get(&format!("key-{i}")), Some(&i));
        }
        assert_eq!(m.get(&"key-500".to_string()), None);
    }
}
