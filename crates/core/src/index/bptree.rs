//! A B+-tree: ordered map with point lookups, ordered iteration, and range
//! scans. Keys live in internal separator nodes; all values live in leaves.

use std::ops::Bound;

/// Maximum keys per node; a node splits when it exceeds this.
const MAX_KEYS: usize = 32;
/// Minimum keys per non-root node; a node borrows or merges below this.
const MIN_KEYS: usize = MAX_KEYS / 2;

#[derive(Debug, Clone)]
enum Node<K, V> {
    Leaf { keys: Vec<K>, vals: Vec<V> },
    Internal { seps: Vec<K>, children: Vec<Node<K, V>> },
}

impl<K: Ord + Clone, V: Clone> Node<K, V> {
    fn new_leaf() -> Self {
        Node::Leaf { keys: Vec::new(), vals: Vec::new() }
    }

    fn n_keys(&self) -> usize {
        match self {
            Node::Leaf { keys, .. } => keys.len(),
            Node::Internal { seps, .. } => seps.len(),
        }
    }

    /// Smallest key in this subtree.
    fn min_key(&self) -> &K {
        match self {
            Node::Leaf { keys, .. } => &keys[0],
            Node::Internal { children, .. } => children[0].min_key(),
        }
    }
}

/// Child index for `key`: number of separators ≤ `key`
/// (separator `i` is the minimum key of child `i + 1`).
fn child_for<K: Ord>(seps: &[K], key: &K) -> usize {
    seps.partition_point(|s| s <= key)
}

/// Result of a recursive insert: the replaced value (if the key existed)
/// and the separator + right node of a split (if the child overflowed).
type InsertOutcome<K, V> = (Option<V>, Option<(K, Node<K, V>)>);

/// An ordered index mapping `K` to `V`.
#[derive(Debug, Clone)]
pub struct BPlusTree<K, V> {
    root: Node<K, V>,
    len: usize,
}

impl<K: Ord + Clone, V: Clone> Default for BPlusTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> BPlusTree<K, V> {
    pub fn new() -> Self {
        BPlusTree { root: Node::new_leaf(), len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `key → value`; returns the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let (old, split) = Self::insert_rec(&mut self.root, key, value);
        if let Some((sep, right)) = split {
            let left = std::mem::replace(&mut self.root, Node::new_leaf());
            self.root = Node::Internal { seps: vec![sep], children: vec![left, right] };
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    fn insert_rec(node: &mut Node<K, V>, key: K, value: V) -> InsertOutcome<K, V> {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search(&key) {
                Ok(i) => (Some(std::mem::replace(&mut vals[i], value)), None),
                Err(i) => {
                    keys.insert(i, key);
                    vals.insert(i, value);
                    if keys.len() > MAX_KEYS {
                        let mid = keys.len() / 2;
                        let right_keys = keys.split_off(mid);
                        let right_vals = vals.split_off(mid);
                        let sep = right_keys[0].clone();
                        (None, Some((sep, Node::Leaf { keys: right_keys, vals: right_vals })))
                    } else {
                        (None, None)
                    }
                }
            },
            Node::Internal { seps, children } => {
                let ci = child_for(seps, &key);
                let (old, split) = Self::insert_rec(&mut children[ci], key, value);
                if let Some((sep, right)) = split {
                    seps.insert(ci, sep);
                    children.insert(ci + 1, right);
                    if seps.len() > MAX_KEYS {
                        let mid = seps.len() / 2;
                        let promote = seps[mid].clone();
                        let right_seps = seps.split_off(mid + 1);
                        seps.pop(); // the promoted separator
                        let right_children = children.split_off(mid + 1);
                        let right = Node::Internal { seps: right_seps, children: right_children };
                        return (old, Some((promote, right)));
                    }
                }
                (old, None)
            }
        }
    }

    pub fn get(&self, key: &K) -> Option<&V> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { keys, vals } => {
                    return keys.binary_search(key).ok().map(|i| &vals[i]);
                }
                Node::Internal { seps, children } => {
                    node = &children[child_for(seps, key)];
                }
            }
        }
    }

    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Remove `key`; returns its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let removed = Self::remove_rec(&mut self.root, key);
        if removed.is_some() {
            self.len -= 1;
        }
        // Collapse a root that lost all separators.
        if let Node::Internal { seps, children } = &mut self.root {
            if seps.is_empty() {
                debug_assert_eq!(children.len(), 1);
                self.root = children.pop().unwrap();
            }
        }
        removed
    }

    fn remove_rec(node: &mut Node<K, V>, key: &K) -> Option<V> {
        match node {
            Node::Leaf { keys, vals } => match keys.binary_search(key) {
                Ok(i) => {
                    keys.remove(i);
                    Some(vals.remove(i))
                }
                Err(_) => None,
            },
            Node::Internal { seps, children } => {
                let ci = child_for(seps, key);
                let removed = Self::remove_rec(&mut children[ci], key);
                if removed.is_some() && children[ci].n_keys() < MIN_KEYS {
                    Self::rebalance(seps, children, ci);
                }
                removed
            }
        }
    }

    /// Fix child `ci` after it underflowed: borrow from a sibling or merge.
    fn rebalance(seps: &mut Vec<K>, children: &mut Vec<Node<K, V>>, ci: usize) {
        // Try borrowing from the left sibling.
        if ci > 0 && children[ci - 1].n_keys() > MIN_KEYS {
            let (left, right) = children.split_at_mut(ci);
            let left = &mut left[ci - 1];
            let right = &mut right[0];
            match (left, right) {
                (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: rk, vals: rv }) => {
                    rk.insert(0, lk.pop().unwrap());
                    rv.insert(0, lv.pop().unwrap());
                    seps[ci - 1] = rk[0].clone();
                }
                (
                    Node::Internal { seps: ls, children: lc },
                    Node::Internal { seps: rs, children: rc },
                ) => {
                    let moved_child = lc.pop().unwrap();
                    let moved_sep = ls.pop().unwrap();
                    rs.insert(0, std::mem::replace(&mut seps[ci - 1], moved_sep));
                    rc.insert(0, moved_child);
                }
                _ => unreachable!("siblings are at the same depth"),
            }
            return;
        }
        // Try borrowing from the right sibling.
        if ci + 1 < children.len() && children[ci + 1].n_keys() > MIN_KEYS {
            let (left, right) = children.split_at_mut(ci + 1);
            let left = &mut left[ci];
            let right = &mut right[0];
            match (left, right) {
                (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: rk, vals: rv }) => {
                    lk.push(rk.remove(0));
                    lv.push(rv.remove(0));
                    seps[ci] = rk[0].clone();
                }
                (
                    Node::Internal { seps: ls, children: lc },
                    Node::Internal { seps: rs, children: rc },
                ) => {
                    let moved_child = rc.remove(0);
                    let moved_sep = rs.remove(0);
                    ls.push(std::mem::replace(&mut seps[ci], moved_sep));
                    lc.push(moved_child);
                }
                _ => unreachable!("siblings are at the same depth"),
            }
            return;
        }
        // Merge with a sibling (left if possible, else right).
        let li = if ci > 0 { ci - 1 } else { ci };
        let right = children.remove(li + 1);
        let sep = seps.remove(li);
        match (&mut children[li], right) {
            (Node::Leaf { keys: lk, vals: lv }, Node::Leaf { keys: rk, vals: rv }) => {
                lk.extend(rk);
                lv.extend(rv);
            }
            (
                Node::Internal { seps: ls, children: lc },
                Node::Internal { seps: rs, children: rc },
            ) => {
                ls.push(sep);
                ls.extend(rs);
                lc.extend(rc);
            }
            _ => unreachable!("siblings are at the same depth"),
        }
    }

    /// Visit `(key, value)` pairs with keys inside `(lo, hi)`, in order.
    pub fn range(&self, lo: Bound<&K>, hi: Bound<&K>, f: &mut dyn FnMut(&K, &V)) {
        Self::range_rec(&self.root, lo, hi, f);
    }

    fn range_rec(node: &Node<K, V>, lo: Bound<&K>, hi: Bound<&K>, f: &mut dyn FnMut(&K, &V)) {
        let above_lo = |k: &K| match lo {
            Bound::Unbounded => true,
            Bound::Included(b) => k >= b,
            Bound::Excluded(b) => k > b,
        };
        let below_hi = |k: &K| match hi {
            Bound::Unbounded => true,
            Bound::Included(b) => k <= b,
            Bound::Excluded(b) => k < b,
        };
        match node {
            Node::Leaf { keys, vals } => {
                for (k, v) in keys.iter().zip(vals) {
                    if above_lo(k) && below_hi(k) {
                        f(k, v);
                    }
                }
            }
            Node::Internal { seps, children } => {
                // children[i] holds keys in [seps[i-1], seps[i]).
                for (i, child) in children.iter().enumerate() {
                    // Skip children entirely above hi: every key of child i
                    // is >= seps[i-1].
                    if i > 0 && !below_hi(&seps[i - 1]) {
                        continue;
                    }
                    // Skip children entirely below lo: every key of child i
                    // is < seps[i], so if seps[i] <= lo no key qualifies.
                    if i < seps.len() {
                        let all_below_lo = match lo {
                            Bound::Unbounded => false,
                            Bound::Included(b) | Bound::Excluded(b) => &seps[i] <= b,
                        };
                        if all_below_lo {
                            continue;
                        }
                    }
                    Self::range_rec(child, lo, hi, f);
                }
            }
        }
    }

    /// Visit every `(key, value)` pair in key order.
    pub fn for_each(&self, f: &mut dyn FnMut(&K, &V)) {
        self.range(Bound::Unbounded, Bound::Unbounded, f);
    }

    /// Collect keys in `(lo, hi)` into a vector (convenience for tests and
    /// small scans).
    pub fn range_keys(&self, lo: Bound<&K>, hi: Bound<&K>) -> Vec<K> {
        let mut out = Vec::new();
        self.range(lo, hi, &mut |k, _| out.push(k.clone()));
        out
    }

    /// Depth of the tree (1 for a single leaf).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            d += 1;
            node = &children[0];
        }
        d
    }

    /// Validate structural invariants; used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        Self::check_rec(&self.root, true, None, None);
    }

    fn check_rec(node: &Node<K, V>, is_root: bool, lo: Option<&K>, hi: Option<&K>) -> usize {
        match node {
            Node::Leaf { keys, vals } => {
                assert_eq!(keys.len(), vals.len());
                assert!(is_root || keys.len() >= MIN_KEYS, "leaf underflow");
                assert!(keys.len() <= MAX_KEYS + 1, "leaf overflow");
                for w in keys.windows(2) {
                    assert!(w[0] < w[1], "unsorted leaf");
                }
                if let (Some(lo), Some(first)) = (lo, keys.first()) {
                    assert!(first >= lo, "leaf key below subtree bound");
                }
                if let (Some(hi), Some(last)) = (hi, keys.last()) {
                    assert!(last < hi, "leaf key above subtree bound");
                }
                1
            }
            Node::Internal { seps, children } => {
                assert_eq!(children.len(), seps.len() + 1);
                assert!(is_root || seps.len() >= MIN_KEYS, "internal underflow");
                for w in seps.windows(2) {
                    assert!(w[0] < w[1], "unsorted separators");
                }
                let mut depth = None;
                for (i, child) in children.iter().enumerate() {
                    let clo = if i == 0 { lo } else { Some(&seps[i - 1]) };
                    let chi = if i == seps.len() { hi } else { Some(&seps[i]) };
                    let d = Self::check_rec(child, false, clo, chi);
                    match depth {
                        None => depth = Some(d),
                        Some(prev) => assert_eq!(prev, d, "unbalanced depths"),
                    }
                    // Separator i is a lower bound of child i+1 (deletes may
                    // leave it strictly below the child's current minimum).
                    if i > 0 {
                        assert!(child.min_key() >= &seps[i - 1], "separator above child min");
                    }
                }
                depth.unwrap() + 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(2, "b"), None);
        assert_eq!(t.insert(1, "a"), None);
        assert_eq!(t.insert(3, "c"), None);
        assert_eq!(t.get(&1), Some(&"a"));
        assert_eq!(t.get(&2), Some(&"b"));
        assert_eq!(t.get(&4), None);
        assert_eq!(t.insert(2, "B"), Some("b"));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn grows_and_splits() {
        let mut t = BPlusTree::new();
        let n = 10_000u64;
        for i in 0..n {
            t.insert(i.wrapping_mul(0x9E3779B97F4A7C15), i);
        }
        t.check_invariants();
        assert_eq!(t.len(), n as usize);
        assert!(t.depth() >= 3, "tree should have split: depth {}", t.depth());
        for i in (0..n).step_by(97) {
            assert_eq!(t.get(&i.wrapping_mul(0x9E3779B97F4A7C15)), Some(&i));
        }
    }

    #[test]
    fn ordered_iteration() {
        let mut t = BPlusTree::new();
        for i in (0..500).rev() {
            t.insert(i, i * 2);
        }
        let mut keys = Vec::new();
        t.for_each(&mut |k, v| {
            assert_eq!(*v, *k * 2);
            keys.push(*k);
        });
        assert_eq!(keys, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn range_scans() {
        let mut t = BPlusTree::new();
        for i in 0..1000 {
            t.insert(i * 2, ()); // even keys
        }
        let keys = t.range_keys(Bound::Included(&100), Bound::Excluded(&120));
        assert_eq!(keys, vec![100, 102, 104, 106, 108, 110, 112, 114, 116, 118]);
        let keys = t.range_keys(Bound::Excluded(&100), Bound::Included(&104));
        assert_eq!(keys, vec![102, 104]);
        let keys = t.range_keys(Bound::Included(&101), Bound::Included(&101));
        assert!(keys.is_empty());
    }

    #[test]
    fn remove_everything_in_mixed_order() {
        let mut t = BPlusTree::new();
        let n = 3000u32;
        for i in 0..n {
            t.insert(i, i);
        }
        // Remove evens ascending, odds descending.
        for i in (0..n).step_by(2) {
            assert_eq!(t.remove(&i), Some(i));
            if i % 512 == 0 {
                t.check_invariants();
            }
        }
        for i in (0..n).rev().filter(|i| i % 2 == 1) {
            assert_eq!(t.remove(&i), Some(i));
        }
        t.check_invariants();
        assert!(t.is_empty());
        assert_eq!(t.depth(), 1);
        assert_eq!(t.remove(&0), None);
    }

    #[test]
    fn remove_missing_is_none() {
        let mut t = BPlusTree::new();
        t.insert(1, 1);
        assert_eq!(t.remove(&2), None);
        assert_eq!(t.len(), 1);
    }
}
