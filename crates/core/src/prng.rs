//! Deterministic pseudo-random numbers for workloads, tests, and fault
//! injection.
//!
//! The workspace builds offline, so instead of the `rand` crate it carries
//! this small SplitMix64-based generator. Everything randomized in the repo
//! flows through [`Prng`], which makes two guarantees the test suite leans
//! on:
//!
//! 1. **Determinism** — the same seed always yields the same stream, on
//!    every platform and in every build profile;
//! 2. **Reproducibility from logs** — seeds are taken from the
//!    [`HTAPG_SEED`](env_seed) environment variable when set, and the
//!    [`check_cases`] harness prints the seed of any failing case so a CI
//!    failure can be replayed locally with `HTAPG_SEED=<seed> cargo test`.

use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// The environment variable that overrides randomized-test seeds.
pub const SEED_ENV: &str = "HTAPG_SEED";

/// One SplitMix64 output step: mixes `x` into a well-distributed 64-bit
/// value. Also used stand-alone by the fault injector, which needs a pure
/// counter-indexed hash rather than sequential stream state.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, seedable deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct Prng {
    state: u64,
}

impl Prng {
    /// Create a generator from a 64-bit seed. Named after the `rand` API it
    /// replaces so call sites read the same.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform sample from a range, e.g. `rng.gen_range(0..n)` or
    /// `rng.gen_range(1..=max)`.
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Derive an independent child generator; used to give each logical
    /// stream (workload generator row, test case, ...) its own sequence.
    pub fn fork(&mut self, stream: u64) -> Prng {
        Prng::seed_from_u64(self.next_u64() ^ splitmix64(stream))
    }

    /// Uniform `u64` below `bound` via widening multiply (no modulo bias
    /// worth caring about at these magnitudes). `bound` must be non-zero.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Ranges [`Prng::gen_range`] accepts. Mirrors the subset of `rand`'s
/// `SampleRange` the workspace uses: half-open and inclusive integer ranges
/// plus half-open `f64` ranges.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut Prng) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Prng) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(width) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut Prng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(width + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut Prng) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// The seed randomized tests should use: `HTAPG_SEED` if set (decimal or
/// `0x`-prefixed hex), else `default`.
pub fn env_seed(default: u64) -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("{SEED_ENV}={s:?} is not a u64"))
        }
        Err(_) => default,
    }
}

/// Run `cases` independent randomized cases, each with its own [`Prng`]
/// derived from the base seed ([`env_seed`]`(default_seed)`). If a case
/// panics, the base seed and case index are printed before the panic is
/// re-raised, so the failure is reproducible with
/// `HTAPG_SEED=<seed> cargo test <name>`.
pub fn check_cases(name: &str, cases: u64, default_seed: u64, mut f: impl FnMut(u64, &mut Prng)) {
    let base = env_seed(default_seed);
    for case in 0..cases {
        let mut rng = Prng::seed_from_u64(splitmix64(base ^ splitmix64(case)));
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(case, &mut rng))) {
            eprintln!(
                "[{name}] case {case}/{cases} failed; reproduce with {SEED_ENV}={base} \
                 (default seed {default_seed})"
            );
            resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(42);
        let mut b = Prng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Prng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(0u64..=3);
            assert!(v <= 3);
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let v = rng.gen_range(0usize..4);
            assert!(v < 4);
            let f = rng.gen_range(-500.0..500.0);
            assert!((-500.0..500.0).contains(&f));
        }
    }

    #[test]
    fn range_endpoints_are_reachable() {
        let mut rng = Prng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Prng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "p=0.25 produced {hits}/100000 hits");
        let mut rng = Prng::seed_from_u64(11);
        assert_eq!((0..1000).filter(|_| rng.gen_bool(0.0)).count(), 0);
        let mut rng = Prng::seed_from_u64(11);
        assert_eq!((0..1000).filter(|_| rng.gen_bool(1.0)).count(), 1000);
    }

    #[test]
    fn full_u64_inclusive_range_does_not_overflow() {
        let mut rng = Prng::seed_from_u64(5);
        let _ = rng.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn check_cases_runs_all_cases() {
        let mut ran = 0;
        check_cases("smoke", 16, 1, |_, rng| {
            ran += 1;
            let _ = rng.next_u64();
        });
        assert_eq!(ran, 16);
    }
}
