//! Bounded retry with *virtual-time* exponential backoff.
//!
//! The whole workspace runs on simulated substrates whose costs are modeled
//! in nanoseconds on a `CostLedger`, not spent on a wall clock. Backoff
//! follows the same rule: instead of sleeping, each retry charges the wait
//! to a [`BackoffClock`] (implemented by `htapg_device::CostLedger`), so
//! fault-heavy test runs stay fast while the modeled time still reflects
//! what a real system would have paid.

use crate::error::{Error, Result};
use crate::obs;

/// Where backoff time is charged. No-op implementations are allowed (see
/// [`NoClock`]) for call sites that have no ledger in scope.
pub trait BackoffClock {
    /// Charge `ns` of virtual wait time.
    fn charge_backoff(&self, ns: u64);
}

/// A backoff clock that discards the charge.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoClock;

impl BackoffClock for NoClock {
    fn charge_backoff(&self, _ns: u64) {}
}

impl<C: BackoffClock + ?Sized> BackoffClock for &C {
    fn charge_backoff(&self, ns: u64) {
        (**self).charge_backoff(ns);
    }
}

impl<C: BackoffClock + ?Sized> BackoffClock for std::sync::Arc<C> {
    fn charge_backoff(&self, ns: u64) {
        (**self).charge_backoff(ns);
    }
}

/// Retry budget: up to `max_attempts` tries, exponential backoff starting
/// at `base_backoff_ns` and doubling per retry, capped at `max_backoff_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    pub max_attempts: u32,
    pub base_backoff_ns: u64,
    pub max_backoff_ns: u64,
}

impl Default for RetryPolicy {
    /// 4 attempts, 10 µs first backoff, 1 ms cap — generous against the
    /// fault rates the chaos suite injects, negligible against the modeled
    /// costs of the operations being retried.
    fn default() -> Self {
        Self { max_attempts: 4, base_backoff_ns: 10_000, max_backoff_ns: 1_000_000 }
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no backoff).
    pub fn none() -> Self {
        Self { max_attempts: 1, base_backoff_ns: 0, max_backoff_ns: 0 }
    }

    /// Backoff charged before retry number `retry` (1-based).
    pub fn backoff_ns(&self, retry: u32) -> u64 {
        let shifted = self.base_backoff_ns.saturating_shl(retry.saturating_sub(1));
        shifted.min(self.max_backoff_ns)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if rhs >= 64 || self.leading_zeros() < rhs {
            if self == 0 {
                0
            } else {
                u64::MAX
            }
        } else {
            self << rhs
        }
    }
}

/// Run `op` until it succeeds, fails permanently, or the policy's attempt
/// budget is exhausted. Only [`Error::is_transient`] errors are retried;
/// each retry first charges exponential backoff to `clock`. The last
/// transient error is returned when the budget runs out.
///
/// Every retried error emits a `backoff` span around the clock charge:
/// when the tracer's virtual clock is the *same* ledger the charge lands
/// on, the span's duration equals the charged backoff exactly, so the sum
/// of `backoff` span durations reconciles with the ledger's `backoff_ns`
/// delta.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    clock: &impl BackoffClock,
    mut op: impl FnMut() -> Result<T>,
) -> Result<T> {
    let attempts = policy.max_attempts.max(1);
    let mut last = None;
    for attempt in 1..=attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < attempts => {
                let mut span = obs::span("backoff", "backoff");
                if span.is_recording() {
                    if let Error::Transient { site, fault } = &e {
                        span.arg("site", site);
                        span.arg("fault", fault);
                    }
                    span.arg("attempt", attempt);
                }
                obs::metrics().counter("retry.backoffs").inc();
                clock.charge_backoff(policy.backoff_ns(attempt));
                span.end();
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| Error::Internal("retry loop exited without error".into())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    struct CountClock(Cell<u64>);

    impl BackoffClock for CountClock {
        fn charge_backoff(&self, ns: u64) {
            self.0.set(self.0.get() + ns);
        }
    }

    fn transient() -> Error {
        Error::Transient { site: "test", fault: "flake" }
    }

    #[test]
    fn succeeds_after_transient_failures() {
        let clock = CountClock(Cell::new(0));
        let mut calls = 0;
        let out = with_retry(&RetryPolicy::default(), &clock, || {
            calls += 1;
            if calls < 3 {
                Err(transient())
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
        // Two retries: base + 2*base.
        assert_eq!(clock.0.get(), 10_000 + 20_000);
    }

    #[test]
    fn permanent_errors_abort_immediately() {
        let clock = CountClock(Cell::new(0));
        let mut calls = 0;
        let out: Result<()> = with_retry(&RetryPolicy::default(), &clock, || {
            calls += 1;
            Err(Error::DuplicateKey)
        });
        assert_eq!(out, Err(Error::DuplicateKey));
        assert_eq!(calls, 1);
        assert_eq!(clock.0.get(), 0);
    }

    #[test]
    fn budget_exhaustion_returns_last_transient() {
        let clock = CountClock(Cell::new(0));
        let mut calls = 0;
        let out: Result<()> = with_retry(&RetryPolicy::default(), &clock, || {
            calls += 1;
            Err(transient())
        });
        assert_eq!(calls, 4);
        assert!(matches!(out, Err(Error::Transient { .. })));
    }

    #[test]
    fn backoff_is_capped() {
        let p = RetryPolicy { max_attempts: 64, base_backoff_ns: 1, max_backoff_ns: 100 };
        assert_eq!(p.backoff_ns(1), 1);
        assert_eq!(p.backoff_ns(8), 100);
        assert_eq!(p.backoff_ns(63), 100);
    }

    #[test]
    fn none_policy_is_single_attempt() {
        let mut calls = 0;
        let out: Result<()> = with_retry(&RetryPolicy::none(), &NoClock, || {
            calls += 1;
            Err(transient())
        });
        assert_eq!(calls, 1);
        assert!(out.is_err());
    }
}
