//! Column compression codecs for read-optimized (cold) fragments.
//!
//! L-Store keeps its base pages "read-only (and compressed)" (Section
//! IV-B4), and HyPer's compaction freezes cold chunks into compressed form.
//! These codecs provide that substrate: they compress `u64` column vectors
//! (typed columns are bit-cast through their fixed-width little-endian
//! encoding) and decompress them losslessly.
//!
//! Codecs:
//!
//! * [`Rle`] — run-length encoding (value, run) pairs; wins on sorted or
//!   low-churn columns;
//! * [`Dictionary`] — distinct-value dictionary with bit-packed codes; wins
//!   on low-cardinality columns (e.g. TPC-C district ids);
//! * [`ForBitPack`] — frame-of-reference + bit packing; wins on dense
//!   numeric columns with a narrow value range (e.g. prices);
//! * [`auto_encode`] — picks the smallest of the three.

use crate::error::{Error, Result};

/// A compressed column block: codec tag + payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compressed {
    pub codec: CodecKind,
    pub payload: Vec<u8>,
    /// Number of logical values.
    pub len: usize,
}

impl Compressed {
    /// Size of the compressed form in bytes (payload only).
    pub fn compressed_bytes(&self) -> usize {
        self.payload.len()
    }

    /// Size of the uncompressed form in bytes.
    pub fn uncompressed_bytes(&self) -> usize {
        self.len * 8
    }

    /// Compression ratio (uncompressed / compressed); >1 means it helped.
    pub fn ratio(&self) -> f64 {
        if self.payload.is_empty() {
            return 1.0;
        }
        self.uncompressed_bytes() as f64 / self.payload.len() as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodecKind {
    Rle,
    Dictionary,
    ForBitPack,
}

/// A lossless `u64` column codec.
pub trait Codec {
    fn kind(&self) -> CodecKind;
    fn encode(&self, values: &[u64]) -> Compressed;
    fn decode(&self, block: &Compressed) -> Result<Vec<u64>>;
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u64(bytes: &[u8], pos: usize) -> Result<u64> {
    bytes
        .get(pos..pos + 8)
        .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
        .ok_or_else(|| Error::Internal("truncated compressed block".into()))
}

/// Run-length encoding: a sequence of `(value: u64, run: u64)` pairs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rle;

impl Codec for Rle {
    fn kind(&self) -> CodecKind {
        CodecKind::Rle
    }

    fn encode(&self, values: &[u64]) -> Compressed {
        let mut payload = Vec::new();
        let mut i = 0;
        while i < values.len() {
            let v = values[i];
            let mut run = 1u64;
            while i + (run as usize) < values.len() && values[i + run as usize] == v {
                run += 1;
            }
            put_u64(&mut payload, v);
            put_u64(&mut payload, run);
            i += run as usize;
        }
        Compressed { codec: CodecKind::Rle, payload, len: values.len() }
    }

    fn decode(&self, block: &Compressed) -> Result<Vec<u64>> {
        let mut out = Vec::with_capacity(block.len);
        let mut pos = 0;
        while pos < block.payload.len() {
            let v = get_u64(&block.payload, pos)?;
            let run = get_u64(&block.payload, pos + 8)?;
            pos += 16;
            for _ in 0..run {
                out.push(v);
            }
        }
        if out.len() != block.len {
            return Err(Error::Internal("RLE length mismatch".into()));
        }
        Ok(out)
    }
}

/// Minimum number of bits needed to represent `v` (at least 1).
fn bits_for(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

/// Pack `values` (each < 2^bits) into a dense little-endian bit stream.
fn bit_pack(values: &[u64], bits: u32, out: &mut Vec<u8>) {
    let mut acc: u128 = 0;
    let mut filled: u32 = 0;
    for &v in values {
        acc |= (v as u128) << filled;
        filled += bits;
        while filled >= 8 {
            out.push((acc & 0xFF) as u8);
            acc >>= 8;
            filled -= 8;
        }
    }
    if filled > 0 {
        out.push((acc & 0xFF) as u8);
    }
}

/// Unpack `count` values of `bits` bits each.
fn bit_unpack(bytes: &[u8], bits: u32, count: usize) -> Result<Vec<u64>> {
    let needed = (count as u64 * bits as u64).div_ceil(8);
    if (bytes.len() as u64) < needed {
        return Err(Error::Internal("truncated bit-packed block".into()));
    }
    let mut out = Vec::with_capacity(count);
    let mut acc: u128 = 0;
    let mut filled: u32 = 0;
    let mut pos = 0usize;
    let mask: u128 = if bits == 64 { u64::MAX as u128 } else { (1u128 << bits) - 1 };
    for _ in 0..count {
        while filled < bits {
            acc |= (bytes[pos] as u128) << filled;
            pos += 1;
            filled += 8;
        }
        out.push((acc & mask) as u64);
        acc >>= bits;
        filled -= bits;
    }
    Ok(out)
}

/// Dictionary encoding: sorted distinct values + bit-packed codes.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dictionary;

impl Codec for Dictionary {
    fn kind(&self) -> CodecKind {
        CodecKind::Dictionary
    }

    fn encode(&self, values: &[u64]) -> Compressed {
        let mut dict: Vec<u64> = values.to_vec();
        dict.sort_unstable();
        dict.dedup();
        let bits = bits_for(dict.len().saturating_sub(1) as u64);
        let mut payload = Vec::new();
        put_u64(&mut payload, dict.len() as u64);
        payload.push(bits as u8);
        for &d in &dict {
            put_u64(&mut payload, d);
        }
        let codes: Vec<u64> =
            values.iter().map(|v| dict.binary_search(v).expect("value in dict") as u64).collect();
        bit_pack(&codes, bits, &mut payload);
        Compressed { codec: CodecKind::Dictionary, payload, len: values.len() }
    }

    fn decode(&self, block: &Compressed) -> Result<Vec<u64>> {
        let n_dict = get_u64(&block.payload, 0)? as usize;
        let bits =
            *block.payload.get(8).ok_or_else(|| Error::Internal("truncated dictionary".into()))?
                as u32;
        let mut dict = Vec::with_capacity(n_dict);
        let mut pos = 9;
        for _ in 0..n_dict {
            dict.push(get_u64(&block.payload, pos)?);
            pos += 8;
        }
        let codes = bit_unpack(&block.payload[pos..], bits, block.len)?;
        codes
            .into_iter()
            .map(|c| {
                dict.get(c as usize)
                    .copied()
                    .ok_or_else(|| Error::Internal("dictionary code out of range".into()))
            })
            .collect()
    }
}

/// Frame-of-reference + bit packing: store `min` and bit-packed deltas.
#[derive(Debug, Clone, Copy, Default)]
pub struct ForBitPack;

impl Codec for ForBitPack {
    fn kind(&self) -> CodecKind {
        CodecKind::ForBitPack
    }

    fn encode(&self, values: &[u64]) -> Compressed {
        let min = values.iter().copied().min().unwrap_or(0);
        let max_delta = values.iter().map(|v| v - min).max().unwrap_or(0);
        let bits = bits_for(max_delta);
        let mut payload = Vec::new();
        put_u64(&mut payload, min);
        payload.push(bits as u8);
        let deltas: Vec<u64> = values.iter().map(|v| v - min).collect();
        bit_pack(&deltas, bits, &mut payload);
        Compressed { codec: CodecKind::ForBitPack, payload, len: values.len() }
    }

    fn decode(&self, block: &Compressed) -> Result<Vec<u64>> {
        if block.len == 0 {
            return Ok(Vec::new());
        }
        let min = get_u64(&block.payload, 0)?;
        let bits =
            *block.payload.get(8).ok_or_else(|| Error::Internal("truncated FOR block".into()))?
                as u32;
        let deltas = bit_unpack(&block.payload[9..], bits, block.len)?;
        Ok(deltas.into_iter().map(|d| min + d).collect())
    }
}

/// Decode with the codec recorded in the block.
pub fn decode(block: &Compressed) -> Result<Vec<u64>> {
    match block.codec {
        CodecKind::Rle => Rle.decode(block),
        CodecKind::Dictionary => Dictionary.decode(block),
        CodecKind::ForBitPack => ForBitPack.decode(block),
    }
}

/// Encode with whichever codec yields the smallest payload.
pub fn auto_encode(values: &[u64]) -> Compressed {
    let candidates = [Rle.encode(values), Dictionary.encode(values), ForBitPack.encode(values)];
    candidates.into_iter().min_by_key(|c| c.payload.len()).expect("non-empty candidate list")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_all(values: &[u64]) {
        for codec in [&Rle as &dyn Codec, &Dictionary, &ForBitPack] {
            let block = codec.encode(values);
            assert_eq!(codec.decode(&block).unwrap(), values, "{:?}", codec.kind());
            assert_eq!(decode(&block).unwrap(), values);
        }
        let auto = auto_encode(values);
        assert_eq!(decode(&auto).unwrap(), values);
    }

    #[test]
    fn roundtrip_assorted() {
        roundtrip_all(&[]);
        roundtrip_all(&[42]);
        roundtrip_all(&[0, 0, 0, 0]);
        roundtrip_all(&[1, 2, 3, 4, 5]);
        roundtrip_all(&[u64::MAX, 0, u64::MAX, 1]);
        roundtrip_all(&(0..1000).map(|i| i % 7).collect::<Vec<_>>());
    }

    #[test]
    fn rle_wins_on_runs() {
        let values = vec![5u64; 10_000];
        let auto = auto_encode(&values);
        assert_eq!(auto.codec, CodecKind::Rle);
        assert!(auto.ratio() > 100.0);
    }

    #[test]
    fn dictionary_wins_on_low_cardinality_scattered_values() {
        // Two huge distinct values alternating irregularly: RLE gets short
        // runs, FOR needs 64 bits, dictionary needs 1 bit per value.
        let values: Vec<u64> = (0..10_000)
            .map(|i| if (i * 2654435761u64).is_multiple_of(3) { u64::MAX } else { 1 })
            .collect();
        let auto = auto_encode(&values);
        assert_eq!(auto.codec, CodecKind::Dictionary);
        assert!(auto.ratio() > 10.0);
    }

    #[test]
    fn for_wins_on_dense_narrow_range() {
        // Pseudo-random values in [10^6, 10^6 + 255]: 8-bit deltas.
        let values: Vec<u64> =
            (0..10_000u64).map(|i| 1_000_000 + (i.wrapping_mul(2654435761) % 256)).collect();
        let auto = auto_encode(&values);
        assert_eq!(auto.codec, CodecKind::ForBitPack);
        assert!(auto.ratio() > 6.0);
    }

    #[test]
    fn bit_pack_roundtrip_edge_widths() {
        for bits in [1u32, 7, 8, 9, 31, 33, 63, 64] {
            let mask = if bits == 64 { u64::MAX } else { (1u64 << bits) - 1 };
            let values: Vec<u64> = (0..100u64).map(|i| i.wrapping_mul(0x9E3779B9) & mask).collect();
            let mut out = Vec::new();
            bit_pack(&values, bits, &mut out);
            assert_eq!(bit_unpack(&out, bits, values.len()).unwrap(), values);
        }
    }

    #[test]
    fn truncated_blocks_error() {
        let block = ForBitPack.encode(&[1, 2, 3]);
        let bad = Compressed { payload: block.payload[..4].to_vec(), ..block };
        assert!(decode(&bad).is_err());
    }
}
