//! Relation schemas: ordered, named, fixed-width attributes.

use crate::error::{Error, Result};
use crate::types::{DataType, Value};

/// Index of an attribute within a schema.
pub type AttrId = u16;

/// Row identifier within a relation (dense, insertion order).
pub type RowId = u64;

/// Identifier of a relation within an engine.
pub type RelationId = u32;

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub ty: DataType,
}

impl Attribute {
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Attribute { name: name.into(), ty }
    }
}

/// An ordered collection of attributes with precomputed NSM offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
    /// Byte offset of each attribute within an NSM tuplet covering the full
    /// schema.
    offsets: Vec<usize>,
    tuple_width: usize,
}

impl Schema {
    pub fn new(attrs: Vec<Attribute>) -> Self {
        assert!(!attrs.is_empty(), "schema must have at least one attribute");
        assert!(attrs.len() <= AttrId::MAX as usize, "too many attributes");
        let mut offsets = Vec::with_capacity(attrs.len());
        let mut off = 0usize;
        for a in &attrs {
            offsets.push(off);
            off += a.ty.width();
        }
        Schema { attrs, offsets, tuple_width: off }
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect())
    }

    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    pub fn attr(&self, id: AttrId) -> Result<&Attribute> {
        self.attrs.get(id as usize).ok_or(Error::UnknownAttribute(id))
    }

    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        0..self.attrs.len() as AttrId
    }

    /// Resolve an attribute by name.
    pub fn attr_by_name(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a.name == name).map(|i| i as AttrId)
    }

    pub fn ty(&self, id: AttrId) -> Result<DataType> {
        Ok(self.attr(id)?.ty)
    }

    pub fn width(&self, id: AttrId) -> Result<usize> {
        Ok(self.attr(id)?.ty.width())
    }

    /// Width of a full-schema NSM tuplet, in bytes.
    pub fn tuple_width(&self) -> usize {
        self.tuple_width
    }

    /// Byte offset of `id` inside a full-schema NSM tuplet.
    pub fn offset(&self, id: AttrId) -> Result<usize> {
        self.offsets.get(id as usize).copied().ok_or(Error::UnknownAttribute(id))
    }

    /// Validate that a record matches this schema (arity and types).
    pub fn check_record(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.attrs.len() {
            return Err(Error::Arity { expected: self.attrs.len(), got: values.len() });
        }
        for (v, a) in values.iter().zip(&self.attrs) {
            if !v.matches(a.ty) {
                return Err(Error::TypeMismatch { expected: a.ty.name(), got: v.type_name() });
            }
        }
        Ok(())
    }
}

/// A record: one value per schema attribute, in schema order.
pub type Record = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::of(&[("a", DataType::Int32), ("b", DataType::Int64), ("c", DataType::Text(10))])
    }

    #[test]
    fn offsets_and_width() {
        let s = abc();
        assert_eq!(s.tuple_width(), 4 + 8 + 10);
        assert_eq!(s.offset(0).unwrap(), 0);
        assert_eq!(s.offset(1).unwrap(), 4);
        assert_eq!(s.offset(2).unwrap(), 12);
        assert!(s.offset(3).is_err());
    }

    #[test]
    fn lookup_by_name() {
        let s = abc();
        assert_eq!(s.attr_by_name("b"), Some(1));
        assert_eq!(s.attr_by_name("zzz"), None);
    }

    #[test]
    fn record_validation() {
        let s = abc();
        let ok = vec![Value::Int32(1), Value::Int64(2), Value::Text("x".into())];
        assert!(s.check_record(&ok).is_ok());
        let short = vec![Value::Int32(1)];
        assert!(matches!(s.check_record(&short), Err(Error::Arity { .. })));
        let wrong = vec![Value::Int64(1), Value::Int64(2), Value::Text("x".into())];
        assert!(matches!(s.check_record(&wrong), Err(Error::TypeMismatch { .. })));
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_schema_panics() {
        let _ = Schema::new(vec![]);
    }
}
