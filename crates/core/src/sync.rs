//! Thin synchronization wrappers over `std::sync` with a
//! `parking_lot`-style API: `lock()` / `read()` / `write()` return guards
//! directly instead of a `Result`.
//!
//! The workspace builds in fully offline environments, so it carries no
//! external lock crate. Poisoning is deliberately ignored — a panicked
//! writer in this codebase can only mean a test assertion fired, and the
//! remaining teardown paths must still be able to observe the structures.

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read()` / `write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
