//! EXPLAIN-style cost breakdowns from a span set.
//!
//! A [`TraceReport`] reconstructs the span tree and computes, per span,
//! the *inclusive* virtual nanoseconds (the span's own duration) and the
//! *exclusive* nanoseconds (inclusive minus the sum of direct children) —
//! the same accounting a profiler's flame graph uses, but over the
//! deterministic virtual clock. Sibling spans on device streams may
//! overlap in virtual time (that is the point of the copy/compute lanes),
//! so exclusive time saturates at zero rather than going negative.
//!
//! [`TraceReport::render`] prints the tree with per-ledger-category
//! attribution so every engine's `explain()` output is directly
//! comparable.

use std::collections::BTreeMap;

use super::trace::{SpanKind, SpanRecord};

/// One node of the reconstructed span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    pub record: SpanRecord,
    /// Indices into [`TraceReport::nodes`].
    pub children: Vec<usize>,
    /// The span's own duration.
    pub inclusive_ns: u64,
    /// Inclusive minus direct children's inclusive, saturating at zero
    /// (overlapped stream children can exceed the parent's span).
    pub exclusive_ns: u64,
}

/// One plan node's estimated-vs-actual virtual-ns residual, extracted
/// from a finished trace — the calibration feed
/// ([`crate::calibrate::CalibrationProfiles::absorb`]). The route is the
/// one that *actually executed*: a device node degraded by a fault
/// carries `fallback=host` on its span and is attributed to the inline
/// host route, never to the device.
#[derive(Debug, Clone, PartialEq)]
pub struct Residual {
    /// The node's span name (`plan.aggregate.sum`, ...).
    pub op: String,
    /// Label of the executed route.
    pub route: String,
    /// The planner's uncalibrated estimate for the node.
    pub raw_est_ns: u64,
    /// Inclusive virtual ns the node actually charged.
    pub actual_ns: u64,
}

/// A span tree plus per-category rollups, built from a finished trace.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    pub nodes: Vec<SpanNode>,
    /// Indices of spans with no (present) parent, in canonical order.
    pub roots: Vec<usize>,
    /// Total inclusive ns of *root* spans per category — double counting
    /// of nested spans is avoided by attributing each span's exclusive
    /// time instead; see [`TraceReport::category_exclusive_ns`].
    categories: BTreeMap<&'static str, u64>,
}

impl TraceReport {
    /// Build a report from `spans` (any order; instants become leaf nodes
    /// with zero duration).
    pub fn from_spans(mut spans: Vec<SpanRecord>) -> Self {
        super::trace::canonical_sort(&mut spans);
        let index_of: BTreeMap<u64, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut nodes: Vec<SpanNode> = spans
            .into_iter()
            .map(|record| {
                let inclusive_ns = record.dur_ns;
                SpanNode { record, children: Vec::new(), inclusive_ns, exclusive_ns: inclusive_ns }
            })
            .collect();
        let mut roots = Vec::new();
        for i in 0..nodes.len() {
            match nodes[i].record.parent.and_then(|p| index_of.get(&p).copied()) {
                Some(p) => nodes[p].children.push(i),
                None => roots.push(i),
            }
        }
        let mut categories: BTreeMap<&'static str, u64> = BTreeMap::new();
        for i in 0..nodes.len() {
            let child_sum: u64 = nodes[i].children.iter().map(|&c| nodes[c].inclusive_ns).sum();
            nodes[i].exclusive_ns = nodes[i].inclusive_ns.saturating_sub(child_sum);
            *categories.entry(nodes[i].record.cat).or_insert(0) += nodes[i].exclusive_ns;
        }
        TraceReport { nodes, roots, categories }
    }

    /// Exclusive virtual ns attributed to each category; summing over all
    /// categories equals the sum of root inclusive times when spans nest
    /// without overlap.
    pub fn category_exclusive_ns(&self) -> &BTreeMap<&'static str, u64> {
        &self.categories
    }

    /// Total inclusive ns over root spans whose name starts with `prefix`
    /// (e.g. `"query.olap"` for one query class).
    pub fn root_inclusive_ns(&self, prefix: &str) -> u64 {
        self.roots
            .iter()
            .filter(|&&r| self.nodes[r].record.name.starts_with(prefix))
            .map(|&r| self.nodes[r].inclusive_ns)
            .sum()
    }

    /// The first root span with exactly this name, if any.
    pub fn find_root(&self, name: &str) -> Option<&SpanNode> {
        self.roots.iter().map(|&r| &self.nodes[r]).find(|n| n.record.name == name)
    }

    /// Per-node residuals of every executed `plan.*` span that carries
    /// the planner's estimate args, for calibration feedback. Spans
    /// marked `fallback=host` are re-attributed to the inline host route
    /// — the route that actually ran.
    pub fn residuals(&self) -> Vec<Residual> {
        self.nodes
            .iter()
            .filter(|n| n.record.name.starts_with("plan."))
            .filter_map(|n| {
                let arg = |key: &str| {
                    n.record.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str())
                };
                let route = if arg("fallback") == Some("host") {
                    "inline-volcano".to_string()
                } else {
                    arg("route")?.to_string()
                };
                Some(Residual {
                    op: n.record.name.to_string(),
                    route,
                    raw_est_ns: arg("raw_est_ns")?.parse().ok()?,
                    actual_ns: n.inclusive_ns,
                })
            })
            .collect()
    }

    /// Number of spans (including instants).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Render the cost breakdown as text: a category attribution table
    /// followed by the span tree with inclusive/exclusive virtual ns.
    /// `title` heads the report (engines pass their name).
    pub fn render(&self, title: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("EXPLAIN {title}\n"));
        let total: u64 = self.roots.iter().map(|&r| self.nodes[r].inclusive_ns).sum();
        out.push_str(&format!(
            "  spans: {}   roots: {}   total inclusive: {}\n",
            self.nodes.len(),
            self.roots.len(),
            fmt_ns(total)
        ));
        out.push_str("  by category (exclusive virtual ns):\n");
        let cat_total: u64 = self.categories.values().sum();
        for (cat, ns) in &self.categories {
            let pct = if cat_total == 0 { 0.0 } else { *ns as f64 * 100.0 / cat_total as f64 };
            out.push_str(&format!("    {cat:<10} {:>14}  {pct:5.1}%\n", fmt_ns(*ns)));
        }
        out.push_str("  span tree (inclusive / exclusive):\n");
        for &r in &self.roots {
            self.render_node(&mut out, r, 2);
        }
        out
    }

    fn render_node(&self, out: &mut String, idx: usize, depth: usize) {
        let n = &self.nodes[idx];
        let marker = match n.record.kind {
            SpanKind::Complete => "",
            SpanKind::Instant => "! ",
        };
        out.push_str(&format!(
            "{:indent$}- {marker}{} [{}] {} / {}",
            "",
            n.record.name,
            n.record.cat,
            fmt_ns(n.inclusive_ns),
            fmt_ns(n.exclusive_ns),
            indent = depth * 2,
        ));
        if !n.record.args.is_empty() {
            out.push_str("  {");
            for (i, (k, v)) in n.record.args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{k}={v}"));
            }
            out.push('}');
        }
        out.push('\n');
        for &c in &n.children {
            self.render_node(out, c, depth + 1);
        }
    }
}

/// Human-readable virtual nanoseconds (exact below 10 µs, scaled above).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::super::trace::{SpanKind, SpanRecord};
    use super::*;
    use std::borrow::Cow;

    fn rec(
        id: u64,
        parent: Option<u64>,
        name: &'static str,
        cat: &'static str,
        start: u64,
        dur: u64,
    ) -> SpanRecord {
        SpanRecord {
            name: Cow::Borrowed(name),
            cat,
            process: Cow::Borrowed("p"),
            track: Cow::Borrowed("t"),
            start_ns: start,
            dur_ns: dur,
            id,
            parent,
            args: Vec::new(),
            kind: SpanKind::Complete,
        }
    }

    #[test]
    fn inclusive_exclusive_accounting() {
        let report = TraceReport::from_spans(vec![
            rec(1, None, "query.olap.sum", "query", 0, 100),
            rec(2, Some(1), "device.transfer", "transfer", 0, 60),
            rec(3, Some(1), "device.kernel", "kernel", 60, 30),
        ]);
        assert_eq!(report.roots.len(), 1);
        let root = report.find_root("query.olap.sum").unwrap();
        assert_eq!(root.inclusive_ns, 100);
        assert_eq!(root.exclusive_ns, 10);
        let cats = report.category_exclusive_ns();
        assert_eq!(cats["transfer"], 60);
        assert_eq!(cats["kernel"], 30);
        assert_eq!(cats["query"], 10);
        assert_eq!(cats.values().sum::<u64>(), 100);
        assert_eq!(report.root_inclusive_ns("query.olap"), 100);
        assert_eq!(report.root_inclusive_ns("query.oltp"), 0);
    }

    #[test]
    fn overlapped_children_saturate_exclusive() {
        // Copy/compute lanes overlapping inside a 100 ns parent: children
        // sum to 140 ns of lane time; exclusive clamps to 0.
        let report = TraceReport::from_spans(vec![
            rec(1, None, "pipeline", "query", 0, 100),
            rec(2, Some(1), "stream.copy", "transfer", 0, 80),
            rec(3, Some(1), "stream.compute", "kernel", 20, 60),
        ]);
        let root = report.find_root("pipeline").unwrap();
        assert_eq!(root.exclusive_ns, 0);
    }

    #[test]
    fn orphan_parents_become_roots() {
        let report = TraceReport::from_spans(vec![rec(7, Some(99), "late", "cpu", 5, 5)]);
        assert_eq!(report.roots.len(), 1);
    }

    #[test]
    fn residuals_follow_the_executed_route() {
        let mut planned = rec(1, None, "plan.aggregate.sum", "plan", 0, 42_000);
        planned.args = vec![
            ("route", "device-pipelined".to_string()),
            ("est_ns", "30000".to_string()),
            ("raw_est_ns", "30000".to_string()),
        ];
        let mut degraded = rec(2, None, "plan.aggregate.group_sum", "plan", 50_000, 7_000);
        degraded.args = vec![
            ("route", "device-pipelined".to_string()),
            ("raw_est_ns", "9000".to_string()),
            ("fallback", "host".to_string()),
        ];
        // No raw_est_ns arg (pre-calibration span shape): skipped.
        let mut legacy = rec(3, None, "plan.scan", "plan", 60_000, 5);
        legacy.args = vec![("route", "inline-volcano".to_string())];
        let report = TraceReport::from_spans(vec![
            planned,
            degraded,
            legacy,
            rec(4, None, "query.olap.sum", "query", 70_000, 10),
        ]);
        let res = report.residuals();
        assert_eq!(res.len(), 2);
        assert_eq!(
            res[0],
            Residual {
                op: "plan.aggregate.sum".into(),
                route: "device-pipelined".into(),
                raw_est_ns: 30_000,
                actual_ns: 42_000,
            }
        );
        assert_eq!(res[1].route, "inline-volcano", "fallback=host re-attributes the residual");
        assert_eq!(res[1].actual_ns, 7_000);
    }

    #[test]
    fn render_contains_tree_and_categories() {
        let mut leaf = rec(2, Some(1), "wal.append", "wal", 1, 10);
        leaf.args = vec![("bytes", "64".to_string())];
        let report =
            TraceReport::from_spans(vec![rec(1, None, "query.oltp.update", "query", 0, 30), leaf]);
        let text = report.render("ReferenceEngine");
        assert!(text.contains("EXPLAIN ReferenceEngine"));
        assert!(text.contains("wal.append"));
        assert!(text.contains("bytes=64"));
        assert!(text.contains("by category"));
        assert!(text.contains("query.oltp.update"));
    }
}
