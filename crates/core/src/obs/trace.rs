//! The virtual-time span tracer.
//!
//! A [`Span`] is an interval on the workload's *virtual* timeline: its
//! timestamps come from a [`VirtualClock`] — in practice the
//! `CostLedger` critical-path wall clock — never from `Instant::now()`.
//! Two runs under the same `HTAPG_SEED` therefore produce identical
//! timestamps, and an exported trace is a reproducible artifact, not a
//! scheduling accident.
//!
//! The tracer is process-global and **zero-cost when disabled**: the span
//! constructors check one relaxed atomic and return an inert guard without
//! allocating, locking, or reading the clock. When enabled, finished spans
//! are appended to a shared vector under a mutex — one lock acquisition
//! per span *end*, nothing on the open path beyond a clock read.
//!
//! Span identity is hierarchical (a thread-local stack links children to
//! the enclosing span) and located by two string labels: a *process* (one
//! per engine, the Chrome-trace `pid`) and a *track* (one per worker or
//! device stream, the `tid`). Labels are resolved to numeric ids only at
//! export time, in sorted order, so the exported bytes do not depend on
//! label first-use order.

use std::borrow::Cow;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::sync::{Mutex, RwLock};

/// A monotonic source of virtual nanoseconds.
///
/// Implemented by `htapg_device::CostLedger` (the critical-path wall
/// clock); [`ManualClock`] is the standalone fallback for host-only
/// engines, whose work charges no virtual time.
pub trait VirtualClock: Send + Sync {
    /// Current virtual time in nanoseconds.
    fn now_ns(&self) -> u64;
}

/// A hand-driven virtual clock (host-only engines, tests).
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.0.fetch_add(ns, Ordering::Relaxed);
    }
}

impl VirtualClock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// What kind of event a [`SpanRecord`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// An interval with a duration (Chrome `ph: "X"`).
    Complete,
    /// A point event (`ph: "i"`): cache hit, fault injection, …
    Instant,
}

/// One finished span (or instant event).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name — see DESIGN.md §11 for the `layer.operation` convention.
    pub name: Cow<'static, str>,
    /// Ledger-category attribution: `transfer`, `kernel`, `disk`,
    /// `network`, `backoff`, or a host-side category (`cpu`, `txn`, `wal`,
    /// `cache`, `adapt`, `query`, `pool`, `fault`).
    pub cat: &'static str,
    /// Process label (one per engine; the exported `pid`).
    pub process: Cow<'static, str>,
    /// Track label (one per worker or device stream; the exported `tid`).
    pub track: Cow<'static, str>,
    /// Virtual start timestamp.
    pub start_ns: u64,
    /// Virtual duration (0 for instants).
    pub dur_ns: u64,
    /// Unique id within the tracer (allocation order — *not* stable across
    /// interleavings; compare spans by the other fields).
    pub id: u64,
    /// Enclosing span id, if any.
    pub parent: Option<u64>,
    /// Small key/value annotations (evidence, counts).
    pub args: Vec<(&'static str, String)>,
    pub kind: SpanKind,
}

struct TracerInner {
    clock: Arc<dyn VirtualClock>,
    spans: Mutex<Vec<SpanRecord>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for TracerInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerInner").finish_non_exhaustive()
    }
}

/// A cheaply clonable handle to one trace collection.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// A tracer reading timestamps from `clock`.
    pub fn new(clock: Arc<dyn VirtualClock>) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                clock,
                spans: Mutex::new(Vec::new()),
                next_id: AtomicU64::new(1),
            }),
        }
    }

    /// A tracer over a fresh [`ManualClock`] (host-only workloads: spans
    /// carry structure and counts, zero virtual duration).
    pub fn with_manual_clock() -> Self {
        Self::new(Arc::new(ManualClock::new()))
    }

    /// Current virtual time of this tracer's clock.
    pub fn now_ns(&self) -> u64 {
        self.inner.clock.now_ns()
    }

    /// Copy out all finished spans.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().clone()
    }

    /// Take all finished spans, leaving the tracer empty.
    pub fn drain(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.inner.spans.lock())
    }

    /// Number of finished spans.
    pub fn len(&self) -> usize {
        self.inner.spans.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------
// Global installation
// ---------------------------------------------------------------------

/// Fast-path gate: a single relaxed load decides whether any span work
/// happens at all.
static ENABLED: AtomicBool = AtomicBool::new(false);

fn global() -> &'static RwLock<Option<Tracer>> {
    static GLOBAL: OnceLock<RwLock<Option<Tracer>>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(None))
}

/// Install `tracer` as the process-wide trace sink and enable tracing.
/// Replaces (and returns) any previously installed tracer.
pub fn install(tracer: Tracer) -> Option<Tracer> {
    let old = global().write().replace(tracer);
    ENABLED.store(true, Ordering::SeqCst);
    old
}

/// Disable tracing and remove the installed tracer, returning it.
pub fn uninstall() -> Option<Tracer> {
    ENABLED.store(false, Ordering::SeqCst);
    global().write().take()
}

/// Whether a tracer is installed and enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed tracer, if tracing is enabled.
pub fn current() -> Option<Tracer> {
    if !enabled() {
        return None;
    }
    global().read().clone()
}

// ---------------------------------------------------------------------
// Thread-local span context
// ---------------------------------------------------------------------

struct Ctx {
    process: Cow<'static, str>,
    track: Cow<'static, str>,
    stack: Vec<u64>,
}

thread_local! {
    static CTX: RefCell<Ctx> = const {
        RefCell::new(Ctx {
            process: Cow::Borrowed("htapg"),
            track: Cow::Borrowed("main"),
            stack: Vec::new(),
        })
    };
}

/// Scope guard restoring the previous process label on drop.
pub struct ProcessScope {
    prev: Option<Cow<'static, str>>,
}

/// Set the current thread's process label (one per engine) for the guard's
/// lifetime. Labels are cheap — no tracer interaction happens here.
pub fn process_scope(name: impl Into<Cow<'static, str>>) -> ProcessScope {
    let name = name.into();
    let prev = CTX.with(|c| std::mem::replace(&mut c.borrow_mut().process, name));
    ProcessScope { prev: Some(prev) }
}

impl Drop for ProcessScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CTX.with(|c| c.borrow_mut().process = prev);
        }
    }
}

/// The calling thread's current process label. Executors capture this
/// before fanning work out to pool threads, so spans recorded on workers
/// attribute to the submitter's engine rather than the worker's default.
pub fn current_process() -> Cow<'static, str> {
    CTX.with(|c| c.borrow().process.clone())
}

/// Scope guard restoring the previous track label on drop.
pub struct TrackScope {
    prev: Option<Cow<'static, str>>,
}

/// Set the current thread's track label (one per worker) for the guard's
/// lifetime.
pub fn track_scope(name: impl Into<Cow<'static, str>>) -> TrackScope {
    let name = name.into();
    let prev = CTX.with(|c| std::mem::replace(&mut c.borrow_mut().track, name));
    TrackScope { prev: Some(prev) }
}

impl Drop for TrackScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CTX.with(|c| c.borrow_mut().track = prev);
        }
    }
}

// ---------------------------------------------------------------------
// Span guards
// ---------------------------------------------------------------------

struct ActiveSpan {
    tracer: Tracer,
    id: u64,
    parent: Option<u64>,
    start_ns: u64,
    name: Cow<'static, str>,
    cat: &'static str,
    args: Vec<(&'static str, String)>,
}

/// RAII guard for an open span: records the span when dropped. Inert (and
/// allocation-free) when tracing is disabled.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

/// Open a span named `name` under category `cat` on the current thread's
/// process/track, nested under the innermost open span. When tracing is
/// disabled this is one relaxed atomic load and returns an inert guard.
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    span_named(cat, Cow::Borrowed(name))
}

/// [`span`] with an owned (runtime-built) name. Prefer the static-name
/// entry point on hot paths — building the `String` costs even when
/// tracing is disabled.
pub fn span_named(cat: &'static str, name: Cow<'static, str>) -> SpanGuard {
    let Some(tracer) = current() else {
        return SpanGuard { active: None };
    };
    let id = tracer.inner.next_id.fetch_add(1, Ordering::Relaxed);
    let parent = CTX.with(|c| {
        let mut ctx = c.borrow_mut();
        let parent = ctx.stack.last().copied();
        ctx.stack.push(id);
        parent
    });
    let start_ns = tracer.inner.clock.now_ns();
    SpanGuard {
        active: Some(ActiveSpan { tracer, id, parent, start_ns, name, cat, args: Vec::new() }),
    }
}

impl SpanGuard {
    /// Whether this guard will record a span (tracing was enabled when it
    /// was opened). Use to gate expensive argument formatting.
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }

    /// Attach a key/value annotation. No-op (and no formatting) when the
    /// guard is inert.
    pub fn arg(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(a) = self.active.as_mut() {
            a.args.push((key, value.to_string()));
        }
    }

    /// Close the span now (equivalent to dropping the guard).
    pub fn end(self) {}

    /// This span's id (None when inert) — for linking explicitly-timed
    /// child spans.
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let end_ns = a.tracer.inner.clock.now_ns();
        let (process, track) = CTX.with(|c| {
            let mut ctx = c.borrow_mut();
            // Pop this span (it is the innermost on this thread; guards
            // drop in LIFO order).
            if ctx.stack.last() == Some(&a.id) {
                ctx.stack.pop();
            } else {
                ctx.stack.retain(|&s| s != a.id);
            }
            (ctx.process.clone(), ctx.track.clone())
        });
        a.tracer.inner.spans.lock().push(SpanRecord {
            name: a.name,
            cat: a.cat,
            process,
            track,
            start_ns: a.start_ns,
            dur_ns: end_ns.saturating_sub(a.start_ns),
            id: a.id,
            parent: a.parent,
            args: a.args,
            kind: SpanKind::Complete,
        });
    }
}

/// Record a zero-duration instant event (cache hit, fault, decision) at
/// the current virtual time.
pub fn instant(cat: &'static str, name: &'static str) {
    instant_with(cat, name, &[]);
}

/// [`instant`] with annotations. `args` are only materialized when tracing
/// is enabled.
pub fn instant_with(cat: &'static str, name: &'static str, args: &[(&'static str, &str)]) {
    let Some(tracer) = current() else { return };
    let id = tracer.inner.next_id.fetch_add(1, Ordering::Relaxed);
    let now = tracer.inner.clock.now_ns();
    let (process, track, parent) = CTX.with(|c| {
        let ctx = c.borrow();
        (ctx.process.clone(), ctx.track.clone(), ctx.stack.last().copied())
    });
    tracer.inner.spans.lock().push(SpanRecord {
        name: Cow::Borrowed(name),
        cat,
        process,
        track,
        start_ns: now,
        dur_ns: 0,
        id,
        parent,
        args: args.iter().map(|&(k, v)| (k, v.to_string())).collect(),
        kind: SpanKind::Instant,
    });
}

/// Record a span with explicit timestamps on an explicit track — the
/// device-stream lanes, whose time lives on per-stream cursors rather than
/// the thread. The span is parented under the innermost open span of the
/// calling thread and uses the thread's process label.
pub fn span_at(
    cat: &'static str,
    name: &'static str,
    track: &'static str,
    start_ns: u64,
    end_ns: u64,
) {
    let Some(tracer) = current() else { return };
    let id = tracer.inner.next_id.fetch_add(1, Ordering::Relaxed);
    let (process, parent) = CTX.with(|c| {
        let ctx = c.borrow();
        (ctx.process.clone(), ctx.stack.last().copied())
    });
    tracer.inner.spans.lock().push(SpanRecord {
        name: Cow::Borrowed(name),
        cat,
        process,
        track: Cow::Borrowed(track),
        start_ns,
        dur_ns: end_ns.saturating_sub(start_ns),
        id,
        parent,
        args: Vec::new(),
        kind: SpanKind::Complete,
    });
}

/// Canonical ordering for exported spans: independent of scheduling
/// interleavings whenever the span *set* (labels + virtual times) is. Ids
/// are deliberately excluded — they encode allocation order.
pub fn canonical_sort(spans: &mut [SpanRecord]) {
    spans.sort_by(|a, b| {
        (a.start_ns, &a.process, &a.track, &a.name, a.dur_ns, a.kind, &a.args)
            .cmp(&(b.start_ns, &b.process, &b.track, &b.name, b.dur_ns, b.kind, &b.args))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that install the global tracer.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static M: std::sync::Mutex<()> = std::sync::Mutex::new(());
        M.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _g = lock();
        uninstall();
        let mut s = span("cpu", "noop");
        s.arg("k", 1);
        assert!(!s.is_recording());
        drop(s);
        instant("cpu", "nothing");
        assert!(current().is_none());
    }

    #[test]
    fn spans_nest_and_record_durations() {
        let _g = lock();
        let clock = Arc::new(ManualClock::new());
        let tracer = Tracer::new(clock.clone());
        install(tracer.clone());
        {
            let _root = span("query", "root");
            clock.advance(10);
            {
                let _child = span("kernel", "child");
                clock.advance(5);
            }
            clock.advance(1);
        }
        uninstall();
        let spans = tracer.spans();
        assert_eq!(spans.len(), 2);
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        let root = spans.iter().find(|s| s.name == "root").unwrap();
        assert_eq!(child.parent, Some(root.id));
        assert_eq!(child.dur_ns, 5);
        assert_eq!(root.dur_ns, 16);
        assert_eq!(root.parent, None);
        assert!(child.start_ns >= root.start_ns);
    }

    #[test]
    fn scopes_label_processes_and_tracks() {
        let _g = lock();
        let tracer = Tracer::with_manual_clock();
        install(tracer.clone());
        {
            let _p = process_scope("ENGINE-A");
            let _t = track_scope("worker-3");
            span("cpu", "inside").end();
        }
        span("cpu", "outside").end();
        uninstall();
        let spans = tracer.spans();
        let inside = spans.iter().find(|s| s.name == "inside").unwrap();
        assert_eq!(inside.process, "ENGINE-A");
        assert_eq!(inside.track, "worker-3");
        let outside = spans.iter().find(|s| s.name == "outside").unwrap();
        assert_eq!(outside.process, "htapg");
        assert_eq!(outside.track, "main");
    }

    #[test]
    fn instants_and_explicit_spans() {
        let _g = lock();
        let tracer = Tracer::with_manual_clock();
        install(tracer.clone());
        instant_with("cache", "cache.hit", &[("attr", "3")]);
        span_at("transfer", "stream.copy", "stream.copy", 100, 250);
        uninstall();
        let spans = tracer.spans();
        assert_eq!(spans[0].kind, SpanKind::Instant);
        assert_eq!(spans[0].args, vec![("attr", "3".to_string())]);
        assert_eq!(spans[1].track, "stream.copy");
        assert_eq!(spans[1].start_ns, 100);
        assert_eq!(spans[1].dur_ns, 150);
    }

    #[test]
    fn canonical_sort_is_interleaving_independent() {
        let mk = |name: &'static str, ts: u64| SpanRecord {
            name: Cow::Borrowed(name),
            cat: "cpu",
            process: Cow::Borrowed("p"),
            track: Cow::Borrowed("t"),
            start_ns: ts,
            dur_ns: 1,
            id: 0,
            parent: None,
            args: Vec::new(),
            kind: SpanKind::Complete,
        };
        let mut a = vec![mk("x", 5), mk("y", 2), mk("z", 5)];
        let mut b = vec![mk("z", 5), mk("x", 5), mk("y", 2)];
        canonical_sort(&mut a);
        canonical_sort(&mut b);
        assert_eq!(
            a.iter().map(|s| (&s.name, s.start_ns)).collect::<Vec<_>>(),
            vec![(&Cow::Borrowed("y"), 2), (&Cow::Borrowed("x"), 5), (&Cow::Borrowed("z"), 5)]
        );
        assert_eq!(a, b);
    }

    #[test]
    fn arg_formatting_skipped_when_inert() {
        let _g = lock();
        uninstall();
        struct Panics;
        impl std::fmt::Display for Panics {
            fn fmt(&self, _: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                panic!("must not format when inert")
            }
        }
        let mut s = span("cpu", "x");
        // Display::fmt is only invoked when recording.
        if s.is_recording() {
            s.arg("v", Panics);
        }
    }
}
