//! Named metrics: monotonic counters, gauges, and fixed-edge histograms.
//!
//! The registry mirrors the `CostLedger`/`CostSnapshot` discipline:
//! lock-free atomic updates on the hot path, and a snapshot/delta API
//! whose [`MetricsSnapshot::since`] saturates (clamps to zero) instead of
//! wrapping, so a stale baseline can never produce a nonsense negative
//! delta.
//!
//! Handles (`Arc<Counter>` etc.) are resolved once by name and then bumped
//! with a single atomic RMW — call sites on hot paths should cache the
//! handle in a `OnceLock` rather than re-resolving per event.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::sync::Mutex;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, cache occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default histogram edges for virtual-nanosecond latencies: powers of 4
/// from 1 µs to ~4.3 s. 17 buckets cover the ledger's cost-model range
/// with ≤2× relative quantile error.
pub const LATENCY_NS_EDGES: &[u64] = &[
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_194_304_000,
];

/// A fixed-edge histogram. `edges` are the inclusive upper bounds of the
/// first `edges.len()` buckets; one implicit overflow bucket catches the
/// rest. Edges are fixed at construction so that two runs (or two
/// registries) always bucket identically — quantiles are deterministic
/// integer math, never interpolation over observed values.
#[derive(Debug)]
pub struct Histogram {
    edges: &'static [u64],
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(edges: &'static [u64]) -> Self {
        assert!(edges.windows(2).all(|w| w[0] < w[1]), "histogram edges must be sorted");
        Histogram {
            edges,
            buckets: (0..=edges.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: u64) {
        let idx = self.edges.partition_point(|&e| e < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn state(&self) -> HistogramState {
        HistogramState {
            edges: self.edges,
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Upper-bound estimate of quantile `q` in [0, 1]: the edge of the
    /// bucket containing the q-th ranked observation (the true max for the
    /// overflow bucket). Deterministic given identical observations.
    pub fn quantile(&self, q: f64) -> u64 {
        self.state().quantile(q)
    }
}

/// An immutable copy of one histogram's buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramState {
    pub edges: &'static [u64],
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistogramState {
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based: ceil(q * count), at
        // least 1. Integer walk over bucket cumulative counts.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return if i < self.edges.len() { self.edges[i] } else { self.max };
            }
        }
        self.max
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Bucket-wise saturating delta (for `since`). `max` keeps the later
    /// value — a max is not decomposable across snapshots.
    fn since(&self, base: &HistogramState) -> HistogramState {
        debug_assert_eq!(self.edges, base.edges);
        HistogramState {
            edges: self.edges,
            buckets: self
                .buckets
                .iter()
                .zip(base.buckets.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            max: self.max,
        }
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
}

/// A registry of named metrics. One process-global instance is reachable
/// via [`metrics()`]; tests may construct private registries.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        self.inner.lock().counters.entry(name).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        self.inner.lock().gauges.entry(name).or_default().clone()
    }

    /// The histogram named `name` with [`LATENCY_NS_EDGES`], created on
    /// first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        self.histogram_with_edges(name, LATENCY_NS_EDGES)
    }

    /// The histogram named `name`, created with `edges` on first use.
    /// Edges are fixed at creation; later calls return the existing
    /// histogram regardless of `edges`.
    pub fn histogram_with_edges(
        &self,
        name: &'static str,
        edges: &'static [u64],
    ) -> Arc<Histogram> {
        self.inner
            .lock()
            .histograms
            .entry(name)
            .or_insert_with(|| Arc::new(Histogram::new(edges)))
            .clone()
    }

    /// Consistent-enough point-in-time copy of every metric. (Individual
    /// metrics are read atomically; the set is read under the registry
    /// lock, so no metric can be created mid-snapshot.)
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(&k, v)| (k, v.get())).collect(),
            gauges: inner.gauges.iter().map(|(&k, v)| (k, v.get())).collect(),
            histograms: inner.histograms.iter().map(|(&k, v)| (k, v.state())).collect(),
        }
    }

    /// Reset every registered metric to zero (test isolation). Handles
    /// stay valid: values are cleared in place.
    pub fn reset(&self) {
        let inner = self.inner.lock();
        for c in inner.counters.values() {
            c.0.store(0, Ordering::Relaxed);
        }
        for g in inner.gauges.values() {
            g.0.store(0, Ordering::Relaxed);
        }
        for h in inner.histograms.values() {
            for b in &h.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.count.store(0, Ordering::Relaxed);
            h.sum.store(0, Ordering::Relaxed);
            h.max.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<&'static str, u64>,
    pub gauges: BTreeMap<&'static str, i64>,
    pub histograms: BTreeMap<&'static str, HistogramState>,
}

impl MetricsSnapshot {
    /// Saturating delta against an earlier snapshot, mirroring
    /// `CostSnapshot::since`: counters and histogram buckets clamp to zero
    /// rather than wrapping; gauges keep the later level (a level has no
    /// meaningful delta). Metrics absent from `base` pass through whole.
    pub fn since(&self, base: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&k, &v)| (k, v.saturating_sub(base.counters.get(k).copied().unwrap_or(0))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(&k, v)| match base.histograms.get(k) {
                    Some(b) if b.edges == v.edges => (k, v.since(b)),
                    _ => (k, v.clone()),
                })
                .collect(),
        }
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

/// The process-global metrics registry.
pub fn metrics() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = MetricsRegistry::new();
        let c = r.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("x").get(), 5);
        let g = r.gauge("q");
        g.set(7);
        g.add(-2);
        assert_eq!(r.gauge("q").get(), 5);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        static EDGES: &[u64] = &[10, 100, 1000];
        let r = MetricsRegistry::new();
        let h = r.histogram_with_edges("lat", EDGES);
        for v in [5, 7, 50, 50, 200, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5312);
        // ranks: p50 → rank 3 → bucket ≤100; p99 → rank 6 → overflow (max).
        assert_eq!(h.quantile(0.5), 100);
        assert_eq!(h.quantile(0.99), 5000);
        assert_eq!(h.quantile(0.0), 10);
        let s = r.snapshot();
        let hs = &s.histograms["lat"];
        assert_eq!(hs.buckets, vec![2, 2, 1, 1]);
        assert_eq!(hs.mean(), 885);
    }

    #[test]
    fn snapshot_since_saturates() {
        let r = MetricsRegistry::new();
        let c = r.counter("n");
        c.add(10);
        let later = r.snapshot();
        let mut fake_base = later.clone();
        fake_base.counters.insert("n", 99); // stale/ahead baseline
        let d = later.since(&fake_base);
        assert_eq!(d.counter("n"), 0); // clamped, not wrapped

        let h = r.histogram_with_edges("h", &[10]);
        h.record(5);
        let base = r.snapshot();
        h.record(5);
        h.record(50);
        let d = r.snapshot().since(&base);
        assert_eq!(d.histograms["h"].count, 2);
        assert_eq!(d.histograms["h"].buckets, vec![1, 1]);
    }

    #[test]
    fn reset_clears_in_place() {
        let r = MetricsRegistry::new();
        let c = r.counter("a");
        let h = r.histogram("b");
        c.add(3);
        h.record(9);
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        c.inc();
        assert_eq!(r.counter("a").get(), 1);
    }

    #[test]
    fn quantile_determinism_across_registries() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        for v in [3_000u64, 90_000, 90_000, 2_000_000] {
            a.histogram("l").record(v);
            b.histogram("l").record(v);
        }
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.histogram("l").quantile(q), b.histogram("l").quantile(q));
        }
    }
}
