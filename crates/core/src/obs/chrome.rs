//! Chrome trace format (Perfetto / `chrome://tracing`) exporter.
//!
//! Emits the JSON object form (`{"traceEvents": [...]}`) with:
//! - one `pid` per *process* label (one per engine),
//! - one `tid` per *track* label within a process (one per worker or
//!   device stream),
//! - `"X"` complete events for spans, `"i"` instant events,
//! - `"M"` metadata events naming every pid/tid so Perfetto shows the
//!   engine/worker labels instead of bare numbers.
//!
//! Output is byte-deterministic for a given span *set*: pids and tids are
//! assigned in sorted label order (not first-use order) and events are
//! written in [`canonical_sort`] order, so any scheduling interleaving
//! that produces the same spans produces the same bytes.

use std::collections::BTreeMap;

use super::trace::{canonical_sort, SpanKind, SpanRecord};

/// Escape `s` into `out` as a JSON string body (no surrounding quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Chrome trace timestamps are microseconds; keep full nanosecond
/// precision as a fixed three-decimal fraction (exact, never floating
/// point) so equal virtual times render as equal bytes.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render `spans` as a Chrome trace JSON document.
///
/// `spans` is taken by value: events are canonically sorted before
/// emission so the bytes depend only on the span set.
pub fn to_chrome_trace(mut spans: Vec<SpanRecord>) -> String {
    canonical_sort(&mut spans);

    // Deterministic id assignment: pids over sorted process labels, tids
    // over sorted (process, track) pairs, numbered within each process.
    let mut pids: BTreeMap<&str, u64> = BTreeMap::new();
    let mut tids: BTreeMap<(&str, &str), u64> = BTreeMap::new();
    for s in &spans {
        pids.entry(&s.process).or_insert(0);
        tids.entry((&s.process, &s.track)).or_insert(0);
    }
    for (i, v) in pids.values_mut().enumerate() {
        *v = i as u64 + 1;
    }
    {
        let mut prev_process: Option<&str> = None;
        let mut next = 0;
        for ((process, _), v) in tids.iter_mut() {
            if prev_process != Some(process) {
                prev_process = Some(process);
                next = 0;
            }
            next += 1;
            *v = next;
        }
    }

    let mut out = String::with_capacity(spans.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |ev: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&ev);
    };

    // Metadata: name every process and track.
    for (process, pid) in &pids {
        let mut ev = String::new();
        ev.push_str("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":");
        ev.push_str(&pid.to_string());
        ev.push_str(",\"tid\":0,\"ts\":0,\"args\":{\"name\":\"");
        escape_into(&mut ev, process);
        ev.push_str("\"}}");
        push_event(ev, &mut out);
    }
    for ((process, track), tid) in &tids {
        let pid = pids[process];
        let mut ev = String::new();
        ev.push_str("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":");
        ev.push_str(&pid.to_string());
        ev.push_str(",\"tid\":");
        ev.push_str(&tid.to_string());
        ev.push_str(",\"ts\":0,\"args\":{\"name\":\"");
        escape_into(&mut ev, track);
        ev.push_str("\"}}");
        push_event(ev, &mut out);
    }

    for s in &spans {
        let pid = pids[s.process.as_ref()];
        let tid = tids[&(s.process.as_ref(), s.track.as_ref())];
        let mut ev = String::new();
        match s.kind {
            SpanKind::Complete => {
                ev.push_str("{\"ph\":\"X\",\"name\":\"");
                escape_into(&mut ev, &s.name);
                ev.push_str("\",\"cat\":\"");
                escape_into(&mut ev, s.cat);
                ev.push_str("\",\"pid\":");
                ev.push_str(&pid.to_string());
                ev.push_str(",\"tid\":");
                ev.push_str(&tid.to_string());
                ev.push_str(",\"ts\":");
                ev.push_str(&micros(s.start_ns));
                ev.push_str(",\"dur\":");
                ev.push_str(&micros(s.dur_ns));
            }
            SpanKind::Instant => {
                ev.push_str("{\"ph\":\"i\",\"name\":\"");
                escape_into(&mut ev, &s.name);
                ev.push_str("\",\"cat\":\"");
                escape_into(&mut ev, s.cat);
                ev.push_str("\",\"pid\":");
                ev.push_str(&pid.to_string());
                ev.push_str(",\"tid\":");
                ev.push_str(&tid.to_string());
                ev.push_str(",\"ts\":");
                ev.push_str(&micros(s.start_ns));
                ev.push_str(",\"s\":\"t\"");
            }
        }
        if !s.args.is_empty() {
            ev.push_str(",\"args\":{");
            for (i, (k, v)) in s.args.iter().enumerate() {
                if i > 0 {
                    ev.push(',');
                }
                ev.push('"');
                escape_into(&mut ev, k);
                ev.push_str("\":\"");
                escape_into(&mut ev, v);
                ev.push('"');
            }
            ev.push('}');
        }
        ev.push('}');
        push_event(ev, &mut out);
    }

    out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::super::trace::{SpanKind, SpanRecord};
    use super::*;
    use std::borrow::Cow;

    fn span(process: &'static str, track: &'static str, name: &'static str, ts: u64) -> SpanRecord {
        SpanRecord {
            name: Cow::Borrowed(name),
            cat: "cpu",
            process: Cow::Borrowed(process),
            track: Cow::Borrowed(track),
            start_ns: ts,
            dur_ns: 10,
            id: 0,
            parent: None,
            args: Vec::new(),
            kind: SpanKind::Complete,
        }
    }

    #[test]
    fn bytes_independent_of_insertion_order() {
        let a =
            vec![span("E1", "main", "x", 5), span("E2", "w1", "y", 1), span("E1", "w2", "z", 3)];
        let mut b = a.clone();
        b.reverse();
        assert_eq!(to_chrome_trace(a), to_chrome_trace(b));
    }

    #[test]
    fn pids_and_tids_follow_sorted_labels() {
        let out = to_chrome_trace(vec![
            span("Zeta", "main", "x", 0),
            span("Alpha", "w1", "y", 0),
            span("Alpha", "w0", "y2", 0),
        ]);
        // Alpha sorts first → pid 1; its tracks w0, w1 → tid 1, 2.
        assert!(out.contains("\"args\":{\"name\":\"Alpha\"}"));
        let alpha_meta = "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"name\":\"Alpha\"}}";
        assert!(out.contains(alpha_meta), "{out}");
        assert!(out.contains(
            "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":1,\"ts\":0,\"args\":{\"name\":\"w0\"}}"
        ));
        assert!(out.contains(
            "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":2,\"ts\":0,\"args\":{\"name\":\"w1\"}}"
        ));
        assert!(out.contains(
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":2,\"tid\":0,\"ts\":0,\"args\":{\"name\":\"Zeta\"}}"
        ));
    }

    #[test]
    fn timestamps_keep_nanosecond_precision() {
        let out = to_chrome_trace(vec![span("E", "t", "x", 1_234_567)]);
        assert!(out.contains("\"ts\":1234.567"), "{out}");
        assert!(out.contains("\"dur\":0.010"), "{out}");
    }

    #[test]
    fn instants_and_args_render() {
        let mut s = span("E", "t", "hit", 42);
        s.kind = SpanKind::Instant;
        s.dur_ns = 0;
        s.args = vec![("attr", "3".to_string()), ("quote\"", "a\nb".to_string())];
        let out = to_chrome_trace(vec![s]);
        assert!(out.contains("\"ph\":\"i\""));
        assert!(out.contains("\"s\":\"t\""));
        assert!(out.contains("\"attr\":\"3\""));
        assert!(out.contains("\"quote\\\"\":\"a\\nb\""));
    }

    #[test]
    fn output_is_valid_enough_json() {
        // Brace/bracket balance + required keys on every event line.
        let out = to_chrome_trace(vec![span("E", "t", "x", 1), span("E", "t", "y", 2)]);
        let depth = out.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
        for line in out.lines().filter(|l| l.starts_with('{') && l.contains("\"ph\"")) {
            for key in ["\"ph\"", "\"ts\"", "\"pid\"", "\"tid\"", "\"name\""] {
                assert!(line.contains(key), "missing {key} in {line}");
            }
        }
    }
}
