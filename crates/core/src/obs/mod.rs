//! Observability: virtual-time span tracing, a metrics registry, and
//! exporters (Chrome trace JSON, EXPLAIN text breakdowns).
//!
//! Everything in this module runs on *virtual* time — the `CostLedger`
//! wall clock and `SimStream` cursors — never `Instant::now()`, so a
//! trace is a deterministic artifact of the seed, not of host scheduling.
//! See DESIGN.md §11 for the taxonomy and naming convention.
//!
//! Quick tour:
//!
//! ```
//! use htapg_core::obs;
//! use std::sync::Arc;
//!
//! let clock = Arc::new(obs::ManualClock::new());
//! let tracer = obs::Tracer::new(clock.clone());
//! obs::install(tracer.clone());
//!
//! {
//!     let mut s = obs::span("query", "query.olap.sum_column");
//!     clock.advance(1_000);
//!     s.arg("rows", 4096);
//! }
//! obs::metrics().counter("demo.ops").inc();
//!
//! obs::uninstall();
//! let json = obs::to_chrome_trace(tracer.drain());
//! assert!(json.contains("query.olap.sum_column"));
//! ```

mod chrome;
mod explain;
mod metrics;
mod trace;

pub use chrome::to_chrome_trace;
pub use explain::{Residual, SpanNode, TraceReport};
pub use metrics::{
    metrics, Counter, Gauge, Histogram, HistogramState, MetricsRegistry, MetricsSnapshot,
    LATENCY_NS_EDGES,
};
pub use trace::{
    canonical_sort, current, current_process, enabled, install, instant, instant_with,
    process_scope, span, span_at, span_named, track_scope, uninstall, ManualClock, ProcessScope,
    SpanGuard, SpanKind, SpanRecord, Tracer, TrackScope, VirtualClock,
};
