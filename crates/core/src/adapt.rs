//! Workload tracking and layout advice — the machinery behind *responsive*
//! layout adaptability (Section III: "During runtime, a flexible storage
//! engine might react to changes in the workload and adapt fragments of a
//! certain layout").
//!
//! [`AccessStats`] records which attributes are scanned, which are co-read
//! record-centrically, and how often. [`Advisor`] turns those statistics
//! into a [`LayoutTemplate`]: co-accessed attributes are clustered into
//! NSM groups (HYRISE/H₂O style), scan-dominated attributes are broken out
//! into thin columns, and the result is ranked with the cache cost model.

use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::costmodel::{self, CacheSpec};
use crate::layout::{GroupOrder, LayoutTemplate, VerticalGroup};
use crate::obs;
use crate::schema::{AttrId, Schema};

/// Lock-free per-attribute counters plus a co-access matrix.
#[derive(Debug)]
pub struct AccessStats {
    arity: usize,
    /// Full-column scans per attribute.
    scans: Vec<AtomicU64>,
    /// Point (record-centric) reads per attribute.
    point_reads: Vec<AtomicU64>,
    /// Field updates per attribute.
    updates: Vec<AtomicU64>,
    /// Upper-triangular co-access counts: `co[i][j]` for `i < j` counts
    /// record reads touching both attributes.
    co_access: Mutex<Vec<Vec<u64>>>,
}

impl AccessStats {
    pub fn new(arity: usize) -> Self {
        AccessStats {
            arity,
            scans: (0..arity).map(|_| AtomicU64::new(0)).collect(),
            point_reads: (0..arity).map(|_| AtomicU64::new(0)).collect(),
            updates: (0..arity).map(|_| AtomicU64::new(0)).collect(),
            co_access: Mutex::new(vec![vec![0; arity]; arity]),
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Record a full-column scan of `attr`.
    pub fn record_scan(&self, attr: AttrId) {
        if let Some(c) = self.scans.get(attr as usize) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a record-centric read touching `attrs`.
    pub fn record_point_read(&self, attrs: &[AttrId]) {
        for &a in attrs {
            if let Some(c) = self.point_reads.get(a as usize) {
                c.fetch_add(1, Ordering::Relaxed);
            }
        }
        if attrs.len() > 1 {
            let mut co = self.co_access.lock();
            for (i, &a) in attrs.iter().enumerate() {
                for &b in &attrs[i + 1..] {
                    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
                    co[lo as usize][hi as usize] += 1;
                }
            }
        }
    }

    /// Record a field update of `attr`.
    pub fn record_update(&self, attr: AttrId) {
        if let Some(c) = self.updates.get(attr as usize) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn scans(&self, attr: AttrId) -> u64 {
        self.scans[attr as usize].load(Ordering::Relaxed)
    }

    pub fn point_reads(&self, attr: AttrId) -> u64 {
        self.point_reads[attr as usize].load(Ordering::Relaxed)
    }

    pub fn updates(&self, attr: AttrId) -> u64 {
        self.updates[attr as usize].load(Ordering::Relaxed)
    }

    pub fn total_scans(&self) -> u64 {
        self.scans.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    pub fn total_point_reads(&self) -> u64 {
        self.point_reads.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    fn co_access_snapshot(&self) -> Vec<Vec<u64>> {
        self.co_access.lock().clone()
    }

    /// Exponentially decay all counters (so the advisor tracks workload
    /// *shifts* rather than lifetime totals).
    pub fn decay(&self, factor: f64) {
        let scale = |c: &AtomicU64| {
            let v = c.load(Ordering::Relaxed);
            c.store((v as f64 * factor) as u64, Ordering::Relaxed);
        };
        self.scans.iter().for_each(scale);
        self.point_reads.iter().for_each(scale);
        self.updates.iter().for_each(scale);
        let mut co = self.co_access.lock();
        for row in co.iter_mut() {
            for v in row.iter_mut() {
                *v = (*v as f64 * factor) as u64;
            }
        }
    }

    /// Reset all counters.
    pub fn reset(&self) {
        self.scans.iter().for_each(|c| c.store(0, Ordering::Relaxed));
        self.point_reads.iter().for_each(|c| c.store(0, Ordering::Relaxed));
        self.updates.iter().for_each(|c| c.store(0, Ordering::Relaxed));
        let mut co = self.co_access.lock();
        for row in co.iter_mut() {
            row.fill(0);
        }
    }
}

/// Configuration of the layout advisor.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    pub cache: CacheSpec,
    /// Attributes whose scan share exceeds this fraction of their total
    /// accesses become thin columns.
    pub scan_dominance: f64,
    /// Minimum co-access affinity (relative to the busier attribute) to
    /// cluster two attributes into the same NSM group.
    pub affinity_threshold: f64,
    /// Chunk rows for the produced template (`None` = unchunked).
    pub chunk_rows: Option<u64>,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            cache: CacheSpec::default(),
            scan_dominance: 0.5,
            affinity_threshold: 0.5,
            chunk_rows: None,
        }
    }
}

/// A layout recommendation with its predicted costs.
#[derive(Debug, Clone)]
pub struct Recommendation {
    pub template: LayoutTemplate,
    /// Predicted ns of the observed workload under the recommended template.
    pub predicted_ns: f64,
    /// Predicted ns under the current template (for the improvement test).
    pub current_ns: f64,
}

impl Recommendation {
    /// Fractional improvement (0.25 = 25 % cheaper than current).
    pub fn improvement(&self) -> f64 {
        if self.current_ns <= 0.0 {
            return 0.0;
        }
        1.0 - self.predicted_ns / self.current_ns
    }
}

/// The layout advisor: statistics → candidate templates → cost-ranked pick.
#[derive(Debug, Clone, Default)]
pub struct Advisor {
    pub config: AdvisorConfig,
    /// Learned cost corrections shared with the planner
    /// ([`crate::calibrate::CalibrationProfiles`]); `None` keeps
    /// predictions on the uncorrected analytic model.
    calibration: Option<std::sync::Arc<crate::calibrate::CalibrationProfiles>>,
}

impl Advisor {
    pub fn new(config: AdvisorConfig) -> Self {
        Advisor { config, calibration: None }
    }

    /// Scale future predictions by the planner's learned correction
    /// factors: scan-shaped work by the host aggregate factors,
    /// record-centric work by the point-read factor. Until a route is
    /// warmed its factor is identity, so an uncalibrated advisor is
    /// bit-identical to the default one.
    pub fn with_calibration(
        mut self,
        profiles: std::sync::Arc<crate::calibrate::CalibrationProfiles>,
    ) -> Self {
        self.calibration = Some(profiles);
        self
    }

    /// Build the greedy clustered template from statistics:
    /// scan-dominated attributes → thin columns; remaining attributes →
    /// NSM groups clustered by co-access affinity.
    pub fn cluster(&self, schema: &Schema, stats: &AccessStats) -> LayoutTemplate {
        let arity = schema.arity();
        let co = stats.co_access_snapshot();
        let mut is_thin = vec![false; arity];
        for (a, thin) in is_thin.iter_mut().enumerate() {
            let scans = stats.scans(a as AttrId);
            let points = stats.point_reads(a as AttrId);
            let total = scans + points;
            if total > 0 && (scans as f64 / total as f64) >= self.config.scan_dominance {
                *thin = true;
            }
        }
        // Greedy agglomerative clustering of the non-thin attributes.
        let mut group_of: Vec<Option<usize>> = vec![None; arity];
        let mut groups: Vec<Vec<AttrId>> = Vec::new();
        let mut order: Vec<usize> = (0..arity).filter(|&a| !is_thin[a]).collect();
        order.sort_by_key(|&a| std::cmp::Reverse(stats.point_reads(a as AttrId)));
        for a in order {
            // Find the existing group with the strongest affinity to `a`.
            let mut best: Option<(usize, f64)> = None;
            for (gi, g) in groups.iter().enumerate() {
                let affinity: u64 = g
                    .iter()
                    .map(|&b| {
                        let (lo, hi) =
                            if (a as AttrId) < b { (a, b as usize) } else { (b as usize, a) };
                        co[lo][hi]
                    })
                    .sum();
                let denom = stats.point_reads(a as AttrId).max(1) as f64 * g.len() as f64;
                let score = affinity as f64 / denom;
                if best.is_none_or(|(_, s)| score > s) {
                    best = Some((gi, score));
                }
            }
            match best {
                Some((gi, score)) if score >= self.config.affinity_threshold => {
                    groups[gi].push(a as AttrId);
                    group_of[a] = Some(gi);
                }
                _ => {
                    group_of[a] = Some(groups.len());
                    groups.push(vec![a as AttrId]);
                }
            }
        }
        let mut vgs: Vec<VerticalGroup> = Vec::new();
        for g in groups {
            let order = if g.len() == 1 { GroupOrder::ThinPerAttr } else { GroupOrder::Nsm };
            vgs.push(VerticalGroup::new(g, order));
        }
        let thin_attrs: Vec<AttrId> =
            (0..arity).filter(|&a| is_thin[a]).map(|a| a as AttrId).collect();
        if !thin_attrs.is_empty() {
            vgs.push(VerticalGroup::new(thin_attrs, GroupOrder::ThinPerAttr));
        }
        if vgs.is_empty() {
            return LayoutTemplate::nsm(schema);
        }
        LayoutTemplate::grouped(vgs, self.config.chunk_rows)
    }

    /// Predicted cost of the observed workload under `template`.
    pub fn predict_ns(
        &self,
        schema: &Schema,
        stats: &AccessStats,
        template: &LayoutTemplate,
        rows: u64,
    ) -> f64 {
        let scan_w: Vec<f64> =
            (0..schema.arity()).map(|a| stats.scans(a as AttrId) as f64).collect();
        let record_w = stats.total_point_reads() as f64 / schema.arity().max(1) as f64;
        let (scan_ns, record_ns) = costmodel::workload_ns_split(
            schema,
            template,
            &scan_w,
            record_w,
            rows,
            &self.config.cache,
        );
        match &self.calibration {
            Some(cal) => {
                let scan_f = cal
                    .mean_factor("plan.aggregate.sum", &["inline-volcano", "host-pooled-morsel"]);
                let record_f = cal.mean_factor("plan.point_read", &["inline-volcano"]);
                scan_ns * scan_f + record_ns * record_f
            }
            None => scan_ns + record_ns,
        }
    }

    /// Recommend a layout for the observed workload, comparing standard
    /// candidates (NSM, DSM-emulated) and the clustered template against the
    /// current one.
    pub fn recommend(
        &self,
        schema: &Schema,
        stats: &AccessStats,
        current: &LayoutTemplate,
        rows: u64,
    ) -> Recommendation {
        let mut span = obs::span("adapt", "adapt.recommend");
        let current_ns = self.predict_ns(schema, stats, current, rows);
        let mut candidates = vec![
            LayoutTemplate::nsm(schema),
            LayoutTemplate::dsm_emulated(schema),
            self.cluster(schema, stats),
        ];
        if let Some(chunk) = self.config.chunk_rows {
            candidates.push(LayoutTemplate::pax(schema, chunk));
        }
        let (template, predicted_ns) = candidates
            .into_iter()
            .map(|t| {
                let cost = self.predict_ns(schema, stats, &t, rows);
                (t, cost)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("non-empty candidates");
        let rec = Recommendation { template, predicted_ns, current_ns };
        obs::metrics().counter("adapt.recommendations").inc();
        if span.is_recording() {
            // The AccessStats evidence that produced the advice.
            span.arg("total_scans", stats.total_scans());
            span.arg("total_point_reads", stats.total_point_reads());
            span.arg("rows", rows);
            span.arg("groups", rec.template.groups.len());
            span.arg("improvement", format!("{:.4}", rec.improvement()));
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn schema() -> Schema {
        let mut attrs = vec![("pk", DataType::Int64), ("price", DataType::Float64)];
        for _ in 0..8 {
            attrs.push(("f", DataType::Int32));
        }
        Schema::of(&attrs)
    }

    #[test]
    fn scan_heavy_workload_recommends_columns() {
        let s = schema();
        let stats = AccessStats::new(s.arity());
        for _ in 0..1000 {
            stats.record_scan(1);
        }
        let adv = Advisor::default();
        let rec = adv.recommend(&s, &stats, &LayoutTemplate::nsm(&s), 1_000_000);
        assert!(rec.improvement() > 0.5, "improvement {}", rec.improvement());
        // The winning template stores `price` as a thin column.
        let price_group = rec.template.groups.iter().find(|g| g.attrs.contains(&1)).unwrap();
        assert!(
            price_group.order == GroupOrder::ThinPerAttr || price_group.attrs.len() == 1,
            "price should be scannable in isolation: {:?}",
            rec.template
        );
    }

    #[test]
    fn point_heavy_workload_recommends_rows() {
        let s = schema();
        let stats = AccessStats::new(s.arity());
        let all: Vec<AttrId> = s.attr_ids().collect();
        for _ in 0..1000 {
            stats.record_point_read(&all);
        }
        let adv = Advisor::default();
        let rec = adv.recommend(&s, &stats, &LayoutTemplate::dsm_emulated(&s), 1_000_000);
        assert!(rec.improvement() > 0.0);
        // All attributes cluster into one NSM group.
        assert_eq!(rec.template.groups.len(), 1);
        assert_eq!(rec.template.groups[0].order, GroupOrder::Nsm);
    }

    #[test]
    fn mixed_workload_splits_hot_scan_column_from_record_group() {
        let s = schema();
        let stats = AccessStats::new(s.arity());
        let record_attrs: Vec<AttrId> = s.attr_ids().filter(|&a| a != 1).collect();
        for _ in 0..500 {
            stats.record_scan(1);
            stats.record_point_read(&record_attrs);
        }
        let adv = Advisor::default();
        let t = adv.cluster(&s, &stats);
        // price (attr 1) must sit alone; the others must share a fat group.
        let price_alone = t.groups.iter().any(|g| {
            g.attrs == vec![1] || (g.order == GroupOrder::ThinPerAttr && g.attrs.contains(&1))
        });
        assert!(price_alone, "{t:?}");
        let fat = t.groups.iter().find(|g| g.order == GroupOrder::Nsm).unwrap();
        assert!(fat.attrs.len() >= record_attrs.len());
        t.validate(&s).unwrap();
    }

    #[test]
    fn decay_and_reset() {
        let stats = AccessStats::new(3);
        for _ in 0..100 {
            stats.record_scan(0);
            stats.record_point_read(&[1, 2]);
        }
        stats.decay(0.5);
        assert_eq!(stats.scans(0), 50);
        assert_eq!(stats.point_reads(1), 50);
        stats.reset();
        assert_eq!(stats.scans(0), 0);
        assert_eq!(stats.total_point_reads(), 0);
    }

    #[test]
    fn cluster_template_always_validates() {
        let s = schema();
        let stats = AccessStats::new(s.arity());
        // Adversarial mixture.
        for i in 0..s.arity() {
            for _ in 0..(i * 13 % 7) {
                stats.record_scan(i as AttrId);
            }
        }
        stats.record_point_read(&[0, 3, 5]);
        stats.record_point_read(&[2, 3]);
        let t = Advisor::default().cluster(&s, &stats);
        t.validate(&s).unwrap();
    }

    #[test]
    fn calibrated_advisor_scales_predictions_by_learned_factors() {
        let s = schema();
        let stats = AccessStats::new(s.arity());
        for _ in 0..100 {
            stats.record_scan(1);
        }
        let t = LayoutTemplate::dsm_emulated(&s);
        let base = Advisor::default();
        let profiles = std::sync::Arc::new(crate::calibrate::CalibrationProfiles::new());
        let calibrated = Advisor::default().with_calibration(profiles.clone());
        // Unwarmed calibration is bit-identical to none.
        let raw = base.predict_ns(&s, &stats, &t, 100_000);
        assert_eq!(raw.to_bits(), calibrated.predict_ns(&s, &stats, &t, 100_000).to_bits());
        // Teach it "host scans run 2x the estimate" and the prediction
        // doubles; point-read factors must not leak into scan work.
        for _ in 0..8 {
            profiles.observe("plan.aggregate.sum", "inline-volcano", 1_000_000, 2_000_000);
            profiles.observe("plan.point_read", "inline-volcano", 1_000_000, 10_000_000);
        }
        let corrected = calibrated.predict_ns(&s, &stats, &t, 100_000);
        assert!((corrected / raw - 2.0).abs() < 1e-9, "corrected={corrected} raw={raw}");
    }

    #[test]
    fn empty_stats_fall_back_to_nsm_like_template() {
        let s = schema();
        let stats = AccessStats::new(s.arity());
        let t = Advisor::default().cluster(&s, &stats);
        t.validate(&s).unwrap();
    }
}
