//! Logical → physical query planning with a cost-based host/device router.
//!
//! The paper's central argument (Section II, Figure 2) is that no single
//! storage model × threading policy × compute platform wins for hybrid
//! workloads — the winner must be *chosen per query* from workload and
//! layout evidence. This module turns that argument into an executable
//! policy: a small logical IR ([`LogicalPlan`]), a physical tree annotated
//! with the chosen [`Route`] and [`ScanStrategy`] plus estimated virtual
//! nanoseconds ([`PhysicalPlan`]), and a router ([`build_plan`]) that
//! chooses from three pieces of evidence:
//!
//! * the **cache cost model** ([`crate::costmodel::CacheSpec`]) prices the
//!   host scan — sequential line streaming for contiguous columns, a full
//!   miss per row for strided (NSM) storage;
//! * a **device cost profile** ([`DeviceCostProfile`], mirroring the
//!   simulated device's transfer/kernel model) prices the offload,
//!   including the double-buffered overlap of upload and partial
//!   reduction;
//! * **column warmth**: a fresh device replica answers with kernel time
//!   only and zero `bytes_to_device`, so a warm cache flips the router to
//!   the device even when a cold upload would not pay off.
//!
//! Engines feed the router through [`EngineCapabilities`] (derived from
//! their Table 1 [`Classification`]) and per-column
//! [`ColumnEvidence`] / [`TableEvidence`] callbacks; the default
//! implementations live on `StorageEngine` and are overridable, so
//! device-backed engines report live cache warmth and
//! multi-layout engines (Fractured Mirrors) advertise a per-plan mirror
//! choice — the DSM replica for scans, the NSM replica for record
//! materialization.

use crate::costmodel::CacheSpec;
use crate::error::{Error, Result};
use crate::schema::{AttrId, RelationId, RowId};
use crate::types::{DataType, Value};
use htapg_taxonomy::{
    Classification, FragmentLinearization, FragmentScheme, LayoutHandling, ProcessorSupport,
};

/// Largest input (rows) still executed inline on the issuing thread; above
/// this the host route goes through the morsel pool. Mirrors
/// `htapg_exec::pool::MORSEL_ROWS` (one morsel), asserted equal by an exec
/// test — a ≤1-morsel input would be inlined by `run_morsels` anyway, so
/// planning it onto the pool would only add dispatch noise.
pub const INLINE_MORSEL_ROWS: u64 = 1 << 16;

// The canonical reduction geometry (mirrors `htapg_device::kernels`; the
// exec layer asserts the constants agree). The router needs it to price
// the two-pass reduction a device route would launch.
const REDUCE_GRID: u64 = 1024;
const REDUCE_BLOCK: u64 = 512;
const FINAL_BLOCK: u64 = 1024;

fn reduce_segments(rows: u64) -> u64 {
    if rows == 0 {
        return 0;
    }
    let seg_len = rows.div_ceil(REDUCE_GRID).max(1);
    rows.div_ceil(seg_len)
}

/// Aggregate kinds the IR supports (the paper's "sum prices" and the
/// workload's per-district group-by).
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateKind {
    /// Sum one numeric column.
    Sum,
    /// Per-group sums of the scanned column, grouped by an integer key
    /// column of the same relation; results ordered by key.
    GroupSum { key_attr: AttrId },
}

/// Value predicate for `Filter` nodes. A closed enum (not a closure) so
/// plans stay `Clone + Debug`-able and renderable; the executor lowers it
/// to the fused filter+sum kernel's `Fn(f64) -> bool`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// Keep values `>= x`.
    Ge(f64),
    /// Keep values `< x`.
    Lt(f64),
    /// Keep values in `[lo, hi)`.
    Between(f64, f64),
}

impl Predicate {
    pub fn matches(&self, v: f64) -> bool {
        match *self {
            Predicate::Ge(x) => v >= x,
            Predicate::Lt(x) => v < x,
            Predicate::Between(lo, hi) => v >= lo && v < hi,
        }
    }

    pub fn label(&self) -> String {
        match *self {
            Predicate::Ge(x) => format!(">={x}"),
            Predicate::Lt(x) => format!("<{x}"),
            Predicate::Between(lo, hi) => format!("[{lo},{hi})"),
        }
    }
}

/// The logical IR. One node per access-pattern extreme of Section II plus
/// the relational glue: scans feed filters/aggregates, `Materialize` is the
/// record-centric Q1, `PointRead`/`Update` are the OLTP primitives.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Attribute-centric scan of one column.
    Scan { rel: RelationId, attr: AttrId },
    /// Keep only input values matching the predicate.
    Filter { input: Box<LogicalPlan>, pred: Predicate },
    /// Keep only the named attributes of materialized records.
    Project { input: Box<LogicalPlan>, attrs: Vec<AttrId> },
    /// Aggregate the input column.
    Aggregate { input: Box<LogicalPlan>, agg: AggregateKind },
    /// Record-centric materialization of a position list.
    Materialize { rel: RelationId, rows: Vec<RowId> },
    /// Read one full record.
    PointRead { rel: RelationId, row: RowId },
    /// Update one field in place.
    Update { rel: RelationId, row: RowId, attr: AttrId, value: Value },
}

impl LogicalPlan {
    /// `SUM(attr)` over a full scan.
    pub fn sum(rel: RelationId, attr: AttrId) -> Self {
        LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Scan { rel, attr }),
            agg: AggregateKind::Sum,
        }
    }

    /// `SUM(attr) WHERE pred(attr)` — the fused filter+sum shape.
    pub fn filter_sum(rel: RelationId, attr: AttrId, pred: Predicate) -> Self {
        LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(LogicalPlan::Scan { rel, attr }),
                pred,
            }),
            agg: AggregateKind::Sum,
        }
    }

    /// `SUM(value_attr) GROUP BY key_attr`, ordered by key.
    pub fn group_sum(rel: RelationId, key_attr: AttrId, value_attr: AttrId) -> Self {
        LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Scan { rel, attr: value_attr }),
            agg: AggregateKind::GroupSum { key_attr },
        }
    }
}

/// Execution route chosen by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Offload to the simulated device (pipelined upload when cold, kernel
    /// only when the column cache is warm).
    DevicePipelined,
    /// Morsel-driven execution on the persistent host pool.
    HostPooledMorsel,
    /// Tuple-at-a-time interpretation inline on the issuing thread — the
    /// right choice for point ops and sub-morsel inputs.
    InlineVolcano,
    /// Fan the aggregate out to `shards` cluster nodes as per-shard
    /// partial aggregates; a [`PhysicalOp::Gather`] child merges the
    /// partials in canonical shard order (DESIGN.md §15).
    Scatter { shards: u16 },
}

impl Route {
    pub fn label(&self) -> &'static str {
        match self {
            Route::DevicePipelined => "device-pipelined",
            Route::HostPooledMorsel => "host-pooled-morsel",
            Route::InlineVolcano => "inline-volcano",
            // One calibration key for all shard counts: the residuals a
            // scatter accumulates are network-dominated and do not alias
            // the local routes above.
            Route::Scatter { .. } => "scatter",
        }
    }
}

/// How a host scan reads the column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStrategy {
    /// Stream contiguous fixed-width blocks (`with_column_bytes`).
    ContiguousBytes,
    /// Per-value visit (`scan_column`) — the only option for strided NSM
    /// storage or overlay-patched snapshots.
    ValueVisit,
}

impl ScanStrategy {
    pub fn label(&self) -> &'static str {
        match self {
            ScanStrategy::ContiguousBytes => "contiguous-bytes",
            ScanStrategy::ValueVisit => "value-visit",
        }
    }
}

/// Physical operator, mirroring [`LogicalPlan`] with the planning
/// decisions attached at the node ([`PhysicalNode`]).
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalOp {
    Scan {
        rel: RelationId,
        attr: AttrId,
    },
    Filter {
        pred: Predicate,
    },
    Project {
        attrs: Vec<AttrId>,
    },
    AggregateSum,
    AggregateGroupSum {
        key_attr: AttrId,
    },
    Materialize {
        rel: RelationId,
        rows: Vec<RowId>,
    },
    PointRead {
        rel: RelationId,
        row: RowId,
    },
    Update {
        rel: RelationId,
        row: RowId,
        attr: AttrId,
        value: Value,
    },
    /// Merge per-shard partial aggregates in canonical shard order. Only
    /// appears under a [`Route::Scatter`] aggregate root; its children are
    /// the per-shard aggregate subtrees, ordered by node id.
    Gather {
        shards: u16,
    },
}

impl PhysicalOp {
    /// Stable span/report name for this operator.
    pub fn span_name(&self) -> &'static str {
        match self {
            PhysicalOp::Scan { .. } => "plan.scan",
            PhysicalOp::Filter { .. } => "plan.filter",
            PhysicalOp::Project { .. } => "plan.project",
            PhysicalOp::AggregateSum => "plan.aggregate.sum",
            PhysicalOp::AggregateGroupSum { .. } => "plan.aggregate.group_sum",
            PhysicalOp::Materialize { .. } => "plan.materialize",
            PhysicalOp::PointRead { .. } => "plan.point_read",
            PhysicalOp::Update { .. } => "plan.update",
            PhysicalOp::Gather { .. } => "plan.gather",
        }
    }
}

/// One node of the physical tree: the operator plus every routing decision
/// and estimate the EXPLAIN output reports.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalNode {
    pub op: PhysicalOp,
    pub route: Route,
    /// How a host-side scan would read this node's column (annotated even
    /// on device routes — it is the fallback strategy).
    pub strategy: ScanStrategy,
    /// Estimated virtual ns for this node *including* children (same
    /// inclusive accounting as the span tree it is compared against).
    /// Calibrated when the planner context carries warmed
    /// [`crate::calibrate::CalibrationProfiles`].
    pub estimated_ns: u64,
    /// The uncalibrated estimate the cost model produced. Residual
    /// feedback is keyed on this value, so corrections never compound on
    /// top of already-corrected estimates. Equal to `estimated_ns` when no
    /// (warmed) calibration applies.
    pub raw_estimated_ns: u64,
    /// PCIe bytes this node is expected to move host→device (zero for
    /// host routes and warm device columns).
    pub bytes_to_device: u64,
    /// Input rows.
    pub rows: u64,
    /// For engines advertising per-plan mirror choice (Fractured
    /// Mirrors): which replica serves this node.
    pub mirror: Option<&'static str>,
    /// Rows per placement fragment when this node executes under sharded
    /// reduction geometry (per-fragment partials merged in global fragment
    /// order); `0` means the flat single-node geometry.
    pub partition_rows: u64,
    pub children: Vec<PhysicalNode>,
}

/// A routed physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    pub root: PhysicalNode,
}

impl PhysicalPlan {
    /// Estimated virtual ns of the whole plan.
    pub fn estimated_ns(&self) -> u64 {
        self.root.estimated_ns
    }

    /// The root route (what EXPLAIN and the planner bench report).
    pub fn route(&self) -> Route {
        self.root.route
    }

    /// Total PCIe bytes the plan expects to move host→device.
    pub fn bytes_to_device(&self) -> u64 {
        fn walk(n: &PhysicalNode) -> u64 {
            n.bytes_to_device + n.children.iter().map(walk).sum::<u64>()
        }
        walk(&self.root)
    }

    /// Indented one-line-per-node rendering (EXPLAIN-style, but without
    /// actuals — those come from the span tree after execution).
    pub fn render(&self) -> String {
        fn walk(out: &mut String, n: &PhysicalNode, depth: usize) {
            out.push_str(&format!(
                "{:indent$}- {} route={} scan={} est={}ns rows={}",
                "",
                n.op.span_name(),
                n.route.label(),
                n.strategy.label(),
                n.estimated_ns,
                n.rows,
                indent = depth * 2
            ));
            if n.bytes_to_device > 0 {
                out.push_str(&format!(" bytes_to_device={}", n.bytes_to_device));
            }
            if let Some(m) = n.mirror {
                out.push_str(&format!(" mirror={m}"));
            }
            if n.partition_rows > 0 {
                out.push_str(&format!(" part_rows={}", n.partition_rows));
            }
            if let PhysicalOp::Gather { shards } = &n.op {
                out.push_str(&format!(" shards={shards}"));
            }
            if let PhysicalOp::Filter { pred } = &n.op {
                out.push_str(&format!(" pred={}", pred.label()));
            }
            out.push('\n');
            for c in &n.children {
                walk(out, c, depth + 1);
            }
        }
        let mut out = String::new();
        walk(&mut out, &self.root, 0);
        out
    }
}

/// What an engine can do, derived from its Table 1 [`Classification`].
/// This is the taxonomy made executable: the router consults capabilities,
/// not engine names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCapabilities {
    /// Engine can place columns in device memory (GPUTx, CoGaDB, the
    /// reference design) — required for any device route.
    pub device_placement: bool,
    /// Columns are available as contiguous fixed-width blocks (DSM-side
    /// linearizations), enabling the contiguous-bytes scan strategy.
    pub contiguous_scan: bool,
    /// Replicated multi-layout storage (Fractured Mirrors): the planner
    /// may pick a replica per node — DSM for scans, NSM for materialize.
    pub mirror_choice: bool,
}

impl EngineCapabilities {
    pub fn from_classification(c: &Classification) -> Self {
        let device_placement =
            matches!(c.processor_support, ProcessorSupport::Gpu | ProcessorSupport::CpuGpu);
        // Pure-NSM linearizations have no contiguous column form; every
        // other row of Table 1 exposes at least one DSM-shaped fragment.
        let contiguous_scan = !matches!(
            c.fragment_linearization,
            FragmentLinearization::FatNsmFixed | FragmentLinearization::ThinNsmEmulated
        );
        let mirror_choice = matches!(
            c.layout_handling,
            LayoutHandling::MultiBuiltIn | LayoutHandling::MultiEmulated
        ) && c.fragment_scheme == FragmentScheme::ReplicationBased
            && c.fragment_linearization.covers_nsm_and_dsm();
        EngineCapabilities { device_placement, contiguous_scan, mirror_choice }
    }
}

/// Device cost parameters the router prices offloads with. A plain mirror
/// of the simulated `DeviceSpec` (core cannot depend on `htapg-device`);
/// device-backed engines build one from their spec via
/// `DeviceSpec::cost_profile()`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceCostProfile {
    /// Host↔device bandwidth, bytes/s.
    pub pcie_bandwidth: f64,
    /// Fixed latency per transfer, ns.
    pub pcie_latency_ns: u64,
    /// Fixed overhead per kernel launch, ns.
    pub kernel_launch_ns: u64,
    /// Device-memory bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Core clock, Hz.
    pub clock_hz: f64,
    /// Total parallel lanes.
    pub lanes: u64,
}

impl DeviceCostProfile {
    /// Virtual ns to move `bytes` host→device (one transfer).
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.pcie_latency_ns + (bytes as f64 / self.pcie_bandwidth * 1e9) as u64
    }

    /// `launch + max(compute, memory)` — the same model as
    /// `DeviceSpec::kernel_ns`.
    fn kernel_ns(&self, threads: u64, work_items: u64, cycles_per_item: f64, bytes: u64) -> u64 {
        let active = threads.min(self.lanes).max(1);
        let waves = work_items.div_ceil(active);
        let compute_s = waves as f64 * cycles_per_item / self.clock_hz;
        let memory_s = bytes as f64 / self.mem_bandwidth;
        self.kernel_launch_ns + (compute_s.max(memory_s) * 1e9) as u64
    }

    /// Pass 1 of the canonical two-pass reduction (`predicated` prices the
    /// fused filter+sum variant's extra cycle per item).
    pub fn reduce_pass1_ns(&self, rows: u64, predicated: bool) -> u64 {
        let cycles = if predicated { 5.0 } else { 4.0 };
        self.kernel_ns(REDUCE_GRID * REDUCE_BLOCK, rows.max(1), cycles, rows * 8)
    }

    /// Pass 2: final combine of the pass-1 partials.
    pub fn reduce_final_ns(&self, rows: u64) -> u64 {
        let segs = reduce_segments(rows).max(1);
        self.kernel_ns(FINAL_BLOCK, segs, 4.0, segs * 8)
    }

    /// Kernel-only cost of summing a resident column (the warm-cache
    /// route).
    pub fn warm_sum_ns(&self, rows: u64, predicated: bool) -> u64 {
        self.reduce_pass1_ns(rows, predicated) + self.reduce_final_ns(rows)
    }

    /// Cost of a cold offload sum: the double-buffered pipeline overlaps
    /// upload with partial reduction, so the critical path is
    /// `max(transfer, pass 1) + final`.
    pub fn cold_sum_ns(&self, rows: u64, predicated: bool) -> u64 {
        self.transfer_ns(rows * 8).max(self.reduce_pass1_ns(rows, predicated))
            + self.reduce_final_ns(rows)
    }

    /// Cost of summing a delta-stale replica: ship `stale_rows` coalesced
    /// `(row, value)` pairs over PCIe overlapped with the scatter kernel,
    /// then the warm-replica reduction. Crosses over `cold_sum_ns` once
    /// the pair bytes approach the full column (≈ half the rows, since a
    /// pair is twice a value).
    pub fn delta_merge_sum_ns(&self, rows: u64, stale_rows: u64, predicated: bool) -> u64 {
        let ship = self.transfer_ns(stale_rows * DELTA_PAIR_BYTES);
        let scatter = self.kernel_ns(
            REDUCE_GRID * REDUCE_BLOCK,
            stale_rows.max(1),
            8.0,
            stale_rows * (DELTA_PAIR_BYTES + 8),
        );
        ship.max(scatter) + self.warm_sum_ns(rows, predicated)
    }
}

/// Bytes per shipped delta pair (`u64` row + `f64` value) — must match the
/// device-side encoding in `htapg_device::kernels`.
pub const DELTA_PAIR_BYTES: u64 = 16;

/// Fragments per contiguous run under range sharding. Striping runs of
/// this many fragments round-robin across nodes keeps range placement
/// balanced as relations grow, while preserving locality of adjacent
/// fragments — and the assignment of existing fragments never changes when
/// rows are appended.
pub const RANGE_STRIPE_FRAGMENTS: u64 = 8;

/// Wire size of a scatter request (relation, attribute, predicate, op tag)
/// — the fixed header every shard RPC pays before its response bytes.
pub const SCATTER_REQUEST_BYTES: u64 = 64;

/// Response bytes per fragment for a scattered sum: one `f64` partial per
/// fragment, shipped so the gather can merge in global fragment order.
pub const SUM_PARTIAL_BYTES: u64 = 8;

/// Response bytes per fragment for a scattered group-sum: priced as one
/// `(i64 key, f64 partial)` pair plus a length per fragment; the true
/// count depends on group cardinality, unknown at plan time.
pub const GROUP_PARTIAL_BYTES: u64 = 24;

/// How fragments map to cluster nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardingKind {
    /// `splitmix64(seed ^ fragment) % nodes` — uniform, seed-keyed.
    Hash,
    /// Contiguous stripes of [`RANGE_STRIPE_FRAGMENTS`] fragments,
    /// round-robin across nodes.
    Range,
}

impl ShardingKind {
    pub fn label(&self) -> &'static str {
        match self {
            ShardingKind::Hash => "hash",
            ShardingKind::Range => "range",
        }
    }
}

/// Deterministic fragment → node placement descriptor. Rows are grouped
/// into fragments of `partition_rows` consecutive global rows; fragments
/// are assigned to nodes by `kind`. Both maps are pure functions of the
/// descriptor, so every session (and every retry) sees the same placement
/// for the same `HTAPG_SEED`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sharding {
    pub kind: ShardingKind,
    /// Cluster width (≥ 1).
    pub nodes: u32,
    /// Rows per placement fragment (≥ 1).
    pub partition_rows: u64,
    /// Placement seed (normally derived from `HTAPG_SEED`).
    pub seed: u64,
}

impl Sharding {
    pub fn new(kind: ShardingKind, nodes: u32, partition_rows: u64, seed: u64) -> Self {
        assert!(nodes >= 1, "sharding needs at least one node");
        assert!(partition_rows >= 1, "fragments must hold at least one row");
        Sharding { kind, nodes, partition_rows, seed }
    }

    /// Fragment holding global `row`.
    pub fn fragment_of_row(&self, row: u64) -> u64 {
        row / self.partition_rows
    }

    /// Owning node of `fragment`.
    pub fn shard_of_fragment(&self, fragment: u64) -> u32 {
        match self.kind {
            ShardingKind::Hash => {
                (crate::prng::splitmix64(self.seed ^ fragment) % self.nodes as u64) as u32
            }
            ShardingKind::Range => ((fragment / RANGE_STRIPE_FRAGMENTS) % self.nodes as u64) as u32,
        }
    }

    /// Owning node of global `row`.
    pub fn shard_of_row(&self, row: u64) -> u32 {
        self.shard_of_fragment(self.fragment_of_row(row))
    }
}

/// Network cost parameters the router prices cross-node movement with —
/// the same latency + bytes/bandwidth shape as
/// [`DeviceCostProfile::transfer_ns`] prices PCIe, mirroring the simulated
/// `NetSpec` (core cannot depend on `htapg-device`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetCostProfile {
    /// Fixed latency per message, ns.
    pub latency_ns: u64,
    /// Link bandwidth, bytes/s.
    pub bandwidth: f64,
}

impl NetCostProfile {
    /// Virtual ns to move `bytes` between two nodes (one message).
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        self.latency_ns + (bytes as f64 / self.bandwidth * 1e9) as u64
    }
}

/// One node's slice of a sharded column, as the planner sees it: the same
/// [`ColumnEvidence`] surface the single-node router prices from, scoped
/// to the rows this node owns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardEvidence {
    /// Owning cluster node.
    pub node: u32,
    /// Fragments resident on this node.
    pub fragments: u64,
    /// Evidence for this node's slice (rows/warmth/staleness are local).
    pub evidence: ColumnEvidence,
}

/// Everything a sharded engine reports for one column so the router can
/// lower a scatter-gather plan: the placement geometry, the network price
/// list, and per-node evidence in canonical (node-id) order.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPlanEvidence {
    /// Rows per placement fragment.
    pub partition_rows: u64,
    /// Interconnect pricing (from the cluster's `NetSpec`).
    pub net: NetCostProfile,
    /// Per-node evidence, ordered by node id; empty slices included so the
    /// gather order is always the full canonical node order.
    pub shards: Vec<ShardEvidence>,
}

/// Per-column evidence the router prices scans from. The default engine
/// implementation derives it statically from capabilities and schema;
/// device-backed engines override it to report live replica warmth, and
/// the reference engine reports its overlay state (a non-empty overlay
/// disables the contiguous fast path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnEvidence {
    pub rows: u64,
    pub ty: DataType,
    /// Bytes between consecutive values in host memory (= value width for
    /// DSM columns, record width for NSM rows).
    pub scan_stride: u64,
    /// Column readable as contiguous fixed-width blocks right now.
    pub contiguous: bool,
    /// A fresh device replica exists (zero upload bytes to use it).
    pub device_warm: bool,
    /// A *stale* device replica exists whose pending delta log covers this
    /// many rows — a delta merge can refresh it for `stale_rows *`
    /// [`DELTA_PAIR_BYTES`] PCIe bytes instead of a full re-upload. Zero
    /// when the replica is fresh, absent, or unmergeable.
    pub stale_rows: u64,
}

impl ColumnEvidence {
    pub fn numeric(&self) -> bool {
        self.ty.is_numeric()
    }

    pub fn value_width(&self) -> u64 {
        self.ty.width() as u64
    }
}

/// Per-relation evidence for record-centric nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableEvidence {
    pub rows: u64,
    /// Record width in bytes.
    pub record_width: u64,
    /// Records are stored (or mirrored) as contiguous NSM rows, so a
    /// sorted position list materializes in one sequential pass.
    pub contiguous_nsm: bool,
}

/// Everything static the router needs besides per-column evidence.
pub struct PlannerContext<'a> {
    pub caps: &'a EngineCapabilities,
    pub device: Option<&'a DeviceCostProfile>,
    pub cache: &'a CacheSpec,
    /// Learned correction factors consulted at plan time. `None` (and any
    /// unwarmed profile) reproduces the static router bit-for-bit.
    pub calibration: Option<&'a crate::calibrate::CalibrationProfiles>,
}

impl PlannerContext<'_> {
    /// Calibrated estimate for a node: the raw cost-model estimate scaled
    /// by the learned (op, route) factor, identity when uncalibrated.
    fn calibrated(&self, op: &PhysicalOp, route: Route, raw_ns: u64) -> u64 {
        match self.calibration {
            Some(c) => c.calibrated_ns(op.span_name(), route.label(), raw_ns),
            None => raw_ns,
        }
    }

    /// Whether the (op, route) factor has warmed up — warm-branch routing
    /// only reconsiders the static decision on real evidence.
    fn is_warmed(&self, op: &PhysicalOp, route: Route) -> bool {
        self.calibration.is_some_and(|c| c.is_warmed(op.span_name(), route.label()))
    }
}

/// Host scan cost from the cache model: sequential line streaming when the
/// column is contiguous and its stride fits a line, a full miss per row
/// otherwise — Section II-B's two penalties.
fn host_scan_ns(ev: &ColumnEvidence, cache: &CacheSpec) -> u64 {
    if ev.rows == 0 {
        return 0;
    }
    let line = cache.line_bytes as u64;
    if ev.contiguous && ev.scan_stride <= line {
        let bytes = ev.rows * ev.value_width();
        (bytes.div_ceil(line) as f64 * cache.sequential_line_ns) as u64
    } else {
        (ev.rows as f64 * cache.miss_ns) as u64
    }
}

fn host_route(rows: u64) -> Route {
    if rows <= INLINE_MORSEL_ROWS {
        Route::InlineVolcano
    } else {
        Route::HostPooledMorsel
    }
}

fn scan_strategy(ev: &ColumnEvidence) -> ScanStrategy {
    if ev.contiguous {
        ScanStrategy::ContiguousBytes
    } else {
        ScanStrategy::ValueVisit
    }
}

/// Build a routed [`PhysicalPlan`] for `logical`. `column` and `table`
/// supply live evidence (the `StorageEngine` methods of the same names);
/// they are `FnMut` so engines may count probes or cache lookups.
pub fn build_plan(
    logical: &LogicalPlan,
    cx: &PlannerContext<'_>,
    column: &mut dyn FnMut(RelationId, AttrId) -> Result<ColumnEvidence>,
    table: &mut dyn FnMut(RelationId) -> Result<TableEvidence>,
) -> Result<PhysicalPlan> {
    build_plan_sharded(logical, cx, column, table, &mut |_, _| Ok(None))
}

/// [`build_plan`] with a sharding probe. Engines owning partitioned
/// relations report per-node evidence through `shard`; an aggregate over
/// such a column lowers to a [`Route::Scatter`] root whose
/// [`PhysicalOp::Gather`] child carries one per-shard aggregate subtree
/// per node (in canonical node order), each priced with that node's own
/// evidence — pool-or-device per shard — plus the [`NetCostProfile`]
/// round trip the coordinator pays to reach it. `Ok(None)` everywhere
/// (the [`build_plan`] default) reproduces the single-node lowering
/// bit-for-bit.
pub fn build_plan_sharded(
    logical: &LogicalPlan,
    cx: &PlannerContext<'_>,
    column: &mut dyn FnMut(RelationId, AttrId) -> Result<ColumnEvidence>,
    table: &mut dyn FnMut(RelationId) -> Result<TableEvidence>,
    shard: &mut dyn FnMut(RelationId, AttrId) -> Result<Option<ShardPlanEvidence>>,
) -> Result<PhysicalPlan> {
    Ok(PhysicalPlan { root: plan_node(logical, cx, column, table, shard)? })
}

fn plan_node(
    logical: &LogicalPlan,
    cx: &PlannerContext<'_>,
    column: &mut dyn FnMut(RelationId, AttrId) -> Result<ColumnEvidence>,
    table: &mut dyn FnMut(RelationId) -> Result<TableEvidence>,
    shard: &mut dyn FnMut(RelationId, AttrId) -> Result<Option<ShardPlanEvidence>>,
) -> Result<PhysicalNode> {
    let scan_mirror = if cx.caps.mirror_choice { Some("dsm") } else { None };
    match logical {
        LogicalPlan::Scan { rel, attr } => {
            let ev = column(*rel, *attr)?;
            let op = PhysicalOp::Scan { rel: *rel, attr: *attr };
            let route = host_route(ev.rows);
            let raw = host_scan_ns(&ev, cx.cache);
            Ok(PhysicalNode {
                route,
                strategy: scan_strategy(&ev),
                estimated_ns: cx.calibrated(&op, route, raw),
                raw_estimated_ns: raw,
                op,
                bytes_to_device: 0,
                rows: ev.rows,
                mirror: scan_mirror,
                partition_rows: 0,
                children: Vec::new(),
            })
        }
        LogicalPlan::Filter { input, pred } => {
            let child = plan_node(input, cx, column, table, shard)?;
            Ok(PhysicalNode {
                op: PhysicalOp::Filter { pred: *pred },
                route: child.route,
                strategy: child.strategy,
                estimated_ns: child.estimated_ns,
                raw_estimated_ns: child.raw_estimated_ns,
                bytes_to_device: 0,
                rows: child.rows,
                mirror: child.mirror,
                partition_rows: child.partition_rows,
                children: vec![child],
            })
        }
        LogicalPlan::Project { input, attrs } => {
            let child = plan_node(input, cx, column, table, shard)?;
            Ok(PhysicalNode {
                op: PhysicalOp::Project { attrs: attrs.clone() },
                route: child.route,
                strategy: child.strategy,
                estimated_ns: child.estimated_ns,
                raw_estimated_ns: child.raw_estimated_ns,
                bytes_to_device: 0,
                rows: child.rows,
                mirror: child.mirror,
                partition_rows: child.partition_rows,
                children: vec![child],
            })
        }
        LogicalPlan::Aggregate { input, agg } => plan_aggregate(input, agg, cx, column, shard),
        LogicalPlan::Materialize { rel, rows } => {
            let t = table(*rel)?;
            let req = rows.len() as u64;
            let line = cx.cache.line_bytes as u64;
            let est = if t.contiguous_nsm {
                // Sorted position list, one sequential pass over the
                // touched rows.
                ((req * t.record_width).div_ceil(line) as f64 * cx.cache.sequential_line_ns) as u64
            } else {
                (req as f64 * t.record_width.div_ceil(line).max(1) as f64 * cx.cache.miss_ns) as u64
            };
            let op = PhysicalOp::Materialize { rel: *rel, rows: rows.clone() };
            let route = host_route(req);
            Ok(PhysicalNode {
                route,
                strategy: if t.contiguous_nsm {
                    ScanStrategy::ContiguousBytes
                } else {
                    ScanStrategy::ValueVisit
                },
                estimated_ns: cx.calibrated(&op, route, est),
                raw_estimated_ns: est,
                op,
                bytes_to_device: 0,
                rows: req,
                mirror: if cx.caps.mirror_choice { Some("nsm") } else { None },
                partition_rows: 0,
                children: Vec::new(),
            })
        }
        LogicalPlan::PointRead { rel, row } => {
            let t = table(*rel)?;
            let line = cx.cache.line_bytes as u64;
            let op = PhysicalOp::PointRead { rel: *rel, row: *row };
            let raw = (t.record_width.div_ceil(line).max(1) as f64 * cx.cache.miss_ns) as u64;
            Ok(PhysicalNode {
                route: Route::InlineVolcano,
                strategy: ScanStrategy::ValueVisit,
                estimated_ns: cx.calibrated(&op, Route::InlineVolcano, raw),
                raw_estimated_ns: raw,
                op,
                bytes_to_device: 0,
                rows: 1,
                mirror: if cx.caps.mirror_choice { Some("nsm") } else { None },
                partition_rows: 0,
                children: Vec::new(),
            })
        }
        LogicalPlan::Update { rel, row, attr, value } => {
            let op = PhysicalOp::Update { rel: *rel, row: *row, attr: *attr, value: value.clone() };
            let raw = cx.cache.miss_ns as u64;
            Ok(PhysicalNode {
                route: Route::InlineVolcano,
                strategy: ScanStrategy::ValueVisit,
                estimated_ns: cx.calibrated(&op, Route::InlineVolcano, raw),
                raw_estimated_ns: raw,
                op,
                bytes_to_device: 0,
                rows: 1,
                mirror: if cx.caps.mirror_choice { Some("nsm") } else { None },
                partition_rows: 0,
                children: Vec::new(),
            })
        }
    }
}

/// Route an aggregate. The input must be a `Scan`, optionally wrapped in
/// one `Filter` (the fused filter+sum shape); anything else is rejected —
/// the IR is deliberately no larger than the workload needs.
fn plan_aggregate(
    input: &LogicalPlan,
    agg: &AggregateKind,
    cx: &PlannerContext<'_>,
    column: &mut dyn FnMut(RelationId, AttrId) -> Result<ColumnEvidence>,
    shard: &mut dyn FnMut(RelationId, AttrId) -> Result<Option<ShardPlanEvidence>>,
) -> Result<PhysicalNode> {
    let (rel, attr, pred) = match input {
        LogicalPlan::Scan { rel, attr } => (*rel, *attr, None),
        LogicalPlan::Filter { input: inner, pred } => match inner.as_ref() {
            LogicalPlan::Scan { rel, attr } => (*rel, *attr, Some(*pred)),
            other => {
                return Err(Error::InvalidLayout(format!(
                    "aggregate over unsupported input: {other:?}"
                )))
            }
        },
        other => {
            return Err(Error::InvalidLayout(format!(
                "aggregate over unsupported input: {other:?}"
            )))
        }
    };
    let ev = column(rel, attr)?;
    if !ev.numeric() {
        return Err(Error::NonNumericAggregate { attr, got: ev.ty.name() });
    }
    let predicated = pred.is_some();

    match agg {
        AggregateKind::Sum => {
            // A partitioned column has no flat execution: its fragments
            // live where placement put them, so the only locality-
            // preserving plan scatters to the owning nodes.
            if let Some(sp) = shard(rel, attr)? {
                return Ok(plan_scatter_sum(cx, rel, attr, pred, &sp));
            }
            Ok(sum_subtree(cx, rel, attr, &ev, pred, 0))
        }
        AggregateKind::GroupSum { key_attr } => {
            if predicated {
                return Err(Error::InvalidLayout("predicated group-sum is not supported".into()));
            }
            let key_ev = column(rel, *key_attr)?;
            if !matches!(key_ev.ty, DataType::Int32 | DataType::Int64 | DataType::Date) {
                return Err(Error::NonNumericAggregate { attr: *key_attr, got: key_ev.ty.name() });
            }
            if let Some(sp) = shard(rel, attr)? {
                return Ok(plan_scatter_group(cx, rel, attr, *key_attr, &key_ev, &sp));
            }
            Ok(group_subtree(cx, rel, attr, *key_attr, &ev, &key_ev, 0))
        }
    }
}

/// Priced routing decision for a (possibly predicated) sum over one
/// column's evidence — shared by the flat lowering and every per-shard
/// subtree of a scatter, so local and sharded slices are priced by the
/// identical model.
struct SumPricing {
    route: Route,
    scan_raw: u64,
    total_raw: u64,
    total_cal: u64,
    bytes: u64,
}

fn price_sum(cx: &PlannerContext<'_>, ev: &ColumnEvidence, predicated: bool) -> SumPricing {
    let agg_op = PhysicalOp::AggregateSum;
    // Host price: the scan plus (virtually free) combine.
    let host_ns = host_scan_ns(ev, cx.cache);
    let host_r = host_route(ev.rows);
    let host_cal = cx.calibrated(&agg_op, host_r, host_ns);
    let mut p = SumPricing {
        route: host_r,
        scan_raw: host_ns,
        total_raw: host_ns,
        total_cal: host_cal,
        bytes: 0,
    };
    if cx.caps.device_placement {
        if let Some(d) = cx.device {
            let dev_r = Route::DevicePipelined;
            if ev.device_warm {
                // Warm replica: kernel time only, no PCIe. Routed
                // to the device — that is what placement paid for
                // — unless calibrated evidence says the kernel
                // actually costs more than the host scan.
                let warm = d.warm_sum_ns(ev.rows, predicated);
                let warm_cal = cx.calibrated(&agg_op, dev_r, warm);
                if !(cx.is_warmed(&agg_op, dev_r) && warm_cal > host_cal) {
                    p.route = dev_r;
                    p.scan_raw = 0;
                    p.total_raw = warm;
                    p.total_cal = warm_cal;
                }
            } else {
                // Three-way pricing: a delta merge (when a stale
                // replica is mergeable) vs. a full re-upload, and
                // the winner vs. the host fallback.
                let cold = d.cold_sum_ns(ev.rows, predicated);
                let cold_cal = cx.calibrated(&agg_op, dev_r, cold);
                let (dev_raw, dev_cal, dev_bytes) = if ev.stale_rows > 0 {
                    let merge = d.delta_merge_sum_ns(ev.rows, ev.stale_rows, predicated);
                    let merge_cal = cx.calibrated(&agg_op, dev_r, merge);
                    if merge_cal <= cold_cal {
                        (merge, merge_cal, ev.stale_rows * DELTA_PAIR_BYTES)
                    } else {
                        (cold, cold_cal, ev.rows * 8)
                    }
                } else {
                    (cold, cold_cal, ev.rows * 8)
                };
                if dev_cal < host_cal {
                    p.route = dev_r;
                    p.bytes = dev_bytes;
                    p.scan_raw = d.transfer_ns(dev_bytes);
                    p.total_raw = dev_raw;
                    p.total_cal = dev_cal;
                }
            }
        }
    }
    p
}

/// The routed `AggregateSum` subtree over one evidence slice: the flat
/// plan when `partition_rows == 0`, a per-shard subtree otherwise.
fn sum_subtree(
    cx: &PlannerContext<'_>,
    rel: RelationId,
    attr: AttrId,
    ev: &ColumnEvidence,
    pred: Option<Predicate>,
    partition_rows: u64,
) -> PhysicalNode {
    let scan_mirror = if cx.caps.mirror_choice { Some("dsm") } else { None };
    let strategy = scan_strategy(ev);
    let p = price_sum(cx, ev, pred.is_some());
    let scan_op = PhysicalOp::Scan { rel, attr };
    let scan = PhysicalNode {
        route: p.route,
        strategy,
        estimated_ns: cx.calibrated(&scan_op, p.route, p.scan_raw),
        raw_estimated_ns: p.scan_raw,
        op: scan_op,
        bytes_to_device: p.bytes,
        rows: ev.rows,
        mirror: scan_mirror,
        partition_rows,
        children: Vec::new(),
    };
    let input_node = match pred {
        None => scan,
        Some(pr) => PhysicalNode {
            op: PhysicalOp::Filter { pred: pr },
            route: p.route,
            strategy,
            estimated_ns: scan.estimated_ns,
            raw_estimated_ns: scan.raw_estimated_ns,
            bytes_to_device: 0,
            rows: ev.rows,
            mirror: scan_mirror,
            partition_rows,
            children: vec![scan],
        },
    };
    PhysicalNode {
        op: PhysicalOp::AggregateSum,
        route: p.route,
        strategy,
        estimated_ns: p.total_cal,
        raw_estimated_ns: p.total_raw,
        bytes_to_device: 0,
        rows: ev.rows,
        mirror: scan_mirror,
        partition_rows,
        children: vec![input_node],
    }
}

/// The routed `AggregateGroupSum` subtree over one (value, key) evidence
/// pair — flat when `partition_rows == 0`, per-shard otherwise. Keys are
/// always grouped on the host; only the value column's per-group
/// reductions can go to the device (gather + reduce over a resident
/// replica).
fn group_subtree(
    cx: &PlannerContext<'_>,
    rel: RelationId,
    attr: AttrId,
    key_attr: AttrId,
    ev: &ColumnEvidence,
    key_ev: &ColumnEvidence,
    partition_rows: u64,
) -> PhysicalNode {
    let scan_mirror = if cx.caps.mirror_choice { Some("dsm") } else { None };
    let strategy = scan_strategy(ev);
    let agg_op = PhysicalOp::AggregateGroupSum { key_attr };
    let key_ns = host_scan_ns(key_ev, cx.cache);
    let value_host_ns = host_scan_ns(ev, cx.cache);
    let host_r = host_route(ev.rows);
    let host_cal = cx.calibrated(&agg_op, host_r, key_ns + value_host_ns);
    let mut route = host_r;
    let mut value_raw = value_host_ns;
    let mut total_raw = key_ns + value_host_ns;
    let mut total_cal = host_cal;
    if cx.caps.device_placement && ev.device_warm {
        if let Some(d) = cx.device {
            let dev_r = Route::DevicePipelined;
            // Gather (one launch over all rows, device-to-device)
            // plus the reductions; group count is unknown at plan
            // time, so the reduction is priced as one full pass.
            let gather = d.kernel_ns(REDUCE_GRID * REDUCE_BLOCK, ev.rows.max(1), 8.0, ev.rows * 16);
            let value_dev = gather + d.warm_sum_ns(ev.rows, false);
            let dev_cal = cx.calibrated(&agg_op, dev_r, key_ns + value_dev);
            if !(cx.is_warmed(&agg_op, dev_r) && dev_cal > host_cal) {
                route = dev_r;
                value_raw = value_dev;
                total_raw = key_ns + value_dev;
                total_cal = dev_cal;
            }
        }
    }
    let key_op = PhysicalOp::Scan { rel, attr: key_attr };
    let key_route = host_route(key_ev.rows);
    let key_scan = PhysicalNode {
        route: key_route,
        strategy: scan_strategy(key_ev),
        estimated_ns: cx.calibrated(&key_op, key_route, key_ns),
        raw_estimated_ns: key_ns,
        op: key_op,
        bytes_to_device: 0,
        rows: key_ev.rows,
        mirror: scan_mirror,
        partition_rows,
        children: Vec::new(),
    };
    let value_op = PhysicalOp::Scan { rel, attr };
    let value_scan = PhysicalNode {
        route,
        strategy,
        estimated_ns: cx.calibrated(&value_op, route, value_raw),
        raw_estimated_ns: value_raw,
        op: value_op,
        bytes_to_device: 0,
        rows: ev.rows,
        mirror: scan_mirror,
        partition_rows,
        children: Vec::new(),
    };
    PhysicalNode {
        op: agg_op,
        route,
        strategy,
        estimated_ns: total_cal,
        raw_estimated_ns: total_raw,
        bytes_to_device: 0,
        rows: ev.rows,
        mirror: scan_mirror,
        partition_rows,
        children: vec![key_scan, value_scan],
    }
}

/// Round trip the coordinator (node 0) pays to reach `se`'s node: the
/// fixed-size request out, plus the per-fragment partial response back —
/// both priced like PCIe, latency + bytes/bandwidth. Free for node 0,
/// which answers its own slice locally.
fn shard_rtt_ns(net: &NetCostProfile, se: &ShardEvidence, partial_bytes: u64) -> u64 {
    if se.node == 0 {
        0
    } else {
        net.transfer_ns(SCATTER_REQUEST_BYTES) + net.transfer_ns(se.fragments * partial_bytes)
    }
}

/// Assemble the `Aggregate(Scatter) → Gather → per-shard subtrees` tree.
/// Per-shard executions overlap, so the root estimate is the slowest
/// shard's subtree-plus-round-trip; the root is calibrated under the
/// distinct `scatter` route key so learned network residuals never alias
/// the local routes.
fn scatter_root(
    cx: &PlannerContext<'_>,
    agg_op: PhysicalOp,
    sp: &ShardPlanEvidence,
    children: Vec<PhysicalNode>,
    partial_bytes: u64,
) -> PhysicalNode {
    let shards = sp.shards.len() as u16;
    let route = Route::Scatter { shards };
    let mut raw = 0u64;
    let mut total_rows = 0u64;
    for (sub, se) in children.iter().zip(&sp.shards) {
        let rtt = shard_rtt_ns(&sp.net, se, partial_bytes);
        raw = raw.max(sub.raw_estimated_ns.saturating_add(rtt));
        total_rows += se.evidence.rows;
    }
    let strategy = children.first().map(|c| c.strategy).unwrap_or(ScanStrategy::ContiguousBytes);
    let gather = PhysicalNode {
        op: PhysicalOp::Gather { shards },
        route,
        strategy,
        estimated_ns: raw,
        raw_estimated_ns: raw,
        bytes_to_device: 0,
        rows: total_rows,
        mirror: None,
        partition_rows: sp.partition_rows,
        children,
    };
    PhysicalNode {
        route,
        strategy,
        estimated_ns: cx.calibrated(&agg_op, route, raw),
        raw_estimated_ns: raw,
        op: agg_op,
        bytes_to_device: 0,
        rows: total_rows,
        mirror: None,
        partition_rows: sp.partition_rows,
        children: vec![gather],
    }
}

fn plan_scatter_sum(
    cx: &PlannerContext<'_>,
    rel: RelationId,
    attr: AttrId,
    pred: Option<Predicate>,
    sp: &ShardPlanEvidence,
) -> PhysicalNode {
    let children: Vec<PhysicalNode> = sp
        .shards
        .iter()
        .map(|se| sum_subtree(cx, rel, attr, &se.evidence, pred, sp.partition_rows))
        .collect();
    scatter_root(cx, PhysicalOp::AggregateSum, sp, children, SUM_PARTIAL_BYTES)
}

fn plan_scatter_group(
    cx: &PlannerContext<'_>,
    rel: RelationId,
    attr: AttrId,
    key_attr: AttrId,
    key_ev: &ColumnEvidence,
    sp: &ShardPlanEvidence,
) -> PhysicalNode {
    let children: Vec<PhysicalNode> = sp
        .shards
        .iter()
        .map(|se| {
            // The key column shards with the value column, so the shard's
            // key slice inherits the flat key shape (type, stride,
            // contiguity) at the shard's cardinality; keys are host-
            // grouped, so warmth is irrelevant to the subtree price.
            let shard_key_ev = ColumnEvidence {
                rows: se.evidence.rows,
                ty: key_ev.ty,
                scan_stride: key_ev.scan_stride,
                contiguous: key_ev.contiguous,
                device_warm: false,
                stale_rows: 0,
            };
            group_subtree(cx, rel, attr, key_attr, &se.evidence, &shard_key_ev, sp.partition_rows)
        })
        .collect();
    scatter_root(cx, PhysicalOp::AggregateGroupSum { key_attr }, sp, children, GROUP_PARTIAL_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htapg_taxonomy::survey;

    fn evidence(rows: u64, contiguous: bool, warm: bool) -> ColumnEvidence {
        ColumnEvidence {
            rows,
            ty: DataType::Float64,
            scan_stride: if contiguous { 8 } else { 64 },
            contiguous,
            device_warm: warm,
            stale_rows: 0,
        }
    }

    fn ctx<'a>(
        caps: &'a EngineCapabilities,
        device: Option<&'a DeviceCostProfile>,
        cache: &'a CacheSpec,
    ) -> PlannerContext<'a> {
        PlannerContext { caps, device, cache, calibration: None }
    }

    fn paper_device() -> DeviceCostProfile {
        // The defaults of `DeviceSpec` (footnote 4 hardware).
        DeviceCostProfile {
            pcie_bandwidth: 6.0e9,
            pcie_latency_ns: 10_000,
            kernel_launch_ns: 5_000,
            mem_bandwidth: 80.0e9,
            clock_hz: 1.1e9,
            lanes: 640,
        }
    }

    #[test]
    fn capabilities_follow_table1() {
        let gputx = EngineCapabilities::from_classification(&survey::gputx());
        assert!(gputx.device_placement);
        assert!(gputx.contiguous_scan);
        assert!(!gputx.mirror_choice);
        let mirrors = EngineCapabilities::from_classification(&survey::fractured_mirrors());
        assert!(!mirrors.device_placement);
        assert!(mirrors.mirror_choice);
        let cogadb = EngineCapabilities::from_classification(&survey::cogadb());
        assert!(cogadb.device_placement);
    }

    #[test]
    fn warm_cache_routes_to_device_with_zero_bytes() {
        let caps = EngineCapabilities::from_classification(&survey::cogadb());
        let dev = paper_device();
        let cache = CacheSpec::default();
        let mut col = |_r, _a| Ok(evidence(1000, true, true));
        let mut tab =
            |_r| Ok(TableEvidence { rows: 1000, record_width: 16, contiguous_nsm: false });
        let plan = build_plan(
            &LogicalPlan::sum(0, 1),
            &ctx(&caps, Some(&dev), &cache),
            &mut col,
            &mut tab,
        )
        .unwrap();
        assert_eq!(plan.route(), Route::DevicePipelined);
        assert_eq!(plan.bytes_to_device(), 0);
    }

    #[test]
    fn cold_tiny_relation_routes_to_host_inline() {
        let caps = EngineCapabilities::from_classification(&survey::cogadb());
        let dev = paper_device();
        let cache = CacheSpec::default();
        let mut col = |_r, _a| Ok(evidence(1000, true, false));
        let mut tab =
            |_r| Ok(TableEvidence { rows: 1000, record_width: 16, contiguous_nsm: false });
        let plan = build_plan(
            &LogicalPlan::sum(0, 1),
            &ctx(&caps, Some(&dev), &cache),
            &mut col,
            &mut tab,
        )
        .unwrap();
        // 1000 contiguous f64s ≈ 125 lines × 4 ns ≈ 500 ns on the host;
        // even the kernel launch alone (5 µs) dwarfs that.
        assert_eq!(plan.route(), Route::InlineVolcano);
        assert_eq!(plan.bytes_to_device(), 0);
    }

    #[test]
    fn large_cold_strided_scan_prefers_device_upload() {
        let caps = EngineCapabilities::from_classification(&survey::cogadb());
        let dev = paper_device();
        let cache = CacheSpec::default();
        // 10M strided rows: 80 ns a miss each on the host (800 ms) vs a
        // ~13 ms PCIe upload — the Figure 2 offload cliff.
        let mut col = |_r, _a| Ok(evidence(10_000_000, false, false));
        let mut tab =
            |_r| Ok(TableEvidence { rows: 10_000_000, record_width: 16, contiguous_nsm: false });
        let plan = build_plan(
            &LogicalPlan::sum(0, 1),
            &ctx(&caps, Some(&dev), &cache),
            &mut col,
            &mut tab,
        )
        .unwrap();
        assert_eq!(plan.route(), Route::DevicePipelined);
        assert_eq!(plan.bytes_to_device(), 10_000_000 * 8);
    }

    #[test]
    fn pooled_route_above_one_morsel() {
        let caps = EngineCapabilities::from_classification(&survey::pax());
        let cache = CacheSpec::default();
        let mut tab = |_r| Ok(TableEvidence { rows: 0, record_width: 16, contiguous_nsm: false });
        for (rows, want) in [
            (100u64, Route::InlineVolcano),
            (INLINE_MORSEL_ROWS, Route::InlineVolcano),
            (INLINE_MORSEL_ROWS + 1, Route::HostPooledMorsel),
        ] {
            let mut col = move |_r, _a| Ok(evidence(rows, true, false));
            let plan =
                build_plan(&LogicalPlan::sum(0, 1), &ctx(&caps, None, &cache), &mut col, &mut tab)
                    .unwrap();
            assert_eq!(plan.route(), want, "rows={rows}");
        }
    }

    #[test]
    fn nsm_evidence_pins_value_visit_strategy() {
        let caps = EngineCapabilities {
            device_placement: false,
            contiguous_scan: false,
            mirror_choice: false,
        };
        let cache = CacheSpec::default();
        let mut col = |_r, _a| Ok(evidence(500, false, false));
        let mut tab = |_r| Ok(TableEvidence { rows: 500, record_width: 16, contiguous_nsm: true });
        let plan =
            build_plan(&LogicalPlan::sum(0, 1), &ctx(&caps, None, &cache), &mut col, &mut tab)
                .unwrap();
        assert_eq!(plan.root.strategy, ScanStrategy::ValueVisit);
        assert_eq!(plan.root.children[0].strategy, ScanStrategy::ValueVisit);
    }

    #[test]
    fn non_numeric_sum_is_a_typed_plan_error() {
        let caps = EngineCapabilities::from_classification(&survey::pax());
        let cache = CacheSpec::default();
        let mut col = |_r, _a| {
            Ok(ColumnEvidence {
                rows: 10,
                ty: DataType::Text(8),
                scan_stride: 8,
                contiguous: true,
                device_warm: false,
                stale_rows: 0,
            })
        };
        let mut tab = |_r| Ok(TableEvidence { rows: 10, record_width: 16, contiguous_nsm: false });
        let err =
            build_plan(&LogicalPlan::sum(0, 1), &ctx(&caps, None, &cache), &mut col, &mut tab)
                .unwrap_err();
        assert!(matches!(err, Error::NonNumericAggregate { attr: 1, .. }));
    }

    #[test]
    fn mirror_choice_annotates_replicas() {
        let caps = EngineCapabilities::from_classification(&survey::fractured_mirrors());
        let cache = CacheSpec::default();
        let mut col = |_r, _a| Ok(evidence(100, true, false));
        let mut tab = |_r| Ok(TableEvidence { rows: 100, record_width: 16, contiguous_nsm: true });
        let scan_plan =
            build_plan(&LogicalPlan::sum(0, 1), &ctx(&caps, None, &cache), &mut col, &mut tab)
                .unwrap();
        assert_eq!(scan_plan.root.mirror, Some("dsm"));
        let mat_plan = build_plan(
            &LogicalPlan::Materialize { rel: 0, rows: vec![1, 2, 3] },
            &ctx(&caps, None, &cache),
            &mut col,
            &mut tab,
        )
        .unwrap();
        assert_eq!(mat_plan.root.mirror, Some("nsm"));
        assert!(mat_plan.render().contains("mirror=nsm"));
    }

    #[test]
    fn warmed_calibration_flips_a_mispriced_cold_route() {
        use crate::calibrate::CalibrationProfiles;
        let caps = EngineCapabilities::from_classification(&survey::cogadb());
        // A lying device profile that makes a cold offload look nearly
        // free, so the static router sends a tiny cold sum to the device.
        let dev = DeviceCostProfile {
            pcie_bandwidth: 1.0e15,
            pcie_latency_ns: 1,
            kernel_launch_ns: 1,
            mem_bandwidth: 1.0e15,
            clock_hz: 1.0e15,
            lanes: 640,
        };
        let cache = CacheSpec::default();
        let mut col = |_r, _a| Ok(evidence(1000, false, false));
        let mut tab =
            |_r| Ok(TableEvidence { rows: 1000, record_width: 16, contiguous_nsm: false });
        let logical = LogicalPlan::sum(0, 1);

        let profiles = CalibrationProfiles::new();
        let cx = PlannerContext {
            caps: &caps,
            device: Some(&dev),
            cache: &cache,
            calibration: Some(&profiles),
        };
        let lied = build_plan(&logical, &cx, &mut col, &mut tab).unwrap();
        assert_eq!(lied.route(), Route::DevicePipelined, "the lie wins while unwarmed");

        // Observed actuals say the device really costs 100 µs a run —
        // far above the ~80 µs strided host scan. After warm-up the same
        // context flips the decision, from evidence alone.
        for _ in 0..4 {
            profiles.observe(
                "plan.aggregate.sum",
                "device-pipelined",
                lied.estimated_ns(),
                100_000,
            );
        }
        let flipped = build_plan(&logical, &cx, &mut col, &mut tab).unwrap();
        assert_eq!(flipped.route(), Route::InlineVolcano, "calibration overrides the lie");
        assert_eq!(
            flipped.root.raw_estimated_ns, flipped.root.estimated_ns,
            "host factor identity"
        );
    }

    #[test]
    fn unwarmed_calibration_is_bit_identical_to_none() {
        use crate::calibrate::CalibrationProfiles;
        let caps = EngineCapabilities::from_classification(&survey::cogadb());
        let dev = paper_device();
        let cache = CacheSpec::default();
        let mut col = |_r, _a| Ok(evidence(5_000, true, true));
        let mut tab =
            |_r| Ok(TableEvidence { rows: 5_000, record_width: 16, contiguous_nsm: false });
        let logical = LogicalPlan::sum(0, 1);
        let base =
            build_plan(&logical, &ctx(&caps, Some(&dev), &cache), &mut col, &mut tab).unwrap();
        let profiles = CalibrationProfiles::new();
        // Below the warm-up threshold: factors exist but are not consulted.
        for _ in 0..3 {
            profiles.observe("plan.aggregate.sum", "device-pipelined", 1_000, 999_000);
        }
        let cx = PlannerContext {
            caps: &caps,
            device: Some(&dev),
            cache: &cache,
            calibration: Some(&profiles),
        };
        let with = build_plan(&logical, &cx, &mut col, &mut tab).unwrap();
        assert_eq!(base, with, "unwarmed profiles must not perturb the plan");
    }

    #[test]
    fn group_sum_plans_key_and_value_scans() {
        let caps = EngineCapabilities::from_classification(&survey::pax());
        let cache = CacheSpec::default();
        let mut col = |_r, a: AttrId| {
            Ok(ColumnEvidence {
                rows: 2000,
                ty: if a == 0 { DataType::Int32 } else { DataType::Float64 },
                scan_stride: 8,
                contiguous: true,
                device_warm: false,
                stale_rows: 0,
            })
        };
        let mut tab =
            |_r| Ok(TableEvidence { rows: 2000, record_width: 16, contiguous_nsm: false });
        let plan = build_plan(
            &LogicalPlan::group_sum(0, 0, 1),
            &ctx(&caps, None, &cache),
            &mut col,
            &mut tab,
        )
        .unwrap();
        assert_eq!(plan.root.children.len(), 2);
        assert!(matches!(plan.root.op, PhysicalOp::AggregateGroupSum { key_attr: 0 }));
    }

    #[test]
    fn sharding_is_deterministic_and_covers_all_nodes() {
        for kind in [ShardingKind::Hash, ShardingKind::Range] {
            let s = Sharding::new(kind, 4, 1024, 0xDEAD_BEEF);
            let t = Sharding::new(kind, 4, 1024, 0xDEAD_BEEF);
            let mut seen = [false; 4];
            for frag in 0..256u64 {
                let n = s.shard_of_fragment(frag);
                assert_eq!(n, t.shard_of_fragment(frag), "same descriptor, same map");
                assert!(n < 4);
                seen[n as usize] = true;
            }
            assert!(seen.iter().all(|&b| b), "{kind:?} placement uses every node");
        }
        // Rows map through their fragment.
        let s = Sharding::new(ShardingKind::Range, 2, 100, 7);
        assert_eq!(s.fragment_of_row(0), 0);
        assert_eq!(s.fragment_of_row(199), 1);
        assert_eq!(s.shard_of_row(50), s.shard_of_fragment(0));
    }

    #[test]
    fn range_sharding_stripes_contiguous_runs() {
        let s = Sharding::new(ShardingKind::Range, 2, 64, 0);
        for frag in 0..RANGE_STRIPE_FRAGMENTS {
            assert_eq!(s.shard_of_fragment(frag), 0);
        }
        for frag in RANGE_STRIPE_FRAGMENTS..2 * RANGE_STRIPE_FRAGMENTS {
            assert_eq!(s.shard_of_fragment(frag), 1);
        }
        // Appending fragments never moves existing ones.
        let frozen: Vec<u32> = (0..64).map(|f| s.shard_of_fragment(f)).collect();
        assert_eq!(frozen, (0..64).map(|f| s.shard_of_fragment(f)).collect::<Vec<_>>());
    }

    #[test]
    fn hash_sharding_depends_on_seed() {
        let a = Sharding::new(ShardingKind::Hash, 4, 64, 1);
        let b = Sharding::new(ShardingKind::Hash, 4, 64, 2);
        let differs = (0..128u64).any(|f| a.shard_of_fragment(f) != b.shard_of_fragment(f));
        assert!(differs, "distinct seeds must place differently");
    }

    fn shard_probe(nodes: u32, rows_per_shard: u64) -> ShardPlanEvidence {
        ShardPlanEvidence {
            partition_rows: 1024,
            net: NetCostProfile { latency_ns: 2_000, bandwidth: 10.0e9 },
            shards: (0..nodes)
                .map(|node| ShardEvidence {
                    node,
                    fragments: rows_per_shard.div_ceil(1024),
                    evidence: evidence(rows_per_shard, true, false),
                })
                .collect(),
        }
    }

    #[test]
    fn shard_evidence_lowers_to_scatter_gather() {
        let caps = EngineCapabilities::from_classification(&survey::cogadb());
        let dev = paper_device();
        let cache = CacheSpec::default();
        let mut col = |_r, _a| Ok(evidence(4 * 100_000, true, false));
        let mut tab =
            |_r| Ok(TableEvidence { rows: 4 * 100_000, record_width: 16, contiguous_nsm: false });
        let sp = shard_probe(4, 100_000);
        let plan = build_plan_sharded(
            &LogicalPlan::sum(0, 1),
            &ctx(&caps, Some(&dev), &cache),
            &mut col,
            &mut tab,
            &mut |_, _| Ok(Some(sp.clone())),
        )
        .unwrap();
        assert_eq!(plan.route(), Route::Scatter { shards: 4 });
        assert_eq!(plan.root.rows, 400_000);
        assert_eq!(plan.root.partition_rows, 1024);
        let gather = &plan.root.children[0];
        assert!(matches!(gather.op, PhysicalOp::Gather { shards: 4 }));
        assert_eq!(gather.children.len(), 4, "one subtree per node, canonical order");
        // Overlapped shards: the root estimate is the slowest shard plus
        // its round trip, not the sum of all shards.
        let per_shard = gather.children[0].raw_estimated_ns;
        let rtt = sp.net.transfer_ns(SCATTER_REQUEST_BYTES)
            + sp.net.transfer_ns(sp.shards[1].fragments * SUM_PARTIAL_BYTES);
        assert_eq!(plan.root.raw_estimated_ns, per_shard + rtt);
        let rendered = plan.render();
        assert!(rendered.contains("route=scatter"));
        assert!(rendered.contains("plan.gather"));
        assert!(rendered.contains("shards=4"));
        assert!(rendered.contains("part_rows=1024"));
    }

    #[test]
    fn scatter_group_sum_keeps_key_shape_per_shard() {
        let caps = EngineCapabilities::from_classification(&survey::pax());
        let cache = CacheSpec::default();
        let mut col = |_r, a: AttrId| {
            Ok(ColumnEvidence {
                rows: 20_000,
                ty: if a == 0 { DataType::Int32 } else { DataType::Float64 },
                scan_stride: 8,
                contiguous: true,
                device_warm: false,
                stale_rows: 0,
            })
        };
        let mut tab =
            |_r| Ok(TableEvidence { rows: 20_000, record_width: 16, contiguous_nsm: false });
        let sp = shard_probe(2, 10_000);
        let plan = build_plan_sharded(
            &LogicalPlan::group_sum(0, 0, 1),
            &ctx(&caps, None, &cache),
            &mut col,
            &mut tab,
            &mut |_, _| Ok(Some(sp.clone())),
        )
        .unwrap();
        assert_eq!(plan.route(), Route::Scatter { shards: 2 });
        let gather = &plan.root.children[0];
        for sub in &gather.children {
            assert!(matches!(sub.op, PhysicalOp::AggregateGroupSum { key_attr: 0 }));
            assert_eq!(sub.children.len(), 2, "per-shard key and value scans");
            assert_eq!(sub.rows, 10_000);
        }
    }

    #[test]
    fn empty_shard_probe_is_bit_identical_to_build_plan() {
        let caps = EngineCapabilities::from_classification(&survey::cogadb());
        let dev = paper_device();
        let cache = CacheSpec::default();
        let mut col = |_r, _a| Ok(evidence(500_000, true, false));
        let mut tab =
            |_r| Ok(TableEvidence { rows: 500_000, record_width: 16, contiguous_nsm: false });
        for logical in [
            LogicalPlan::sum(0, 1),
            LogicalPlan::filter_sum(0, 1, Predicate::Ge(0.5)),
            LogicalPlan::Materialize { rel: 0, rows: vec![1, 2, 3] },
        ] {
            let flat =
                build_plan(&logical, &ctx(&caps, Some(&dev), &cache), &mut col, &mut tab).unwrap();
            let probed = build_plan_sharded(
                &logical,
                &ctx(&caps, Some(&dev), &cache),
                &mut col,
                &mut tab,
                &mut |_, _| Ok(None),
            )
            .unwrap();
            assert_eq!(flat, probed, "no shard evidence must not perturb the plan");
        }
    }
}
