//! Fragment schemes: how multi-layout relations manage redundancy.
//!
//! "A replication-based approach holds copies of tuplets ... A
//! delegation-based approach restricts the access of certain regions from
//! certain layouts, since some tuplets are exclusively stored in certain
//! layouts. ... storage engines using a delegation-based approach must
//! manage delegation policies to avoid undefined behavior." (Section III)

use crate::error::{Error, Result};
use crate::schema::{AttrId, RowId};
use htapg_taxonomy::FragmentScheme;

/// The access-pattern hint readers pass so replication-based relations can
/// route to the best layout (Section II's record- vs attribute-centric
/// distinction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessHint {
    /// Few rows, many attributes per row (the Q1 pattern).
    RecordCentric,
    /// Many rows, few attributes (the Q2 pattern).
    AttributeCentric,
}

/// One delegation rule: rows `[row_from, row_to)` of `attrs` (or all
/// attributes when `None`) are authoritative in layout `layout`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelegationRule {
    pub attrs: Option<Vec<AttrId>>,
    pub row_from: RowId,
    /// Exclusive; use [`RowId::MAX`] for an open range.
    pub row_to: RowId,
    pub layout: usize,
}

impl DelegationRule {
    pub fn covers(&self, row: RowId, attr: AttrId) -> bool {
        let attr_ok = match &self.attrs {
            None => true,
            Some(list) => list.contains(&attr),
        };
        attr_ok && row >= self.row_from && row < self.row_to
    }
}

/// A total routing policy: first matching rule wins.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DelegationPolicy {
    rules: Vec<DelegationRule>,
}

impl DelegationPolicy {
    pub fn new(rules: Vec<DelegationRule>) -> Self {
        DelegationPolicy { rules }
    }

    /// All-regions-to-one-layout policy.
    pub fn all_to(layout: usize) -> Self {
        DelegationPolicy {
            rules: vec![DelegationRule { attrs: None, row_from: 0, row_to: RowId::MAX, layout }],
        }
    }

    pub fn rules(&self) -> &[DelegationRule] {
        &self.rules
    }

    pub fn push(&mut self, rule: DelegationRule) {
        self.rules.push(rule);
    }

    /// The authoritative layout for `(row, attr)`.
    pub fn route(&self, row: RowId, attr: AttrId) -> Result<usize> {
        self.rules
            .iter()
            .find(|r| r.covers(row, attr))
            .map(|r| r.layout)
            .ok_or(Error::NoDelegate { row, attr })
    }
}

/// How a relation's layouts relate to each other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scheme {
    /// Exactly one layout; no redundancy to manage.
    Single,
    /// Every layout holds a full copy; reads route by [`AccessHint`], writes
    /// go everywhere.
    Replication,
    /// Regions are exclusively owned per the policy; reads and writes route
    /// to the authoritative layout.
    Delegation(DelegationPolicy),
}

impl Scheme {
    pub fn taxonomy(&self) -> FragmentScheme {
        match self {
            Scheme::Single => FragmentScheme::None,
            Scheme::Replication => FragmentScheme::ReplicationBased,
            Scheme::Delegation(_) => FragmentScheme::DelegationBased,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_match_wins() {
        let p = DelegationPolicy::new(vec![
            DelegationRule { attrs: Some(vec![2]), row_from: 0, row_to: RowId::MAX, layout: 1 },
            DelegationRule { attrs: None, row_from: 0, row_to: RowId::MAX, layout: 0 },
        ]);
        assert_eq!(p.route(10, 2).unwrap(), 1);
        assert_eq!(p.route(10, 0).unwrap(), 0);
    }

    #[test]
    fn row_ranges() {
        let p = DelegationPolicy::new(vec![
            DelegationRule { attrs: None, row_from: 0, row_to: 100, layout: 0 },
            DelegationRule { attrs: None, row_from: 100, row_to: RowId::MAX, layout: 1 },
        ]);
        assert_eq!(p.route(99, 0).unwrap(), 0);
        assert_eq!(p.route(100, 0).unwrap(), 1);
    }

    #[test]
    fn missing_region_is_undefined_behavior_made_explicit() {
        let p = DelegationPolicy::new(vec![DelegationRule {
            attrs: Some(vec![0]),
            row_from: 0,
            row_to: RowId::MAX,
            layout: 0,
        }]);
        assert_eq!(p.route(5, 1), Err(Error::NoDelegate { row: 5, attr: 1 }));
    }

    #[test]
    fn taxonomy_mapping() {
        assert_eq!(Scheme::Single.taxonomy(), FragmentScheme::None);
        assert_eq!(Scheme::Replication.taxonomy(), FragmentScheme::ReplicationBased);
        assert_eq!(
            Scheme::Delegation(DelegationPolicy::all_to(0)).taxonomy(),
            FragmentScheme::DelegationBased
        );
    }
}
