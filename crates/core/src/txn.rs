//! MVCC transactions: snapshot isolation with first-updater-wins conflicts
//! and as-of (historic) reads.
//!
//! HTAP engines "detach analytic query execution from mission-critical
//! transactional data" (Section I, challenge b.iii): long OLAP scans read a
//! consistent snapshot while short OLTP transactions commit concurrently.
//! L-Store additionally supports *historic querying* (Section IV-B4), which
//! falls out of version chains naturally via [`MvStore::get_as_of`].
//!
//! Model: a global timestamp clock issues begin and commit timestamps.
//! Versions carry `[begin, end)` stamp ranges; a pending stamp encodes the
//! writing transaction until commit. Writers conflict eagerly
//! (first-updater-wins): updating a key whose newest version is pending by
//! another transaction, or committed after the updater's snapshot, aborts.

use crate::sync::{Mutex, RwLock};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::error::{Error, Result};
use crate::obs;

/// Registry handles for transaction lifecycle events, resolved once.
struct TxnCounters {
    begins: Arc<obs::Counter>,
    commits: Arc<obs::Counter>,
    aborts: Arc<obs::Counter>,
    conflicts: Arc<obs::Counter>,
}

fn counters() -> &'static TxnCounters {
    static C: OnceLock<TxnCounters> = OnceLock::new();
    C.get_or_init(|| TxnCounters {
        begins: obs::metrics().counter("txn.begins"),
        commits: obs::metrics().counter("txn.commits"),
        aborts: obs::metrics().counter("txn.aborts"),
        conflicts: obs::metrics().counter("txn.conflicts"),
    })
}

fn conflict(txn: TxnId) -> Error {
    counters().conflicts.inc();
    obs::instant("txn", "txn.conflict");
    Error::TxnConflict { txn }
}

/// Transaction identifier.
pub type TxnId = u64;
/// Logical commit timestamp.
pub type Timestamp = u64;

const PENDING_BIT: u64 = 1 << 63;
const INF: u64 = !PENDING_BIT;

#[inline]
fn pending(txn: TxnId) -> u64 {
    txn | PENDING_BIT
}

#[inline]
fn is_pending(stamp: u64) -> bool {
    stamp & PENDING_BIT != 0
}

#[inline]
fn pending_txn(stamp: u64) -> TxnId {
    stamp & !PENDING_BIT
}

/// A handle to an open transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Txn {
    pub id: TxnId,
    /// Snapshot timestamp: this transaction sees versions committed at or
    /// before `start_ts`.
    pub start_ts: Timestamp,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxnStatus {
    /// Active, with its snapshot timestamp (for the GC horizon).
    Active(Timestamp),
    Committed(Timestamp),
    Aborted,
}

/// Issues transaction ids / timestamps and tracks transaction outcomes.
#[derive(Debug)]
pub struct TxnManager {
    clock: AtomicU64,
    next_txn: AtomicU64,
    states: RwLock<HashMap<TxnId, TxnStatus>>,
}

impl Default for TxnManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TxnManager {
    pub fn new() -> Self {
        TxnManager {
            clock: AtomicU64::new(1),
            next_txn: AtomicU64::new(1),
            states: RwLock::new(HashMap::new()),
        }
    }

    /// Start a transaction with a snapshot at the current time.
    pub fn begin(&self) -> Txn {
        let id = self.next_txn.fetch_add(1, Ordering::Relaxed);
        let start_ts = self.clock.load(Ordering::SeqCst);
        self.states.write().insert(id, TxnStatus::Active(start_ts));
        counters().begins.inc();
        Txn { id, start_ts }
    }

    /// Current logical time — a read-only snapshot timestamp.
    pub fn now(&self) -> Timestamp {
        self.clock.load(Ordering::SeqCst)
    }

    fn check_active(&self, txn: &Txn) -> Result<()> {
        match self.states.read().get(&txn.id) {
            Some(TxnStatus::Active(_)) => Ok(()),
            _ => Err(Error::TxnNotActive { txn: txn.id }),
        }
    }

    /// Snapshot timestamp of the oldest still-active transaction — the
    /// garbage-collection horizon: versions only older readers could see
    /// are reclaimable once this passes them.
    pub fn oldest_active_start(&self) -> Option<Timestamp> {
        self.states
            .read()
            .values()
            .filter_map(|s| match s {
                TxnStatus::Active(ts) => Some(*ts),
                _ => None,
            })
            .min()
    }

    fn finish(&self, txn: &Txn, commit: bool) -> Result<Option<Timestamp>> {
        let mut states = self.states.write();
        match states.get(&txn.id) {
            Some(TxnStatus::Active(_)) => {}
            _ => return Err(Error::TxnNotActive { txn: txn.id }),
        }
        if commit {
            let ts = self.clock.fetch_add(1, Ordering::SeqCst) + 1;
            states.insert(txn.id, TxnStatus::Committed(ts));
            counters().commits.inc();
            Ok(Some(ts))
        } else {
            states.insert(txn.id, TxnStatus::Aborted);
            counters().aborts.inc();
            Ok(None)
        }
    }
}

#[derive(Debug, Clone)]
struct Version<V> {
    /// `None` is a tombstone (deleted).
    value: Option<V>,
    begin: u64,
    end: u64,
}

/// Committed `(key, value)` pairs in write order (`None` = tombstone),
/// as returned by [`MvStore::commit_with_writes`].
pub type CommittedWrites<K, V> = Vec<(K, Option<V>)>;

/// A multi-versioned key-value store bound to a [`TxnManager`].
#[derive(Debug)]
pub struct MvStore<K, V> {
    mgr: Arc<TxnManager>,
    chains: RwLock<HashMap<K, Vec<Version<V>>>>,
    write_sets: Mutex<HashMap<TxnId, Vec<K>>>,
}

impl<K: Hash + Eq + Clone, V: Clone> MvStore<K, V> {
    pub fn new(mgr: Arc<TxnManager>) -> Self {
        MvStore { mgr, chains: RwLock::new(HashMap::new()), write_sets: Mutex::new(HashMap::new()) }
    }

    pub fn manager(&self) -> &Arc<TxnManager> {
        &self.mgr
    }

    /// Write `key → value` within `txn`.
    pub fn put(&self, txn: &Txn, key: K, value: V) -> Result<()> {
        self.write(txn, key, Some(value))
    }

    /// Delete `key` within `txn` (tombstone).
    pub fn delete(&self, txn: &Txn, key: K) -> Result<()> {
        self.write(txn, key, None)
    }

    fn write(&self, txn: &Txn, key: K, value: Option<V>) -> Result<()> {
        self.mgr.check_active(txn)?;
        let mut chains = self.chains.write();
        let chain = chains.entry(key.clone()).or_default();
        if let Some(last) = chain.last_mut() {
            if is_pending(last.begin) {
                if pending_txn(last.begin) == txn.id {
                    // Overwrite our own uncommitted write in place.
                    last.value = value;
                    return Ok(());
                }
                return Err(conflict(txn.id));
            }
            // Newest committed version: first-updater-wins against anything
            // committed after our snapshot.
            if last.begin > txn.start_ts {
                return Err(conflict(txn.id));
            }
            if is_pending(last.end) {
                // Someone else already superseded this version.
                return Err(conflict(txn.id));
            }
            debug_assert_eq!(last.end, INF, "newest version must be open-ended");
            last.end = pending(txn.id);
        }
        chain.push(Version { value, begin: pending(txn.id), end: INF });
        self.write_sets.lock().entry(txn.id).or_default().push(key);
        Ok(())
    }

    /// Read `key` as seen by `txn` (own writes included).
    pub fn get(&self, txn: &Txn, key: &K) -> Option<V> {
        let chains = self.chains.read();
        let chain = chains.get(key)?;
        for v in chain.iter().rev() {
            if self.version_visible(v, txn.id, txn.start_ts) {
                return v.value.clone();
            }
        }
        None
    }

    /// Read `key` as of commit timestamp `ts` (historic query; no
    /// transaction needed).
    pub fn get_as_of(&self, ts: Timestamp, key: &K) -> Option<V> {
        let chains = self.chains.read();
        let chain = chains.get(key)?;
        for v in chain.iter().rev() {
            if self.version_visible(v, TxnId::MAX, ts) {
                return v.value.clone();
            }
        }
        None
    }

    fn version_visible(&self, v: &Version<V>, reader: TxnId, ts: Timestamp) -> bool {
        let begin_ok =
            if is_pending(v.begin) { pending_txn(v.begin) == reader } else { v.begin <= ts };
        if !begin_ok {
            return false;
        }
        if is_pending(v.end) {
            // The superseding write is uncommitted: still visible to others,
            // invisible to the superseder itself.
            pending_txn(v.end) != reader
        } else {
            v.end > ts
        }
    }

    /// Commit `txn`'s writes; returns the commit timestamp.
    ///
    /// The commit timestamp is issued and every stamp applied *under the
    /// chains write lock*, so no reader can obtain a snapshot that lies
    /// between "clock advanced" and "versions stamped" — the atomicity a
    /// multi-key transaction needs against concurrent as-of scans.
    pub fn commit(&self, txn: &Txn) -> Result<Timestamp> {
        Ok(self.commit_with_writes(txn)?.0)
    }

    /// Commit `txn`'s writes, additionally returning the committed
    /// `(key, value)` pairs (`None` value = tombstone) in write order —
    /// the delta a downstream replica (e.g. a device-resident column copy)
    /// needs to catch up without rescanning the store.
    pub fn commit_with_writes(&self, txn: &Txn) -> Result<(Timestamp, CommittedWrites<K, V>)> {
        let keys = {
            let mut sets = self.write_sets.lock();
            sets.remove(&txn.id).unwrap_or_default()
        };
        let mut chains = self.chains.write();
        let ts = match self.mgr.finish(txn, true) {
            Ok(ts) => ts.expect("commit returns a timestamp"),
            Err(e) => {
                // Restore the write set so a later abort can clean up.
                if !keys.is_empty() {
                    self.write_sets.lock().insert(txn.id, keys);
                }
                return Err(e);
            }
        };
        let mut writes = Vec::with_capacity(keys.len());
        for key in keys {
            if let Some(chain) = chains.get_mut(&key) {
                for v in chain.iter_mut() {
                    if is_pending(v.begin) && pending_txn(v.begin) == txn.id {
                        v.begin = ts;
                        writes.push((key.clone(), v.value.clone()));
                    }
                    if is_pending(v.end) && pending_txn(v.end) == txn.id {
                        v.end = ts;
                    }
                }
            }
        }
        Ok((ts, writes))
    }

    /// Abort `txn`, rolling back its pending versions.
    pub fn abort(&self, txn: &Txn) -> Result<()> {
        self.mgr.finish(txn, false)?;
        let keys = self.write_sets.lock().remove(&txn.id).unwrap_or_default();
        let mut chains = self.chains.write();
        for key in keys {
            if let Some(chain) = chains.get_mut(&key) {
                chain.retain(|v| !(is_pending(v.begin) && pending_txn(v.begin) == txn.id));
                for v in chain.iter_mut() {
                    if is_pending(v.end) && pending_txn(v.end) == txn.id {
                        v.end = INF;
                    }
                }
                if chain.is_empty() {
                    chains.remove(&key);
                }
            }
        }
        Ok(())
    }

    /// Drop versions no snapshot at or after `before_ts` can see. Returns
    /// the number of versions pruned.
    pub fn vacuum(&self, before_ts: Timestamp) -> usize {
        let mut chains = self.chains.write();
        let mut pruned = 0;
        chains.retain(|_, chain| {
            let before = chain.len();
            chain.retain(|v| is_pending(v.end) || v.end == INF || v.end > before_ts);
            pruned += before - chain.len();
            !chain.is_empty()
        });
        pruned
    }

    /// Drop whole chains whose newest version is committed, open-ended,
    /// and already merged into external base storage, provided no reader
    /// with a snapshot at or after `horizon` could need any other version.
    /// Returns the number of versions dropped.
    ///
    /// Callers must have copied the newest committed value of every dropped
    /// chain into their base storage first (see the reference engine's
    /// merge step).
    pub fn prune_merged(&self, horizon: Timestamp) -> usize {
        let mut chains = self.chains.write();
        let mut dropped = 0;
        chains.retain(|_, chain| {
            let safe = chain.last().is_some_and(|newest| {
                !is_pending(newest.begin)
                    && newest.end == INF
                    && newest.begin <= horizon
                    && newest.value.is_some()
            }) && chain[..chain.len() - 1]
                .iter()
                .all(|v| !is_pending(v.end) && v.end <= horizon);
            if safe {
                dropped += chain.len();
            }
            !safe
        });
        dropped
    }

    /// Number of live keys as of now (committed view).
    pub fn len_committed(&self) -> usize {
        let ts = self.mgr.now();
        let chains = self.chains.read();
        chains
            .values()
            .filter(|chain| {
                chain
                    .iter()
                    .rev()
                    .find(|v| self.version_visible(v, TxnId::MAX, ts))
                    .map(|v| v.value.is_some())
                    .unwrap_or(false)
            })
            .count()
    }

    /// Total stored versions (for merge/vacuum instrumentation).
    pub fn version_count(&self) -> usize {
        self.chains.read().values().map(Vec::len).sum()
    }

    /// Visit every key's committed-as-of-now value.
    pub fn for_each_committed(&self, f: &mut dyn FnMut(&K, &V)) {
        let ts = self.mgr.now();
        let chains = self.chains.read();
        for (k, chain) in chains.iter() {
            if let Some(v) = chain.iter().rev().find(|v| self.version_visible(v, TxnId::MAX, ts)) {
                if let Some(val) = &v.value {
                    f(k, val);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<TxnManager>, MvStore<u64, String>) {
        let mgr = Arc::new(TxnManager::new());
        let store = MvStore::new(mgr.clone());
        (mgr, store)
    }

    #[test]
    fn commit_makes_writes_visible() {
        let (mgr, store) = setup();
        let t1 = mgr.begin();
        store.put(&t1, 1, "a".into()).unwrap();
        // Uncommitted: invisible to a new transaction.
        let t2 = mgr.begin();
        assert_eq!(store.get(&t2, &1), None);
        // Visible to itself.
        assert_eq!(store.get(&t1, &1), Some("a".into()));
        store.commit(&t1).unwrap();
        // Still invisible to t2 (snapshot taken before commit).
        assert_eq!(store.get(&t2, &1), None);
        let t3 = mgr.begin();
        assert_eq!(store.get(&t3, &1), Some("a".into()));
    }

    #[test]
    fn snapshot_isolation_for_long_readers() {
        let (mgr, store) = setup();
        let w0 = mgr.begin();
        store.put(&w0, 1, "v0".into()).unwrap();
        store.commit(&w0).unwrap();

        let olap = mgr.begin(); // long-running analytic reader
        for i in 1..=5 {
            let w = mgr.begin();
            store.put(&w, 1, format!("v{i}")).unwrap();
            store.commit(&w).unwrap();
        }
        // The reader still sees its snapshot despite five later commits.
        assert_eq!(store.get(&olap, &1), Some("v0".into()));
        let fresh = mgr.begin();
        assert_eq!(store.get(&fresh, &1), Some("v5".into()));
    }

    #[test]
    fn first_updater_wins() {
        let (mgr, store) = setup();
        let init = mgr.begin();
        store.put(&init, 1, "base".into()).unwrap();
        store.commit(&init).unwrap();

        let t1 = mgr.begin();
        let t2 = mgr.begin();
        store.put(&t1, 1, "t1".into()).unwrap();
        assert_eq!(store.put(&t2, 1, "t2".into()), Err(Error::TxnConflict { txn: t2.id }));
        store.commit(&t1).unwrap();
    }

    #[test]
    fn conflict_with_commit_after_snapshot() {
        let (mgr, store) = setup();
        let init = mgr.begin();
        store.put(&init, 1, "base".into()).unwrap();
        store.commit(&init).unwrap();

        let t1 = mgr.begin(); // snapshot now
        let t2 = mgr.begin();
        store.put(&t2, 1, "t2".into()).unwrap();
        store.commit(&t2).unwrap();
        // t1's snapshot predates t2's commit: write must conflict.
        assert_eq!(store.put(&t1, 1, "t1".into()), Err(Error::TxnConflict { txn: t1.id }));
    }

    #[test]
    fn abort_rolls_back() {
        let (mgr, store) = setup();
        let init = mgr.begin();
        store.put(&init, 1, "base".into()).unwrap();
        store.commit(&init).unwrap();

        let t = mgr.begin();
        store.put(&t, 1, "oops".into()).unwrap();
        store.put(&t, 2, "new".into()).unwrap();
        store.abort(&t).unwrap();

        let r = mgr.begin();
        assert_eq!(store.get(&r, &1), Some("base".into()));
        assert_eq!(store.get(&r, &2), None);
        // The key can be written again after the abort.
        let w = mgr.begin();
        store.put(&w, 1, "after".into()).unwrap();
        store.commit(&w).unwrap();
    }

    #[test]
    fn delete_and_tombstone_visibility() {
        let (mgr, store) = setup();
        let w = mgr.begin();
        store.put(&w, 1, "x".into()).unwrap();
        store.commit(&w).unwrap();

        let before_delete = mgr.now();
        let d = mgr.begin();
        store.delete(&d, 1).unwrap();
        store.commit(&d).unwrap();

        let r = mgr.begin();
        assert_eq!(store.get(&r, &1), None);
        // Historic read before the delete still sees the value.
        assert_eq!(store.get_as_of(before_delete, &1), Some("x".into()));
    }

    #[test]
    fn historic_queries_walk_versions() {
        let (mgr, store) = setup();
        let mut stamps = Vec::new();
        for i in 0..4 {
            let w = mgr.begin();
            store.put(&w, 7, format!("v{i}")).unwrap();
            stamps.push(store.commit(&w).unwrap());
        }
        for (i, ts) in stamps.iter().enumerate() {
            assert_eq!(store.get_as_of(*ts, &7), Some(format!("v{i}")));
        }
        assert_eq!(store.get_as_of(stamps[0] - 1, &7), None);
    }

    #[test]
    fn vacuum_prunes_dead_versions_only() {
        let (mgr, store) = setup();
        for i in 0..5 {
            let w = mgr.begin();
            store.put(&w, 1, format!("v{i}")).unwrap();
            store.commit(&w).unwrap();
        }
        assert_eq!(store.version_count(), 5);
        let pruned = store.vacuum(mgr.now());
        assert_eq!(pruned, 4);
        let r = mgr.begin();
        assert_eq!(store.get(&r, &1), Some("v4".into()));
    }

    #[test]
    fn operations_on_finished_txn_fail() {
        let (mgr, store) = setup();
        let t = mgr.begin();
        store.commit(&t).unwrap();
        assert_eq!(store.put(&t, 1, "x".into()), Err(Error::TxnNotActive { txn: t.id }));
        assert!(store.commit(&t).is_err());
        assert!(store.abort(&t).is_err());
    }

    #[test]
    fn concurrent_writers_distinct_keys() {
        let (mgr, store) = setup();
        // Eight logical writers on the executor pool; indices are claimed
        // exactly once, so every writer's keys land regardless of how many
        // pool threads actually participate.
        htapg_exec::pool::run_tasks(8, 8, |w| {
            for i in 0..200u64 {
                let t = mgr.begin();
                store.put(&t, w * 1000 + i, format!("{w}:{i}")).unwrap();
                store.commit(&t).unwrap();
            }
        });
        assert_eq!(store.len_committed(), 8 * 200);
    }

    #[test]
    fn concurrent_writers_same_key_exactly_one_wins_per_round() {
        let (mgr, store) = setup();
        let successes = AtomicU64::new(0);
        htapg_exec::pool::run_tasks(8, 8, |_| {
            for _ in 0..100 {
                let t = mgr.begin();
                match store.put(&t, 42, "x".into()) {
                    Ok(()) => {
                        store.commit(&t).unwrap();
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(Error::TxnConflict { .. }) => store.abort(&t).unwrap(),
                    Err(e) => panic!("unexpected: {e}"),
                }
            }
        });
        assert!(successes.load(Ordering::Relaxed) >= 1);
        let r = mgr.begin();
        assert_eq!(store.get(&r, &42), Some("x".into()));
    }
}
