//! The common storage-engine API.
//!
//! All ten surveyed archetypes in `htapg-engines`, plus the Section IV-C
//! reference engine, implement [`StorageEngine`]. The execution layer
//! (`htapg-exec`), the workload driver (`htapg-workload`), and every
//! benchmark run against this trait, so engines are compared on identical
//! terms — the methodological point of the paper's Table 1.

use std::sync::Arc;

use htapg_taxonomy::Classification;

use crate::costmodel::CacheSpec;
use crate::error::{Error, Result};
use crate::obs;
use crate::plan::{
    self, ColumnEvidence, DeviceCostProfile, EngineCapabilities, LogicalPlan, PhysicalPlan,
    Predicate, TableEvidence,
};
use crate::schema::{AttrId, Record, RelationId, RowId, Schema};
use crate::types::Value;

/// Report returned by [`StorageEngine::maintain`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Layouts rewritten by responsive adaptation.
    pub layouts_reorganized: usize,
    /// Tail/base merges performed (L-Store), chunks compacted (HyPer), …
    pub merges: usize,
    /// Versions / tombstones garbage-collected.
    pub versions_pruned: usize,
    /// Fragments moved between locations (device placement etc.).
    pub fragments_moved: usize,
}

impl MaintenanceReport {
    pub fn did_anything(&self) -> bool {
        self.layouts_reorganized + self.merges + self.versions_pruned + self.fragments_moved > 0
    }
}

/// The uniform storage-engine interface.
///
/// Access-pattern vocabulary follows Section II: [`read_record`] is the
/// record-centric extreme (Q1), [`scan_column`] the attribute-centric
/// extreme (Q2).
///
/// [`read_record`]: StorageEngine::read_record
/// [`scan_column`]: StorageEngine::scan_column
pub trait StorageEngine: Send + Sync {
    /// Engine name (matches Table 1 where applicable).
    fn name(&self) -> &'static str;

    /// Taxonomy classification — the engine's Table 1 row, derived from its
    /// actual configuration.
    fn classification(&self) -> Classification;

    /// Create a relation; returns its id.
    fn create_relation(&self, schema: Schema) -> Result<RelationId>;

    /// Schema of a relation.
    fn schema(&self, rel: RelationId) -> Result<Schema>;

    /// Append a record; returns the assigned row id (dense, insertion
    /// order).
    fn insert(&self, rel: RelationId, record: &Record) -> Result<RowId>;

    /// Record-centric read: materialize all fields of one row.
    fn read_record(&self, rel: RelationId, row: RowId) -> Result<Record>;

    /// Read one field.
    fn read_field(&self, rel: RelationId, row: RowId, attr: AttrId) -> Result<Value>;

    /// Update one field in place (engines with versioning append a new
    /// version instead).
    fn update_field(&self, rel: RelationId, row: RowId, attr: AttrId, value: &Value) -> Result<()>;

    /// Attribute-centric scan: visit every value of `attr` in row order.
    fn scan_column(
        &self,
        rel: RelationId,
        attr: AttrId,
        visit: &mut dyn FnMut(RowId, &Value),
    ) -> Result<()>;

    /// Fast path: invoke `visit` once per *contiguous* raw block of the
    /// column's fixed-width little-endian values, in row order. Returns
    /// `Ok(false)` (without calling `visit`) when the engine cannot provide
    /// contiguous blocks (e.g. NSM storage) — callers fall back to
    /// [`scan_column`](StorageEngine::scan_column).
    fn with_column_bytes(
        &self,
        rel: RelationId,
        attr: AttrId,
        visit: &mut dyn FnMut(&[u8]),
    ) -> Result<bool> {
        let _ = (rel, attr, visit);
        Ok(false)
    }

    /// Sum a numeric column (the paper's "sum prices" operation). The
    /// default scans on the host, preferring the contiguous fast path;
    /// device-backed engines override it to answer from a fresh device
    /// replica (charging virtual kernel time) when one exists.
    ///
    /// Summing a non-numeric column is a typed error
    /// ([`Error::NonNumericAggregate`]), never a silent `0.0` — the type
    /// is checked up front, so both the fast path and the fallback reject
    /// it before touching any data.
    fn sum_column_f64(&self, rel: RelationId, attr: AttrId) -> Result<f64> {
        let ty = self.schema(rel)?.ty(attr)?;
        if !ty.is_numeric() {
            return Err(Error::NonNumericAggregate { attr, got: ty.name() });
        }
        let width = ty.width();
        let mut sum = 0.0f64;
        let used_fast = self.with_column_bytes(rel, attr, &mut |block| {
            for chunk in block.chunks_exact(width) {
                let x =
                    Value::decode(ty, chunk).as_f64().expect("column type checked numeric above");
                sum += x;
            }
        })?;
        if used_fast {
            return Ok(sum);
        }
        sum = 0.0;
        self.scan_column(rel, attr, &mut |_, v| {
            sum += v.as_f64().expect("column type checked numeric above");
        })?;
        Ok(sum)
    }

    /// Materialize several rows in one call (the paper's "materialize 150
    /// customers" operation). The default is the per-row tuple loop;
    /// engines with contiguous NSM rows override it to serve a *sorted*
    /// position list in one sequential pass under a single lock/snapshot.
    /// Results are always in the order of `rows`.
    fn materialize_rows(&self, rel: RelationId, rows: &[RowId]) -> Result<Vec<Record>> {
        rows.iter().map(|&r| self.read_record(rel, r)).collect()
    }

    /// Number of rows in a relation.
    fn row_count(&self, rel: RelationId) -> Result<u64>;

    /// Run background maintenance (adaptation, merges, compaction,
    /// placement). Engines with nothing to do return a default report.
    fn maintain(&self) -> Result<MaintenanceReport> {
        Ok(MaintenanceReport::default())
    }

    // --- Query planning (DESIGN.md §12) -------------------------------

    /// What this engine can do, derived from its Table 1 classification.
    /// Engines whose abilities differ from their taxonomy row (they
    /// shouldn't) may override.
    fn capabilities(&self) -> EngineCapabilities {
        EngineCapabilities::from_classification(&self.classification())
    }

    /// Cost parameters of the engine's simulated device, if it has one.
    /// `None` (the default) disables every device route in the planner.
    fn device_cost_profile(&self) -> Option<DeviceCostProfile> {
        None
    }

    /// Evidence the planner prices a column scan from. The default derives
    /// everything statically from capabilities and schema and reports a
    /// cold device cache; device-backed engines override it to report live
    /// replica warmth (a peek — no counters, no virtual cost), and engines
    /// with version overlays report whether the contiguous fast path is
    /// currently available.
    fn column_evidence(&self, rel: RelationId, attr: AttrId) -> Result<ColumnEvidence> {
        let schema = self.schema(rel)?;
        let ty = schema.ty(attr)?;
        let rows = self.row_count(rel)?;
        let contiguous = self.capabilities().contiguous_scan;
        let scan_stride = if contiguous { ty.width() as u64 } else { schema.tuple_width() as u64 };
        Ok(ColumnEvidence { rows, ty, scan_stride, contiguous, device_warm: false, stale_rows: 0 })
    }

    /// Evidence for record-centric nodes (materialize, point reads).
    fn table_evidence(&self, rel: RelationId) -> Result<TableEvidence> {
        let schema = self.schema(rel)?;
        let rows = self.row_count(rel)?;
        let lin = self.classification().fragment_linearization;
        let contiguous_nsm = matches!(lin, htapg_taxonomy::FragmentLinearization::FatNsmFixed)
            || lin.covers_nsm_and_dsm();
        Ok(TableEvidence { rows, record_width: schema.tuple_width() as u64, contiguous_nsm })
    }

    /// Per-node evidence for a partitioned column (DESIGN.md §15). `None`
    /// (the default, for every single-node engine) keeps the planner on
    /// the flat lowering; sharded engines return the placement geometry,
    /// the interconnect price list, and one [`plan::ShardEvidence`] per
    /// node so aggregates lower to scatter-gather.
    fn shard_evidence(
        &self,
        rel: RelationId,
        attr: AttrId,
    ) -> Result<Option<plan::ShardPlanEvidence>> {
        let _ = (rel, attr);
        Ok(None)
    }

    /// Build a routed physical plan for `logical`. The default runs the
    /// shared cost-based router over this engine's capabilities, device
    /// profile, and live column (and shard) evidence; engines with their
    /// own scheduler may override (and still fall back to the default for
    /// shapes they don't special-case).
    fn plan(&self, logical: &LogicalPlan) -> Result<PhysicalPlan> {
        let caps = self.capabilities();
        let device = self.device_cost_profile();
        let cache = CacheSpec::default();
        let cal = self.calibration();
        plan::build_plan_sharded(
            logical,
            &plan::PlannerContext {
                caps: &caps,
                device: device.as_ref(),
                cache: &cache,
                calibration: cal.as_deref(),
            },
            &mut |rel, attr| self.column_evidence(rel, attr),
            &mut |rel| self.table_evidence(rel),
            &mut |rel, attr| self.shard_evidence(rel, attr),
        )
    }

    /// The engine's online cost-calibration profiles, if it keeps any.
    /// `None` (the default) leaves the planner on its static estimates
    /// and disables the executor's residual feedback for this engine.
    fn calibration(&self) -> Option<Arc<crate::calibrate::CalibrationProfiles>> {
        None
    }

    /// Device route for `SUM(attr)`: answer from device memory, charging
    /// virtual transfer/kernel time to the engine's ledger. The default
    /// has no device; the physical executor falls back to the host
    /// canonical reduction on any error, so a stale replica degrades
    /// gracefully (and bit-identically).
    fn device_sum_column(&self, rel: RelationId, attr: AttrId) -> Result<f64> {
        let _ = (rel, attr);
        Err(Error::Internal("engine has no device sum".into()))
    }

    /// Device route for the fused `SUM(attr) WHERE pred(attr)` shape.
    fn device_filter_sum(&self, rel: RelationId, attr: AttrId, pred: &Predicate) -> Result<f64> {
        let _ = (rel, attr, pred);
        Err(Error::Internal("engine has no device filter-sum".into()))
    }

    /// Device route for `SUM(value) GROUP BY key`: gather each group's
    /// values from a resident replica (preserving row order) and reduce
    /// per group. Returns `(key, sum)` ordered by key.
    fn device_group_sum(
        &self,
        rel: RelationId,
        key_attr: AttrId,
        value_attr: AttrId,
    ) -> Result<Vec<(i64, f64)>> {
        let _ = (rel, key_attr, value_attr);
        Err(Error::Internal("engine has no device group-sum".into()))
    }

    /// Scatter route for `SUM(attr)` (optionally predicated): fan the
    /// partial sums out to the owning cluster nodes and gather them in
    /// canonical fragment order. Only sharded engines implement this; the
    /// physical executor falls back to the host path (same sharded
    /// reduction geometry) on any error, so a failed gather degrades
    /// gracefully — and bit-identically.
    fn scatter_sum(&self, rel: RelationId, attr: AttrId, pred: Option<&Predicate>) -> Result<f64> {
        let _ = (rel, attr, pred);
        Err(Error::Internal("engine has no scatter sum".into()))
    }

    /// Scatter route for `SUM(value) GROUP BY key`: per-shard keyed
    /// partials merged per key over canonical fragment order. Returns
    /// `(key, sum)` ordered by key.
    fn scatter_group_sum(
        &self,
        rel: RelationId,
        key_attr: AttrId,
        value_attr: AttrId,
    ) -> Result<Vec<(i64, f64)>> {
        let _ = (rel, key_attr, value_attr);
        Err(Error::Internal("engine has no scatter group-sum".into()))
    }

    /// The virtual clock this engine's work is charged against, for span
    /// tracing: engines backed by a simulated device return their
    /// `CostLedger`. Host-only engines return `None` — callers fall back
    /// to a [`obs::ManualClock`], so spans still carry structure and
    /// counts, just zero virtual duration.
    fn trace_clock(&self) -> Option<Arc<dyn obs::VirtualClock>> {
        None
    }

    /// EXPLAIN-style cost breakdown of a traced run against this engine:
    /// the span tree with inclusive/exclusive virtual nanoseconds and
    /// per-ledger-category attribution. All engines render through the
    /// same [`obs::TraceReport`], so breakdowns are directly comparable
    /// across the surveyed archetypes.
    fn explain(&self, report: &obs::TraceReport) -> String {
        report.render(self.name())
    }
}

/// Blanket helpers available on every engine.
///
/// (`sum_column_f64` used to live here; it is now an *overridable* default
/// method on [`StorageEngine`] so device-backed engines can route analytic
/// sums to a fresh device replica.)
pub trait StorageEngineExt: StorageEngine {
    /// Materialize several rows (the paper's "materialize 150 customers"
    /// operation). Delegates to the overridable
    /// [`StorageEngine::materialize_rows`], so engines with a batch fast
    /// path serve this too.
    fn materialize(&self, rel: RelationId, rows: &[RowId]) -> Result<Vec<Record>> {
        self.materialize_rows(rel, rows)
    }
}

impl<T: StorageEngine + ?Sized> StorageEngineExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutTemplate;
    use crate::relation::Relation;
    use crate::sync::RwLock;
    use crate::types::DataType;
    use htapg_taxonomy::{
        DataLocality, DataLocation, FragmentLinearization, FragmentScheme, LayoutAdaptability,
        LayoutFlexibility, LayoutHandling, ProcessorSupport, WorkloadSupport,
    };

    /// Minimal engine over a single relation, used to test the blanket
    /// helpers and as the simplest possible reference implementation.
    struct Toy {
        rel: RwLock<Option<Relation>>,
    }

    impl Toy {
        fn new() -> Self {
            Toy { rel: RwLock::new(None) }
        }
    }

    impl StorageEngine for Toy {
        fn name(&self) -> &'static str {
            "TOY"
        }

        fn classification(&self) -> Classification {
            Classification {
                name: "TOY",
                layout_handling: LayoutHandling::Single,
                layout_flexibility: LayoutFlexibility::Inflexible,
                layout_adaptability: LayoutAdaptability::Static,
                data_location: DataLocation::host_only(),
                data_locality: DataLocality::Centralized,
                fragment_linearization: FragmentLinearization::FatNsmFixed,
                fragment_scheme: FragmentScheme::None,
                processor_support: ProcessorSupport::Cpu,
                workload_support: WorkloadSupport::Oltp,
                year: 2017,
            }
        }

        fn create_relation(&self, schema: Schema) -> Result<RelationId> {
            let template = LayoutTemplate::nsm(&schema);
            *self.rel.write() = Some(Relation::new(schema, template)?);
            Ok(0)
        }

        fn schema(&self, _rel: RelationId) -> Result<Schema> {
            Ok(self.rel.read().as_ref().unwrap().schema().clone())
        }

        fn insert(&self, _rel: RelationId, record: &Record) -> Result<RowId> {
            self.rel.write().as_mut().unwrap().insert(record)
        }

        fn read_record(&self, _rel: RelationId, row: RowId) -> Result<Record> {
            self.rel.read().as_ref().unwrap().read_record(row)
        }

        fn read_field(&self, _rel: RelationId, row: RowId, attr: AttrId) -> Result<Value> {
            self.rel.read().as_ref().unwrap().read_value(
                row,
                attr,
                crate::scheme::AccessHint::RecordCentric,
            )
        }

        fn update_field(
            &self,
            _rel: RelationId,
            row: RowId,
            attr: AttrId,
            value: &Value,
        ) -> Result<()> {
            self.rel.write().as_mut().unwrap().update_field(row, attr, value)
        }

        fn scan_column(
            &self,
            _rel: RelationId,
            attr: AttrId,
            visit: &mut dyn FnMut(RowId, &Value),
        ) -> Result<()> {
            let guard = self.rel.read();
            let rel = guard.as_ref().unwrap();
            let ty = rel.schema().ty(attr)?;
            rel.for_each_field(attr, |row, bytes| visit(row, &Value::decode(ty, bytes)))
        }

        fn row_count(&self, _rel: RelationId) -> Result<u64> {
            Ok(self.rel.read().as_ref().unwrap().row_count())
        }
    }

    #[test]
    fn blanket_helpers_work() {
        let e = Toy::new();
        let s = Schema::of(&[("k", DataType::Int64), ("price", DataType::Float64)]);
        let rel = e.create_relation(s).unwrap();
        for i in 0..100 {
            e.insert(rel, &vec![Value::Int64(i), Value::Float64(i as f64 * 0.5)]).unwrap();
        }
        let sum = e.sum_column_f64(rel, 1).unwrap();
        assert_eq!(sum, (0..100).map(|i| i as f64 * 0.5).sum::<f64>());
        let recs = e.materialize(rel, &[3, 7]).unwrap();
        assert_eq!(recs[0][0], Value::Int64(3));
        assert_eq!(recs[1][1], Value::Float64(3.5));
        assert_eq!(e.row_count(rel).unwrap(), 100);
        assert!(!e.maintain().unwrap().did_anything());
    }

    #[test]
    fn trait_objects_are_usable() {
        let e: Box<dyn StorageEngine> = Box::new(Toy::new());
        let s = Schema::of(&[("x", DataType::Int64)]);
        let rel = e.create_relation(s).unwrap();
        e.insert(rel, &vec![Value::Int64(9)]).unwrap();
        assert_eq!(e.read_field(rel, 0, 0).unwrap(), Value::Int64(9));
        assert_eq!(e.classification().name, "TOY");
    }

    /// DSM variant of [`Toy`] that serves the contiguous fast path, to
    /// exercise `sum_column_f64`'s `with_column_bytes` branch.
    struct ToyDsm {
        inner: Toy,
    }

    impl StorageEngine for ToyDsm {
        fn name(&self) -> &'static str {
            "TOY-DSM"
        }

        fn classification(&self) -> Classification {
            Classification {
                fragment_linearization: FragmentLinearization::FatDsmFixed,
                ..self.inner.classification()
            }
        }

        fn create_relation(&self, schema: Schema) -> Result<RelationId> {
            let template = LayoutTemplate::dsm(&schema);
            *self.inner.rel.write() = Some(Relation::new(schema, template)?);
            Ok(0)
        }

        fn schema(&self, rel: RelationId) -> Result<Schema> {
            self.inner.schema(rel)
        }

        fn insert(&self, rel: RelationId, record: &Record) -> Result<RowId> {
            self.inner.insert(rel, record)
        }

        fn read_record(&self, rel: RelationId, row: RowId) -> Result<Record> {
            self.inner.read_record(rel, row)
        }

        fn read_field(&self, rel: RelationId, row: RowId, attr: AttrId) -> Result<Value> {
            self.inner.read_field(rel, row, attr)
        }

        fn update_field(
            &self,
            rel: RelationId,
            row: RowId,
            attr: AttrId,
            value: &Value,
        ) -> Result<()> {
            self.inner.update_field(rel, row, attr, value)
        }

        fn scan_column(
            &self,
            rel: RelationId,
            attr: AttrId,
            visit: &mut dyn FnMut(RowId, &Value),
        ) -> Result<()> {
            self.inner.scan_column(rel, attr, visit)
        }

        fn with_column_bytes(
            &self,
            _rel: RelationId,
            attr: AttrId,
            visit: &mut dyn FnMut(&[u8]),
        ) -> Result<bool> {
            self.inner.rel.read().as_ref().unwrap().with_column_bytes(attr, visit)
        }

        fn row_count(&self, rel: RelationId) -> Result<u64> {
            self.inner.row_count(rel)
        }
    }

    #[test]
    fn non_numeric_sum_is_typed_error_on_fallback_path() {
        // Toy is NSM: `with_column_bytes` declines, so the sum goes down
        // the `scan_column` fallback — which must also reject up front.
        let e = Toy::new();
        let s = Schema::of(&[("name", DataType::Text(8)), ("price", DataType::Float64)]);
        let rel = e.create_relation(s).unwrap();
        e.insert(rel, &vec![Value::Text("x".into()), Value::Float64(1.5)]).unwrap();
        let err = e.sum_column_f64(rel, 0).unwrap_err();
        assert_eq!(err, crate::error::Error::NonNumericAggregate { attr: 0, got: "text" });
        // The numeric column still sums.
        assert_eq!(e.sum_column_f64(rel, 1).unwrap(), 1.5);
    }

    #[test]
    fn non_numeric_sum_is_typed_error_on_fast_path() {
        let e = ToyDsm { inner: Toy::new() };
        let s = Schema::of(&[("flag", DataType::Bool), ("price", DataType::Float64)]);
        let rel = e.create_relation(s).unwrap();
        for i in 0..10 {
            e.insert(rel, &vec![Value::Bool(i % 2 == 0), Value::Float64(i as f64)]).unwrap();
        }
        // Sanity: the fast path is actually taken for the numeric column.
        let mut blocks = 0;
        assert!(e.with_column_bytes(rel, 1, &mut |_| blocks += 1).unwrap());
        assert!(blocks > 0);
        let err = e.sum_column_f64(rel, 0).unwrap_err();
        assert_eq!(err, crate::error::Error::NonNumericAggregate { attr: 0, got: "bool" });
        assert_eq!(e.sum_column_f64(rel, 1).unwrap(), (0..10).sum::<i32>() as f64);
    }

    #[test]
    fn default_plan_routes_tiny_host_relation_inline() {
        let e = Toy::new();
        let s = Schema::of(&[("k", DataType::Int64), ("price", DataType::Float64)]);
        let rel = e.create_relation(s).unwrap();
        for i in 0..50 {
            e.insert(rel, &vec![Value::Int64(i), Value::Float64(i as f64)]).unwrap();
        }
        let plan = e.plan(&LogicalPlan::sum(rel, 1)).unwrap();
        assert_eq!(plan.route(), crate::plan::Route::InlineVolcano);
        // NSM-only engine: the planner pins the value-visit strategy.
        assert_eq!(plan.root.strategy, crate::plan::ScanStrategy::ValueVisit);
        assert_eq!(plan.bytes_to_device(), 0);
        // Toy has no device, so estimates are pure cache-model host costs.
        assert!(plan.estimated_ns() > 0);
    }

    #[test]
    fn materialize_rows_default_matches_read_record_loop() {
        let e = Toy::new();
        let s = Schema::of(&[("k", DataType::Int64)]);
        let rel = e.create_relation(s).unwrap();
        for i in 0..20 {
            e.insert(rel, &vec![Value::Int64(i)]).unwrap();
        }
        let recs = e.materialize_rows(rel, &[7, 3, 19]).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0][0], Value::Int64(7));
        assert_eq!(recs[1][0], Value::Int64(3));
        assert_eq!(recs[2][0], Value::Int64(19));
    }
}
