//! The common storage-engine API.
//!
//! All ten surveyed archetypes in `htapg-engines`, plus the Section IV-C
//! reference engine, implement [`StorageEngine`]. The execution layer
//! (`htapg-exec`), the workload driver (`htapg-workload`), and every
//! benchmark run against this trait, so engines are compared on identical
//! terms — the methodological point of the paper's Table 1.

use std::sync::Arc;

use htapg_taxonomy::Classification;

use crate::error::Result;
use crate::obs;
use crate::schema::{AttrId, Record, RelationId, RowId, Schema};
use crate::types::Value;

/// Report returned by [`StorageEngine::maintain`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Layouts rewritten by responsive adaptation.
    pub layouts_reorganized: usize,
    /// Tail/base merges performed (L-Store), chunks compacted (HyPer), …
    pub merges: usize,
    /// Versions / tombstones garbage-collected.
    pub versions_pruned: usize,
    /// Fragments moved between locations (device placement etc.).
    pub fragments_moved: usize,
}

impl MaintenanceReport {
    pub fn did_anything(&self) -> bool {
        self.layouts_reorganized + self.merges + self.versions_pruned + self.fragments_moved > 0
    }
}

/// The uniform storage-engine interface.
///
/// Access-pattern vocabulary follows Section II: [`read_record`] is the
/// record-centric extreme (Q1), [`scan_column`] the attribute-centric
/// extreme (Q2).
///
/// [`read_record`]: StorageEngine::read_record
/// [`scan_column`]: StorageEngine::scan_column
pub trait StorageEngine: Send + Sync {
    /// Engine name (matches Table 1 where applicable).
    fn name(&self) -> &'static str;

    /// Taxonomy classification — the engine's Table 1 row, derived from its
    /// actual configuration.
    fn classification(&self) -> Classification;

    /// Create a relation; returns its id.
    fn create_relation(&self, schema: Schema) -> Result<RelationId>;

    /// Schema of a relation.
    fn schema(&self, rel: RelationId) -> Result<Schema>;

    /// Append a record; returns the assigned row id (dense, insertion
    /// order).
    fn insert(&self, rel: RelationId, record: &Record) -> Result<RowId>;

    /// Record-centric read: materialize all fields of one row.
    fn read_record(&self, rel: RelationId, row: RowId) -> Result<Record>;

    /// Read one field.
    fn read_field(&self, rel: RelationId, row: RowId, attr: AttrId) -> Result<Value>;

    /// Update one field in place (engines with versioning append a new
    /// version instead).
    fn update_field(&self, rel: RelationId, row: RowId, attr: AttrId, value: &Value) -> Result<()>;

    /// Attribute-centric scan: visit every value of `attr` in row order.
    fn scan_column(
        &self,
        rel: RelationId,
        attr: AttrId,
        visit: &mut dyn FnMut(RowId, &Value),
    ) -> Result<()>;

    /// Fast path: invoke `visit` once per *contiguous* raw block of the
    /// column's fixed-width little-endian values, in row order. Returns
    /// `Ok(false)` (without calling `visit`) when the engine cannot provide
    /// contiguous blocks (e.g. NSM storage) — callers fall back to
    /// [`scan_column`](StorageEngine::scan_column).
    fn with_column_bytes(
        &self,
        rel: RelationId,
        attr: AttrId,
        visit: &mut dyn FnMut(&[u8]),
    ) -> Result<bool> {
        let _ = (rel, attr, visit);
        Ok(false)
    }

    /// Sum a numeric column (the paper's "sum prices" operation). The
    /// default scans on the host, preferring the contiguous fast path;
    /// device-backed engines override it to answer from a fresh device
    /// replica (charging virtual kernel time) when one exists.
    fn sum_column_f64(&self, rel: RelationId, attr: AttrId) -> Result<f64> {
        let ty = self.schema(rel)?.ty(attr)?;
        let width = ty.width();
        let mut sum = 0.0f64;
        let used_fast = self.with_column_bytes(rel, attr, &mut |block| {
            for chunk in block.chunks_exact(width) {
                let v = Value::decode(ty, chunk);
                if let Ok(x) = v.as_f64() {
                    sum += x;
                }
            }
        })?;
        if used_fast {
            return Ok(sum);
        }
        sum = 0.0;
        self.scan_column(rel, attr, &mut |_, v| {
            if let Ok(x) = v.as_f64() {
                sum += x;
            }
        })?;
        Ok(sum)
    }

    /// Number of rows in a relation.
    fn row_count(&self, rel: RelationId) -> Result<u64>;

    /// Run background maintenance (adaptation, merges, compaction,
    /// placement). Engines with nothing to do return a default report.
    fn maintain(&self) -> Result<MaintenanceReport> {
        Ok(MaintenanceReport::default())
    }

    /// The virtual clock this engine's work is charged against, for span
    /// tracing: engines backed by a simulated device return their
    /// `CostLedger`. Host-only engines return `None` — callers fall back
    /// to a [`obs::ManualClock`], so spans still carry structure and
    /// counts, just zero virtual duration.
    fn trace_clock(&self) -> Option<Arc<dyn obs::VirtualClock>> {
        None
    }

    /// EXPLAIN-style cost breakdown of a traced run against this engine:
    /// the span tree with inclusive/exclusive virtual nanoseconds and
    /// per-ledger-category attribution. All engines render through the
    /// same [`obs::TraceReport`], so breakdowns are directly comparable
    /// across the surveyed archetypes.
    fn explain(&self, report: &obs::TraceReport) -> String {
        report.render(self.name())
    }
}

/// Blanket helpers available on every engine.
///
/// (`sum_column_f64` used to live here; it is now an *overridable* default
/// method on [`StorageEngine`] so device-backed engines can route analytic
/// sums to a fresh device replica.)
pub trait StorageEngineExt: StorageEngine {
    /// Materialize several rows (the paper's "materialize 150 customers"
    /// operation).
    fn materialize(&self, rel: RelationId, rows: &[RowId]) -> Result<Vec<Record>> {
        rows.iter().map(|&r| self.read_record(rel, r)).collect()
    }
}

impl<T: StorageEngine + ?Sized> StorageEngineExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutTemplate;
    use crate::relation::Relation;
    use crate::sync::RwLock;
    use crate::types::DataType;
    use htapg_taxonomy::{
        DataLocality, DataLocation, FragmentLinearization, FragmentScheme, LayoutAdaptability,
        LayoutFlexibility, LayoutHandling, ProcessorSupport, WorkloadSupport,
    };

    /// Minimal engine over a single relation, used to test the blanket
    /// helpers and as the simplest possible reference implementation.
    struct Toy {
        rel: RwLock<Option<Relation>>,
    }

    impl Toy {
        fn new() -> Self {
            Toy { rel: RwLock::new(None) }
        }
    }

    impl StorageEngine for Toy {
        fn name(&self) -> &'static str {
            "TOY"
        }

        fn classification(&self) -> Classification {
            Classification {
                name: "TOY",
                layout_handling: LayoutHandling::Single,
                layout_flexibility: LayoutFlexibility::Inflexible,
                layout_adaptability: LayoutAdaptability::Static,
                data_location: DataLocation::host_only(),
                data_locality: DataLocality::Centralized,
                fragment_linearization: FragmentLinearization::FatNsmFixed,
                fragment_scheme: FragmentScheme::None,
                processor_support: ProcessorSupport::Cpu,
                workload_support: WorkloadSupport::Oltp,
                year: 2017,
            }
        }

        fn create_relation(&self, schema: Schema) -> Result<RelationId> {
            let template = LayoutTemplate::nsm(&schema);
            *self.rel.write() = Some(Relation::new(schema, template)?);
            Ok(0)
        }

        fn schema(&self, _rel: RelationId) -> Result<Schema> {
            Ok(self.rel.read().as_ref().unwrap().schema().clone())
        }

        fn insert(&self, _rel: RelationId, record: &Record) -> Result<RowId> {
            self.rel.write().as_mut().unwrap().insert(record)
        }

        fn read_record(&self, _rel: RelationId, row: RowId) -> Result<Record> {
            self.rel.read().as_ref().unwrap().read_record(row)
        }

        fn read_field(&self, _rel: RelationId, row: RowId, attr: AttrId) -> Result<Value> {
            self.rel.read().as_ref().unwrap().read_value(
                row,
                attr,
                crate::scheme::AccessHint::RecordCentric,
            )
        }

        fn update_field(
            &self,
            _rel: RelationId,
            row: RowId,
            attr: AttrId,
            value: &Value,
        ) -> Result<()> {
            self.rel.write().as_mut().unwrap().update_field(row, attr, value)
        }

        fn scan_column(
            &self,
            _rel: RelationId,
            attr: AttrId,
            visit: &mut dyn FnMut(RowId, &Value),
        ) -> Result<()> {
            let guard = self.rel.read();
            let rel = guard.as_ref().unwrap();
            let ty = rel.schema().ty(attr)?;
            rel.for_each_field(attr, |row, bytes| visit(row, &Value::decode(ty, bytes)))
        }

        fn row_count(&self, _rel: RelationId) -> Result<u64> {
            Ok(self.rel.read().as_ref().unwrap().row_count())
        }
    }

    #[test]
    fn blanket_helpers_work() {
        let e = Toy::new();
        let s = Schema::of(&[("k", DataType::Int64), ("price", DataType::Float64)]);
        let rel = e.create_relation(s).unwrap();
        for i in 0..100 {
            e.insert(rel, &vec![Value::Int64(i), Value::Float64(i as f64 * 0.5)]).unwrap();
        }
        let sum = e.sum_column_f64(rel, 1).unwrap();
        assert_eq!(sum, (0..100).map(|i| i as f64 * 0.5).sum::<f64>());
        let recs = e.materialize(rel, &[3, 7]).unwrap();
        assert_eq!(recs[0][0], Value::Int64(3));
        assert_eq!(recs[1][1], Value::Float64(3.5));
        assert_eq!(e.row_count(rel).unwrap(), 100);
        assert!(!e.maintain().unwrap().did_anything());
    }

    #[test]
    fn trait_objects_are_usable() {
        let e: Box<dyn StorageEngine> = Box::new(Toy::new());
        let s = Schema::of(&[("x", DataType::Int64)]);
        let rel = e.create_relation(s).unwrap();
        e.insert(rel, &vec![Value::Int64(9)]).unwrap();
        assert_eq!(e.read_field(rel, 0, 0).unwrap(), Value::Int64(9));
        assert_eq!(e.classification().name, "TOY");
    }
}
