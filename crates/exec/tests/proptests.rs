//! Randomized property tests for the execution layer: the two processing
//! models (Volcano and bulk) and all three join algorithms must agree on
//! arbitrary data under arbitrary layouts and threading policies. Driven by
//! the deterministic in-repo [`Prng`] (seed honors `HTAPG_SEED`, printed on
//! failure).

use htapg_core::prng::{check_cases, Prng};
use htapg_core::{DataType, Layout, LayoutTemplate, Schema, Value};
use htapg_exec::scan::{column_stats, sum_column_f64_typed};
use htapg_exec::threading::ThreadingPolicy;
use htapg_exec::{bulk, join, volcano};

fn schema() -> Schema {
    Schema::of(&[("k", DataType::Int64), ("v", DataType::Float64)])
}

fn build(template: LayoutTemplate, rows: &[(i64, f64)]) -> Layout {
    let s = schema();
    let mut l = Layout::new(&s, template).unwrap();
    for &(k, v) in rows {
        l.append(&s, &vec![Value::Int64(k), Value::Float64(v)]).unwrap();
    }
    l
}

fn arb_rows(rng: &mut Prng) -> Vec<(i64, f64)> {
    (0..rng.gen_range(0usize..200))
        .map(|_| (rng.gen_range(-8i64..8), rng.gen_range(-100.0..100.0)))
        .collect()
}

fn templates() -> Vec<LayoutTemplate> {
    let s = schema();
    vec![
        LayoutTemplate::nsm(&s),
        LayoutTemplate::dsm(&s),
        LayoutTemplate::dsm_emulated(&s),
        LayoutTemplate::pax(&s, 16),
    ]
}

#[test]
fn sums_agree_across_models_layouts_policies() {
    check_cases("sums_agree_across_models_layouts_policies", 48, 0xE8EC_0001, |_, rng| {
        let rows = arb_rows(rng);
        let s = schema();
        let reference: f64 = rows.iter().map(|(_, v)| v).sum();
        for template in templates() {
            let layout = build(template, &rows);
            for policy in [ThreadingPolicy::Single, ThreadingPolicy::multi8()] {
                let scan = sum_column_f64_typed(&layout, 1, DataType::Float64, policy).unwrap();
                assert!((scan - reference).abs() < 1e-6);
            }
            let vol = volcano::sum_f64(volcano::Scan::new(&layout, &s), 1).unwrap();
            assert!((vol - reference).abs() < 1e-6);
            let batches = bulk::scan_batches(&layout, &s, &[1], 32).unwrap();
            let blk = bulk::sum_f64(&batches, 1).unwrap();
            assert!((blk - reference).abs() < 1e-6);
            let stats =
                column_stats(&layout, 1, DataType::Float64, ThreadingPolicy::Single).unwrap();
            assert_eq!(stats.count, rows.len() as u64);
            assert!((stats.sum - reference).abs() < 1e-6);
        }
    });
}

#[test]
fn policies_are_bit_identical_on_arbitrary_layouts() {
    // The executor-pool determinism guarantee, as a property: every
    // threading policy folds the identical morsel partition in the
    // identical order, so sums and stats are bit-for-bit equal — not
    // merely within epsilon — on any layout, at any size. Sizes straddle
    // the morsel boundary (64K rows) so both the inline path and the real
    // pooled path are exercised.
    check_cases("policies_are_bit_identical_on_arbitrary_layouts", 9, 0xE8EC_0005, |case, rng| {
        let n = match case % 3 {
            0 => rng.gen_range(0usize..512),
            1 => rng.gen_range(65_530usize..65_545),
            _ => rng.gen_range(130_000usize..140_000),
        };
        let rows: Vec<(i64, f64)> =
            (0..n).map(|_| (rng.gen_range(-8i64..8), rng.gen_range(-100.0..100.0))).collect();
        let all = templates();
        let template = all[rng.gen_range(0usize..all.len())].clone();
        let layout = build(template, &rows);
        let single_sum =
            sum_column_f64_typed(&layout, 1, DataType::Float64, ThreadingPolicy::Single).unwrap();
        let single_stats =
            column_stats(&layout, 1, DataType::Float64, ThreadingPolicy::Single).unwrap();
        let positions =
            htapg_exec::scan::filter_positions(&layout, 1, DataType::Float64, |v| v > 0.0).unwrap();
        let single_pos_sum = htapg_exec::scan::sum_at_positions_f64(
            &layout,
            1,
            DataType::Float64,
            &positions,
            ThreadingPolicy::Single,
        )
        .unwrap();
        for threads in [2usize, 8, 32] {
            let policy = ThreadingPolicy::Multi { threads };
            let sum = sum_column_f64_typed(&layout, 1, DataType::Float64, policy).unwrap();
            assert_eq!(sum.to_bits(), single_sum.to_bits(), "sum, threads={threads}");
            let stats = column_stats(&layout, 1, DataType::Float64, policy).unwrap();
            assert_eq!(stats.count, single_stats.count, "count, threads={threads}");
            assert_eq!(
                stats.sum.to_bits(),
                single_stats.sum.to_bits(),
                "stats.sum, threads={threads}"
            );
            assert_eq!(
                stats.min.to_bits(),
                single_stats.min.to_bits(),
                "stats.min, threads={threads}"
            );
            assert_eq!(
                stats.max.to_bits(),
                single_stats.max.to_bits(),
                "stats.max, threads={threads}"
            );
            let hits =
                htapg_exec::scan::count_where(&layout, 1, DataType::Float64, policy, |v| v > 0.0)
                    .unwrap();
            assert_eq!(hits, positions.len() as u64, "count_where, threads={threads}");
            let pos_sum = htapg_exec::scan::sum_at_positions_f64(
                &layout,
                1,
                DataType::Float64,
                &positions,
                policy,
            )
            .unwrap();
            assert_eq!(pos_sum.to_bits(), single_pos_sum.to_bits(), "pos sum, threads={threads}");
        }
    });
}

#[test]
fn joins_agree_on_arbitrary_keys() {
    check_cases("joins_agree_on_arbitrary_keys", 48, 0xE8EC_0002, |_, rng| {
        let left = arb_rows(rng);
        let right = arb_rows(rng);
        let l = build(LayoutTemplate::dsm_emulated(&schema()), &left);
        let r = build(LayoutTemplate::nsm(&schema()), &right);
        let oracle =
            join::nested_loop_join(&l, 0, DataType::Int64, &r, 0, DataType::Int64).unwrap();
        let hashed = join::hash_join(&l, 0, DataType::Int64, &r, 0, DataType::Int64).unwrap();
        let merged = join::merge_join(&l, 0, DataType::Int64, &r, 0, DataType::Int64).unwrap();
        assert_eq!(&hashed, &oracle);
        assert_eq!(&merged, &oracle);
        // Volcano join counts the same number of matches.
        let vol = volcano::count(volcano::HashJoinOp::new(
            volcano::Scan::new(&l, &schema()),
            volcano::Scan::new(&r, &schema()),
            0,
            0,
        ))
        .unwrap();
        assert_eq!(vol as usize, oracle.len());
    });
}

#[test]
fn group_sum_partitions_the_total() {
    check_cases("group_sum_partitions_the_total", 48, 0xE8EC_0003, |_, rng| {
        let rows = arb_rows(rng);
        let l = build(LayoutTemplate::dsm_emulated(&schema()), &rows);
        let groups = join::group_sum_f64(&l, 0, DataType::Int64, 1, DataType::Float64).unwrap();
        let total: f64 = rows.iter().map(|(_, v)| v).sum();
        let group_total: f64 = groups.iter().map(|(_, s, _)| s).sum();
        assert!((total - group_total).abs() < 1e-6);
        let count_total: u64 = groups.iter().map(|(_, _, c)| c).sum();
        assert_eq!(count_total, rows.len() as u64);
        // Keys are distinct and sorted.
        for w in groups.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    });
}

#[test]
fn filter_positions_match_volcano_filter() {
    check_cases("filter_positions_match_volcano_filter", 48, 0xE8EC_0004, |_, rng| {
        let rows = arb_rows(rng);
        let threshold = rng.gen_range(-100.0..100.0);
        let s = schema();
        let l = build(LayoutTemplate::pax(&s, 8), &rows);
        let positions =
            htapg_exec::scan::filter_positions(&l, 1, DataType::Float64, |v| v > threshold)
                .unwrap();
        let vol = volcano::collect(volcano::Filter::new(
            volcano::Scan::new(&l, &s),
            move |rec| matches!(rec[1], Value::Float64(x) if x > threshold),
        ))
        .unwrap();
        assert_eq!(positions.len(), vol.len());
        for (&p, rec) in positions.iter().zip(&vol) {
            assert_eq!(&l.read_record(&s, p).unwrap(), rec);
        }
    });
}
