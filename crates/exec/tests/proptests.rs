//! Property-based tests for the execution layer: the two processing models
//! (Volcano and bulk) and all three join algorithms must agree on arbitrary
//! data under arbitrary layouts and threading policies.

use proptest::collection::vec;
use proptest::prelude::*;

use htapg_core::{DataType, Layout, LayoutTemplate, Schema, Value};
use htapg_exec::scan::{column_stats, sum_column_f64_typed};
use htapg_exec::threading::ThreadingPolicy;
use htapg_exec::{bulk, join, volcano};

fn schema() -> Schema {
    Schema::of(&[("k", DataType::Int64), ("v", DataType::Float64)])
}

fn build(template: LayoutTemplate, rows: &[(i64, f64)]) -> Layout {
    let s = schema();
    let mut l = Layout::new(&s, template).unwrap();
    for &(k, v) in rows {
        l.append(&s, &vec![Value::Int64(k), Value::Float64(v)]).unwrap();
    }
    l
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, f64)>> {
    vec((-8i64..8, -100f64..100.0), 0..200)
}

fn templates() -> Vec<LayoutTemplate> {
    let s = schema();
    vec![
        LayoutTemplate::nsm(&s),
        LayoutTemplate::dsm(&s),
        LayoutTemplate::dsm_emulated(&s),
        LayoutTemplate::pax(&s, 16),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sums_agree_across_models_layouts_policies(rows in arb_rows()) {
        let s = schema();
        let reference: f64 = rows.iter().map(|(_, v)| v).sum();
        for template in templates() {
            let layout = build(template, &rows);
            for policy in [ThreadingPolicy::Single, ThreadingPolicy::multi8()] {
                let scan = sum_column_f64_typed(&layout, 1, DataType::Float64, policy).unwrap();
                prop_assert!((scan - reference).abs() < 1e-6);
            }
            let vol = volcano::sum_f64(volcano::Scan::new(&layout, &s), 1).unwrap();
            prop_assert!((vol - reference).abs() < 1e-6);
            let batches = bulk::scan_batches(&layout, &s, &[1], 32).unwrap();
            let blk = bulk::sum_f64(&batches, 1).unwrap();
            prop_assert!((blk - reference).abs() < 1e-6);
            let stats = column_stats(&layout, 1, DataType::Float64, ThreadingPolicy::Single).unwrap();
            prop_assert_eq!(stats.count, rows.len() as u64);
            prop_assert!((stats.sum - reference).abs() < 1e-6);
        }
    }

    #[test]
    fn joins_agree_on_arbitrary_keys(
        left in arb_rows(),
        right in arb_rows(),
    ) {
        let s = schema();
        let _ = s;
        let l = build(LayoutTemplate::dsm_emulated(&schema()), &left);
        let r = build(LayoutTemplate::nsm(&schema()), &right);
        let oracle =
            join::nested_loop_join(&l, 0, DataType::Int64, &r, 0, DataType::Int64).unwrap();
        let hashed = join::hash_join(&l, 0, DataType::Int64, &r, 0, DataType::Int64).unwrap();
        let merged = join::merge_join(&l, 0, DataType::Int64, &r, 0, DataType::Int64).unwrap();
        prop_assert_eq!(&hashed, &oracle);
        prop_assert_eq!(&merged, &oracle);
        // Volcano join counts the same number of matches.
        let vol = volcano::count(volcano::HashJoinOp::new(
            volcano::Scan::new(&l, &schema()),
            volcano::Scan::new(&r, &schema()),
            0,
            0,
        ))
        .unwrap();
        prop_assert_eq!(vol as usize, oracle.len());
    }

    #[test]
    fn group_sum_partitions_the_total(rows in arb_rows()) {
        let l = build(LayoutTemplate::dsm_emulated(&schema()), &rows);
        let groups =
            join::group_sum_f64(&l, 0, DataType::Int64, 1, DataType::Float64).unwrap();
        let total: f64 = rows.iter().map(|(_, v)| v).sum();
        let group_total: f64 = groups.iter().map(|(_, s, _)| s).sum();
        prop_assert!((total - group_total).abs() < 1e-6);
        let count_total: u64 = groups.iter().map(|(_, _, c)| c).sum();
        prop_assert_eq!(count_total, rows.len() as u64);
        // Keys are distinct and sorted.
        for w in groups.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn filter_positions_match_volcano_filter(rows in arb_rows(), threshold in -100f64..100.0) {
        let s = schema();
        let l = build(LayoutTemplate::pax(&s, 8), &rows);
        let positions =
            htapg_exec::scan::filter_positions(&l, 1, DataType::Float64, |v| v > threshold)
                .unwrap();
        let vol = volcano::collect(volcano::Filter::new(
            volcano::Scan::new(&l, &s),
            move |rec| matches!(rec[1], Value::Float64(x) if x > threshold),
        ))
        .unwrap();
        prop_assert_eq!(positions.len(), vol.len());
        for (&p, rec) in positions.iter().zip(&vol) {
            prop_assert_eq!(&l.read_record(&s, p).unwrap(), rec);
        }
    }
}
