//! Physical-plan interpreter: executes a routed [`PhysicalPlan`] against
//! any [`StorageEngine`], using the persistent morsel pool for host routes
//! and the engine's device hooks for device routes.
//!
//! **Bit-identity across routes** is the module's invariant and what the
//! planner property tests pin: every route reduces in the *canonical
//! order* — the device kernels' two-pass tree reduction
//! ([`htapg_device::kernels::reduce_seg_len`] segmentation, per-segment
//! [`htapg_device::kernels::tree_sum`], then a tree sum of the partials).
//! [`canonical_sum`] replicates it on the host; the pooled variant folds
//! per-segment partials in morsel order, so thread count cannot perturb
//! the result; the naive volcano oracle ([`volcano_sum`]) feeds the same
//! reduction from tuple-at-a-time reads. A query may therefore bounce
//! between host and device from one execution to the next (cache warmth,
//! relation growth) without ever changing a single result bit.
//!
//! Every executed node opens a `plan.*` span carrying the route, the
//! planner's estimate, and the input rows, so PR 4's `TraceReport` renders
//! estimated-vs-actual virtual ns per plan node (DESIGN.md §12).

use htapg_core::engine::StorageEngine;
use htapg_core::plan::{
    LogicalPlan, PhysicalNode, PhysicalOp, PhysicalPlan, Predicate, Route, ScanStrategy,
};
use htapg_core::{obs, AttrId, DataType, Error, Record, RelationId, Result, Value};
use htapg_device::kernels;
use std::collections::BTreeMap;

use crate::threading::{run_blocks, ThreadingPolicy};

/// Result of interpreting a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    Sum(f64),
    Groups(Vec<(i64, f64)>),
    Records(Vec<Record>),
    Record(Record),
    Updated,
}

impl QueryOutput {
    pub fn as_sum(&self) -> Option<f64> {
        match self {
            QueryOutput::Sum(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_groups(&self) -> Option<&[(i64, f64)]> {
        match self {
            QueryOutput::Groups(g) => Some(g),
            _ => None,
        }
    }
}

/// The canonical reduction: segment exactly like the device's pass 1
/// (`reduce_seg_len`), tree-sum each segment, tree-sum the partials.
/// Bit-identical to [`kernels::reduce_sum_f64`] over the same values.
pub fn canonical_sum(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let seg = kernels::reduce_seg_len(values.len());
    let partials: Vec<f64> = values.chunks(seg).map(kernels::tree_sum).collect();
    kernels::tree_sum(&partials)
}

/// Pooled canonical reduction: the per-segment partials are computed by
/// the morsel pool and folded *in segment order*, so the partial vector —
/// and therefore the result — is bit-identical to [`canonical_sum`] for
/// every pool size.
pub fn pooled_canonical_sum(values: &[f64], policy: ThreadingPolicy) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len();
    let seg = kernels::reduce_seg_len(n);
    let segments = kernels::reduce_segments(n);
    let partials = run_blocks(
        segments as u64,
        policy,
        |lo, hi| {
            (lo as usize..hi as usize)
                .map(|s| kernels::tree_sum(&values[s * seg..((s + 1) * seg).min(n)]))
                .collect::<Vec<f64>>()
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
        Vec::new(),
    );
    kernels::tree_sum(&partials)
}

/// Canonical *fused* filter+sum: per segment, compact the values matching
/// `pred` and tree-sum the compacted slice — exactly the semantics of
/// [`kernels::filter_partials_f64`], so host and device filtered sums are
/// bit-identical.
pub fn canonical_filter_sum(values: &[f64], pred: &Predicate) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let seg = kernels::reduce_seg_len(values.len());
    let partials: Vec<f64> = values
        .chunks(seg)
        .map(|c| {
            let kept: Vec<f64> = c.iter().copied().filter(|&v| pred.matches(v)).collect();
            kernels::tree_sum(&kept)
        })
        .collect();
    kernels::tree_sum(&partials)
}

/// The *sharded* canonical reduction: one tree-ordered partial per
/// placement fragment (`partition_rows` consecutive global rows), then a
/// tree sum of the per-fragment partials in global fragment order.
/// Fragments — not nodes — are the reduction unit, so the result is
/// invariant under node count and placement policy: every cluster width
/// produces exactly these partials, merely computing them on different
/// nodes. Bit-identical to gathering
/// [`kernels::reduce_fragment_partials_f64`] across shards.
pub fn sharded_canonical_sum(values: &[f64], partition_rows: usize) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let partials: Vec<f64> = values.chunks(partition_rows.max(1)).map(kernels::tree_sum).collect();
    kernels::tree_sum(&partials)
}

/// Sharded fused filter+sum: per fragment, tree-sum the qualifying values
/// (the host mirror of [`kernels::filter_fragment_partials_f64`]).
pub fn sharded_canonical_filter_sum(
    values: &[f64],
    pred: &Predicate,
    partition_rows: usize,
) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let partials: Vec<f64> = values
        .chunks(partition_rows.max(1))
        .map(|c| {
            let kept: Vec<f64> = c.iter().copied().filter(|&v| pred.matches(v)).collect();
            kernels::tree_sum(&kept)
        })
        .collect();
    kernels::tree_sum(&partials)
}

/// Sharded group-sum over collected key/value columns: each fragment
/// groups its values by key in row order and tree-reduces per key; each
/// key's final sum is the tree sum of its per-fragment partials in global
/// fragment order. Returns `(key, sum)` ordered by key — the host mirror
/// of gathering [`kernels::keyed_fragment_partials_f64`] across shards.
pub fn sharded_group_sum(keys: &[i64], values: &[f64], partition_rows: usize) -> Vec<(i64, f64)> {
    let part = partition_rows.max(1);
    let mut acc: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
    for (kf, vf) in keys.chunks(part).zip(values.chunks(part)) {
        let mut frag: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
        for (&k, &v) in kf.iter().zip(vf) {
            frag.entry(k).or_default().push(v);
        }
        for (k, vs) in frag {
            acc.entry(k).or_default().push(kernels::tree_sum(&vs));
        }
    }
    acc.into_iter().map(|(k, partials)| (k, kernels::tree_sum(&partials))).collect()
}

/// Pooled variant of [`canonical_filter_sum`] (same partials, morsel-order
/// fold).
pub fn pooled_canonical_filter_sum(
    values: &[f64],
    pred: &Predicate,
    policy: ThreadingPolicy,
) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len();
    let seg = kernels::reduce_seg_len(n);
    let segments = kernels::reduce_segments(n);
    let partials = run_blocks(
        segments as u64,
        policy,
        |lo, hi| {
            (lo as usize..hi as usize)
                .map(|s| {
                    let kept: Vec<f64> = values[s * seg..((s + 1) * seg).min(n)]
                        .iter()
                        .copied()
                        .filter(|&v| pred.matches(v))
                        .collect();
                    kernels::tree_sum(&kept)
                })
                .collect::<Vec<f64>>()
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
        Vec::new(),
    );
    kernels::tree_sum(&partials)
}

fn decoder(ty: DataType) -> Result<fn(&[u8]) -> f64> {
    Ok(match ty {
        DataType::Float64 => |b: &[u8]| f64::from_le_bytes(b.try_into().unwrap()),
        DataType::Int64 => |b: &[u8]| i64::from_le_bytes(b.try_into().unwrap()) as f64,
        DataType::Int32 | DataType::Date => {
            |b: &[u8]| i32::from_le_bytes(b.try_into().unwrap()) as f64
        }
        DataType::Bool | DataType::Text(_) => {
            return Err(Error::NonNumericAggregate { attr: u16::MAX, got: ty.name() })
        }
    })
}

/// Materialize a numeric column as `Vec<f64>` in row order, preferring the
/// contiguous fast path when the plan says it is available (falling back
/// to the value visit if the engine declines at run time — the overlay
/// may have filled since planning).
pub fn collect_f64(
    engine: &dyn StorageEngine,
    rel: RelationId,
    attr: AttrId,
    strategy: ScanStrategy,
) -> Result<Vec<f64>> {
    let ty = engine.schema(rel)?.ty(attr)?;
    if !ty.is_numeric() {
        return Err(Error::NonNumericAggregate { attr, got: ty.name() });
    }
    let rows = engine.row_count(rel)? as usize;
    let mut out = Vec::with_capacity(rows);
    if strategy == ScanStrategy::ContiguousBytes {
        let read = decoder(ty)?;
        let width = ty.width();
        let used = engine.with_column_bytes(rel, attr, &mut |block| {
            for chunk in block.chunks_exact(width) {
                out.push(read(chunk));
            }
        })?;
        if used {
            return Ok(out);
        }
        out.clear();
    }
    engine.scan_column(rel, attr, &mut |_, v| {
        out.push(v.as_f64().expect("column type checked numeric above"));
    })?;
    Ok(out)
}

/// Collect an integer key column in row order.
fn collect_keys(engine: &dyn StorageEngine, rel: RelationId, attr: AttrId) -> Result<Vec<i64>> {
    let ty = engine.schema(rel)?.ty(attr)?;
    if !matches!(ty, DataType::Int32 | DataType::Int64 | DataType::Date) {
        return Err(Error::NonNumericAggregate { attr, got: ty.name() });
    }
    let mut keys = Vec::with_capacity(engine.row_count(rel)? as usize);
    engine.scan_column(rel, attr, &mut |_, v| {
        keys.push(v.as_i64().expect("key type checked integer above"));
    })?;
    Ok(keys)
}

/// Host group-sum: group values by key preserving row order, reduce each
/// group canonically, return `(key, sum)` ordered by key. The pooled
/// route distributes the per-group reductions over the morsel pool (fold
/// in group order — bit-identical to the serial pass).
pub fn group_sum_host(
    engine: &dyn StorageEngine,
    rel: RelationId,
    key_attr: AttrId,
    value_attr: AttrId,
    strategy: ScanStrategy,
    policy: Option<ThreadingPolicy>,
) -> Result<Vec<(i64, f64)>> {
    let keys = collect_keys(engine, rel, key_attr)?;
    let values = collect_f64(engine, rel, value_attr, strategy)?;
    if keys.len() != values.len() {
        return Err(Error::Internal(format!(
            "group-sum column length mismatch: {} keys vs {} values",
            keys.len(),
            values.len()
        )));
    }
    let mut groups: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
    for (k, v) in keys.into_iter().zip(values) {
        groups.entry(k).or_default().push(v);
    }
    let groups: Vec<(i64, Vec<f64>)> = groups.into_iter().collect();
    match policy {
        None => Ok(groups.into_iter().map(|(k, vs)| (k, canonical_sum(&vs))).collect()),
        Some(policy) => Ok(run_blocks(
            groups.len() as u64,
            policy,
            |lo, hi| {
                groups[lo as usize..hi as usize]
                    .iter()
                    .map(|(k, vs)| (*k, canonical_sum(vs)))
                    .collect::<Vec<(i64, f64)>>()
            },
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
            Vec::new(),
        )),
    }
}

/// The naive volcano oracle: tuple-at-a-time `read_field` per row, then
/// the canonical reduction. Every planner route must be bit-identical to
/// this (the property the planner tests check).
pub fn volcano_sum(engine: &dyn StorageEngine, rel: RelationId, attr: AttrId) -> Result<f64> {
    Ok(canonical_sum(&volcano_values(engine, rel, attr)?))
}

/// Volcano oracle for the fused filter+sum shape.
pub fn volcano_filter_sum(
    engine: &dyn StorageEngine,
    rel: RelationId,
    attr: AttrId,
    pred: &Predicate,
) -> Result<f64> {
    Ok(canonical_filter_sum(&volcano_values(engine, rel, attr)?, pred))
}

/// Volcano oracle for group-sum.
pub fn volcano_group_sum(
    engine: &dyn StorageEngine,
    rel: RelationId,
    key_attr: AttrId,
    value_attr: AttrId,
) -> Result<Vec<(i64, f64)>> {
    let rows = engine.row_count(rel)?;
    let mut groups: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
    for row in 0..rows {
        let k = engine.read_field(rel, row, key_attr)?.as_i64()?;
        let v = engine.read_field(rel, row, value_attr)?.as_f64()?;
        groups.entry(k).or_default().push(v);
    }
    Ok(groups.into_iter().map(|(k, vs)| (k, canonical_sum(&vs))).collect())
}

/// Single-node volcano oracle for a *sharded* plan: tuple-at-a-time reads
/// fed through the fragment-granularity reduction. Every scatter-gather
/// execution, at any node count, must be bit-identical to this.
pub fn sharded_volcano_sum(
    engine: &dyn StorageEngine,
    rel: RelationId,
    attr: AttrId,
    partition_rows: usize,
) -> Result<f64> {
    Ok(sharded_canonical_sum(&volcano_values(engine, rel, attr)?, partition_rows))
}

/// Sharded volcano oracle for the fused filter+sum shape.
pub fn sharded_volcano_filter_sum(
    engine: &dyn StorageEngine,
    rel: RelationId,
    attr: AttrId,
    pred: &Predicate,
    partition_rows: usize,
) -> Result<f64> {
    Ok(sharded_canonical_filter_sum(&volcano_values(engine, rel, attr)?, pred, partition_rows))
}

/// Sharded volcano oracle for group-sum.
pub fn sharded_volcano_group_sum(
    engine: &dyn StorageEngine,
    rel: RelationId,
    key_attr: AttrId,
    value_attr: AttrId,
    partition_rows: usize,
) -> Result<Vec<(i64, f64)>> {
    let rows = engine.row_count(rel)?;
    let mut keys = Vec::with_capacity(rows as usize);
    let mut values = Vec::with_capacity(rows as usize);
    for row in 0..rows {
        keys.push(engine.read_field(rel, row, key_attr)?.as_i64()?);
        values.push(engine.read_field(rel, row, value_attr)?.as_f64()?);
    }
    Ok(sharded_group_sum(&keys, &values, partition_rows))
}

fn volcano_values(engine: &dyn StorageEngine, rel: RelationId, attr: AttrId) -> Result<Vec<f64>> {
    let ty = engine.schema(rel)?.ty(attr)?;
    if !ty.is_numeric() {
        return Err(Error::NonNumericAggregate { attr, got: ty.name() });
    }
    let rows = engine.row_count(rel)?;
    let mut values = Vec::with_capacity(rows as usize);
    for row in 0..rows {
        values.push(engine.read_field(rel, row, attr)?.as_f64()?);
    }
    Ok(values)
}

fn node_span(node: &PhysicalNode) -> obs::SpanGuard {
    let mut span = obs::span("plan", node.op.span_name());
    if span.is_recording() {
        span.arg("route", node.route.label());
        span.arg("est_ns", node.estimated_ns);
        span.arg("raw_est_ns", node.raw_estimated_ns);
        span.arg("rows", node.rows);
        span.arg("scan", node.strategy.label());
        if node.bytes_to_device > 0 {
            span.arg("bytes_to_device", node.bytes_to_device);
        }
        if node.partition_rows > 0 {
            span.arg("part_rows", node.partition_rows);
        }
        if let Some(m) = node.mirror {
            span.arg("mirror", m);
        }
    }
    span
}

/// Execute a routed plan. `policy` is the host pool policy used when a
/// node is routed `HostPooledMorsel` (inline routes always run
/// single-threaded on the issuing thread).
pub fn execute(
    engine: &dyn StorageEngine,
    plan: &PhysicalPlan,
    policy: ThreadingPolicy,
) -> Result<QueryOutput> {
    let mut executed = plan.root.route;
    exec_node(engine, &plan.root, policy, &mut executed)
}

/// What [`execute_observed`] learned from one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecOutcome {
    pub output: QueryOutput,
    /// The route that actually ran: the planned root route, unless a
    /// device fault/stale replica degraded the node to the host fallback.
    pub executed_route: Route,
    /// Virtual ns the execution charged to the engine's trace clock
    /// (zero for host-only engines, whose work advances no virtual time).
    pub actual_ns: u64,
    /// The root node's observed cost fell outside the calibrated
    /// tolerance band — the replanning trigger.
    pub diverged: bool,
}

/// Execute a plan and feed the root's estimated-vs-actual residual back
/// into the engine's [`calibration
/// profiles`](htapg_core::calibrate::CalibrationProfiles), keyed by the
/// route that *actually executed* (a failed-then-degraded device node is
/// attributed to the host fallback, never to the device). Engines without
/// calibration behave exactly like [`execute`].
pub fn execute_observed(
    engine: &dyn StorageEngine,
    plan: &PhysicalPlan,
    policy: ThreadingPolicy,
) -> Result<ExecOutcome> {
    let clock = engine.trace_clock();
    let t0 = clock.as_ref().map_or(0, |c| c.now_ns());
    let mut executed = plan.root.route;
    let output = exec_node(engine, &plan.root, policy, &mut executed)?;
    let actual_ns = clock.as_ref().map_or(0, |c| c.now_ns()).saturating_sub(t0);
    let mut diverged = false;
    if let Some(cal) = engine.calibration() {
        let op = plan.root.op.span_name();
        cal.observe(op, executed.label(), plan.root.raw_estimated_ns, actual_ns);
        // Only a node that ran its planned route can diverge from its own
        // estimate; a fallback's residual belongs to the fallback route.
        diverged = executed == plan.root.route
            && cal.diverged(op, executed.label(), plan.root.estimated_ns, actual_ns);
    }
    Ok(ExecOutcome { output, executed_route: executed, actual_ns, diverged })
}

/// What [`execute_adaptive`] did.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOutcome {
    pub output: QueryOutput,
    pub diverged: bool,
    /// The route a post-divergence replan chose, when one happened. The
    /// result is *not* re-executed — routes are bit-identical by the
    /// module invariant — so the fresh route simply serves the next
    /// execution of the same shape.
    pub replanned: Option<Route>,
}

/// Plan → execute with residual feedback → replan on divergence. The
/// workload driver's adaptivity loop: calibration happens live under
/// mixed load, and a diverged estimate triggers an immediate replan
/// (counted on the `plan.replans` metric).
pub fn execute_adaptive(
    engine: &dyn StorageEngine,
    logical: &LogicalPlan,
    policy: ThreadingPolicy,
) -> Result<AdaptiveOutcome> {
    let plan = engine.plan(logical)?;
    let outcome = execute_observed(engine, &plan, policy)?;
    let mut replanned = None;
    if outcome.diverged {
        obs::metrics().counter("plan.replans").inc();
        replanned = Some(engine.plan(logical)?.route());
    }
    Ok(AdaptiveOutcome { output: outcome.output, diverged: outcome.diverged, replanned })
}

fn exec_node(
    engine: &dyn StorageEngine,
    node: &PhysicalNode,
    policy: ThreadingPolicy,
    executed: &mut Route,
) -> Result<QueryOutput> {
    let mut span = node_span(node);
    match &node.op {
        PhysicalOp::Materialize { rel, rows } => {
            Ok(QueryOutput::Records(engine.materialize_rows(*rel, rows)?))
        }
        PhysicalOp::PointRead { rel, row } => {
            Ok(QueryOutput::Record(engine.read_record(*rel, *row)?))
        }
        PhysicalOp::Update { rel, row, attr, value } => {
            engine.update_field(*rel, *row, *attr, value)?;
            Ok(QueryOutput::Updated)
        }
        PhysicalOp::Project { attrs } => {
            let child = node
                .children
                .first()
                .ok_or_else(|| Error::Internal("project without input".into()))?;
            let out = exec_node(engine, child, policy, executed)?;
            match out {
                QueryOutput::Records(recs) => Ok(QueryOutput::Records(
                    recs.into_iter()
                        .map(|r| attrs.iter().map(|&a| r[a as usize].clone()).collect())
                        .collect(),
                )),
                QueryOutput::Record(r) => {
                    Ok(QueryOutput::Record(attrs.iter().map(|&a| r[a as usize].clone()).collect()))
                }
                other => Ok(other),
            }
        }
        PhysicalOp::AggregateSum => {
            let (rel, attr, pred) = sum_input(node)?;
            exec_sum(engine, node, rel, attr, pred, policy, &mut span, executed)
        }
        PhysicalOp::AggregateGroupSum { key_attr } => {
            let (rel, value_attr) = group_input(node)?;
            exec_group_sum(engine, node, rel, *key_attr, value_attr, policy, &mut span, executed)
        }
        PhysicalOp::Scan { rel, attr } => {
            // A bare scan materializes the column as records of one value
            // (rarely used directly; aggregates inline their scans).
            let values = collect_f64(engine, *rel, *attr, node.strategy)?;
            Ok(QueryOutput::Records(values.into_iter().map(|v| vec![Value::Float64(v)]).collect()))
        }
        PhysicalOp::Filter { .. } => {
            Err(Error::Internal("filter outside an aggregate is not executable".into()))
        }
        PhysicalOp::Gather { .. } => {
            Err(Error::Internal("gather is executed by the engine's scatter hook".into()))
        }
    }
}

/// Pull `(rel, attr, predicate)` out of an `AggregateSum` node's children.
/// A scatter root's only child is the `Gather` node; all per-shard
/// subtrees scan the same `(rel, attr)` with the same predicate, so the
/// first subtree is descended into as the representative.
fn sum_input(node: &PhysicalNode) -> Result<(RelationId, AttrId, Option<Predicate>)> {
    let mut input = node
        .children
        .first()
        .ok_or_else(|| Error::Internal("aggregate without scan input".into()))?;
    if matches!(input.op, PhysicalOp::Gather { .. }) {
        input = input
            .children
            .first()
            .and_then(|sub| sub.children.first())
            .ok_or_else(|| Error::Internal("gather without per-shard subtree".into()))?;
    }
    match &input.op {
        PhysicalOp::Scan { rel, attr } => Ok((*rel, *attr, None)),
        PhysicalOp::Filter { pred } => match input.children.first().map(|c| &c.op) {
            Some(PhysicalOp::Scan { rel, attr }) => Ok((*rel, *attr, Some(*pred))),
            _ => Err(Error::Internal("filter without scan input".into())),
        },
        _ => Err(Error::Internal("aggregate without scan input".into())),
    }
}

/// Pull `(rel, value_attr)` out of a group-sum node (children are the key
/// scan then the value scan; for a scatter root, descend through the
/// `Gather` into the first per-shard subtree first).
fn group_input(node: &PhysicalNode) -> Result<(RelationId, AttrId)> {
    let mut holder = node;
    if let Some(first) = node.children.first() {
        if matches!(first.op, PhysicalOp::Gather { .. }) {
            holder = first
                .children
                .first()
                .ok_or_else(|| Error::Internal("gather without per-shard subtree".into()))?;
        }
    }
    match holder.children.last().map(|c| &c.op) {
        Some(PhysicalOp::Scan { rel, attr }) => Ok((*rel, *attr)),
        _ => Err(Error::Internal("group-sum without value scan".into())),
    }
}

#[allow(clippy::too_many_arguments)]
fn exec_sum(
    engine: &dyn StorageEngine,
    node: &PhysicalNode,
    rel: RelationId,
    attr: AttrId,
    pred: Option<Predicate>,
    policy: ThreadingPolicy,
    span: &mut obs::SpanGuard,
    executed: &mut Route,
) -> Result<QueryOutput> {
    if let Route::Scatter { .. } = node.route {
        // Sharded placement: the engine fans the aggregate out to the
        // owning shards and gathers the per-fragment partials in canonical
        // order. On failure (exhausted retries, no hook) degrade to the
        // host sharded reduction — same fragment geometry, bit-identical.
        match engine.scatter_sum(rel, attr, pred.as_ref()) {
            Ok(sum) => return Ok(QueryOutput::Sum(sum)),
            Err(e) if !matches!(e, Error::NonNumericAggregate { .. }) => {
                if span.is_recording() {
                    span.arg("fallback", "host");
                }
                *executed = Route::InlineVolcano;
            }
            Err(e) => return Err(e),
        }
    }
    if node.route == Route::DevicePipelined {
        let device_result = match pred {
            None => engine.device_sum_column(rel, attr),
            Some(ref p) => engine.device_filter_sum(rel, attr, p),
        };
        match device_result {
            Ok(sum) => return Ok(QueryOutput::Sum(sum)),
            // Stale replica, device fault, or no hook: degrade to the host
            // canonical reduction — bit-identical, just differently
            // priced. Recorded on the span so EXPLAIN shows the miss, and
            // on `executed` so calibration attributes the residual to the
            // route that actually ran.
            Err(e) if !matches!(e, Error::NonNumericAggregate { .. }) => {
                if span.is_recording() {
                    span.arg("fallback", "host");
                }
                *executed = Route::InlineVolcano;
            }
            Err(e) => return Err(e),
        }
    }
    let values = collect_f64(engine, rel, attr, node.strategy)?;
    if node.partition_rows > 0 {
        // Sharded plans reduce at fragment granularity regardless of who
        // executes them, so the host fallback matches the gathered result.
        let sum = match pred {
            None => sharded_canonical_sum(&values, node.partition_rows as usize),
            Some(ref p) => sharded_canonical_filter_sum(&values, p, node.partition_rows as usize),
        };
        return Ok(QueryOutput::Sum(sum));
    }
    let sum = match (node.route, pred) {
        (Route::HostPooledMorsel, None) => pooled_canonical_sum(&values, policy),
        (Route::HostPooledMorsel, Some(ref p)) => pooled_canonical_filter_sum(&values, p, policy),
        (_, None) => canonical_sum(&values),
        (_, Some(ref p)) => canonical_filter_sum(&values, p),
    };
    Ok(QueryOutput::Sum(sum))
}

#[allow(clippy::too_many_arguments)]
fn exec_group_sum(
    engine: &dyn StorageEngine,
    node: &PhysicalNode,
    rel: RelationId,
    key_attr: AttrId,
    value_attr: AttrId,
    policy: ThreadingPolicy,
    span: &mut obs::SpanGuard,
    executed: &mut Route,
) -> Result<QueryOutput> {
    if let Route::Scatter { .. } = node.route {
        match engine.scatter_group_sum(rel, key_attr, value_attr) {
            Ok(groups) => return Ok(QueryOutput::Groups(groups)),
            Err(e) if !matches!(e, Error::NonNumericAggregate { .. }) => {
                if span.is_recording() {
                    span.arg("fallback", "host");
                }
                *executed = Route::InlineVolcano;
            }
            Err(e) => return Err(e),
        }
    }
    if node.route == Route::DevicePipelined {
        match engine.device_group_sum(rel, key_attr, value_attr) {
            Ok(groups) => return Ok(QueryOutput::Groups(groups)),
            Err(e) if !matches!(e, Error::NonNumericAggregate { .. }) => {
                if span.is_recording() {
                    span.arg("fallback", "host");
                }
                *executed = Route::InlineVolcano;
            }
            Err(e) => return Err(e),
        }
    }
    if node.partition_rows > 0 {
        let keys = collect_keys(engine, rel, key_attr)?;
        let values = collect_f64(engine, rel, value_attr, node.strategy)?;
        if keys.len() != values.len() {
            return Err(Error::Internal(format!(
                "group-sum column length mismatch: {} keys vs {} values",
                keys.len(),
                values.len()
            )));
        }
        return Ok(QueryOutput::Groups(sharded_group_sum(
            &keys,
            &values,
            node.partition_rows as usize,
        )));
    }
    let pooled = if node.route == Route::HostPooledMorsel { Some(policy) } else { None };
    Ok(QueryOutput::Groups(group_sum_host(
        engine,
        rel,
        key_attr,
        value_attr,
        node.strategy,
        pooled,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use htapg_core::plan::LogicalPlan;
    use htapg_core::prng::Prng;
    use htapg_core::sync::RwLock;
    use htapg_core::{LayoutTemplate, Relation, RowId, Schema};
    use htapg_taxonomy::{
        Classification, DataLocality, DataLocation, FragmentLinearization, FragmentScheme,
        LayoutAdaptability, LayoutFlexibility, LayoutHandling, ProcessorSupport, WorkloadSupport,
    };

    // A minimal NSM engine (mirrors the Toy engine in core's tests).
    struct Toy {
        rel: RwLock<Option<Relation>>,
    }

    impl StorageEngine for Toy {
        fn name(&self) -> &'static str {
            "TOY-EXEC"
        }

        fn classification(&self) -> Classification {
            Classification {
                name: "TOY-EXEC",
                layout_handling: LayoutHandling::Single,
                layout_flexibility: LayoutFlexibility::Inflexible,
                layout_adaptability: LayoutAdaptability::Static,
                data_location: DataLocation::host_only(),
                data_locality: DataLocality::Centralized,
                fragment_linearization: FragmentLinearization::FatNsmFixed,
                fragment_scheme: FragmentScheme::None,
                processor_support: ProcessorSupport::Cpu,
                workload_support: WorkloadSupport::Htap,
                year: 2017,
            }
        }

        fn create_relation(&self, schema: Schema) -> Result<RelationId> {
            *self.rel.write() = Some(Relation::new(schema.clone(), LayoutTemplate::nsm(&schema))?);
            Ok(0)
        }

        fn schema(&self, _rel: RelationId) -> Result<Schema> {
            Ok(self.rel.read().as_ref().unwrap().schema().clone())
        }

        fn insert(&self, _rel: RelationId, record: &Record) -> Result<RowId> {
            self.rel.write().as_mut().unwrap().insert(record)
        }

        fn read_record(&self, _rel: RelationId, row: RowId) -> Result<Record> {
            self.rel.read().as_ref().unwrap().read_record(row)
        }

        fn read_field(&self, _rel: RelationId, row: RowId, attr: AttrId) -> Result<Value> {
            self.rel.read().as_ref().unwrap().read_value(
                row,
                attr,
                htapg_core::AccessHint::RecordCentric,
            )
        }

        fn update_field(
            &self,
            _rel: RelationId,
            row: RowId,
            attr: AttrId,
            value: &Value,
        ) -> Result<()> {
            self.rel.write().as_mut().unwrap().update_field(row, attr, value)
        }

        fn scan_column(
            &self,
            _rel: RelationId,
            attr: AttrId,
            visit: &mut dyn FnMut(RowId, &Value),
        ) -> Result<()> {
            let guard = self.rel.read();
            let rel = guard.as_ref().unwrap();
            let ty = rel.schema().ty(attr)?;
            rel.for_each_field(attr, |row, bytes| visit(row, &Value::decode(ty, bytes)))
        }

        fn row_count(&self, _rel: RelationId) -> Result<u64> {
            Ok(self.rel.read().as_ref().unwrap().row_count())
        }
    }

    fn toy_with_rows(n: usize, rng: &mut Prng) -> Toy {
        let e = Toy { rel: RwLock::new(None) };
        let s = Schema::of(&[("d", DataType::Int32), ("price", DataType::Float64)]);
        e.create_relation(s).unwrap();
        for _ in 0..n {
            e.insert(
                0,
                &vec![
                    Value::Int32(rng.gen_range(0..8)),
                    Value::Float64(rng.gen_range(0..100_000) as f64 / 7.0),
                ],
            )
            .unwrap();
        }
        e
    }

    #[test]
    fn canonical_sum_matches_device_reduction_shape() {
        // Mirror of the device kernels' bit-identity test, host-side.
        let values: Vec<f64> = (0..123_457).map(|i| (i as f64) * 0.3125).collect();
        let serial = canonical_sum(&values);
        for policy in [ThreadingPolicy::Single, ThreadingPolicy::multi8()] {
            assert_eq!(serial.to_bits(), pooled_canonical_sum(&values, policy).to_bits());
        }
        // And against the actual device kernel.
        let device = htapg_device::SimDevice::with_defaults();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = device.alloc(bytes.len()).unwrap();
        device.write(buf, 0, &bytes).unwrap();
        let dev = kernels::reduce_sum_f64(&device, buf).unwrap();
        assert_eq!(serial.to_bits(), dev.to_bits());
    }

    #[test]
    fn filter_sum_is_bit_identical_to_device_fused_kernel() {
        let values: Vec<f64> = (0..50_000).map(|i| (i as f64) * 0.5 - 1000.0).collect();
        let pred = Predicate::Ge(0.0);
        let host = canonical_filter_sum(&values, &pred);
        for policy in [ThreadingPolicy::Single, ThreadingPolicy::multi8()] {
            assert_eq!(
                host.to_bits(),
                pooled_canonical_filter_sum(&values, &pred, policy).to_bits()
            );
        }
        let device = htapg_device::SimDevice::with_defaults();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = device.alloc(bytes.len()).unwrap();
        device.write(buf, 0, &bytes).unwrap();
        let dev = kernels::filter_sum_f64(&device, buf, |v| pred.matches(v)).unwrap();
        assert_eq!(host.to_bits(), dev.to_bits());
    }

    #[test]
    fn sharded_reduction_is_invariant_to_placement() {
        // The fragment partials are fixed by partition_rows alone, so any
        // split of the fragments across nodes gathers to the same bits.
        let values: Vec<f64> = (0..40_000).map(|i| (i as f64) * 0.7 - 3000.0).collect();
        let part = 1024usize;
        let whole = sharded_canonical_sum(&values, part);
        // Simulate a 3-node round-robin placement: per-fragment partials
        // computed shard-locally, merged in global fragment order.
        let frags: Vec<&[f64]> = values.chunks(part).collect();
        let mut partials = vec![0.0f64; frags.len()];
        for node in 0..3 {
            for (f, chunk) in frags.iter().enumerate() {
                if f % 3 == node {
                    partials[f] = kernels::tree_sum(chunk);
                }
            }
        }
        assert_eq!(whole.to_bits(), kernels::tree_sum(&partials).to_bits());
        // When a fragment is exactly a device reduce segment, the sharded
        // geometry coincides with the flat canonical reduction.
        let aligned: Vec<f64> = (0..1024 * 64).map(|i| (i as f64) * 0.3).collect();
        let seg = kernels::reduce_seg_len(aligned.len());
        assert_eq!(
            sharded_canonical_sum(&aligned, seg).to_bits(),
            canonical_sum(&aligned).to_bits()
        );
    }

    #[test]
    fn sharded_group_sum_merges_fragment_partials_per_key() {
        let keys = vec![7i64, 3, 7, 3, 9, 3];
        let values = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let got = sharded_group_sum(&keys, &values, 3);
        // Fragment 0: {3: [2.0], 7: [1.0, 3.0]}; fragment 1: {3: [4.0, 6.0], 9: [5.0]}.
        assert_eq!(got, vec![(3, 12.0), (7, 4.0), (9, 5.0)]);
        // Filter variant keeps fragment geometry too.
        let pred = Predicate::Ge(3.0);
        let fs = sharded_canonical_filter_sum(&values, &pred, 3);
        let frag0 = kernels::tree_sum(&[3.0]);
        let frag1 = kernels::tree_sum(&[4.0, 5.0, 6.0]);
        assert_eq!(fs.to_bits(), kernels::tree_sum(&[frag0, frag1]).to_bits());
    }

    #[test]
    fn plan_threshold_matches_pool_morsel_size() {
        assert_eq!(htapg_core::plan::INLINE_MORSEL_ROWS, crate::pool::MORSEL_ROWS);
    }

    #[test]
    fn executed_plan_matches_volcano_oracle() {
        let mut rng = Prng::seed_from_u64(0xA1);
        for &n in &[0usize, 1, 7, 1000, 70_000] {
            let e = toy_with_rows(n, &mut rng);
            let plan = e.plan(&LogicalPlan::sum(0, 1)).unwrap();
            let got = execute(&e, &plan, ThreadingPolicy::multi8()).unwrap();
            let want = volcano_sum(&e, 0, 1).unwrap();
            assert_eq!(got.as_sum().unwrap().to_bits(), want.to_bits(), "n={n}");
        }
    }

    #[test]
    fn group_sum_matches_volcano_oracle() {
        let mut rng = Prng::seed_from_u64(0xA2);
        let e = toy_with_rows(5000, &mut rng);
        let plan = e.plan(&LogicalPlan::group_sum(0, 0, 1)).unwrap();
        let got = execute(&e, &plan, ThreadingPolicy::Single).unwrap();
        let want = volcano_group_sum(&e, 0, 0, 1).unwrap();
        assert_eq!(got.as_groups().unwrap(), &want[..]);
        // Keys are sorted and cover the inserted domain.
        let keys: Vec<i64> = want.iter().map(|&(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn update_and_point_read_execute_through_plans() {
        let mut rng = Prng::seed_from_u64(0xA3);
        let e = toy_with_rows(100, &mut rng);
        let upd = e
            .plan(&LogicalPlan::Update { rel: 0, row: 5, attr: 1, value: Value::Float64(42.0) })
            .unwrap();
        assert_eq!(upd.route(), Route::InlineVolcano);
        assert_eq!(execute(&e, &upd, ThreadingPolicy::Single).unwrap(), QueryOutput::Updated);
        let read = e.plan(&LogicalPlan::PointRead { rel: 0, row: 5 }).unwrap();
        match execute(&e, &read, ThreadingPolicy::Single).unwrap() {
            QueryOutput::Record(r) => assert_eq!(r[1], Value::Float64(42.0)),
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn materialize_and_project_execute_through_plans() {
        let mut rng = Prng::seed_from_u64(0xA4);
        let e = toy_with_rows(50, &mut rng);
        let mat = e.plan(&LogicalPlan::Materialize { rel: 0, rows: vec![3, 1, 4] }).unwrap();
        match execute(&e, &mat, ThreadingPolicy::Single).unwrap() {
            QueryOutput::Records(recs) => {
                assert_eq!(recs.len(), 3);
                assert_eq!(recs[0], e.read_record(0, 3).unwrap());
            }
            other => panic!("expected records, got {other:?}"),
        }
        let proj = e
            .plan(&LogicalPlan::Project {
                input: Box::new(LogicalPlan::Materialize { rel: 0, rows: vec![2] }),
                attrs: vec![1],
            })
            .unwrap();
        match execute(&e, &proj, ThreadingPolicy::Single).unwrap() {
            QueryOutput::Records(recs) => {
                assert_eq!(recs[0].len(), 1);
                assert_eq!(recs[0][0], e.read_field(0, 2, 1).unwrap());
            }
            other => panic!("expected records, got {other:?}"),
        }
    }

    #[test]
    fn observed_execution_calibrates_and_triggers_one_replan() {
        use htapg_core::calibrate::Calibrated;
        let mut rng = Prng::seed_from_u64(0xA6);
        let engine = Calibrated::new(Box::new(toy_with_rows(1000, &mut rng)));
        let profiles = engine.profiles();
        let logical = LogicalPlan::sum(0, 1);
        let want = volcano_sum(&engine, 0, 1).unwrap();
        let mut replans = 0;
        for round in 0..6 {
            let out = execute_adaptive(&engine, &logical, ThreadingPolicy::Single).unwrap();
            assert_eq!(out.output.as_sum().unwrap().to_bits(), want.to_bits(), "round {round}");
            if out.diverged {
                replans += 1;
                assert_eq!(out.replanned, Some(Route::InlineVolcano));
            }
        }
        // The Toy engine is host-only: its work advances no virtual time,
        // so every actual is 0 against a positive cache-model estimate.
        // The run that crosses the warm-up threshold flags the stale
        // estimate once; afterwards the calibrated estimate is ~0 and the
        // loop is quiet again.
        assert_eq!(replans, 1, "exactly the warm-up-crossing run diverges");
        assert_eq!(profiles.observations("plan.aggregate.sum", "inline-volcano"), 6);
        let plan = engine.plan(&logical).unwrap();
        assert!(plan.root.raw_estimated_ns > 0, "raw estimate is untouched");
        assert_eq!(plan.estimated_ns(), 0, "calibrated estimate tracks the observed zero");
    }

    #[test]
    fn filtered_sum_plan_matches_oracle() {
        let mut rng = Prng::seed_from_u64(0xA5);
        let e = toy_with_rows(3000, &mut rng);
        let pred = Predicate::Ge(5000.0);
        let plan = e.plan(&LogicalPlan::filter_sum(0, 1, pred)).unwrap();
        let got = execute(&e, &plan, ThreadingPolicy::Single).unwrap();
        let want = volcano_filter_sum(&e, 0, 1, &pred).unwrap();
        assert_eq!(got.as_sum().unwrap().to_bits(), want.to_bits());
    }
}
