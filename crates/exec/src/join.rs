//! Join operators over layouts, producing the *sorted position lists* the
//! paper's experiments consume ("we consider costs starting right after the
//! output (i.e., sorted position lists) of the last directly preceding join
//! operator is available" — Section II-B).
//!
//! Provided:
//! * [`hash_join`] — build/probe equi-join on integer keys;
//! * [`merge_join`] — sort-merge equi-join (for pre-sorted or index-ordered
//!   inputs);
//! * [`nested_loop_join`] — the O(n·m) oracle the others are tested
//!   against;
//! * [`group_sum_f64`] — hash group-by aggregation (the OLAP companion).

use std::collections::HashMap;

use htapg_core::{obs, DataType, Error, Layout, Result, RowId};

/// One join match: (left row id, right row id).
pub type JoinPair = (RowId, RowId);

/// Open an operator span recording the input cardinalities.
fn join_span(name: &'static str, left: &Layout, right: &Layout) -> obs::SpanGuard {
    let mut span = obs::span("op", name);
    if span.is_recording() {
        span.arg("left_rows", left.row_count());
        span.arg("right_rows", right.row_count());
    }
    span
}

fn int_key(bytes: &[u8], ty: DataType) -> Result<i64> {
    match ty {
        DataType::Int64 => Ok(i64::from_le_bytes(bytes.try_into().unwrap())),
        DataType::Int32 | DataType::Date => {
            Ok(i32::from_le_bytes(bytes.try_into().unwrap()) as i64)
        }
        other => Err(Error::TypeMismatch { expected: "integer key", got: other.name() }),
    }
}

/// Collect `(key, row)` pairs of an integer column.
fn key_column(layout: &Layout, attr: u16, ty: DataType) -> Result<Vec<(i64, RowId)>> {
    let mut out = Vec::with_capacity(layout.row_count() as usize);
    let mut err = None;
    layout.for_each_field(attr, |row, bytes| {
        if err.is_some() {
            return;
        }
        match int_key(bytes, ty) {
            Ok(k) => out.push((k, row)),
            Err(e) => err = Some(e),
        }
    })?;
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Hash equi-join: build on the smaller side, probe with the larger.
/// Output pairs are sorted by (left row, right row).
pub fn hash_join(
    left: &Layout,
    left_attr: u16,
    left_ty: DataType,
    right: &Layout,
    right_attr: u16,
    right_ty: DataType,
) -> Result<Vec<JoinPair>> {
    let _span = join_span("op.join.hash", left, right);
    let left_keys = key_column(left, left_attr, left_ty)?;
    let right_keys = key_column(right, right_attr, right_ty)?;
    let (build, probe, swapped) = if left_keys.len() <= right_keys.len() {
        (&left_keys, &right_keys, false)
    } else {
        (&right_keys, &left_keys, true)
    };
    let mut table: HashMap<i64, Vec<RowId>> = HashMap::with_capacity(build.len());
    for &(k, row) in build.iter() {
        table.entry(k).or_default().push(row);
    }
    let mut out = Vec::new();
    for &(k, probe_row) in probe.iter() {
        if let Some(rows) = table.get(&k) {
            for &build_row in rows {
                out.push(if swapped { (probe_row, build_row) } else { (build_row, probe_row) });
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Sort-merge equi-join.
pub fn merge_join(
    left: &Layout,
    left_attr: u16,
    left_ty: DataType,
    right: &Layout,
    right_attr: u16,
    right_ty: DataType,
) -> Result<Vec<JoinPair>> {
    let _span = join_span("op.join.merge", left, right);
    let mut l = key_column(left, left_attr, left_ty)?;
    let mut r = key_column(right, right_attr, right_ty)?;
    l.sort_unstable();
    r.sort_unstable();
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() && j < r.len() {
        match l[i].0.cmp(&r[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let key = l[i].0;
                let i_end = l[i..].iter().take_while(|(k, _)| *k == key).count() + i;
                let j_end = r[j..].iter().take_while(|(k, _)| *k == key).count() + j;
                for &(_, lr) in &l[i..i_end] {
                    for &(_, rr) in &r[j..j_end] {
                        out.push((lr, rr));
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Nested-loop equi-join — the correctness oracle.
pub fn nested_loop_join(
    left: &Layout,
    left_attr: u16,
    left_ty: DataType,
    right: &Layout,
    right_attr: u16,
    right_ty: DataType,
) -> Result<Vec<JoinPair>> {
    let _span = join_span("op.join.nested_loop", left, right);
    let l = key_column(left, left_attr, left_ty)?;
    let r = key_column(right, right_attr, right_ty)?;
    let mut out = Vec::new();
    for &(lk, lr) in &l {
        for &(rk, rr) in &r {
            if lk == rk {
                out.push((lr, rr));
            }
        }
    }
    out.sort_unstable();
    Ok(out)
}

/// Hash group-by: sum `value_attr` (as f64) grouped by the integer
/// `key_attr`. Returns (key, sum, count) sorted by key.
pub fn group_sum_f64(
    layout: &Layout,
    key_attr: u16,
    key_ty: DataType,
    value_attr: u16,
    value_ty: DataType,
) -> Result<Vec<(i64, f64, u64)>> {
    let mut span = obs::span("op", "op.join.group_sum");
    if span.is_recording() {
        span.arg("rows", layout.row_count());
    }
    let _span = span;
    let keys = key_column(layout, key_attr, key_ty)?;
    let mut values = Vec::with_capacity(keys.len());
    let mut err = None;
    layout.for_each_field(value_attr, |_, bytes| {
        if err.is_some() {
            return;
        }
        let v = match value_ty {
            DataType::Float64 => f64::from_le_bytes(bytes.try_into().unwrap()),
            DataType::Int64 => i64::from_le_bytes(bytes.try_into().unwrap()) as f64,
            DataType::Int32 | DataType::Date => {
                i32::from_le_bytes(bytes.try_into().unwrap()) as f64
            }
            other => {
                err = Some(Error::TypeMismatch { expected: "numeric", got: other.name() });
                0.0
            }
        };
        values.push(v);
    })?;
    if let Some(e) = err {
        return Err(e);
    }
    let mut groups: HashMap<i64, (f64, u64)> = HashMap::new();
    for ((k, _), v) in keys.iter().zip(values) {
        let slot = groups.entry(*k).or_insert((0.0, 0));
        slot.0 += v;
        slot.1 += 1;
    }
    let mut out: Vec<(i64, f64, u64)> = groups.into_iter().map(|(k, (s, c))| (k, s, c)).collect();
    out.sort_unstable_by_key(|(k, _, _)| *k);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htapg_core::{LayoutTemplate, Schema, Value};

    fn layout_with_keys(keys: &[i64]) -> (Schema, Layout) {
        let s = Schema::of(&[("k", DataType::Int64), ("v", DataType::Float64)]);
        let mut l = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            l.append(&s, &vec![Value::Int64(k), Value::Float64(i as f64)]).unwrap();
        }
        (s, l)
    }

    #[test]
    fn joins_agree_with_nested_loop() {
        let (_, left) = layout_with_keys(&[1, 2, 2, 3, 5, 7, 7, 7]);
        let (_, right) = layout_with_keys(&[2, 2, 3, 4, 7, 9]);
        let oracle =
            nested_loop_join(&left, 0, DataType::Int64, &right, 0, DataType::Int64).unwrap();
        let hashed = hash_join(&left, 0, DataType::Int64, &right, 0, DataType::Int64).unwrap();
        let merged = merge_join(&left, 0, DataType::Int64, &right, 0, DataType::Int64).unwrap();
        assert_eq!(hashed, oracle);
        assert_eq!(merged, oracle);
        // 2 matches 2×2=4 pairs, 3 matches 1, 7 matches 3×1=3 → 8 pairs.
        assert_eq!(oracle.len(), 8);
    }

    #[test]
    fn empty_and_disjoint_inputs() {
        let (_, left) = layout_with_keys(&[]);
        let (_, right) = layout_with_keys(&[1, 2, 3]);
        assert!(hash_join(&left, 0, DataType::Int64, &right, 0, DataType::Int64)
            .unwrap()
            .is_empty());
        let (_, l2) = layout_with_keys(&[10, 20]);
        assert!(merge_join(&l2, 0, DataType::Int64, &right, 0, DataType::Int64)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn join_output_is_sorted_positions() {
        let (_, left) = layout_with_keys(&[5, 1, 5]);
        let (_, right) = layout_with_keys(&[5, 5]);
        let pairs = hash_join(&left, 0, DataType::Int64, &right, 0, DataType::Int64).unwrap();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (2, 0), (2, 1)]);
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        assert_eq!(pairs, sorted);
    }

    #[test]
    fn group_by_sums() {
        let s = Schema::of(&[("g", DataType::Int32), ("v", DataType::Float64)]);
        let mut l = Layout::new(&s, LayoutTemplate::nsm(&s)).unwrap();
        for i in 0..100 {
            l.append(&s, &vec![Value::Int32(i % 4), Value::Float64(i as f64)]).unwrap();
        }
        let groups = group_sum_f64(&l, 0, DataType::Int32, 1, DataType::Float64).unwrap();
        assert_eq!(groups.len(), 4);
        for (k, sum, count) in &groups {
            assert_eq!(*count, 25);
            let expect: f64 = (0..100).filter(|i| i % 4 == *k).map(|i| i as f64).sum();
            assert_eq!(*sum, expect, "group {k}");
        }
        let total: f64 = groups.iter().map(|(_, s, _)| s).sum();
        assert_eq!(total, (0..100).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn non_integer_keys_rejected() {
        let s = Schema::of(&[("t", DataType::Text(4))]);
        let mut l = Layout::new(&s, LayoutTemplate::nsm(&s)).unwrap();
        l.append(&s, &vec![Value::Text("x".into())]).unwrap();
        assert!(hash_join(&l, 0, DataType::Text(4), &l, 0, DataType::Text(4)).is_err());
    }
}
