//! Record-centric operators: materialization of full records from position
//! lists — the Q1 pattern (`SELECT * FROM R WHERE pk = c`) and Figure 2's
//! "materialize 150 customers" experiment.
//!
//! "We consider costs starting right after the output (i.e., sorted
//! position lists) of the last directly preceding join operator is
//! available" — so the operator takes a sorted position list and
//! materializes every field of every listed row.

use htapg_core::{obs, Layout, Record, Result, RowId, Schema};

use crate::threading::{run_blocks, ThreadingPolicy};

/// Open an operator span recording the number of positions to materialize.
fn op_span(name: &'static str, positions: &[RowId]) -> obs::SpanGuard {
    let mut span = obs::span("op", name);
    if span.is_recording() {
        span.arg("rows", positions.len() as u64);
    }
    span
}

/// Materialize full records at `positions` under a threading policy.
///
/// Output order matches `positions`. Under NSM layouts each record is one
/// (or few) cache line(s); under column layouts every attribute is a
/// separate random access — the record-centric contrast of Figure 2.
pub fn materialize(
    layout: &Layout,
    schema: &Schema,
    positions: &[RowId],
    policy: ThreadingPolicy,
) -> Result<Vec<Record>> {
    let _span = op_span("op.materialize", positions);
    // `run_blocks` folds morsel results in morsel order, so concatenation
    // already reproduces the order of `positions`.
    run_blocks(
        positions.len() as u64,
        policy,
        |lo, hi| -> Result<Vec<Record>> {
            let mut out = Vec::with_capacity((hi - lo) as usize);
            for &row in &positions[lo as usize..hi as usize] {
                out.push(layout.read_record(schema, row)?);
            }
            Ok(out)
        },
        |acc: Result<Vec<Record>>, part| {
            let mut acc = acc?;
            acc.extend(part?);
            Ok(acc)
        },
        Ok(Vec::with_capacity(positions.len())),
    )
}

/// Materialize a projection (subset of attributes) at `positions`.
pub fn materialize_projection(
    layout: &Layout,
    schema: &Schema,
    attrs: &[u16],
    positions: &[RowId],
    policy: ThreadingPolicy,
) -> Result<Vec<Record>> {
    let _span = op_span("op.materialize.projection", positions);
    run_blocks(
        positions.len() as u64,
        policy,
        |lo, hi| -> Result<Vec<Record>> {
            let mut out = Vec::with_capacity((hi - lo) as usize);
            for &row in &positions[lo as usize..hi as usize] {
                let mut rec = Vec::with_capacity(attrs.len());
                for &a in attrs {
                    rec.push(layout.read_value(schema, row, a)?);
                }
                out.push(rec);
            }
            Ok(out)
        },
        |acc: Result<Vec<Record>>, part| {
            let mut acc = acc?;
            acc.extend(part?);
            Ok(acc)
        },
        Ok(Vec::with_capacity(positions.len())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use htapg_core::{DataType, LayoutTemplate, Value};

    fn setup(n: i64) -> (Schema, Layout, Layout) {
        let s = Schema::of(&[
            ("id", DataType::Int64),
            ("name", DataType::Text(16)),
            ("balance", DataType::Float64),
        ]);
        let mut nsm = Layout::new(&s, LayoutTemplate::nsm(&s)).unwrap();
        let mut dsm = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        for i in 0..n {
            let rec = vec![
                Value::Int64(i),
                Value::Text(format!("cust{i}")),
                Value::Float64(i as f64 * 1.5),
            ];
            nsm.append(&s, &rec).unwrap();
            dsm.append(&s, &rec).unwrap();
        }
        (s, nsm, dsm)
    }

    #[test]
    fn output_order_matches_positions() {
        let (s, nsm, _) = setup(100);
        let positions = vec![42u64, 3, 99, 3];
        let recs = materialize(&nsm, &s, &positions, ThreadingPolicy::Single).unwrap();
        assert_eq!(recs[0][0], Value::Int64(42));
        assert_eq!(recs[1][0], Value::Int64(3));
        assert_eq!(recs[2][0], Value::Int64(99));
        assert_eq!(recs[3][0], Value::Int64(3));
    }

    #[test]
    fn layouts_and_policies_agree() {
        let (s, nsm, dsm) = setup(2000);
        let positions: Vec<u64> = (0..2000).step_by(13).collect();
        let a = materialize(&nsm, &s, &positions, ThreadingPolicy::Single).unwrap();
        let b = materialize(&nsm, &s, &positions, ThreadingPolicy::multi8()).unwrap();
        let c = materialize(&dsm, &s, &positions, ThreadingPolicy::multi8()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn projection_subset() {
        let (s, nsm, _) = setup(50);
        let recs =
            materialize_projection(&nsm, &s, &[2, 0], &[7, 8], ThreadingPolicy::Single).unwrap();
        assert_eq!(recs[0], vec![Value::Float64(10.5), Value::Int64(7)]);
        assert_eq!(recs[1], vec![Value::Float64(12.0), Value::Int64(8)]);
    }

    #[test]
    fn bad_position_errors() {
        let (s, nsm, _) = setup(10);
        assert!(materialize(&nsm, &s, &[100], ThreadingPolicy::Single).is_err());
        assert!(materialize(&nsm, &s, &[100], ThreadingPolicy::multi8()).is_err());
    }

    #[test]
    fn empty_positions() {
        let (s, nsm, _) = setup(10);
        let recs = materialize(&nsm, &s, &[], ThreadingPolicy::multi8()).unwrap();
        assert!(recs.is_empty());
    }
}
