//! The Volcano (tuple-at-a-time) processing model.
//!
//! "NSM combined with the Volcano-style processing model suits well for
//! this [record-centric] access pattern in case the costs for function
//! calls can be hidden by data access costs." (Section II-A)
//!
//! Operators form a pull-based pipeline: every `next()` produces one
//! record, paying one virtual call per operator per tuple — the per-tuple
//! overhead the bulk model amortizes.

use htapg_core::{Layout, Record, Result, RowId, Schema, Value};

/// A Volcano operator: a pull-based record iterator.
pub trait Operator {
    /// Produce the next record, or `None` when exhausted.
    fn next(&mut self) -> Result<Option<Record>>;
    /// Output schema (attribute order of produced records).
    fn output_arity(&self) -> usize;
}

/// Full-table scan over a layout.
pub struct Scan<'a> {
    layout: &'a Layout,
    schema: &'a Schema,
    cursor: RowId,
}

impl<'a> Scan<'a> {
    pub fn new(layout: &'a Layout, schema: &'a Schema) -> Self {
        Scan { layout, schema, cursor: 0 }
    }
}

impl Operator for Scan<'_> {
    fn next(&mut self) -> Result<Option<Record>> {
        if self.cursor >= self.layout.row_count() {
            return Ok(None);
        }
        let rec = self.layout.read_record(self.schema, self.cursor)?;
        self.cursor += 1;
        Ok(Some(rec))
    }

    fn output_arity(&self) -> usize {
        self.schema.arity()
    }
}

/// Selection: pass records satisfying a predicate.
pub struct Filter<C> {
    child: C,
    pred: Box<dyn FnMut(&Record) -> bool + Send>,
}

impl<C: Operator> Filter<C> {
    pub fn new(child: C, pred: impl FnMut(&Record) -> bool + Send + 'static) -> Self {
        Filter { child, pred: Box::new(pred) }
    }
}

impl<C: Operator> Operator for Filter<C> {
    fn next(&mut self) -> Result<Option<Record>> {
        while let Some(rec) = self.child.next()? {
            if (self.pred)(&rec) {
                return Ok(Some(rec));
            }
        }
        Ok(None)
    }

    fn output_arity(&self) -> usize {
        self.child.output_arity()
    }
}

/// Projection: reorder / subset attributes.
pub struct Project<C> {
    child: C,
    attrs: Vec<u16>,
}

impl<C: Operator> Project<C> {
    pub fn new(child: C, attrs: Vec<u16>) -> Self {
        Project { child, attrs }
    }
}

impl<C: Operator> Operator for Project<C> {
    fn next(&mut self) -> Result<Option<Record>> {
        match self.child.next()? {
            Some(rec) => Ok(Some(self.attrs.iter().map(|&a| rec[a as usize].clone()).collect())),
            None => Ok(None),
        }
    }

    fn output_arity(&self) -> usize {
        self.attrs.len()
    }
}

/// Limit: stop after `n` records.
pub struct Limit<C> {
    child: C,
    remaining: u64,
}

impl<C: Operator> Limit<C> {
    pub fn new(child: C, n: u64) -> Self {
        Limit { child, remaining: n }
    }
}

impl<C: Operator> Operator for Limit<C> {
    fn next(&mut self) -> Result<Option<Record>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.child.next()? {
            Some(rec) => {
                self.remaining -= 1;
                Ok(Some(rec))
            }
            None => Ok(None),
        }
    }

    fn output_arity(&self) -> usize {
        self.child.output_arity()
    }
}

/// Drain a pipeline into a vector.
pub fn collect(mut op: impl Operator) -> Result<Vec<Record>> {
    let mut out = Vec::new();
    while let Some(rec) = op.next()? {
        out.push(rec);
    }
    Ok(out)
}

/// Aggregate a pipeline: sum attribute `attr` of the produced records.
pub fn sum_f64(mut op: impl Operator, attr: u16) -> Result<f64> {
    let mut acc = 0.0;
    while let Some(rec) = op.next()? {
        acc += rec[attr as usize].as_f64()?;
    }
    Ok(acc)
}

/// Count records produced by a pipeline.
pub fn count(mut op: impl Operator) -> Result<u64> {
    let mut n = 0;
    while op.next()?.is_some() {
        n += 1;
    }
    Ok(n)
}

/// Sort: a pipeline breaker that drains its child, orders by `attr`, and
/// replays. Values compare by their natural order (text lexicographic,
/// numerics numeric).
pub struct Sort<C> {
    child: Option<C>,
    attr: u16,
    descending: bool,
    buffered: std::vec::IntoIter<Record>,
}

fn value_cmp(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (Value::Int32(x), Value::Int32(y)) => x.cmp(y),
        (Value::Int64(x), Value::Int64(y)) => x.cmp(y),
        (Value::Date(x), Value::Date(y)) => x.cmp(y),
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Float64(x), Value::Float64(y)) => x.partial_cmp(y).unwrap_or(Ordering::Equal),
        (Value::Text(x), Value::Text(y)) => x.cmp(y),
        // Heterogeneous columns cannot occur through a typed schema; fall
        // back to a stable non-order.
        _ => Ordering::Equal,
    }
}

impl<C: Operator> Sort<C> {
    pub fn new(child: C, attr: u16, descending: bool) -> Self {
        Sort { child: Some(child), attr, descending, buffered: Vec::new().into_iter() }
    }
}

impl<C: Operator> Operator for Sort<C> {
    fn next(&mut self) -> Result<Option<Record>> {
        if let Some(mut child) = self.child.take() {
            let mut all = Vec::new();
            while let Some(rec) = child.next()? {
                all.push(rec);
            }
            let attr = self.attr as usize;
            all.sort_by(|a, b| value_cmp(&a[attr], &b[attr]));
            if self.descending {
                all.reverse();
            }
            self.buffered = all.into_iter();
        }
        Ok(self.buffered.next())
    }

    fn output_arity(&self) -> usize {
        self.child.as_ref().map_or(0, |c| c.output_arity())
    }
}

/// Top-k: sort + limit fused (keeps only k records in memory).
pub struct TopK<C> {
    child: Option<C>,
    attr: u16,
    k: usize,
    descending: bool,
    buffered: std::vec::IntoIter<Record>,
}

impl<C: Operator> TopK<C> {
    pub fn new(child: C, attr: u16, k: usize, descending: bool) -> Self {
        TopK { child: Some(child), attr, k, descending, buffered: Vec::new().into_iter() }
    }
}

impl<C: Operator> Operator for TopK<C> {
    fn next(&mut self) -> Result<Option<Record>> {
        if let Some(mut child) = self.child.take() {
            let attr = self.attr as usize;
            let desc = self.descending;
            let mut heap: Vec<Record> = Vec::with_capacity(self.k + 1);
            while let Some(rec) = child.next()? {
                heap.push(rec);
                if heap.len() > self.k {
                    // Drop the worst record (linear; k is small by intent).
                    let worst = heap
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            let ord = value_cmp(&a[attr], &b[attr]);
                            if desc {
                                ord.reverse()
                            } else {
                                ord
                            }
                        })
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    heap.swap_remove(worst);
                }
            }
            heap.sort_by(|a, b| {
                let ord = value_cmp(&a[attr], &b[attr]);
                if desc {
                    ord.reverse()
                } else {
                    ord
                }
            });
            self.buffered = heap.into_iter();
        }
        Ok(self.buffered.next())
    }

    fn output_arity(&self) -> usize {
        self.child.as_ref().map_or(0, |c| c.output_arity())
    }
}

/// Hash equi-join as a Volcano operator: builds on the left child at first
/// `next()`, then streams the right child. Output records are
/// `left ++ right` concatenations.
pub struct HashJoinOp<L, R> {
    left: Option<L>,
    right: R,
    left_attr: u16,
    right_attr: u16,
    table: std::collections::HashMap<JoinKey, Vec<Record>>,
    /// Pending matches for the current right record.
    pending: Vec<Record>,
    left_arity: usize,
}

/// Hashable, totally-equatable view of a [`Value`] for join keys (floats
/// compare by bit pattern; NaN keys never match anything meaningful, which
/// matches SQL's NULL-like semantics for NaN equality well enough here).
#[derive(PartialEq, Eq, Hash, Clone)]
enum JoinKey {
    Int(i64),
    Bool(bool),
    FloatBits(u64),
    Text(String),
}

fn join_key(v: &Value) -> JoinKey {
    match v {
        Value::Bool(b) => JoinKey::Bool(*b),
        Value::Int32(x) => JoinKey::Int(*x as i64),
        Value::Int64(x) => JoinKey::Int(*x),
        Value::Date(x) => JoinKey::Int(*x as i64),
        Value::Float64(x) => JoinKey::FloatBits(x.to_bits()),
        Value::Text(t) => JoinKey::Text(t.clone()),
    }
}

impl<L: Operator, R: Operator> HashJoinOp<L, R> {
    pub fn new(left: L, right: R, left_attr: u16, right_attr: u16) -> Self {
        let left_arity = left.output_arity();
        HashJoinOp {
            left: Some(left),
            right,
            left_attr,
            right_attr,
            table: std::collections::HashMap::new(),
            pending: Vec::new(),
            left_arity,
        }
    }
}

impl<L: Operator, R: Operator> Operator for HashJoinOp<L, R> {
    fn next(&mut self) -> Result<Option<Record>> {
        if let Some(mut left) = self.left.take() {
            while let Some(rec) = left.next()? {
                let key = join_key(&rec[self.left_attr as usize]);
                self.table.entry(key).or_default().push(rec);
            }
        }
        loop {
            if let Some(joined) = self.pending.pop() {
                return Ok(Some(joined));
            }
            match self.right.next()? {
                None => return Ok(None),
                Some(r) => {
                    if let Some(matches) = self.table.get(&join_key(&r[self.right_attr as usize])) {
                        for l in matches {
                            let mut joined = l.clone();
                            joined.extend(r.iter().cloned());
                            self.pending.push(joined);
                        }
                    }
                }
            }
        }
    }

    fn output_arity(&self) -> usize {
        self.left_arity + self.right.output_arity()
    }
}

/// Convenience: evaluate Q1-style point lookup
/// (`SELECT * FROM R WHERE key_attr = key`) via scan + filter.
pub fn point_query(
    layout: &Layout,
    schema: &Schema,
    key_attr: u16,
    key: Value,
) -> Result<Vec<Record>> {
    let scan = Scan::new(layout, schema);
    let filter = Filter::new(scan, move |rec| rec[key_attr as usize] == key);
    collect(filter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use htapg_core::{DataType, LayoutTemplate};

    fn setup(n: i64) -> (Schema, Layout) {
        let s = Schema::of(&[("k", DataType::Int64), ("v", DataType::Float64)]);
        let mut l = Layout::new(&s, LayoutTemplate::nsm(&s)).unwrap();
        for i in 0..n {
            l.append(&s, &vec![Value::Int64(i), Value::Float64(i as f64)]).unwrap();
        }
        (s, l)
    }

    #[test]
    fn scan_produces_all_rows_in_order() {
        let (s, l) = setup(10);
        let recs = collect(Scan::new(&l, &s)).unwrap();
        assert_eq!(recs.len(), 10);
        assert_eq!(recs[9][0], Value::Int64(9));
    }

    #[test]
    fn filter_project_limit_pipeline() {
        let (s, l) = setup(100);
        let pipeline = Limit::new(
            Project::new(
                Filter::new(Scan::new(&l, &s), |r| matches!(r[0], Value::Int64(k) if k % 2 == 0)),
                vec![1],
            ),
            3,
        );
        let recs = collect(pipeline).unwrap();
        assert_eq!(
            recs,
            vec![vec![Value::Float64(0.0)], vec![Value::Float64(2.0)], vec![Value::Float64(4.0)]]
        );
    }

    #[test]
    fn aggregates() {
        let (s, l) = setup(100);
        assert_eq!(sum_f64(Scan::new(&l, &s), 1).unwrap(), (0..100).sum::<i64>() as f64);
        assert_eq!(count(Scan::new(&l, &s)).unwrap(), 100);
    }

    #[test]
    fn point_query_finds_exactly_one() {
        let (s, l) = setup(50);
        let hits = point_query(&l, &s, 0, Value::Int64(17)).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0][1], Value::Float64(17.0));
        assert!(point_query(&l, &s, 0, Value::Int64(-1)).unwrap().is_empty());
    }

    #[test]
    fn sort_orders_by_attribute() {
        let (s, l) = setup(20);
        let sorted = collect(Sort::new(Scan::new(&l, &s), 1, true)).unwrap();
        assert_eq!(sorted[0][1], Value::Float64(19.0));
        assert_eq!(sorted[19][1], Value::Float64(0.0));
        let asc = collect(Sort::new(Scan::new(&l, &s), 0, false)).unwrap();
        assert_eq!(asc[0][0], Value::Int64(0));
        assert_eq!(asc.len(), 20);
    }

    #[test]
    fn topk_equals_sort_plus_limit() {
        let (s, l) = setup(100);
        let topk = collect(TopK::new(Scan::new(&l, &s), 1, 5, true)).unwrap();
        let sorted = collect(Limit::new(Sort::new(Scan::new(&l, &s), 1, true), 5)).unwrap();
        assert_eq!(topk, sorted);
        assert_eq!(topk[0][1], Value::Float64(99.0));
        assert_eq!(topk[4][1], Value::Float64(95.0));
        // k larger than the input: everything comes back.
        let all = collect(TopK::new(Scan::new(&l, &s), 1, 500, false)).unwrap();
        assert_eq!(all.len(), 100);
    }

    #[test]
    fn hash_join_operator_concatenates_matches() {
        let (s, l) = setup(10);
        // Self-join on k: every row matches exactly itself.
        let joined = collect(HashJoinOp::new(Scan::new(&l, &s), Scan::new(&l, &s), 0, 0)).unwrap();
        assert_eq!(joined.len(), 10);
        for rec in &joined {
            assert_eq!(rec.len(), 4, "left ++ right arity");
            assert_eq!(rec[0], rec[2], "join keys equal");
        }
        // Join against a filtered side: only even keys survive.
        let evens =
            Filter::new(Scan::new(&l, &s), |r| matches!(r[0], Value::Int64(k) if k % 2 == 0));
        let joined = collect(HashJoinOp::new(evens, Scan::new(&l, &s), 0, 0)).unwrap();
        assert_eq!(joined.len(), 5);
    }

    #[test]
    fn volcano_join_agrees_with_bulk_join() {
        let (s, l) = setup(50);
        let volcano = count(HashJoinOp::new(Scan::new(&l, &s), Scan::new(&l, &s), 0, 0)).unwrap();
        let bulk = crate::join::hash_join(
            &l,
            0,
            htapg_core::DataType::Int64,
            &l,
            0,
            htapg_core::DataType::Int64,
        )
        .unwrap()
        .len();
        assert_eq!(volcano as usize, bulk);
    }

    #[test]
    fn arity_tracking() {
        let (s, l) = setup(1);
        let p = Project::new(Scan::new(&l, &s), vec![1]);
        assert_eq!(p.output_arity(), 1);
    }
}
