//! Persistent morsel-driven executor pool.
//!
//! Finding (i) of Figure 2 is that "thread-management costs dominate" on
//! tiny inputs. The original executor *maximized* that cost: every parallel
//! operator call spawned and joined fresh scoped threads. This module
//! replaces spawn-per-call with a process-wide pool of persistent workers
//! (HyPer-style morsel scheduling): workers park on a condition variable
//! and pull fixed-size **morsels** ([`MORSEL_ROWS`] rows) off a shared
//! atomic cursor, so
//!
//! * tiny inputs never touch a thread at all (one morsel ⇒ the calling
//!   thread runs it inline — the crossover point becomes a property of the
//!   scheduler, not of per-call spawn overhead), and
//! * skewed inputs no longer straggle on one thread's static block (a slow
//!   morsel delays one worker by at most one morsel, not by `n/threads`
//!   rows).
//!
//! ## Sizing
//!
//! The pool is lazily initialized on first parallel use. Its size defaults
//! to the host's available parallelism and can be pinned with the
//! `HTAPG_THREADS` environment variable (read once, at initialization).
//! The submitting thread always participates in its own job, so a job's
//! total concurrency is `1 + min(requested - 1, pool size)` — with
//! `HTAPG_THREADS=1` a two-participant configuration, the smallest that
//! still exercises cross-thread scheduling.
//!
//! ## Determinism
//!
//! [`run_morsels`] records each morsel's result under its morsel index and
//! folds them **in morsel order** after the job completes. The fold
//! sequence is therefore identical for every pool size, every
//! [`ThreadingPolicy`](crate::threading::ThreadingPolicy), and every
//! scheduling interleaving — floating-point reductions are bit-for-bit
//! reproducible across `Single`, `Multi { .. }`, and `HTAPG_THREADS`
//! settings.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};

use htapg_core::obs;

/// Registry handles for pool scheduling events (PR 2 left these counters
/// implicit), resolved once. `morsels_claimed`/`tasks_claimed` also exist
/// per worker — see [`worker_counter`].
struct PoolCounters {
    /// Morsels claimed across all workers ([`run_morsels`]).
    morsels_claimed: Arc<obs::Counter>,
    /// Task indices claimed across all workers ([`run_tasks`]).
    tasks_claimed: Arc<obs::Counter>,
    /// Task indices run by a pool worker rather than the submitting
    /// thread — work the submitter alone would have serialized.
    tasks_stolen: Arc<obs::Counter>,
    /// Jobs short-circuited inline on the caller (≤ 1 morsel, ≤ 1 thread,
    /// or no free workers): zero scheduling, zero thread management.
    inline_runs: Arc<obs::Counter>,
}

fn pool_counters() -> &'static PoolCounters {
    static C: OnceLock<PoolCounters> = OnceLock::new();
    C.get_or_init(|| PoolCounters {
        morsels_claimed: obs::metrics().counter("pool.morsels.claimed"),
        tasks_claimed: obs::metrics().counter("pool.tasks.claimed"),
        tasks_stolen: obs::metrics().counter("pool.tasks.stolen"),
        inline_runs: obs::metrics().counter("pool.inline_runs"),
    })
}

/// Per-worker claim counters, keyed by thread identity: pool workers get
/// `pool.morsels.claimed.htapg-pool-N`, every submitting thread shares
/// `pool.morsels.claimed.submitter`. Names are interned once per thread
/// (bounded by the pool size plus one).
struct WorkerCounters {
    morsels: Arc<obs::Counter>,
    tasks: Arc<obs::Counter>,
}

thread_local! {
    static WORKER_COUNTERS: WorkerCounters = {
        let name = std::thread::current().name().unwrap_or("").to_string();
        let label = if name.starts_with("htapg-pool-") { name.as_str() } else { "submitter" };
        let morsels: &'static str =
            Box::leak(format!("pool.morsels.claimed.{label}").into_boxed_str());
        let tasks: &'static str = Box::leak(format!("pool.tasks.claimed.{label}").into_boxed_str());
        WorkerCounters {
            morsels: obs::metrics().counter(morsels),
            tasks: obs::metrics().counter(tasks),
        }
    };
}

/// Morsel granularity in rows (~64K). Large enough that per-morsel
/// bookkeeping (one slot write) is noise against the scan itself; small
/// enough that a straggling block re-balances across workers.
pub const MORSEL_ROWS: u64 = 1 << 16;

/// Morsels claimed per shared-cursor `fetch_add` in [`run_morsels`]. One
/// CAS per *batch* instead of one per morsel keeps the cursor cache line
/// from ping-ponging between workers on large scans, where claim traffic —
/// not the scan — set the old crossover point. Small enough that the tail
/// imbalance is at most `CLAIM_BATCH - 1` morsels per worker.
pub const CLAIM_BATCH: u64 = 4;

/// Environment variable pinning the pool's worker-thread count.
pub const THREADS_ENV: &str = "HTAPG_THREADS";

/// A type-erased borrowed task. Safety contract: the pointee must outlive
/// every execution, which [`Pool::broadcast`] guarantees by blocking the
/// submitter until all claiming workers have finished.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared execution is allowed) and its
// lifetime is upheld by the broadcast protocol above.
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

/// One broadcast job: a task that up to `tickets` workers may join.
struct Job {
    task: TaskPtr,
    /// Claims still available. Mutated only under the queue lock.
    tickets: AtomicUsize,
    /// Workers that claimed the job. Mutated only under the queue lock.
    claimed: AtomicUsize,
    /// Workers that finished running the task.
    finished: AtomicUsize,
    /// Submitter parks here until `finished == claimed`.
    monitor: Mutex<()>,
    complete: Condvar,
    /// First panic payload out of any worker, re-raised by the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Signals idle workers that the queue is non-empty.
    available: Condvar,
}

fn relock<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // Pool state stays consistent across task panics (all mutation happens
    // outside task code), so poisoning carries no information here.
    r.unwrap_or_else(PoisonError::into_inner)
}

/// The persistent worker pool. Obtain the process-wide instance with
/// [`global`]; dedicated instances exist for tests only.
pub struct Pool {
    shared: Arc<Shared>,
    workers: usize,
}

impl Pool {
    /// Start a pool with `workers` persistent worker threads.
    fn start(workers: usize) -> Pool {
        let shared =
            Arc::new(Shared { queue: Mutex::new(VecDeque::new()), available: Condvar::new() });
        for i in 0..workers {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name(format!("htapg-pool-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn pool worker");
        }
        Pool { shared, workers }
    }

    /// Number of persistent worker threads (excluding submitting threads).
    pub fn size(&self) -> usize {
        self.workers
    }

    /// Run `task` on up to `extra` pool workers *and* the calling thread;
    /// return once the caller and every claiming worker have finished. The
    /// task must be idempotent under concurrent execution (each invocation
    /// typically drains a shared cursor). Worker panics are re-raised here,
    /// after all participants have stopped touching the borrow.
    pub fn broadcast(&self, extra: usize, task: &(dyn Fn() + Sync)) {
        if extra == 0 || self.workers == 0 {
            task();
            return;
        }
        let job = Arc::new(Job {
            task: TaskPtr(unsafe {
                // SAFETY: erase the borrow's lifetime; this function does
                // not return until every worker that claimed the job has
                // finished executing it (the wait below), so the pointee
                // strictly outlives all uses.
                std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(task)
            }),
            tickets: AtomicUsize::new(extra),
            claimed: AtomicUsize::new(0),
            finished: AtomicUsize::new(0),
            monitor: Mutex::new(()),
            complete: Condvar::new(),
            panic: Mutex::new(None),
        });
        relock(self.shared.queue.lock()).push_back(job.clone());
        if extra == 1 {
            self.shared.available.notify_one();
        } else {
            self.shared.available.notify_all();
        }

        // Participate: the submitter is always one of the workers, so a job
        // makes progress even when every pool thread is busy elsewhere.
        let caller_result = catch_unwind(AssertUnwindSafe(task));

        // Revoke unclaimed tickets: after this, `claimed` is final.
        {
            let mut queue = relock(self.shared.queue.lock());
            job.tickets.store(0, Ordering::Relaxed);
            if let Some(pos) = queue.iter().position(|j| Arc::ptr_eq(j, &job)) {
                queue.remove(pos);
            }
        }
        // Wait for claiming workers to leave the task (borrow safety).
        {
            let mut guard = relock(job.monitor.lock());
            while job.finished.load(Ordering::Acquire) < job.claimed.load(Ordering::Acquire) {
                guard = relock(job.complete.wait(guard));
            }
        }
        let worker_panic = relock(job.panic.lock()).take();
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: &Shared) {
    // Spans recorded on this thread carry the worker's identity as their
    // trace track (one Chrome-trace tid per worker). Held for the thread's
    // whole life.
    let _track = obs::track_scope(
        std::thread::current().name().map(str::to_owned).unwrap_or_else(|| "htapg-pool".into()),
    );
    loop {
        let job = {
            let mut queue = relock(shared.queue.lock());
            loop {
                // Claim the front job: take one ticket; pop the job once
                // the last ticket is gone. All under the queue lock, so a
                // claim can never race the submitter's revocation.
                if let Some(front) = queue.front() {
                    let job = front.clone();
                    let left = job.tickets.load(Ordering::Relaxed);
                    debug_assert!(left > 0, "ticketless job left in queue");
                    job.tickets.store(left - 1, Ordering::Relaxed);
                    job.claimed.fetch_add(1, Ordering::Relaxed);
                    if left == 1 {
                        queue.pop_front();
                    }
                    break job;
                }
                queue = relock(shared.available.wait(queue));
            }
        };
        // SAFETY: the submitter blocks until `finished == claimed`, and
        // this worker was counted in `claimed` before the submitter could
        // revoke; the pointee is live for the duration of this call.
        let task = unsafe { &*job.task.0 };
        let result = catch_unwind(AssertUnwindSafe(task));
        if let Err(payload) = result {
            relock(job.panic.lock()).get_or_insert(payload);
        }
        // Publish completion under the monitor so the submitter cannot
        // miss the wakeup between its check and its wait.
        let _guard = relock(job.monitor.lock());
        job.finished.fetch_add(1, Ordering::Release);
        job.complete.notify_all();
    }
}

/// Worker count for the global pool: `HTAPG_THREADS` if set (clamped to
/// ≥ 1), else the host's available parallelism.
fn configured_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// The process-wide pool, started on first use.
pub fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::start(configured_threads()))
}

/// Sequentially fold `work` over the morsel partition of `0..n` — the
/// `ThreadingPolicy::Single` path. Zero thread management; the morsel
/// granularity matches [`run_morsels`] exactly so single- and
/// multi-threaded folds are bit-for-bit identical.
pub fn fold_morsels_seq<T>(
    n: u64,
    work: impl Fn(u64, u64) -> T,
    combine: impl Fn(T, T) -> T,
    identity: T,
) -> T {
    let mut acc = identity;
    let mut lo = 0u64;
    while lo < n {
        let hi = n.min(lo + MORSEL_ROWS);
        acc = combine(acc, work(lo, hi));
        lo = hi;
    }
    acc
}

/// Morsel-driven parallel fold of `work` over `0..n` on the global pool,
/// with at most `max_threads` participating threads (the caller plus up to
/// `max_threads - 1` pool workers).
///
/// Results are combined **in morsel order**, so the output is bit-for-bit
/// identical to [`fold_morsels_seq`] regardless of pool size or
/// interleaving. Inputs of at most one morsel run inline on the caller —
/// no scheduling, no atomics, no thread management at all.
pub fn run_morsels<T, F>(
    n: u64,
    max_threads: usize,
    work: F,
    combine: impl Fn(T, T) -> T,
    identity: T,
) -> T
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    let morsels = n.div_ceil(MORSEL_ROWS);
    if morsels <= 1 || max_threads <= 1 {
        pool_counters().inline_runs.inc();
        return fold_morsels_seq(n, work, combine, identity);
    }
    let pool = global();
    let extra = (max_threads - 1).min(pool.size()).min(morsels as usize - 1);
    if extra == 0 {
        pool_counters().inline_runs.inc();
        return fold_morsels_seq(n, work, combine, identity);
    }
    let cursor = AtomicU64::new(0);
    let results: Mutex<Vec<(u64, T)>> = Mutex::new(Vec::with_capacity(morsels as usize));
    // Workers attribute their spans to the submitter's engine, not the
    // pool's default process label.
    let process = obs::current_process();
    pool.broadcast(extra, &|| {
        let _p = obs::process_scope(process.clone());
        loop {
            // Claim a contiguous batch of morsels with one cursor bump;
            // results are still recorded per morsel, so the ordered fold
            // below is bit-identical to one-at-a-time claiming.
            let m0 = cursor.fetch_add(CLAIM_BATCH, Ordering::Relaxed);
            if m0 >= morsels {
                break;
            }
            for m in m0..(m0 + CLAIM_BATCH).min(morsels) {
                pool_counters().morsels_claimed.inc();
                WORKER_COUNTERS.with(|w| w.morsels.inc());
                let mut span = obs::span("pool", "pool.morsel");
                if span.is_recording() {
                    span.arg("morsel", m);
                }
                let lo = m * MORSEL_ROWS;
                let hi = n.min(lo + MORSEL_ROWS);
                let r = work(lo, hi);
                span.end();
                relock(results.lock()).push((m, r));
            }
        }
    });
    let mut parts = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    parts.sort_unstable_by_key(|(m, _)| *m);
    parts.into_iter().fold(identity, |acc, (_, r)| combine(acc, r))
}

/// Run `count` logical tasks (indices `0..count`) on the pool with at most
/// `max_threads` participating threads. Each index is claimed exactly once;
/// workers that finish early steal the remaining indices, so every task
/// completes no matter how few pool threads are free. The replacement for
/// hand-rolled `spawn`-one-thread-per-worker loops (HTAP driver classes,
/// transaction stress tests).
pub fn run_tasks(count: u64, max_threads: usize, task: impl Fn(u64) + Sync) {
    if count == 0 {
        return;
    }
    let body = {
        let cursor = AtomicU64::new(0);
        let task = &task;
        let process = obs::current_process();
        move || {
            let _p = obs::process_scope(process.clone());
            let on_pool_worker =
                std::thread::current().name().is_some_and(|n| n.starts_with("htapg-pool-"));
            loop {
                let t = cursor.fetch_add(1, Ordering::Relaxed);
                if t >= count {
                    break;
                }
                pool_counters().tasks_claimed.inc();
                WORKER_COUNTERS.with(|w| w.tasks.inc());
                if on_pool_worker {
                    pool_counters().tasks_stolen.inc();
                }
                task(t);
            }
        }
    };
    if count == 1 || max_threads <= 1 {
        pool_counters().inline_runs.inc();
        body();
        return;
    }
    let pool = global();
    let extra = (max_threads - 1).min(pool.size()).min(count as usize - 1);
    if extra == 0 {
        pool_counters().inline_runs.inc();
        body();
        return;
    }
    pool.broadcast(extra, &body);
}

/// The pre-pool executor, verbatim: spawn `threads` scoped threads, one
/// static contiguous block each, join, fold. Kept **only** as the
/// spawn-per-call baseline the `pool` bench and the `repro` crossover
/// measurement compare against; operators must not call this.
pub fn spawn_blocks<T, F>(
    n: u64,
    threads: usize,
    work: F,
    combine: impl Fn(T, T) -> T,
    identity: T,
) -> T
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    let blocks = crate::threading::blockwise(n, threads);
    let work = &work;
    let results: Vec<T> = std::thread::scope(|s| {
        let handles: Vec<_> =
            blocks.iter().map(|&(lo, hi)| s.spawn(move || work(lo, hi))).collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    results.into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_inputs_run_inline() {
        // One morsel: no pool interaction, exact sequential result.
        let data: Vec<u64> = (0..1000).collect();
        let sum = run_morsels(
            1000,
            8,
            |lo, hi| data[lo as usize..hi as usize].iter().sum::<u64>(),
            |a, b| a + b,
            0u64,
        );
        assert_eq!(sum, (0..1000).sum::<u64>());
    }

    #[test]
    fn large_inputs_match_sequential_bit_for_bit() {
        let n = 1_000_000u64;
        let data: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let work = |lo: u64, hi: u64| data[lo as usize..hi as usize].iter().sum::<f64>();
        let seq = fold_morsels_seq(n, work, |a, b| a + b, 0.0f64);
        for threads in [2usize, 3, 8, 16] {
            let par = run_morsels(n, threads, work, |a, b| a + b, 0.0f64);
            assert_eq!(par.to_bits(), seq.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn morsel_partition_covers_exactly_once() {
        let n = 3 * MORSEL_ROWS + 17;
        let covered = run_morsels(n, 8, |lo, hi| hi - lo, |a, b| a + b, 0u64);
        assert_eq!(covered, n);
    }

    #[test]
    fn batched_claims_cover_ragged_batch_tails() {
        // 7 morsels with CLAIM_BATCH = 4: the second batch is ragged and
        // the third is empty; coverage must still be exact, and the fold
        // must be bit-identical to the sequential morsel walk.
        let n = 6 * MORSEL_ROWS + 1;
        let data: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let work = |lo: u64, hi: u64| data[lo as usize..hi as usize].iter().sum::<f64>();
        let seq = fold_morsels_seq(n, work, |a, b| a + b, 0.0f64);
        for threads in [2usize, 5, 16] {
            let par = run_morsels(n, threads, work, |a, b| a + b, 0.0f64);
            assert_eq!(par.to_bits(), seq.to_bits(), "threads={threads}");
        }
        let covered = run_morsels(n, 8, |lo, hi| hi - lo, |a, b| a + b, 0u64);
        assert_eq!(covered, n);
    }

    #[test]
    fn run_tasks_claims_every_index_once() {
        let hits: Vec<AtomicU64> = (0..32).map(|_| AtomicU64::new(0)).collect();
        run_tasks(32, 8, |t| {
            hits[t as usize].fetch_add(1, Ordering::Relaxed);
        });
        for (t, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {t}");
        }
    }

    #[test]
    fn run_tasks_completes_with_more_tasks_than_threads() {
        let done = AtomicU64::new(0);
        run_tasks(100, 2, |_| {
            done.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(done.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn concurrent_broadcasts_do_not_interfere() {
        // Two jobs submitted from two submitter threads share the pool.
        let a: Vec<u64> = (0..(2 * MORSEL_ROWS)).collect();
        let b: Vec<u64> = (0..(2 * MORSEL_ROWS)).map(|i| i * 3).collect();
        std::thread::scope(|s| {
            let ha = s.spawn(|| {
                run_morsels(
                    a.len() as u64,
                    8,
                    |lo, hi| a[lo as usize..hi as usize].iter().sum::<u64>(),
                    |x, y| x + y,
                    0u64,
                )
            });
            let hb = s.spawn(|| {
                run_morsels(
                    b.len() as u64,
                    8,
                    |lo, hi| b[lo as usize..hi as usize].iter().sum::<u64>(),
                    |x, y| x + y,
                    0u64,
                )
            });
            assert_eq!(ha.join().unwrap(), a.iter().sum::<u64>());
            assert_eq!(hb.join().unwrap(), b.iter().sum::<u64>());
        });
    }

    #[test]
    fn nested_parallelism_degrades_gracefully() {
        // A morsel body that itself runs a parallel fold must not deadlock.
        let inner: Vec<u64> = (0..(2 * MORSEL_ROWS)).collect();
        let outer = run_morsels(
            2 * MORSEL_ROWS,
            4,
            |lo, hi| {
                run_morsels(
                    hi - lo,
                    2,
                    |l, h| inner[(lo + l) as usize..(lo + h) as usize].iter().sum::<u64>(),
                    |a, b| a + b,
                    0u64,
                )
            },
            |a, b| a + b,
            0u64,
        );
        assert_eq!(outer, inner.iter().sum::<u64>());
    }

    #[test]
    fn worker_panic_propagates_to_submitter() {
        let n = 4 * MORSEL_ROWS;
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_morsels(
                n,
                8,
                |lo, _| {
                    if lo >= MORSEL_ROWS {
                        panic!("boom at {lo}");
                    }
                    1u64
                },
                |a, b| a + b,
                0u64,
            )
        }));
        assert!(result.is_err(), "panic must cross the pool boundary");
        // The pool survives the panic and keeps serving jobs.
        let ok = run_morsels(n, 8, |lo, hi| hi - lo, |a, b| a + b, 0u64);
        assert_eq!(ok, n);
    }

    #[test]
    fn spawn_blocks_matches_pool_fold() {
        let data: Vec<u64> = (0..200_000).collect();
        let work = |lo: u64, hi: u64| data[lo as usize..hi as usize].iter().sum::<u64>();
        let spawned = spawn_blocks(data.len() as u64, 8, work, |a, b| a + b, 0u64);
        let pooled = run_morsels(data.len() as u64, 8, work, |a, b| a + b, 0u64);
        assert_eq!(spawned, pooled);
    }

    #[test]
    fn global_pool_has_at_least_one_worker() {
        assert!(global().size() >= 1);
    }

    #[test]
    fn scheduling_counters_are_exposed_through_the_registry() {
        let before = obs::metrics().snapshot();
        // One morsel: inline short-circuit, no pool interaction.
        run_morsels(100, 8, |lo, hi| hi - lo, |a, b| a + b, 0u64);
        // Four morsels: every claim counted, globally and per worker.
        let n = 4 * MORSEL_ROWS;
        run_morsels(n, 8, |lo, hi| hi - lo, |a, b| a + b, 0u64);
        run_tasks(16, 4, |_| {});
        run_tasks(1, 4, |_| {});
        // Deltas are lower bounds: other tests in this binary may run
        // concurrently and bump the same global counters.
        let d = obs::metrics().snapshot().since(&before);
        assert!(d.counter("pool.inline_runs") >= 2, "{d:?}");
        assert!(d.counter("pool.morsels.claimed") >= 4, "{d:?}");
        assert!(d.counter("pool.tasks.claimed") >= 17, "{d:?}");
        // Per-worker attribution: claim totals decompose over worker
        // counters (each claim bumps the total first, so the per-worker
        // sum can never exceed it).
        let snap = obs::metrics().snapshot();
        let per_worker: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("pool.morsels.claimed."))
            .map(|(_, v)| *v)
            .sum();
        assert!(per_worker >= 4);
        assert!(snap.counter("pool.morsels.claimed") >= per_worker);
    }
}
