//! The bulk (vector-at-a-time) processing model with late materialization.
//!
//! "DSM combined with a Bulk-style processing model is a good match for
//! analytic processing in main-memory databases due to improved CPU data
//! cache efficiency" (Section II-A). The paper's own experiments run
//! "bulk-style processing ... with late materialization" (Section II-B).
//!
//! Operators exchange [`Batch`]es — column vectors for a contiguous run of
//! rows — plus *position lists* for selections, so values are only
//! materialized when the final operator needs them.

use htapg_core::{DataType, Layout, Record, Result, RowId, Schema, Value};

/// A batch: a run of rows, decomposed into per-attribute value vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Attribute ids, parallel to `columns`.
    pub attrs: Vec<u16>,
    /// `columns[i][r]` = value of `attrs[i]` in the batch's row `r`.
    pub columns: Vec<Vec<Value>>,
    /// Row id of each batch row.
    pub rows: Vec<RowId>,
}

impl Batch {
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_of(&self, attr: u16) -> Option<&[Value]> {
        self.attrs.iter().position(|&a| a == attr).map(|i| self.columns[i].as_slice())
    }
}

/// Stream a layout's rows as batches of `batch_rows`, reading only `attrs`
/// (early projection).
pub fn scan_batches(
    layout: &Layout,
    schema: &Schema,
    attrs: &[u16],
    batch_rows: usize,
) -> Result<Vec<Batch>> {
    let n = layout.row_count();
    let mut batches = Vec::new();
    let mut start = 0u64;
    while start < n {
        let end = (start + batch_rows as u64).min(n);
        let mut columns: Vec<Vec<Value>> = Vec::with_capacity(attrs.len());
        for &a in attrs {
            let ty = schema.ty(a)?;
            let mut col = Vec::with_capacity((end - start) as usize);
            // Column-wise fill straight from views: the cache-friendly walk.
            let views = layout.column_views(a)?;
            let mut base = 0u64;
            for v in &views {
                let lo = start.max(base);
                let hi = end.min(base + v.rows);
                for i in lo..hi {
                    col.push(decode(v.field((i - base) as usize), ty));
                }
                base += v.rows;
                if base >= end {
                    break;
                }
            }
            columns.push(col);
        }
        batches.push(Batch { attrs: attrs.to_vec(), columns, rows: (start..end).collect() });
        start = end;
    }
    Ok(batches)
}

fn decode(bytes: &[u8], ty: DataType) -> Value {
    Value::decode(ty, bytes)
}

/// Selection over batches: returns the position list of qualifying rows
/// (late materialization — no values are copied).
pub fn select(batches: &[Batch], attr: u16, pred: impl Fn(&Value) -> bool) -> Result<Vec<RowId>> {
    let mut out = Vec::new();
    for b in batches {
        let col = b.column_of(attr).ok_or(htapg_core::Error::UnknownAttribute(attr))?;
        for (v, &row) in col.iter().zip(&b.rows) {
            if pred(v) {
                out.push(row);
            }
        }
    }
    Ok(out)
}

/// Aggregate: sum an attribute across batches.
pub fn sum_f64(batches: &[Batch], attr: u16) -> Result<f64> {
    let mut acc = 0.0;
    for b in batches {
        let col = b.column_of(attr).ok_or(htapg_core::Error::UnknownAttribute(attr))?;
        for v in col {
            acc += v.as_f64()?;
        }
    }
    Ok(acc)
}

/// Late materialization: turn a position list into full records.
pub fn materialize_positions(
    layout: &Layout,
    schema: &Schema,
    positions: &[RowId],
) -> Result<Vec<Record>> {
    positions.iter().map(|&r| layout.read_record(schema, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use htapg_core::LayoutTemplate;

    fn setup(n: i64) -> (Schema, Layout) {
        let s = Schema::of(&[
            ("k", DataType::Int64),
            ("price", DataType::Float64),
            ("tag", DataType::Text(4)),
        ]);
        let mut l = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        for i in 0..n {
            l.append(&s, &vec![Value::Int64(i), Value::Float64(i as f64), Value::Text("t".into())])
                .unwrap();
        }
        (s, l)
    }

    #[test]
    fn batches_cover_all_rows() {
        let (s, l) = setup(250);
        let batches = scan_batches(&l, &s, &[0, 1], 64).unwrap();
        assert_eq!(batches.len(), 4); // 64+64+64+58
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 250);
        assert_eq!(batches[3].len(), 58);
        assert_eq!(batches[1].rows[0], 64);
        assert_eq!(batches[1].columns[0][0], Value::Int64(64));
    }

    #[test]
    fn select_then_materialize_late() {
        let (s, l) = setup(100);
        let batches = scan_batches(&l, &s, &[1], 32).unwrap();
        let positions =
            select(&batches, 1, |v| matches!(v, Value::Float64(x) if *x >= 95.0)).unwrap();
        assert_eq!(positions, vec![95, 96, 97, 98, 99]);
        let recs = materialize_positions(&l, &s, &positions).unwrap();
        assert_eq!(recs[0][0], Value::Int64(95));
        assert_eq!(recs[0][2], Value::Text("t".into()));
    }

    #[test]
    fn bulk_sum_matches_volcano_sum() {
        let (s, l) = setup(1000);
        let batches = scan_batches(&l, &s, &[1], 128).unwrap();
        let bulk = sum_f64(&batches, 1).unwrap();
        let volcano = crate::volcano::sum_f64(crate::volcano::Scan::new(&l, &s), 1).unwrap();
        assert_eq!(bulk, volcano);
    }

    #[test]
    fn missing_attr_in_batch_errors() {
        let (s, l) = setup(10);
        let batches = scan_batches(&l, &s, &[0], 8).unwrap();
        assert!(sum_f64(&batches, 1).is_err());
        assert!(select(&batches, 1, |_| true).is_err());
    }

    #[test]
    fn empty_layout_yields_no_batches() {
        let s = Schema::of(&[("k", DataType::Int64)]);
        let l = Layout::new(&s, LayoutTemplate::nsm(&s)).unwrap();
        assert!(scan_batches(&l, &s, &[0], 16).unwrap().is_empty());
    }
}
