//! Device offload: the "column-store / device" series of Figure 2.
//!
//! A column is uploaded to the simulated GPU (charging PCIe transfer time),
//! optionally cached as *resident*, and summed with the paper's
//! reduction-kernel geometry. The cost ledger separates transfer from
//! kernel time, so panel 3 ("transfer included") and panel 4 ("transfer
//! costs to device excluded" — the column already lives in device memory)
//! are both reportable from one run.
//!
//! Three offload strategies share one bit-identical result:
//!
//! * [`offload_sum`] — the naive serial shape: whole-column upload, then
//!   the two-pass reduction; wall = `transfer + kernel`.
//! * [`pipelined_offload_sum`] — double-buffered: the column is split into
//!   chunks, chunk N uploads on a copy [`SimStream`] while chunk N−1's
//!   partial-reduction kernel runs on a compute stream; wall = the
//!   overlapped critical path (`max` of the two timelines). Partials
//!   follow the canonical segmentation of the *total* row count
//!   ([`kernels::reduce_seg_len`]), so the result is bit-identical to the
//!   serial path for every chunk size.
//! * [`cached_offload_sum`] — consults a [`DeviceColumnCache`]: a warm
//!   column reduces with zero `bytes_to_device`; a miss takes the
//!   pipelined path and leaves the column resident for the next query.

use std::sync::Arc;

use htapg_core::retry::{with_retry, RetryPolicy};
use htapg_core::{obs, DataType, Error, Layout, RelationId, Result};
use htapg_device::kernels;
use htapg_device::{
    sync_streams, BufferId, DeltaTransport, DeviceColumnCache, SimDevice, SimStream,
};

/// A device-resident copy of one column.
#[derive(Debug)]
pub struct DeviceColumn {
    device: Arc<SimDevice>,
    buf: BufferId,
    rows: u64,
    ty: DataType,
}

impl DeviceColumn {
    pub fn rows(&self) -> u64 {
        self.rows
    }

    pub fn device(&self) -> &Arc<SimDevice> {
        &self.device
    }

    /// Bytes occupied in device memory.
    pub fn bytes(&self) -> Result<usize> {
        self.device.buffer_len(self.buf)
    }

    /// Release the device memory.
    pub fn release(self) -> Result<()> {
        self.device.free(self.buf)
    }
}

/// Serialize a layout's column into packed little-endian f64, widening
/// narrower numeric types (device kernels operate on f64 columns).
///
/// Contiguous views stream through `chunks_exact` blocks with the type
/// dispatch hoisted out of the loop (the scan-kernel idiom); only strided
/// (NSM) views fall back to per-row `field(i)` access.
fn pack_f64(layout: &Layout, attr: u16, ty: DataType) -> Result<(Vec<u8>, u64)> {
    match ty {
        DataType::Text(_) | DataType::Bool => {
            return Err(Error::TypeMismatch { expected: "numeric", got: ty.name() })
        }
        _ => {}
    }
    let views = layout.column_views(attr)?;
    let rows: u64 = views.iter().map(|v| v.rows).sum();
    let mut out = Vec::with_capacity(rows as usize * 8);
    for v in &views {
        match (ty, v.contiguous_bytes()) {
            (DataType::Float64, Some(block)) => out.extend_from_slice(block),
            (DataType::Int64, Some(block)) => {
                for chunk in block.chunks_exact(v.width) {
                    let x = i64::from_le_bytes(chunk.try_into().unwrap()) as f64;
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            (DataType::Int32 | DataType::Date, Some(block)) => {
                for chunk in block.chunks_exact(v.width) {
                    let x = i32::from_le_bytes(chunk.try_into().unwrap()) as f64;
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            _ => {
                for i in 0..v.rows as usize {
                    let bytes = v.field(i);
                    let x = match ty {
                        DataType::Float64 => f64::from_le_bytes(bytes.try_into().unwrap()),
                        DataType::Int64 => i64::from_le_bytes(bytes.try_into().unwrap()) as f64,
                        DataType::Int32 | DataType::Date => {
                            i32::from_le_bytes(bytes.try_into().unwrap()) as f64
                        }
                        _ => unreachable!("checked above"),
                    };
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
    }
    Ok((out, rows))
}

/// Upload one column to the device ("all or nothing": fails with
/// [`Error::DeviceOutOfMemory`] if it does not fit, and nothing is placed).
///
/// Transient transfer faults are retried with virtual backoff charged to
/// the device ledger; a failed upload frees its allocation, so nothing is
/// ever left behind.
pub fn upload_column(
    device: &Arc<SimDevice>,
    layout: &Layout,
    attr: u16,
    ty: DataType,
) -> Result<DeviceColumn> {
    let (bytes, rows) = pack_f64(layout, attr, ty)?;
    let policy = RetryPolicy::default();
    let buf = device.alloc(bytes.len())?;
    match with_retry(&policy, device.ledger(), || device.write(buf, 0, &bytes)) {
        Ok(()) => Ok(DeviceColumn { device: device.clone(), buf, rows, ty: DataType::Float64 }),
        Err(e) => {
            let _ = device.free(buf);
            Err(e)
        }
    }
}

/// Sum a device-resident column with the paper's reduction kernel.
/// Charges only kernel time (the column is already resident). Transient
/// launch faults are retried (the kernels allocate nothing before
/// charging, so a retried reduction is safe).
pub fn device_sum(col: &DeviceColumn) -> Result<f64> {
    debug_assert_eq!(col.ty, DataType::Float64);
    with_retry(&RetryPolicy::default(), col.device.ledger(), || {
        kernels::reduce_sum_f64(&col.device, col.buf)
    })
}

/// One-shot offload: upload, sum, free. Returns
/// `(sum, transfer_ns, kernel_ns)` — panel 3 reports `transfer + kernel`,
/// panel 4 reports `kernel` alone.
pub fn offload_sum(
    device: &Arc<SimDevice>,
    layout: &Layout,
    attr: u16,
    ty: DataType,
) -> Result<(f64, u64, u64)> {
    let before = device.ledger().snapshot();
    let col = upload_column(device, layout, attr, ty)?;
    let sum = device_sum(&col)?;
    col.release()?;
    let delta = device.ledger().snapshot().since(&before);
    Ok((sum, delta.transfer_ns, delta.kernel_ns))
}

/// Tuning knobs for the double-buffered transfer pipeline.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// Rows per upload chunk. The default (256 Ki rows = 2 MB of f64) is
    /// large enough to amortize per-transfer latency and small enough to
    /// keep both streams busy on every modeled device.
    pub chunk_rows: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { chunk_rows: 1 << 18 }
    }
}

/// Double-buffered upload + reduce on two streams (see the core routine
/// [`pipelined_sum_into`] for the overlap structure). The column buffer is
/// freed before returning. Returns `(sum, wall_ns)` where `wall_ns` is the
/// overlapped critical path of the whole operation — compare with the
/// serial path's `transfer_ns + kernel_ns`.
pub fn pipelined_offload_sum(
    device: &Arc<SimDevice>,
    layout: &Layout,
    attr: u16,
    ty: DataType,
    cfg: PipelineConfig,
) -> Result<(f64, u64)> {
    pipelined_offload(device, layout, attr, ty, cfg, None)
}

/// Pipelined predicated aggregation: same overlap structure, but each
/// chunk's pass-1 launch is the *fused* filter+sum kernel — one data pass,
/// no separate selection launch.
pub fn pipelined_offload_filter_sum(
    device: &Arc<SimDevice>,
    layout: &Layout,
    attr: u16,
    ty: DataType,
    cfg: PipelineConfig,
    pred: &dyn Fn(f64) -> bool,
) -> Result<(f64, u64)> {
    pipelined_offload(device, layout, attr, ty, cfg, Some(pred))
}

/// Fused filter+sum over a one-shot (serial) upload — the unpipelined
/// counterpart of [`pipelined_offload_filter_sum`]; still saves the
/// separate selection pass.
pub fn offload_filter_sum(
    device: &Arc<SimDevice>,
    layout: &Layout,
    attr: u16,
    ty: DataType,
    pred: impl Fn(f64) -> bool,
) -> Result<f64> {
    let col = upload_column(device, layout, attr, ty)?;
    let sum = with_retry(&RetryPolicy::default(), device.ledger(), || {
        kernels::filter_sum_f64(device, col.buf, &pred)
    });
    col.release()?;
    sum
}

fn pipelined_offload(
    device: &Arc<SimDevice>,
    layout: &Layout,
    attr: u16,
    ty: DataType,
    cfg: PipelineConfig,
    pred: Option<&dyn Fn(f64) -> bool>,
) -> Result<(f64, u64)> {
    let (bytes, rows) = pack_f64(layout, attr, ty)?;
    let buf = device.alloc(bytes.len())?;
    let result = pipelined_sum_into(device, buf, &bytes, rows as usize, cfg, pred);
    device.free(buf)?;
    result
}

/// The pipeline core: fill `buf` with `bytes` chunk by chunk on a copy
/// stream while a compute stream reduces every segment the uploaded prefix
/// already covers, then combine. Cross-stream ordering is by recorded
/// events (a partial kernel waits for the copy covering its rows), so the
/// wall settled at the final sync is the overlapped critical path.
///
/// Transient transfer/launch faults are retried per-chunk with virtual
/// backoff. On terminal failure the caller frees `buf` — nothing else was
/// allocated.
fn pipelined_sum_into(
    device: &SimDevice,
    buf: BufferId,
    bytes: &[u8],
    total_rows: usize,
    cfg: PipelineConfig,
    pred: Option<&dyn Fn(f64) -> bool>,
) -> Result<(f64, u64)> {
    let policy = RetryPolicy::default();
    let mut copy = SimStream::new(device);
    let mut compute = SimStream::new(device);
    let seg_len = kernels::reduce_seg_len(total_rows);
    let total_segs = kernels::reduce_segments(total_rows);
    let chunk_rows = cfg.chunk_rows.max(1);
    let mut partials = Vec::with_capacity(total_segs);
    let mut segs_done = 0usize;
    // Stream lanes share the pipeline epoch (stream creation); anchoring
    // it at the tracer's current virtual time places copy/compute spans on
    // the trace timeline as two parallel tracks.
    let trace_epoch = obs::current().map(|t| t.now_ns());
    let mut reduce_to = |compute: &mut SimStream<'_>, lo: usize, hi: usize| -> Result<()> {
        let k0 = compute.cursor_ns();
        let part = with_retry(&policy, device.ledger(), || match pred {
            None => kernels::reduce_partials_f64(compute, buf, total_rows, lo, hi),
            Some(p) => kernels::filter_partials_f64(compute, buf, total_rows, lo, hi, p),
        })?;
        if let Some(epoch) = trace_epoch {
            obs::span_at(
                "stream",
                "stream.reduce.partials",
                "stream.compute",
                epoch + k0,
                epoch + compute.cursor_ns(),
            );
        }
        partials.extend(part);
        Ok(())
    };
    let mut uploaded = 0usize;
    while uploaded < total_rows {
        let hi = (uploaded + chunk_rows).min(total_rows);
        let c0 = copy.cursor_ns();
        with_retry(&policy, device.ledger(), || {
            copy.write(buf, uploaded * 8, &bytes[uploaded * 8..hi * 8])
        })?;
        if let Some(epoch) = trace_epoch {
            obs::span_at(
                "stream",
                "stream.copy.chunk",
                "stream.copy",
                epoch + c0,
                epoch + copy.cursor_ns(),
            );
        }
        uploaded = hi;
        // Reduce every segment the uploaded prefix now fully covers; the
        // kernel orders after the copy it depends on, nothing more — the
        // next chunk's copy overlaps it.
        let covered = (uploaded / seg_len).min(total_segs);
        if covered > segs_done {
            compute.wait(copy.record());
            reduce_to(&mut compute, segs_done, covered)?;
            segs_done = covered;
        }
    }
    if total_segs > segs_done {
        // Straggler: the last segment is only full once the tail chunk
        // landed.
        compute.wait(copy.record());
        reduce_to(&mut compute, segs_done, total_segs)?;
    }
    let f0 = compute.cursor_ns();
    let total = with_retry(&policy, device.ledger(), || {
        kernels::reduce_final_f64(&mut compute, &partials)
    })?;
    if let Some(epoch) = trace_epoch {
        obs::span_at(
            "stream",
            "stream.reduce.final",
            "stream.compute",
            epoch + f0,
            epoch + compute.cursor_ns(),
        );
    }
    let wall = sync_streams(device, &[&copy, &compute]);
    Ok((total, wall))
}

/// Cache-aware offload. A warm `(rel, attr, version)` entry answers with
/// kernel time only (zero `bytes_to_device`); a resident-but-stale entry
/// with a small delta log takes the delta-merge route — shipping 16-byte
/// `(row, value)` pairs over the copy stream instead of re-packing the
/// whole column; any other miss runs the pipelined upload+reduce and
/// leaves the column resident, evicting LRU entries under memory pressure
/// (`may_evict` is on — this is the query-driven path, not maintain-time
/// placement).
pub fn cached_offload_sum(
    cache: &DeviceColumnCache,
    layout: &Layout,
    attr: u16,
    ty: DataType,
    rel: RelationId,
    version: u64,
    cfg: PipelineConfig,
) -> Result<f64> {
    let device = cache.device().clone();
    if let Some(info) = cache.stale_info(rel, attr, version) {
        if info.stale_rows > 0 && info.stale_rows * 2 <= info.rows {
            // A faulted merge leaves the replica at its old version;
            // falling through re-packs and re-uploads from scratch.
            if let Ok(col) = cache.merge_deltas(rel, attr, version, DeltaTransport::Pcie) {
                return with_retry(&RetryPolicy::default(), device.ledger(), || {
                    kernels::reduce_sum_f64(&device, col.buf)
                });
            }
        }
    }
    let (bytes, rows) = pack_f64(layout, attr, ty)?;
    let mut pipelined: Option<f64> = None;
    let col = cache.get_or_insert_with(rel, attr, version, rows, true, || {
        let buf = device.alloc(bytes.len())?;
        match pipelined_sum_into(&device, buf, &bytes, rows as usize, cfg, None) {
            Ok((sum, _wall)) => {
                pipelined = Some(sum);
                Ok(buf)
            }
            Err(e) => {
                let _ = device.free(buf);
                Err(e)
            }
        }
    })?;
    match pipelined {
        Some(sum) => Ok(sum),
        // Warm hit: the reduction alone, same canonical order — bit-equal.
        None => with_retry(&RetryPolicy::default(), device.ledger(), || {
            kernels::reduce_sum_f64(&device, col.buf)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htapg_core::{LayoutTemplate, Schema, Value};
    use htapg_device::DeviceSpec;

    fn setup(n: i64) -> (Schema, Layout) {
        let s = Schema::of(&[("k", DataType::Int64), ("price", DataType::Float64)]);
        let mut l = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        for i in 0..n {
            l.append(&s, &vec![Value::Int64(i), Value::Float64(i as f64 * 0.5)]).unwrap();
        }
        (s, l)
    }

    #[test]
    fn offload_matches_host_sum() {
        let (_, l) = setup(10_000);
        let device = Arc::new(SimDevice::with_defaults());
        let (sum, transfer_ns, kernel_ns) = offload_sum(&device, &l, 1, DataType::Float64).unwrap();
        let expect: f64 = (0..10_000).map(|i| i as f64 * 0.5).sum();
        assert!((sum - expect).abs() < 1e-6 * expect);
        assert!(transfer_ns > 0);
        assert!(kernel_ns > 0);
        // PCIe (6 GB/s) is slower than device memory (80 GB/s): transfers
        // dominate one-shot offload — the panel 3 vs panel 4 gap.
        assert!(transfer_ns > kernel_ns);
        assert_eq!(device.used_bytes(), 0, "offload released its buffer");
    }

    #[test]
    fn resident_column_avoids_transfer() {
        let (_, l) = setup(5_000);
        let device = Arc::new(SimDevice::with_defaults());
        let col = upload_column(&device, &l, 1, DataType::Float64).unwrap();
        let before = device.ledger().snapshot();
        let s1 = device_sum(&col).unwrap();
        let s2 = device_sum(&col).unwrap();
        assert_eq!(s1, s2);
        let delta = device.ledger().snapshot().since(&before);
        assert_eq!(delta.transfer_ns, 0, "resident sums must not touch PCIe");
        assert_eq!(delta.kernel_launches, 4); // two launches per reduction
        col.release().unwrap();
    }

    #[test]
    fn int_columns_widen() {
        let s = Schema::of(&[("v", DataType::Int32)]);
        let mut l = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        for i in 0..100 {
            l.append(&s, &vec![Value::Int32(i)]).unwrap();
        }
        let device = Arc::new(SimDevice::with_defaults());
        let (sum, _, _) = offload_sum(&device, &l, 0, DataType::Int32).unwrap();
        assert_eq!(sum, (0..100).sum::<i32>() as f64);
    }

    #[test]
    fn all_or_nothing_placement() {
        let (_, l) = setup(200_000); // 1.6 MB of f64 > 1 MB tiny device
        let device = Arc::new(SimDevice::new(0, DeviceSpec::tiny()));
        let err = upload_column(&device, &l, 1, DataType::Float64).unwrap_err();
        assert!(matches!(err, Error::DeviceOutOfMemory { .. }));
        assert_eq!(device.used_bytes(), 0, "failed placement leaves nothing behind");
    }

    #[test]
    fn text_column_rejected() {
        let s = Schema::of(&[("t", DataType::Text(4))]);
        let mut l = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        l.append(&s, &vec![Value::Text("x".into())]).unwrap();
        let device = Arc::new(SimDevice::with_defaults());
        assert!(upload_column(&device, &l, 0, DataType::Text(4)).is_err());
    }

    #[test]
    fn nsm_layout_can_offload_too() {
        // Strided source: pack gathers fields, result identical.
        let s = Schema::of(&[("k", DataType::Int64), ("price", DataType::Float64)]);
        let mut l = Layout::new(&s, LayoutTemplate::nsm(&s)).unwrap();
        for i in 0..1000 {
            l.append(&s, &vec![Value::Int64(i), Value::Float64(i as f64)]).unwrap();
        }
        let device = Arc::new(SimDevice::with_defaults());
        let (sum, _, _) = offload_sum(&device, &l, 1, DataType::Float64).unwrap();
        assert_eq!(sum, (0..1000).sum::<i64>() as f64);
    }

    #[test]
    fn pipelined_is_bit_identical_to_serial() {
        let (_, l) = setup(123_457); // not a multiple of anything convenient
        let device = Arc::new(SimDevice::with_defaults());
        let (serial, _, _) = offload_sum(&device, &l, 1, DataType::Float64).unwrap();
        for chunk_rows in [1usize << 18, 1000, 777, 123_457, 1_000_000] {
            let (pipelined, _) = pipelined_offload_sum(
                &device,
                &l,
                1,
                DataType::Float64,
                PipelineConfig { chunk_rows },
            )
            .unwrap();
            assert_eq!(serial.to_bits(), pipelined.to_bits(), "chunk_rows={chunk_rows}");
        }
        assert_eq!(device.used_bytes(), 0, "pipelined offload released its buffer");
    }

    #[test]
    fn pipelined_wall_never_exceeds_serial_and_overlaps() {
        let (_, l) = setup(2_000_000);
        let device = Arc::new(SimDevice::with_defaults());
        let before = device.ledger().snapshot();
        let (_, _, _) = offload_sum(&device, &l, 1, DataType::Float64).unwrap();
        let serial = device.ledger().snapshot().since(&before);
        let serial_wall = serial.transfer_ns + serial.kernel_ns;
        assert_eq!(serial.wall_ns, serial_wall, "serial path: wall is the straight sum");
        let before = device.ledger().snapshot();
        let (_, wall) =
            pipelined_offload_sum(&device, &l, 1, DataType::Float64, PipelineConfig::default())
                .unwrap();
        let delta = device.ledger().snapshot().since(&before);
        assert_eq!(delta.wall_ns, wall);
        assert!(wall <= serial_wall, "overlap can only help: {wall} vs {serial_wall}");
        assert!(
            delta.transfer_ns + delta.kernel_ns > wall,
            "some transfer hid behind kernels (categorized work exceeds wall)"
        );
    }

    #[test]
    fn pipelined_int_widening_matches_serial() {
        let s = Schema::of(&[("v", DataType::Int32)]);
        let mut l = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        for i in 0..50_000 {
            l.append(&s, &vec![Value::Int32(i - 25_000)]).unwrap();
        }
        let device = Arc::new(SimDevice::with_defaults());
        let (serial, _, _) = offload_sum(&device, &l, 0, DataType::Int32).unwrap();
        let (pipelined, _) = pipelined_offload_sum(
            &device,
            &l,
            0,
            DataType::Int32,
            PipelineConfig { chunk_rows: 4096 },
        )
        .unwrap();
        assert_eq!(serial.to_bits(), pipelined.to_bits());
    }

    #[test]
    fn fused_filter_sum_serial_and_pipelined_agree() {
        let (_, l) = setup(80_000);
        let device = Arc::new(SimDevice::with_defaults());
        let pred = |v: f64| v >= 1000.0;
        let fused = offload_filter_sum(&device, &l, 1, DataType::Float64, pred).unwrap();
        let (pipelined, _) = pipelined_offload_filter_sum(
            &device,
            &l,
            1,
            DataType::Float64,
            PipelineConfig { chunk_rows: 7000 },
            &pred,
        )
        .unwrap();
        assert_eq!(fused.to_bits(), pipelined.to_bits());
        let expect: f64 = (0..80_000).map(|i| i as f64 * 0.5).filter(|&v| v >= 1000.0).sum();
        assert!((fused - expect).abs() < 1e-6 * expect);
        assert_eq!(device.used_bytes(), 0);
    }

    #[test]
    fn cached_offload_hits_skip_pcie() {
        let (_, l) = setup(30_000);
        let cache = DeviceColumnCache::new(Arc::new(SimDevice::with_defaults()));
        let cold =
            cached_offload_sum(&cache, &l, 1, DataType::Float64, 7, 1, PipelineConfig::default())
                .unwrap();
        let before = cache.device().ledger().snapshot();
        let warm =
            cached_offload_sum(&cache, &l, 1, DataType::Float64, 7, 1, PipelineConfig::default())
                .unwrap();
        assert_eq!(cold.to_bits(), warm.to_bits());
        let delta = cache.device().ledger().snapshot().since(&before);
        assert_eq!(delta.bytes_to_device, 0, "warm query must not touch PCIe");
        assert_eq!(delta.cache_hits, 1);
        // A version bump (a write) forces a re-upload.
        let before = cache.device().ledger().snapshot();
        let fresh =
            cached_offload_sum(&cache, &l, 1, DataType::Float64, 7, 2, PipelineConfig::default())
                .unwrap();
        assert_eq!(fresh.to_bits(), cold.to_bits());
        let delta = cache.device().ledger().snapshot().since(&before);
        assert!(delta.bytes_to_device > 0, "stale entry re-uploaded");
        assert_eq!(delta.cache_misses, 1);
    }

    #[test]
    fn cached_offload_merges_shipped_deltas_instead_of_reuploading() {
        let (s, mut l) = setup(30_000);
        let cache = DeviceColumnCache::new(Arc::new(SimDevice::with_defaults()));
        cached_offload_sum(&cache, &l, 1, DataType::Float64, 7, 1, PipelineConfig::default())
            .unwrap();
        // An engine write lands on the host column and ships to the replica.
        l.write_value(&s, 10, 1, &Value::Float64(9_999.5)).unwrap();
        cache.append_delta(7, 1, 10, 9_999.5, 2).unwrap();
        let before = cache.device().ledger().snapshot();
        let merged =
            cached_offload_sum(&cache, &l, 1, DataType::Float64, 7, 2, PipelineConfig::default())
                .unwrap();
        let delta = cache.device().ledger().snapshot().since(&before);
        assert_eq!(delta.delta_bytes, 16, "one shipped pair");
        assert_eq!(delta.bytes_to_device, 16, "delta route never re-uploads the column");
        assert_eq!(delta.delta_merges, 1);
        assert_eq!(delta.cache_misses, 0, "the replica never left the device");
        // Bit-identical to a from-scratch upload of the updated column.
        let fresh_cache = DeviceColumnCache::new(Arc::new(SimDevice::with_defaults()));
        let fresh = cached_offload_sum(
            &fresh_cache,
            &l,
            1,
            DataType::Float64,
            7,
            2,
            PipelineConfig::default(),
        )
        .unwrap();
        assert_eq!(merged.to_bits(), fresh.to_bits());
    }
}
