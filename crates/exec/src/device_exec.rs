//! Device offload: the "column-store / device" series of Figure 2.
//!
//! A column is uploaded to the simulated GPU (charging PCIe transfer time),
//! optionally cached as *resident*, and summed with the paper's
//! reduction-kernel geometry. The cost ledger separates transfer from
//! kernel time, so panel 3 ("transfer included") and panel 4 ("transfer
//! costs to device excluded" — the column already lives in device memory)
//! are both reportable from one run.

use std::sync::Arc;

use htapg_core::retry::{with_retry, RetryPolicy};
use htapg_core::{DataType, Error, Layout, Result};
use htapg_device::kernels;
use htapg_device::{BufferId, SimDevice};

/// A device-resident copy of one column.
#[derive(Debug)]
pub struct DeviceColumn {
    device: Arc<SimDevice>,
    buf: BufferId,
    rows: u64,
    ty: DataType,
}

impl DeviceColumn {
    pub fn rows(&self) -> u64 {
        self.rows
    }

    pub fn device(&self) -> &Arc<SimDevice> {
        &self.device
    }

    /// Bytes occupied in device memory.
    pub fn bytes(&self) -> Result<usize> {
        self.device.buffer_len(self.buf)
    }

    /// Release the device memory.
    pub fn release(self) -> Result<()> {
        self.device.free(self.buf)
    }
}

/// Serialize a layout's column into packed little-endian f64, widening
/// narrower numeric types (device kernels operate on f64 columns).
fn pack_f64(layout: &Layout, attr: u16, ty: DataType) -> Result<(Vec<u8>, u64)> {
    match ty {
        DataType::Text(_) | DataType::Bool => {
            return Err(Error::TypeMismatch { expected: "numeric", got: ty.name() })
        }
        _ => {}
    }
    let views = layout.column_views(attr)?;
    let rows: u64 = views.iter().map(|v| v.rows).sum();
    let mut out = Vec::with_capacity(rows as usize * 8);
    for v in &views {
        if ty == DataType::Float64 {
            if let Some(block) = v.contiguous_bytes() {
                out.extend_from_slice(block);
                continue;
            }
        }
        for i in 0..v.rows as usize {
            let bytes = v.field(i);
            let x = match ty {
                DataType::Float64 => f64::from_le_bytes(bytes.try_into().unwrap()),
                DataType::Int64 => i64::from_le_bytes(bytes.try_into().unwrap()) as f64,
                DataType::Int32 | DataType::Date => {
                    i32::from_le_bytes(bytes.try_into().unwrap()) as f64
                }
                _ => unreachable!("checked above"),
            };
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    Ok((out, rows))
}

/// Upload one column to the device ("all or nothing": fails with
/// [`Error::DeviceOutOfMemory`] if it does not fit, and nothing is placed).
///
/// Transient transfer faults are retried with virtual backoff charged to
/// the device ledger; a failed upload frees its allocation, so nothing is
/// ever left behind.
pub fn upload_column(
    device: &Arc<SimDevice>,
    layout: &Layout,
    attr: u16,
    ty: DataType,
) -> Result<DeviceColumn> {
    let (bytes, rows) = pack_f64(layout, attr, ty)?;
    let policy = RetryPolicy::default();
    let buf = device.alloc(bytes.len())?;
    match with_retry(&policy, device.ledger(), || device.write(buf, 0, &bytes)) {
        Ok(()) => Ok(DeviceColumn { device: device.clone(), buf, rows, ty: DataType::Float64 }),
        Err(e) => {
            let _ = device.free(buf);
            Err(e)
        }
    }
}

/// Sum a device-resident column with the paper's reduction kernel.
/// Charges only kernel time (the column is already resident). Transient
/// launch faults are retried (the kernels allocate nothing before
/// charging, so a retried reduction is safe).
pub fn device_sum(col: &DeviceColumn) -> Result<f64> {
    debug_assert_eq!(col.ty, DataType::Float64);
    with_retry(&RetryPolicy::default(), col.device.ledger(), || {
        kernels::reduce_sum_f64(&col.device, col.buf)
    })
}

/// One-shot offload: upload, sum, free. Returns
/// `(sum, transfer_ns, kernel_ns)` — panel 3 reports `transfer + kernel`,
/// panel 4 reports `kernel` alone.
pub fn offload_sum(
    device: &Arc<SimDevice>,
    layout: &Layout,
    attr: u16,
    ty: DataType,
) -> Result<(f64, u64, u64)> {
    let before = device.ledger().snapshot();
    let col = upload_column(device, layout, attr, ty)?;
    let sum = device_sum(&col)?;
    col.release()?;
    let delta = device.ledger().snapshot().since(&before);
    Ok((sum, delta.transfer_ns, delta.kernel_ns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use htapg_core::{LayoutTemplate, Schema, Value};
    use htapg_device::DeviceSpec;

    fn setup(n: i64) -> (Schema, Layout) {
        let s = Schema::of(&[("k", DataType::Int64), ("price", DataType::Float64)]);
        let mut l = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        for i in 0..n {
            l.append(&s, &vec![Value::Int64(i), Value::Float64(i as f64 * 0.5)]).unwrap();
        }
        (s, l)
    }

    #[test]
    fn offload_matches_host_sum() {
        let (_, l) = setup(10_000);
        let device = Arc::new(SimDevice::with_defaults());
        let (sum, transfer_ns, kernel_ns) = offload_sum(&device, &l, 1, DataType::Float64).unwrap();
        let expect: f64 = (0..10_000).map(|i| i as f64 * 0.5).sum();
        assert!((sum - expect).abs() < 1e-6 * expect);
        assert!(transfer_ns > 0);
        assert!(kernel_ns > 0);
        // PCIe (6 GB/s) is slower than device memory (80 GB/s): transfers
        // dominate one-shot offload — the panel 3 vs panel 4 gap.
        assert!(transfer_ns > kernel_ns);
        assert_eq!(device.used_bytes(), 0, "offload released its buffer");
    }

    #[test]
    fn resident_column_avoids_transfer() {
        let (_, l) = setup(5_000);
        let device = Arc::new(SimDevice::with_defaults());
        let col = upload_column(&device, &l, 1, DataType::Float64).unwrap();
        let before = device.ledger().snapshot();
        let s1 = device_sum(&col).unwrap();
        let s2 = device_sum(&col).unwrap();
        assert_eq!(s1, s2);
        let delta = device.ledger().snapshot().since(&before);
        assert_eq!(delta.transfer_ns, 0, "resident sums must not touch PCIe");
        assert_eq!(delta.kernel_launches, 4); // two launches per reduction
        col.release().unwrap();
    }

    #[test]
    fn int_columns_widen() {
        let s = Schema::of(&[("v", DataType::Int32)]);
        let mut l = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        for i in 0..100 {
            l.append(&s, &vec![Value::Int32(i)]).unwrap();
        }
        let device = Arc::new(SimDevice::with_defaults());
        let (sum, _, _) = offload_sum(&device, &l, 0, DataType::Int32).unwrap();
        assert_eq!(sum, (0..100).sum::<i32>() as f64);
    }

    #[test]
    fn all_or_nothing_placement() {
        let (_, l) = setup(200_000); // 1.6 MB of f64 > 1 MB tiny device
        let device = Arc::new(SimDevice::new(0, DeviceSpec::tiny()));
        let err = upload_column(&device, &l, 1, DataType::Float64).unwrap_err();
        assert!(matches!(err, Error::DeviceOutOfMemory { .. }));
        assert_eq!(device.used_bytes(), 0, "failed placement leaves nothing behind");
    }

    #[test]
    fn text_column_rejected() {
        let s = Schema::of(&[("t", DataType::Text(4))]);
        let mut l = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        l.append(&s, &vec![Value::Text("x".into())]).unwrap();
        let device = Arc::new(SimDevice::with_defaults());
        assert!(upload_column(&device, &l, 0, DataType::Text(4)).is_err());
    }

    #[test]
    fn nsm_layout_can_offload_too() {
        // Strided source: pack gathers fields, result identical.
        let s = Schema::of(&[("k", DataType::Int64), ("price", DataType::Float64)]);
        let mut l = Layout::new(&s, LayoutTemplate::nsm(&s)).unwrap();
        for i in 0..1000 {
            l.append(&s, &vec![Value::Int64(i), Value::Float64(i as f64)]).unwrap();
        }
        let device = Arc::new(SimDevice::with_defaults());
        let (sum, _, _) = offload_sum(&device, &l, 1, DataType::Float64).unwrap();
        assert_eq!(sum, (0..1000).sum::<i64>() as f64);
    }
}
