//! # htapg-exec
//!
//! The execution layer: the operators and execution policies the paper's
//! Figure 2 experiment varies.
//!
//! * [`pool`] — the persistent morsel-driven executor pool every parallel
//!   operator runs on (lazily started, `HTAPG_THREADS`-sized, deterministic
//!   morsel-order folds);
//! * [`threading`] — single-threaded vs multi-threaded execution with
//!   "blockwise partitioning of the input data (i.e., each thread operates
//!   on one exclusive and subsequent list of input positions)", scheduled
//!   as fixed-size morsels on the pool;
//! * [`scan`] — attribute-centric operators (column sums, filters) over
//!   zero-copy [`htapg_core::ColumnView`]s;
//! * [`join`] — hash, sort-merge, and nested-loop equi-joins producing the
//!   sorted position lists the paper's operators consume, plus hash
//!   group-by aggregation;
//! * [`materialize`] — record-centric operators (the "materialize 150
//!   customers" operation), with late materialization from position lists;
//! * [`volcano`] — the Volcano (tuple-at-a-time) processing model;
//! * [`bulk`] — the bulk (vector-at-a-time) processing model with late
//!   materialization, as used in the paper's experiments;
//! * [`device_exec`] — offload to the simulated GPU: column placement,
//!   resident-column caching, and the reduction-kernel sum (Figure 2's
//!   "column-store / device" series);
//! * [`physical`] — the physical-plan interpreter: executes the routed
//!   [`htapg_core::PhysicalPlan`]s produced by the cost-based planner,
//!   guaranteeing bit-identical results across the device-pipelined,
//!   host-pooled-morsel, and inline-volcano routes.

pub mod bulk;
pub mod device_exec;
pub mod join;
pub mod materialize;
pub mod physical;
pub mod pool;
pub mod scan;
pub mod sharded;
pub mod threading;
pub mod volcano;

pub use physical::QueryOutput;
pub use sharded::ShardedEngine;
pub use threading::ThreadingPolicy;
