//! `ShardedEngine`: N-node partitioned placement over [`SimCluster`]
//! (DESIGN.md §15) — the scale-out half of ES²'s "intentional placement at
//! a certain node".
//!
//! Rows are partitioned at *fragment* granularity: every
//! `partition_rows` consecutive global rows form one placement fragment,
//! and [`Sharding`] maps fragments to nodes (hash or range,
//! deterministically from `HTAPG_SEED`). Analytics scatter-gather: the
//! coordinator (node 0) fans per-shard partial-aggregate requests out over
//! the interconnect, every shard reduces its local fragments on its own
//! simulated device, and the coordinator merges the per-fragment partials
//! *in global fragment order* — which makes the result bit-identical to
//! the single-node sharded oracle ([`crate::physical::sharded_volcano_sum`])
//! at every node count, because the partial set is fixed by the fragment
//! geometry alone; the cluster width only decides who computes each one.
//!
//! Costs follow the paper's storage-engine framing: cross-node messages
//! are priced exactly like PCIe (latency + bytes/bandwidth) and charged to
//! the *cluster* ledger under the `net` category. Scatter requests to
//! different nodes fly concurrently, so their flight time is charged
//! overlapped and the wall is settled once at the gather with the `max`
//! over per-shard `exec + round-trip` — the same overlap treatment the
//! device pipeline gives copy/compute.
//!
//! Fault injection ([`FaultSite::ClusterSend`]) is rolled *sequentially*
//! in canonical node order — requests before the parallel shard
//! execution, responses after — so a seeded chaos run replays
//! bit-identically regardless of pool interleaving, and every dropped
//! message is retried (bounded, virtual-time backoff) or fails the whole
//! gather: a partial gather is never returned.

use std::collections::BTreeMap;
use std::sync::Arc;

use htapg_core::calibrate::CalibrationProfiles;
use htapg_core::engine::StorageEngine;
use htapg_core::obs;
use htapg_core::plan::{
    ColumnEvidence, DeviceCostProfile, Predicate, GROUP_PARTIAL_BYTES, SCATTER_REQUEST_BYTES,
    SUM_PARTIAL_BYTES,
};
use htapg_core::prng::env_seed;
use htapg_core::retry::{with_retry, RetryPolicy};
use htapg_core::sync::RwLock as PRwLock;
use htapg_core::{
    AttrId, DataType, Error, Record, RelationId, Result, RowId, Schema, ShardEvidence,
    ShardPlanEvidence, Sharding, ShardingKind, Value,
};
use htapg_device::cluster::{NetSpec, SimCluster};
use htapg_device::faults::FaultPlan;
use htapg_device::kernels;
use htapg_device::{CostLedger, DeviceColumnCache, SimDevice};
use htapg_taxonomy::{
    Classification, DataLocality, DataLocation, FragmentLinearization, FragmentScheme,
    LayoutAdaptability, LayoutFlexibility, LayoutHandling, ProcessorSupport, WorkloadSupport,
};

use crate::pool;

/// Default placement-fragment size (rows), matching the reference
/// engine's horizontal chunking.
pub const DEFAULT_PARTITION_ROWS: u64 = 4096;

/// Request/response payload of a routed point operation (key + field).
const POINT_RPC_BYTES: usize = 24;

/// Where one placement fragment lives.
#[derive(Debug, Clone, Copy)]
struct FragInfo {
    shard: u32,
    /// First local row of this fragment within its shard's store.
    local_base: u64,
}

struct ShardRel {
    schema: Schema,
    rows: u64,
    /// Global fragment order → owning shard; the canonical merge order.
    frags: Vec<FragInfo>,
    /// Per-shard row stores, local (arrival) order.
    stores: Vec<Vec<Record>>,
    /// Bumped on every insert/update so device replicas go stale exactly
    /// when the base data moves underneath them.
    version: u64,
}

impl ShardRel {
    fn locate(&self, part: u64, row: RowId) -> Result<(u32, usize)> {
        if row >= self.rows {
            return Err(Error::UnknownRow(row));
        }
        let f = (row / part) as usize;
        let frag = self.frags[f];
        Ok((frag.shard, (frag.local_base + row % part) as usize))
    }
}

/// Per-node observability handles (resolved once; names live forever in
/// the metrics registry, so the dashboard can render per-node columns).
struct NodeStats {
    rows: Arc<obs::Gauge>,
    net_bytes: Arc<obs::Counter>,
    op_ns: Arc<obs::Histogram>,
}

fn leak(s: String) -> &'static str {
    Box::leak(s.into_boxed_str())
}

/// The sharded scale-out engine.
pub struct ShardedEngine {
    sharding: Sharding,
    cluster: PRwLock<SimCluster>,
    /// Stable handle on the cluster ledger (the engine's trace clock).
    ledger: Arc<CostLedger>,
    devices: Vec<Arc<SimDevice>>,
    caches: Vec<DeviceColumnCache>,
    rels: PRwLock<Vec<ShardRel>>,
    calibration: Arc<CalibrationProfiles>,
    retry: RetryPolicy,
    nodes: Vec<NodeStats>,
}

impl ShardedEngine {
    pub fn new(kind: ShardingKind, nodes: u32) -> Self {
        Self::with_config(kind, nodes, DEFAULT_PARTITION_ROWS, NetSpec::default())
    }

    /// Full-control constructor. The placement seed honors `HTAPG_SEED`.
    pub fn with_config(kind: ShardingKind, nodes: u32, partition_rows: u64, net: NetSpec) -> Self {
        let sharding = Sharding::new(kind, nodes, partition_rows, env_seed(0x5AAD));
        let cluster = SimCluster::new(nodes as usize, net);
        let ledger = Arc::clone(cluster.ledger());
        let devices: Vec<Arc<SimDevice>> =
            (0..nodes).map(|_| Arc::new(SimDevice::with_defaults())).collect();
        let caches = devices.iter().map(|d| DeviceColumnCache::new(d.clone())).collect();
        let m = obs::metrics();
        let node_stats = (0..nodes)
            .map(|n| NodeStats {
                rows: m.gauge(leak(format!("cluster.node{n}.rows"))),
                net_bytes: m.counter(leak(format!("cluster.node{n}.net_bytes"))),
                op_ns: m.histogram(leak(format!("cluster.node{n}.op_ns"))),
            })
            .collect();
        ShardedEngine {
            sharding,
            cluster: PRwLock::new(cluster),
            ledger,
            devices,
            caches,
            rels: PRwLock::new(Vec::new()),
            calibration: Arc::new(CalibrationProfiles::new()),
            retry: RetryPolicy::default(),
            nodes: node_stats,
        }
    }

    pub fn sharding(&self) -> Sharding {
        self.sharding
    }

    /// The cluster-wide cost ledger (also the engine's trace clock).
    pub fn cluster_ledger(&self) -> Arc<CostLedger> {
        self.ledger.clone()
    }

    /// Install a fault plan on the interconnect (chaos testing).
    pub fn set_fault_plan(&self, fault_plan: Arc<FaultPlan>) {
        self.cluster.write().set_fault_plan(fault_plan);
    }

    /// Rendered fault-injection history, for replay-identity assertions.
    pub fn fault_history(&self) -> String {
        self.cluster.read().fault_plan().history_string()
    }

    /// Rows currently stored at each node.
    pub fn shard_rows(&self, rel: RelationId) -> Result<Vec<u64>> {
        self.with_rel(rel, |r| Ok(r.stores.iter().map(|s| s.len() as u64).collect()))
    }

    fn with_rel<R>(&self, rel: RelationId, f: impl FnOnce(&ShardRel) -> Result<R>) -> Result<R> {
        let rels = self.rels.read();
        f(rels.get(rel as usize).ok_or(Error::UnknownRelation(rel))?)
    }

    /// One routed point-op round trip: coordinator → owning shard → back.
    /// Wall-advancing (a point op is synchronous), fault-covered, retried.
    fn point_rpc(&self, shard: u32) -> Result<()> {
        if shard == 0 {
            return Ok(());
        }
        let mut span = obs::span("net", "rpc.point");
        if span.is_recording() {
            span.arg("node", shard);
        }
        let cluster = self.cluster.read();
        let there = with_retry(&self.retry, &self.ledger, || {
            cluster.send_overlapped(0, shard, POINT_RPC_BYTES)
        })?;
        let back = with_retry(&self.retry, &self.ledger, || {
            cluster.send_overlapped(shard, 0, POINT_RPC_BYTES)
        })?;
        self.ledger.advance_wall(there + back);
        self.nodes[shard as usize].net_bytes.add(2 * POINT_RPC_BYTES as u64);
        self.nodes[shard as usize].op_ns.record(there + back);
        Ok(())
    }

    /// Pack shard-local values of `attr` as little-endian f64 and place
    /// them on the shard's device (cached per relation version).
    fn shard_replica(
        &self,
        rel: RelationId,
        r: &ShardRel,
        shard: usize,
        attr: AttrId,
    ) -> Result<htapg_device::BufferId> {
        let store = &r.stores[shard];
        let mut bytes = Vec::with_capacity(store.len() * 8);
        for rec in store {
            bytes.extend_from_slice(&rec[attr as usize].as_f64()?.to_le_bytes());
        }
        let device = &self.devices[shard];
        let col = self.caches[shard].get_or_insert_with(
            rel,
            attr,
            r.version,
            store.len() as u64,
            true,
            || with_retry(&self.retry, device.ledger(), || device.upload(&bytes)),
        )?;
        Ok(col.buf)
    }

    /// Per-shard partial sums (one per local fragment, local order).
    fn shard_sum_partials(
        &self,
        rel: RelationId,
        r: &ShardRel,
        shard: usize,
        attr: AttrId,
        pred: Option<&Predicate>,
    ) -> Result<(Vec<f64>, u64)> {
        if r.stores[shard].is_empty() {
            return Ok((Vec::new(), 0));
        }
        let device = &self.devices[shard];
        let t0 = device.ledger().snapshot().wall_ns;
        let buf = self.shard_replica(rel, r, shard, attr)?;
        let part = self.sharding.partition_rows as usize;
        let partials = with_retry(&self.retry, device.ledger(), || match pred {
            None => kernels::reduce_fragment_partials_f64(device, buf, part),
            Some(p) => kernels::filter_fragment_partials_f64(device, buf, part, &|v| p.matches(v)),
        })?;
        let exec = device.ledger().snapshot().wall_ns.saturating_sub(t0);
        self.nodes[shard].op_ns.record(exec);
        Ok((partials, exec))
    }

    /// Per-shard keyed partials (per local fragment, key-sorted inside).
    #[allow(clippy::type_complexity)]
    fn shard_group_partials(
        &self,
        rel: RelationId,
        r: &ShardRel,
        shard: usize,
        key_attr: AttrId,
        value_attr: AttrId,
    ) -> Result<(Vec<Vec<(i64, f64)>>, u64)> {
        if r.stores[shard].is_empty() {
            return Ok((Vec::new(), 0));
        }
        let device = &self.devices[shard];
        let t0 = device.ledger().snapshot().wall_ns;
        let buf = self.shard_replica(rel, r, shard, value_attr)?;
        let keys: Vec<i64> = r.stores[shard]
            .iter()
            .map(|rec| rec[key_attr as usize].as_i64())
            .collect::<Result<_>>()?;
        let part = self.sharding.partition_rows as usize;
        let partials = with_retry(&self.retry, device.ledger(), || {
            kernels::keyed_fragment_partials_f64(device, buf, &keys, part)
        })?;
        let exec = device.ledger().snapshot().wall_ns.saturating_sub(t0);
        self.nodes[shard].op_ns.record(exec);
        Ok((partials, exec))
    }

    /// Scatter phase 1: roll the request sends sequentially in canonical
    /// node order (deterministic under concurrent pool execution),
    /// overlapped-charged, retried. An exhausted retry fails the whole
    /// scatter — no shard is silently skipped.
    fn roll_requests(&self, cluster: &SimCluster, k: usize) -> Result<Vec<u64>> {
        let mut rtt = vec![0u64; k];
        for (node, slot) in rtt.iter_mut().enumerate() {
            *slot = with_retry(&self.retry, &self.ledger, || {
                cluster.send_overlapped(0, node as u32, SCATTER_REQUEST_BYTES as usize)
            })?;
            if node != 0 {
                self.nodes[node].net_bytes.add(SCATTER_REQUEST_BYTES);
            }
        }
        Ok(rtt)
    }

    /// Scatter phase 3: roll the response sends sequentially in canonical
    /// node order; `bytes[i]` is shard i's partial payload.
    fn roll_responses(&self, cluster: &SimCluster, rtt: &mut [u64], bytes: &[u64]) -> Result<()> {
        for (node, slot) in rtt.iter_mut().enumerate() {
            let payload = bytes[node] as usize;
            *slot += with_retry(&self.retry, &self.ledger, || {
                cluster.send_overlapped(node as u32, 0, payload)
            })?;
            if node != 0 {
                self.nodes[node].net_bytes.add(bytes[node]);
            }
        }
        Ok(())
    }

    /// Run `task` for every shard on the executor pool, collecting its
    /// per-shard results. Shard execution is parallel; the fault plan is
    /// never rolled in here (device faults are per-shard plans), so the
    /// interleaving cannot perturb the seeded cluster fault sequence.
    fn run_shards<T: Send>(
        &self,
        k: usize,
        task: impl Fn(usize) -> Result<(T, u64)> + Sync,
    ) -> Result<(Vec<T>, Vec<u64>)> {
        type Slot<T> = htapg_core::sync::Mutex<Option<Result<(T, u64)>>>;
        let slots: Vec<Slot<T>> = (0..k).map(|_| htapg_core::sync::Mutex::new(None)).collect();
        pool::run_tasks(k as u64, k, |w| {
            let shard = w as usize;
            *slots[shard].lock() = Some(task(shard));
        });
        let mut outs = Vec::with_capacity(k);
        let mut exec = Vec::with_capacity(k);
        for slot in slots {
            let (out, ns) = slot
                .into_inner()
                .ok_or_else(|| Error::Internal("shard task did not run".into()))??;
            outs.push(out);
            exec.push(ns);
        }
        Ok((outs, exec))
    }

    fn numeric_ty(&self, r: &ShardRel, attr: AttrId) -> Result<DataType> {
        let ty = r.schema.ty(attr)?;
        if !ty.is_numeric() {
            return Err(Error::NonNumericAggregate { attr, got: ty.name() });
        }
        Ok(ty)
    }
}

impl StorageEngine for ShardedEngine {
    fn name(&self) -> &'static str {
        "SHARDED"
    }

    fn classification(&self) -> Classification {
        Classification {
            name: "SHARDED",
            layout_handling: LayoutHandling::MultiBuiltIn,
            layout_flexibility: LayoutFlexibility::StrongFlexible { constrained: true },
            layout_adaptability: LayoutAdaptability::Responsive,
            data_location: DataLocation::Mixed,
            data_locality: DataLocality::Distributed,
            fragment_linearization: FragmentLinearization::FatDsmFixed,
            fragment_scheme: FragmentScheme::DelegationBased,
            processor_support: ProcessorSupport::CpuGpu,
            workload_support: WorkloadSupport::Htap,
            year: 2017,
        }
    }

    fn trace_clock(&self) -> Option<Arc<dyn obs::VirtualClock>> {
        Some(self.ledger.clone())
    }

    fn calibration(&self) -> Option<Arc<CalibrationProfiles>> {
        Some(self.calibration.clone())
    }

    fn device_cost_profile(&self) -> Option<DeviceCostProfile> {
        Some(self.devices[0].spec().cost_profile())
    }

    fn create_relation(&self, schema: Schema) -> Result<RelationId> {
        let mut rels = self.rels.write();
        let rel = rels.len() as RelationId;
        rels.push(ShardRel {
            schema,
            rows: 0,
            frags: Vec::new(),
            stores: vec![Vec::new(); self.sharding.nodes as usize],
            version: 0,
        });
        Ok(rel)
    }

    fn schema(&self, rel: RelationId) -> Result<Schema> {
        self.with_rel(rel, |r| Ok(r.schema.clone()))
    }

    fn insert(&self, rel: RelationId, record: &Record) -> Result<RowId> {
        let mut rels = self.rels.write();
        let r = rels.get_mut(rel as usize).ok_or(Error::UnknownRelation(rel))?;
        if record.len() != r.schema.arity() {
            return Err(Error::Internal(format!(
                "arity mismatch: {} values for {} attributes",
                record.len(),
                r.schema.arity()
            )));
        }
        for (a, v) in record.iter().enumerate() {
            let ty = r.schema.ty(a as AttrId)?;
            if !v.matches(ty) {
                return Err(Error::TypeMismatch { expected: ty.name(), got: v.type_name() });
            }
        }
        let row = r.rows;
        let f = self.sharding.fragment_of_row(row) as usize;
        if f == r.frags.len() {
            let shard = self.sharding.shard_of_fragment(f as u64);
            let local_base = r.stores[shard as usize].len() as u64;
            r.frags.push(FragInfo { shard, local_base });
        }
        let shard = r.frags[f].shard as usize;
        r.stores[shard].push(record.clone());
        self.nodes[shard].rows.set(r.stores[shard].len() as i64);
        r.rows += 1;
        r.version += 1;
        Ok(row)
    }

    fn read_record(&self, rel: RelationId, row: RowId) -> Result<Record> {
        let (shard, rec) = self.with_rel(rel, |r| {
            let (shard, local) = r.locate(self.sharding.partition_rows, row)?;
            Ok((shard, r.stores[shard as usize][local].clone()))
        })?;
        self.point_rpc(shard)?;
        Ok(rec)
    }

    fn read_field(&self, rel: RelationId, row: RowId, attr: AttrId) -> Result<Value> {
        let (shard, v) = self.with_rel(rel, |r| {
            r.schema.attr(attr)?;
            let (shard, local) = r.locate(self.sharding.partition_rows, row)?;
            Ok((shard, r.stores[shard as usize][local][attr as usize].clone()))
        })?;
        self.point_rpc(shard)?;
        Ok(v)
    }

    fn update_field(&self, rel: RelationId, row: RowId, attr: AttrId, value: &Value) -> Result<()> {
        let shard = {
            let mut rels = self.rels.write();
            let r = rels.get_mut(rel as usize).ok_or(Error::UnknownRelation(rel))?;
            let ty = r.schema.ty(attr)?;
            if !value.matches(ty) {
                return Err(Error::TypeMismatch { expected: ty.name(), got: value.type_name() });
            }
            let (shard, local) = r.locate(self.sharding.partition_rows, row)?;
            r.stores[shard as usize][local][attr as usize] = value.clone();
            r.version += 1;
            shard
        };
        self.point_rpc(shard)
    }

    /// Global-row-order scan, served from the coordinator's merge view
    /// (the executor's host fallback path — correctness net, not the
    /// priced route).
    fn scan_column(
        &self,
        rel: RelationId,
        attr: AttrId,
        visit: &mut dyn FnMut(RowId, &Value),
    ) -> Result<()> {
        self.with_rel(rel, |r| {
            r.schema.attr(attr)?;
            let part = self.sharding.partition_rows;
            for row in 0..r.rows {
                let (shard, local) = r.locate(part, row)?;
                visit(row, &r.stores[shard as usize][local][attr as usize]);
            }
            Ok(())
        })
    }

    fn row_count(&self, rel: RelationId) -> Result<u64> {
        self.with_rel(rel, |r| Ok(r.rows))
    }

    /// Coordinator-view evidence: the column is *not* contiguous here
    /// (its rows live on the shards) — the flat lowering would pay the
    /// tuple-strided price. Shard evidence below is what actually routes.
    fn column_evidence(&self, rel: RelationId, attr: AttrId) -> Result<ColumnEvidence> {
        self.with_rel(rel, |r| {
            let ty = r.schema.ty(attr)?;
            Ok(ColumnEvidence {
                rows: r.rows,
                ty,
                scan_stride: r.schema.tuple_width() as u64,
                contiguous: false,
                device_warm: false,
                stale_rows: 0,
            })
        })
    }

    fn shard_evidence(&self, rel: RelationId, attr: AttrId) -> Result<Option<ShardPlanEvidence>> {
        self.with_rel(rel, |r| {
            let ty = r.schema.ty(attr)?;
            if !ty.is_numeric() || r.rows == 0 {
                return Ok(None);
            }
            let k = self.sharding.nodes as usize;
            let mut frag_count = vec![0u64; k];
            for f in &r.frags {
                frag_count[f.shard as usize] += 1;
            }
            let shards = (0..k)
                .map(|n| ShardEvidence {
                    node: n as u32,
                    fragments: frag_count[n],
                    evidence: ColumnEvidence {
                        rows: r.stores[n].len() as u64,
                        ty,
                        scan_stride: ty.width() as u64,
                        contiguous: true,
                        device_warm: self.caches[n].contains(rel, attr, r.version),
                        stale_rows: 0,
                    },
                })
                .collect();
            Ok(Some(ShardPlanEvidence {
                partition_rows: self.sharding.partition_rows,
                net: self.cluster.read().net_cost_profile(),
                shards,
            }))
        })
    }

    fn scatter_sum(&self, rel: RelationId, attr: AttrId, pred: Option<&Predicate>) -> Result<f64> {
        let mut span = obs::span("net", "scatter.sum");
        let rels = self.rels.read();
        let r = rels.get(rel as usize).ok_or(Error::UnknownRelation(rel))?;
        self.numeric_ty(r, attr)?;
        let k = self.sharding.nodes as usize;
        if span.is_recording() {
            span.arg("shards", k as u64);
        }
        let cluster = self.cluster.read();
        let mut rtt = self.roll_requests(&cluster, k)?;
        let (per_shard, exec) =
            self.run_shards(k, |shard| self.shard_sum_partials(rel, r, shard, attr, pred))?;
        let resp_bytes: Vec<u64> =
            per_shard.iter().map(|p| p.len() as u64 * SUM_PARTIAL_BYTES).collect();
        self.roll_responses(&cluster, &mut rtt, &resp_bytes)?;
        let settle = (0..k).map(|i| exec[i] + rtt[i]).max().unwrap_or(0);
        self.ledger.advance_wall(settle);
        // Gather: one partial per fragment, merged in global fragment
        // order — the shard-invariant canonical reduction.
        let mut next = vec![0usize; k];
        let mut partials = Vec::with_capacity(r.frags.len());
        for f in &r.frags {
            let s = f.shard as usize;
            partials.push(per_shard[s][next[s]]);
            next[s] += 1;
        }
        Ok(kernels::tree_sum(&partials))
    }

    fn scatter_group_sum(
        &self,
        rel: RelationId,
        key_attr: AttrId,
        value_attr: AttrId,
    ) -> Result<Vec<(i64, f64)>> {
        let mut span = obs::span("net", "scatter.group_sum");
        let rels = self.rels.read();
        let r = rels.get(rel as usize).ok_or(Error::UnknownRelation(rel))?;
        self.numeric_ty(r, value_attr)?;
        let key_ty = r.schema.ty(key_attr)?;
        if !matches!(key_ty, DataType::Int32 | DataType::Int64 | DataType::Date) {
            return Err(Error::NonNumericAggregate { attr: key_attr, got: key_ty.name() });
        }
        let k = self.sharding.nodes as usize;
        if span.is_recording() {
            span.arg("shards", k as u64);
        }
        let cluster = self.cluster.read();
        let mut rtt = self.roll_requests(&cluster, k)?;
        let (per_shard, exec) = self.run_shards(k, |shard| {
            self.shard_group_partials(rel, r, shard, key_attr, value_attr)
        })?;
        let resp_bytes: Vec<u64> = per_shard
            .iter()
            .map(|frags| frags.iter().map(|f| f.len() as u64).sum::<u64>() * GROUP_PARTIAL_BYTES)
            .collect();
        self.roll_responses(&cluster, &mut rtt, &resp_bytes)?;
        let settle = (0..k).map(|i| exec[i] + rtt[i]).max().unwrap_or(0);
        self.ledger.advance_wall(settle);
        // Gather: per-key partial lists accumulate in global fragment
        // order, then reduce canonically per key.
        let mut next = vec![0usize; k];
        let mut acc: BTreeMap<i64, Vec<f64>> = BTreeMap::new();
        for f in &r.frags {
            let s = f.shard as usize;
            for &(key, partial) in &per_shard[s][next[s]] {
                acc.entry(key).or_default().push(partial);
            }
            next[s] += 1;
        }
        Ok(acc.into_iter().map(|(key, ps)| (key, kernels::tree_sum(&ps))).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{
        execute, sharded_volcano_filter_sum, sharded_volcano_group_sum, sharded_volcano_sum,
    };
    use crate::threading::ThreadingPolicy;
    use htapg_core::plan::{LogicalPlan, PhysicalOp, Route};
    use htapg_core::prng::Prng;

    fn loaded(kind: ShardingKind, nodes: u32, rows: u64, part: u64) -> (ShardedEngine, RelationId) {
        let e = ShardedEngine::with_config(kind, nodes, part, NetSpec::default());
        let schema = Schema::of(&[("k", DataType::Int64), ("v", DataType::Float64)]);
        let rel = e.create_relation(schema).unwrap();
        let mut rng = Prng::seed_from_u64(0x51);
        for _ in 0..rows {
            e.insert(
                rel,
                &vec![
                    Value::Int64(rng.gen_range(0..16) as i64),
                    Value::Float64(rng.gen_range(0..100_000) as f64 / 3.0),
                ],
            )
            .unwrap();
        }
        (e, rel)
    }

    #[test]
    fn placement_covers_all_rows_exactly_once() {
        let (e, rel) = loaded(ShardingKind::Hash, 4, 10_000, 256);
        let per_node = e.shard_rows(rel).unwrap();
        assert_eq!(per_node.iter().sum::<u64>(), 10_000);
        assert!(per_node.iter().all(|&n| n > 0), "skewed placement: {per_node:?}");
        // Every row reads back its own value through the routed point op.
        for row in [0u64, 255, 256, 9_999] {
            assert!(matches!(e.read_field(rel, row, 1).unwrap(), Value::Float64(_)));
        }
        assert!(e.read_field(rel, 10_000, 1).is_err());
    }

    #[test]
    fn plans_lower_to_scatter_and_execute_bit_identically() {
        for &kind in &[ShardingKind::Hash, ShardingKind::Range] {
            let (e, rel) = loaded(kind, 4, 5_000, 256);
            let plan = e.plan(&LogicalPlan::sum(rel, 1)).unwrap();
            assert_eq!(plan.root.route, Route::Scatter { shards: 4 });
            assert!(matches!(plan.root.children[0].op, PhysicalOp::Gather { shards: 4 }));
            let got = execute(&e, &plan, ThreadingPolicy::Single).unwrap();
            let want = sharded_volcano_sum(&e, rel, 1, 256).unwrap();
            assert_eq!(got.as_sum().unwrap().to_bits(), want.to_bits(), "{kind:?}");
        }
    }

    #[test]
    fn filtered_and_grouped_scatter_match_oracles() {
        let (e, rel) = loaded(ShardingKind::Hash, 3, 4_000, 128);
        let pred = Predicate::Ge(10_000.0);
        let fplan = e.plan(&LogicalPlan::filter_sum(rel, 1, pred)).unwrap();
        assert_eq!(fplan.root.route, Route::Scatter { shards: 3 });
        let got = execute(&e, &fplan, ThreadingPolicy::Single).unwrap();
        let want = sharded_volcano_filter_sum(&e, rel, 1, &pred, 128).unwrap();
        assert_eq!(got.as_sum().unwrap().to_bits(), want.to_bits());

        let gplan = e.plan(&LogicalPlan::group_sum(rel, 0, 1)).unwrap();
        assert_eq!(gplan.root.route, Route::Scatter { shards: 3 });
        let got = execute(&e, &gplan, ThreadingPolicy::Single).unwrap();
        let want = sharded_volcano_group_sum(&e, rel, 0, 1, 128).unwrap();
        let got = got.as_groups().unwrap();
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.0, w.0);
            assert_eq!(g.1.to_bits(), w.1.to_bits());
        }
    }

    #[test]
    fn node_count_does_not_change_a_single_bit() {
        let mut sums = Vec::new();
        for nodes in [1u32, 2, 4, 8] {
            let (e, rel) = loaded(ShardingKind::Hash, nodes, 6_000, 512);
            let plan = e.plan(&LogicalPlan::sum(rel, 1)).unwrap();
            let got = execute(&e, &plan, ThreadingPolicy::Single).unwrap();
            sums.push(got.as_sum().unwrap().to_bits());
        }
        assert!(sums.windows(2).all(|w| w[0] == w[1]), "{sums:?}");
    }

    #[test]
    fn scatter_charges_network_and_advances_cluster_wall() {
        let (e, rel) = loaded(ShardingKind::Range, 4, 8_000, 256);
        let base = e.cluster_ledger().snapshot();
        let plan = e.plan(&LogicalPlan::sum(rel, 1)).unwrap();
        execute(&e, &plan, ThreadingPolicy::Single).unwrap();
        let d = e.cluster_ledger().snapshot().since(&base);
        assert!(d.network_ns > 0, "scatter RPCs must be priced");
        assert!(d.network_bytes > 0, "payload bytes must be counted");
        assert!(d.wall_ns > 0, "the gather settles the wall");
        // Requests + responses for the three remote shards, nothing more:
        // the wall is the max round trip + exec, not the sum.
        assert!(d.wall_ns < d.network_ns + 1_000_000_000);
    }

    #[test]
    fn single_node_cluster_pays_no_network() {
        let (e, rel) = loaded(ShardingKind::Hash, 1, 3_000, 256);
        let base = e.cluster_ledger().snapshot();
        let plan = e.plan(&LogicalPlan::sum(rel, 1)).unwrap();
        assert_eq!(plan.root.route, Route::Scatter { shards: 1 });
        execute(&e, &plan, ThreadingPolicy::Single).unwrap();
        let d = e.cluster_ledger().snapshot().since(&base);
        assert_eq!(d.network_ns, 0, "coordinator-local scatter is free");
        assert_eq!(d.network_bytes, 0);
    }

    #[test]
    fn updates_invalidate_replicas_and_stay_visible() {
        let (e, rel) = loaded(ShardingKind::Hash, 2, 2_000, 128);
        let plan = e.plan(&LogicalPlan::sum(rel, 1)).unwrap();
        let before = execute(&e, &plan, ThreadingPolicy::Single).unwrap().as_sum().unwrap();
        e.update_field(rel, 7, 1, &Value::Float64(0.0)).unwrap();
        let plan = e.plan(&LogicalPlan::sum(rel, 1)).unwrap();
        let after = execute(&e, &plan, ThreadingPolicy::Single).unwrap().as_sum().unwrap();
        assert_ne!(before.to_bits(), after.to_bits());
        let want = sharded_volcano_sum(&e, rel, 1, 128).unwrap();
        assert_eq!(after.to_bits(), want.to_bits());
        assert_eq!(e.read_field(rel, 7, 1).unwrap(), Value::Float64(0.0));
    }
}
