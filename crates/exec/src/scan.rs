//! Attribute-centric operators: sums, counts, and filters over column
//! views — the Q2 pattern (`SELECT sum(a) FROM R`).
//!
//! The operators read typed fields straight from [`ColumnView`]s, so the
//! cache behaviour of the underlying layout (contiguous DSM vs strided NSM)
//! is exactly what the CPU executes — the mechanism Figure 2 measures.
//!
//! Every kernel is monomorphized over the element type through
//! `dispatch_typed!`: the `DataType` match runs once per view range, not
//! per value, and contiguous views stream through `chunks_exact` so the
//! inner loops vectorize.

use htapg_core::{obs, ColumnView, DataType, Error, Layout, Result, RowId};

use crate::threading::{run_blocks, ThreadingPolicy};

/// Open an operator span with the column's row count attached.
fn op_span(name: &'static str, rows: u64) -> obs::SpanGuard {
    let mut span = obs::span("op", name);
    if span.is_recording() {
        span.arg("rows", rows);
    }
    span
}

/// Monomorphize a kernel body over the column's element type: the
/// `DataType` match runs **once**, outside the loop, and `$body` is
/// instantiated per arm with `$read` bound to a concrete (inlinable)
/// `&[u8] -> f64` decoder — so the hot loop carries no per-value dispatch.
/// Shared by `sum_view_range`, `filter_positions`, `count_where`,
/// `column_stats`, and `sum_at_positions_f64`.
macro_rules! dispatch_typed {
    ($ty:expr, $read:ident => $body:expr) => {
        match $ty {
            DataType::Float64 => {
                let $read = |b: &[u8]| -> f64 { f64::from_le_bytes(b.try_into().unwrap()) };
                $body
            }
            DataType::Int64 => {
                let $read = |b: &[u8]| -> f64 { i64::from_le_bytes(b.try_into().unwrap()) as f64 };
                $body
            }
            DataType::Int32 | DataType::Date => {
                let $read = |b: &[u8]| -> f64 { i32::from_le_bytes(b.try_into().unwrap()) as f64 };
                $body
            }
            DataType::Bool => {
                let $read = |b: &[u8]| -> f64 { b[0] as f64 };
                $body
            }
            DataType::Text(_) => {
                let $read = |_b: &[u8]| -> f64 { 0.0 };
                $body
            }
        }
    };
}

fn check_numeric(ty: DataType) -> Result<()> {
    match ty {
        DataType::Text(_) | DataType::Bool => {
            Err(Error::TypeMismatch { expected: "numeric", got: ty.name() })
        }
        _ => Ok(()),
    }
}

/// Map the logical row range `[lo, hi)` (spanning all views) onto per-view
/// local ranges, invoking `f(view, v_lo, v_hi)` for each non-empty one.
#[inline]
fn for_view_ranges<'a>(
    views: &[ColumnView<'a>],
    lo: u64,
    hi: u64,
    mut f: impl FnMut(&ColumnView<'a>, u64, u64),
) {
    let mut base = 0u64;
    for v in views {
        let v_lo = lo.max(base);
        let v_hi = hi.min(base + v.rows);
        if v_lo < v_hi {
            f(v, v_lo - base, v_hi - base);
        }
        base += v.rows;
        if base >= hi {
            break;
        }
    }
}

/// Sum one view's rows `[lo, hi)` as f64.
fn sum_view_range(view: &ColumnView<'_>, ty: DataType, lo: u64, hi: u64) -> f64 {
    dispatch_typed!(ty, read => {
        let mut acc = 0.0f64;
        if let Some(block) = view.slice_rows(lo, hi).contiguous_bytes() {
            // Contiguous fast path: sequential streaming.
            for chunk in block.chunks_exact(view.width) {
                acc += read(chunk);
            }
        } else {
            for i in lo..hi {
                acc += read(view.field(i as usize));
            }
        }
        acc
    })
}

/// Sum an entire column of `layout` under a threading policy.
///
/// Rows are blockwise-partitioned across the *logical* row space spanning
/// all chunks, matching the paper's partitioning description.
pub fn sum_column_f64(layout: &Layout, attr: u16, policy: ThreadingPolicy) -> Result<f64> {
    sum_column_f64_typed(layout, attr, infer_type(layout, attr)?, policy)
}

/// Determine the column's data type from its field width.
///
/// Views are untyped; prefer the explicit-type entry point
/// [`sum_column_f64_typed`] when the schema is at hand (8-byte fields are
/// assumed to be `Float64` here).
fn infer_type(layout: &Layout, attr: u16) -> Result<DataType> {
    let views = layout.column_views(attr)?;
    let width = views.first().map(|v| v.width).unwrap_or(8);
    Ok(match width {
        1 => DataType::Bool,
        4 => DataType::Int32,
        8 => DataType::Float64,
        w => DataType::Text(w as u16),
    })
}

/// Sum a column with an explicit element type.
pub fn sum_column_f64_typed(
    layout: &Layout,
    attr: u16,
    ty: DataType,
    policy: ThreadingPolicy,
) -> Result<f64> {
    check_numeric(ty)?;
    let views = layout.column_views(attr)?;
    let total_rows: u64 = views.iter().map(|v| v.rows).sum();
    let _span = op_span("op.scan.sum", total_rows);
    let sum = run_blocks(
        total_rows,
        policy,
        |lo, hi| {
            let mut acc = 0.0f64;
            for_view_ranges(&views, lo, hi, |v, v_lo, v_hi| {
                acc += sum_view_range(v, ty, v_lo, v_hi);
            });
            acc
        },
        |a, b| a + b,
        0.0,
    );
    Ok(sum)
}

/// Sum the column at an explicit list of row positions (the tiny-position
/// variant of Figure 2's second panel: "sum prices of 150 items").
pub fn sum_at_positions_f64(
    layout: &Layout,
    attr: u16,
    ty: DataType,
    positions: &[RowId],
    policy: ThreadingPolicy,
) -> Result<f64> {
    check_numeric(ty)?;
    let views = layout.column_views(attr)?;
    let _span = op_span("op.scan.sum_positions", positions.len() as u64);
    // Blockwise over the *position list*, as in the paper; each point
    // access resolves its chunk by row id.
    let sum = run_blocks(
        positions.len() as u64,
        policy,
        |lo, hi| {
            // Type dispatch hoisted out of the point-access loop.
            dispatch_typed!(ty, read => {
                let mut acc = 0.0f64;
                for &row in &positions[lo as usize..hi as usize] {
                    let mut base = 0u64;
                    for v in &views {
                        if row < base + v.rows {
                            acc += read(v.field((row - base) as usize));
                            break;
                        }
                        base += v.rows;
                    }
                }
                acc
            })
        },
        |a, b| a + b,
        0.0,
    );
    Ok(sum)
}

/// Aggregate summary of one numeric column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl ColumnStats {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    fn identity() -> ColumnStats {
        ColumnStats { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    fn merge(a: ColumnStats, b: ColumnStats) -> ColumnStats {
        ColumnStats {
            count: a.count + b.count,
            sum: a.sum + b.sum,
            min: a.min.min(b.min),
            max: a.max.max(b.max),
        }
    }
}

/// Full-column count/sum/min/max in one pass, under a threading policy.
pub fn column_stats(
    layout: &Layout,
    attr: u16,
    ty: DataType,
    policy: ThreadingPolicy,
) -> Result<ColumnStats> {
    check_numeric(ty)?;
    let views = layout.column_views(attr)?;
    let total_rows: u64 = views.iter().map(|v| v.rows).sum();
    let _span = op_span("op.scan.stats", total_rows);
    Ok(run_blocks(
        total_rows,
        policy,
        |lo, hi| {
            let mut acc = ColumnStats::identity();
            for_view_ranges(&views, lo, hi, |v, v_lo, v_hi| {
                stats_view_range(v, ty, v_lo, v_hi, &mut acc);
            });
            acc
        },
        ColumnStats::merge,
        ColumnStats::identity(),
    ))
}

/// Fold one view's rows `[lo, hi)` into `acc`, dispatch hoisted.
fn stats_view_range(view: &ColumnView<'_>, ty: DataType, lo: u64, hi: u64, acc: &mut ColumnStats) {
    #[inline]
    fn fold(acc: &mut ColumnStats, x: f64) {
        acc.count += 1;
        acc.sum += x;
        acc.min = acc.min.min(x);
        acc.max = acc.max.max(x);
    }
    dispatch_typed!(ty, read => {
        if let Some(block) = view.slice_rows(lo, hi).contiguous_bytes() {
            for chunk in block.chunks_exact(view.width) {
                fold(acc, read(chunk));
            }
        } else {
            for i in lo..hi {
                fold(acc, read(view.field(i as usize)));
            }
        }
    })
}

/// Filter: collect row ids whose field satisfies `pred` (sequential —
/// position lists must stay sorted, as the paper's join outputs are).
pub fn filter_positions(
    layout: &Layout,
    attr: u16,
    ty: DataType,
    pred: impl Fn(f64) -> bool,
) -> Result<Vec<RowId>> {
    check_numeric(ty)?;
    let views = layout.column_views(attr)?;
    let _span = op_span("op.scan.filter", views.iter().map(|v| v.rows).sum());
    let mut out = Vec::new();
    for v in &views {
        dispatch_typed!(ty, read => {
            if let Some(block) = v.contiguous_bytes() {
                for (i, chunk) in block.chunks_exact(v.width).enumerate() {
                    if pred(read(chunk)) {
                        out.push(v.first_row + i as u64);
                    }
                }
            } else {
                for i in 0..v.rows {
                    if pred(read(v.field(i as usize))) {
                        out.push(v.first_row + i);
                    }
                }
            }
        });
    }
    Ok(out)
}

/// Count rows matching `pred` under a threading policy.
pub fn count_where(
    layout: &Layout,
    attr: u16,
    ty: DataType,
    policy: ThreadingPolicy,
    pred: impl Fn(f64) -> bool + Sync,
) -> Result<u64> {
    check_numeric(ty)?;
    let views = layout.column_views(attr)?;
    let total_rows: u64 = views.iter().map(|v| v.rows).sum();
    let _span = op_span("op.scan.count", total_rows);
    Ok(run_blocks(
        total_rows,
        policy,
        |lo, hi| {
            let mut n = 0u64;
            for_view_ranges(&views, lo, hi, |v, v_lo, v_hi| {
                n += count_view_range(v, ty, v_lo, v_hi, &pred);
            });
            n
        },
        |a, b| a + b,
        0,
    ))
}

/// Count one view's rows in `[lo, hi)` matching `pred`, dispatch hoisted.
fn count_view_range(
    view: &ColumnView<'_>,
    ty: DataType,
    lo: u64,
    hi: u64,
    pred: &impl Fn(f64) -> bool,
) -> u64 {
    dispatch_typed!(ty, read => {
        let mut n = 0u64;
        if let Some(block) = view.slice_rows(lo, hi).contiguous_bytes() {
            for chunk in block.chunks_exact(view.width) {
                if pred(read(chunk)) {
                    n += 1;
                }
            }
        } else {
            for i in lo..hi {
                if pred(read(view.field(i as usize))) {
                    n += 1;
                }
            }
        }
        n
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use htapg_core::{LayoutTemplate, Schema, Value};

    fn filled(template: fn(&Schema) -> LayoutTemplate, n: i64) -> (Schema, Layout) {
        let s = Schema::of(&[
            ("k", DataType::Int64),
            ("price", DataType::Float64),
            ("pad", DataType::Text(12)),
        ]);
        let mut l = Layout::new(&s, template(&s)).unwrap();
        for i in 0..n {
            l.append(
                &s,
                &vec![Value::Int64(i), Value::Float64(i as f64 * 0.25), Value::Text("x".into())],
            )
            .unwrap();
        }
        (s, l)
    }

    #[test]
    fn sum_is_layout_and_policy_invariant() {
        let n = 10_000i64;
        let expect: f64 = (0..n).map(|i| i as f64 * 0.25).sum();
        for template in [
            LayoutTemplate::nsm as fn(&Schema) -> _,
            LayoutTemplate::dsm,
            LayoutTemplate::dsm_emulated,
        ] {
            let (_, l) = filled(template, n);
            for policy in [ThreadingPolicy::Single, ThreadingPolicy::multi8()] {
                let got = sum_column_f64_typed(&l, 1, DataType::Float64, policy).unwrap();
                assert!((got - expect).abs() < 1e-6, "{got} vs {expect}");
            }
        }
    }

    #[test]
    fn sum_via_inferred_type() {
        let (_, l) = filled(LayoutTemplate::dsm_emulated, 100);
        let got = sum_column_f64(&l, 1, ThreadingPolicy::Single).unwrap();
        assert_eq!(got, (0..100).map(|i| i as f64 * 0.25).sum::<f64>());
    }

    #[test]
    fn sum_at_positions_matches_subset() {
        let (_, l) = filled(LayoutTemplate::nsm, 1000);
        let positions: Vec<u64> = (0..1000).step_by(7).collect();
        let expect: f64 = positions.iter().map(|&i| i as f64 * 0.25).sum();
        for policy in [ThreadingPolicy::Single, ThreadingPolicy::multi8()] {
            let got = sum_at_positions_f64(&l, 1, DataType::Float64, &positions, policy).unwrap();
            assert!((got - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn filter_and_count_agree() {
        let (_, l) = filled(LayoutTemplate::dsm, 500);
        let pos = filter_positions(&l, 1, DataType::Float64, |v| v >= 100.0).unwrap();
        let cnt = count_where(&l, 1, DataType::Float64, ThreadingPolicy::multi8(), |v| v >= 100.0)
            .unwrap();
        assert_eq!(pos.len() as u64, cnt);
        // price = i * 0.25 >= 100 → i >= 400.
        assert_eq!(pos.first(), Some(&400));
        assert_eq!(pos.len(), 100);
    }

    #[test]
    fn text_columns_rejected() {
        let (_, l) = filled(LayoutTemplate::nsm, 10);
        assert!(sum_column_f64_typed(&l, 2, DataType::Text(12), ThreadingPolicy::Single).is_err());
    }

    #[test]
    fn int32_columns_sum() {
        let s = Schema::of(&[("v", DataType::Int32)]);
        let mut l = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
        for i in 0..100 {
            l.append(&s, &vec![Value::Int32(i)]).unwrap();
        }
        let got = sum_column_f64_typed(&l, 0, DataType::Int32, ThreadingPolicy::Single).unwrap();
        assert_eq!(got, (0..100).sum::<i32>() as f64);
    }

    #[test]
    fn column_stats_one_pass() {
        let (_, l) = filled(LayoutTemplate::dsm, 1000);
        for policy in [ThreadingPolicy::Single, ThreadingPolicy::multi8()] {
            let stats = column_stats(&l, 1, DataType::Float64, policy).unwrap();
            assert_eq!(stats.count, 1000);
            assert_eq!(stats.min, 0.0);
            assert_eq!(stats.max, 999.0 * 0.25);
            assert!((stats.sum - (0..1000).map(|i| i as f64 * 0.25).sum::<f64>()).abs() < 1e-9);
            assert!((stats.mean() - stats.sum / 1000.0).abs() < 1e-12);
        }
    }

    #[test]
    fn chunked_layout_sums_across_chunks() {
        let s = Schema::of(&[("v", DataType::Int64)]);
        let mut l = Layout::new(&s, LayoutTemplate::pax(&s, 64)).unwrap();
        for i in 0..1000i64 {
            l.append(&s, &vec![Value::Int64(i)]).unwrap();
        }
        let got = sum_column_f64_typed(&l, 0, DataType::Int64, ThreadingPolicy::multi8()).unwrap();
        assert_eq!(got, (0..1000i64).sum::<i64>() as f64);
    }
}
