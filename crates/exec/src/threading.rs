//! Threading policies: single-threaded vs blockwise multi-threaded.
//!
//! Section II-B fixes multi-threaded runs to "8 threads with blockwise
//! partitioning of the input data (i.e., each thread operates on one
//! exclusive and subsequent list of input positions)", and single-threaded
//! runs to "no thread management involved at all ... sequentially on the
//! main thread". Finding (i): "on a tiny number of records ... sequential
//! execution outperforms multi-threaded execution since thread-management
//! costs dominate."

/// How an operator parallelizes over its input positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadingPolicy {
    /// Run on the calling thread; zero management overhead.
    Single,
    /// Spawn `threads` workers; input is split into that many contiguous
    /// blocks.
    Multi { threads: usize },
}

impl ThreadingPolicy {
    /// The paper's multi-threaded setting.
    pub fn multi8() -> Self {
        ThreadingPolicy::Multi { threads: 8 }
    }

    pub fn threads(&self) -> usize {
        match self {
            ThreadingPolicy::Single => 1,
            ThreadingPolicy::Multi { threads } => (*threads).max(1),
        }
    }
}

/// Split `n` items into `parts` contiguous blocks (first blocks get the
/// remainder). Returns `(start, end)` pairs; empty blocks are omitted.
pub fn blockwise(n: u64, parts: usize) -> Vec<(u64, u64)> {
    let parts = parts.max(1) as u64;
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::new();
    let mut start = 0u64;
    for p in 0..parts {
        let len = base + if p < rem { 1 } else { 0 };
        if len > 0 {
            out.push((start, start + len));
            start += len;
        }
    }
    out
}

/// Run `work` over blockwise partitions of `0..n` under `policy` and fold
/// the per-block results with `combine`.
///
/// `Single` executes inline with one block covering everything — "no thread
/// management involved at all". `Multi` uses scoped threads, so `work` may
/// borrow from the caller.
pub fn run_blocks<T, F>(
    n: u64,
    policy: ThreadingPolicy,
    work: F,
    combine: impl Fn(T, T) -> T,
    identity: T,
) -> T
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    match policy {
        ThreadingPolicy::Single => {
            if n == 0 {
                identity
            } else {
                combine(identity, work(0, n))
            }
        }
        ThreadingPolicy::Multi { threads } => {
            let blocks = blockwise(n, threads);
            let work = &work;
            let results: Vec<T> = std::thread::scope(|s| {
                let handles: Vec<_> =
                    blocks.iter().map(|&(lo, hi)| s.spawn(move || work(lo, hi))).collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            results.into_iter().fold(identity, combine)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blockwise_covers_exactly_once() {
        for n in [0u64, 1, 7, 8, 9, 1000] {
            for parts in [1usize, 3, 8, 16] {
                let blocks = blockwise(n, parts);
                let mut next = 0u64;
                for (lo, hi) in &blocks {
                    assert_eq!(*lo, next);
                    assert!(hi > lo);
                    next = *hi;
                }
                assert_eq!(next, n);
                assert!(blocks.len() <= parts);
            }
        }
    }

    #[test]
    fn blockwise_is_balanced() {
        let blocks = blockwise(10, 4);
        let sizes: Vec<u64> = blocks.iter().map(|(a, b)| b - a).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn run_blocks_single_equals_multi() {
        let data: Vec<u64> = (0..100_000).collect();
        let sum = |lo: u64, hi: u64| data[lo as usize..hi as usize].iter().sum::<u64>();
        let single = run_blocks(data.len() as u64, ThreadingPolicy::Single, sum, |a, b| a + b, 0);
        let multi = run_blocks(data.len() as u64, ThreadingPolicy::multi8(), sum, |a, b| a + b, 0);
        assert_eq!(single, multi);
        assert_eq!(single, (0..100_000u64).sum::<u64>());
    }

    #[test]
    fn run_blocks_empty_input() {
        let r = run_blocks(0, ThreadingPolicy::multi8(), |_, _| 1u64, |a, b| a + b, 0);
        assert_eq!(r, 0);
    }

    #[test]
    fn policy_threads() {
        assert_eq!(ThreadingPolicy::Single.threads(), 1);
        assert_eq!(ThreadingPolicy::multi8().threads(), 8);
        assert_eq!(ThreadingPolicy::Multi { threads: 0 }.threads(), 1);
    }
}
