//! Threading policies: single-threaded vs morsel-driven multi-threaded.
//!
//! Section II-B fixes multi-threaded runs to "8 threads with blockwise
//! partitioning of the input data (i.e., each thread operates on one
//! exclusive and subsequent list of input positions)", and single-threaded
//! runs to "no thread management involved at all ... sequentially on the
//! main thread". Finding (i): "on a tiny number of records ... sequential
//! execution outperforms multi-threaded execution since thread-management
//! costs dominate."
//!
//! [`run_blocks`] preserves those semantics — `Single` runs inline on the
//! calling thread, `Multi { threads }` caps the number of participating
//! threads (the paper's 8-thread setting is `threads = 8` total) — but is
//! implemented on the persistent morsel-driven [`pool`](crate::pool)
//! instead of spawn-per-call scoped threads: partitions are exclusive,
//! subsequent [`MORSEL_ROWS`](crate::pool::MORSEL_ROWS)-row position
//! ranges pulled off a shared cursor, and per-morsel results are folded in
//! morsel order, so every policy produces bit-for-bit identical results.

/// How an operator parallelizes over its input positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadingPolicy {
    /// Run on the calling thread; zero management overhead.
    Single,
    /// Spawn `threads` workers; input is split into that many contiguous
    /// blocks.
    Multi { threads: usize },
}

impl ThreadingPolicy {
    /// The paper's multi-threaded setting.
    pub fn multi8() -> Self {
        ThreadingPolicy::Multi { threads: 8 }
    }

    pub fn threads(&self) -> usize {
        match self {
            ThreadingPolicy::Single => 1,
            ThreadingPolicy::Multi { threads } => (*threads).max(1),
        }
    }
}

/// Split `n` items into `parts` contiguous blocks (first blocks get the
/// remainder). Returns `(start, end)` pairs; empty blocks are omitted.
/// Static partitioning survives only in the spawn-per-call baseline
/// ([`crate::pool::spawn_blocks`]); the operators schedule morsels.
pub fn blockwise(n: u64, parts: usize) -> Vec<(u64, u64)> {
    let parts = parts.max(1) as u64;
    let base = n / parts;
    let rem = n % parts;
    let mut out = Vec::new();
    let mut start = 0u64;
    for p in 0..parts {
        let len = base + if p < rem { 1 } else { 0 };
        if len > 0 {
            out.push((start, start + len));
            start += len;
        }
    }
    out
}

/// Run `work` over morsel partitions of `0..n` under `policy` and fold the
/// per-morsel results with `combine`, in morsel order.
///
/// `Single` executes inline — "no thread management involved at all".
/// `Multi { threads }` runs on the persistent pool with at most `threads`
/// participating threads (the caller plus pool workers); `work` may borrow
/// from the caller, which blocks until the fold completes. Both paths fold
/// the identical morsel partition in the identical order, so results are
/// bit-for-bit equal across every policy and pool size. Inputs of at most
/// one morsel never touch the pool at all.
pub fn run_blocks<T, F>(
    n: u64,
    policy: ThreadingPolicy,
    work: F,
    combine: impl Fn(T, T) -> T,
    identity: T,
) -> T
where
    T: Send,
    F: Fn(u64, u64) -> T + Sync,
{
    match policy {
        ThreadingPolicy::Single => crate::pool::fold_morsels_seq(n, work, combine, identity),
        ThreadingPolicy::Multi { threads } => {
            crate::pool::run_morsels(n, threads, work, combine, identity)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blockwise_covers_exactly_once() {
        for n in [0u64, 1, 7, 8, 9, 1000] {
            for parts in [1usize, 3, 8, 16] {
                let blocks = blockwise(n, parts);
                let mut next = 0u64;
                for (lo, hi) in &blocks {
                    assert_eq!(*lo, next);
                    assert!(hi > lo);
                    next = *hi;
                }
                assert_eq!(next, n);
                assert!(blocks.len() <= parts);
            }
        }
    }

    #[test]
    fn blockwise_is_balanced() {
        let blocks = blockwise(10, 4);
        let sizes: Vec<u64> = blocks.iter().map(|(a, b)| b - a).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    fn run_blocks_single_equals_multi() {
        let data: Vec<u64> = (0..100_000).collect();
        let sum = |lo: u64, hi: u64| data[lo as usize..hi as usize].iter().sum::<u64>();
        let single = run_blocks(data.len() as u64, ThreadingPolicy::Single, sum, |a, b| a + b, 0);
        let multi = run_blocks(data.len() as u64, ThreadingPolicy::multi8(), sum, |a, b| a + b, 0);
        assert_eq!(single, multi);
        assert_eq!(single, (0..100_000u64).sum::<u64>());
    }

    #[test]
    fn run_blocks_empty_input() {
        let r = run_blocks(0, ThreadingPolicy::multi8(), |_, _| 1u64, |a, b| a + b, 0);
        assert_eq!(r, 0);
    }

    #[test]
    fn run_blocks_policies_are_bit_identical() {
        // Floating-point fold order is fixed by the morsel partition, so
        // every policy produces the same bits — not just "close" sums.
        let data: Vec<f64> = (0..300_000).map(|i| (i as f64).cos()).collect();
        let work = |lo: u64, hi: u64| data[lo as usize..hi as usize].iter().sum::<f64>();
        let single =
            run_blocks(data.len() as u64, ThreadingPolicy::Single, work, |a, b| a + b, 0.0);
        for threads in [2usize, 8, 32] {
            let multi = run_blocks(
                data.len() as u64,
                ThreadingPolicy::Multi { threads },
                work,
                |a, b| a + b,
                0.0,
            );
            assert_eq!(multi.to_bits(), single.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn policy_threads() {
        assert_eq!(ThreadingPolicy::Single.threads(), 1);
        assert_eq!(ThreadingPolicy::multi8().threads(), 8);
        assert_eq!(ThreadingPolicy::Multi { threads: 0 }.threads(), 1);
    }
}
