//! TPC-C-shaped schemas and deterministic data generators.
//!
//! Record shapes match the paper's setup exactly:
//! * customer — **21 fields, 96 bytes** per record;
//! * item — **4 fields of 20 bytes + an 8-byte price field** (28 bytes).
//!
//! Generation is seeded and index-deterministic: `customer(i)` always
//! produces the same record for the same seed, so engines loaded
//! independently hold identical data (the cross-engine equivalence tests
//! rely on this). Key selection uses TPC-C's NURand skew.

use htapg_core::prng::Prng;
use htapg_core::{DataType, Record, Schema, Value};

/// Customer attribute indices (by name, for readable call sites).
pub mod customer_attr {
    pub const C_ID: u16 = 0;
    pub const C_D_ID: u16 = 1;
    pub const C_W_ID: u16 = 2;
    pub const C_FIRST: u16 = 3;
    pub const C_MIDDLE: u16 = 4;
    pub const C_LAST: u16 = 5;
    pub const C_STREET_1: u16 = 6;
    pub const C_STREET_2: u16 = 7;
    pub const C_CITY: u16 = 8;
    pub const C_STATE: u16 = 9;
    pub const C_ZIP: u16 = 10;
    pub const C_PHONE: u16 = 11;
    pub const C_SINCE: u16 = 12;
    pub const C_CREDIT: u16 = 13;
    pub const C_CREDIT_LIM: u16 = 14;
    pub const C_DISCOUNT: u16 = 15;
    pub const C_BALANCE: u16 = 16;
    pub const C_YTD_PAYMENT: u16 = 17;
    pub const C_PAYMENT_CNT: u16 = 18;
    pub const C_DELIVERY_CNT: u16 = 19;
    pub const C_ACTIVE: u16 = 20;
}

/// Item attribute indices.
pub mod item_attr {
    pub const I_ID: u16 = 0;
    pub const I_IM_ID: u16 = 1;
    pub const I_NAME: u16 = 2;
    pub const I_DATA: u16 = 3;
    pub const I_PRICE: u16 = 4;
}

/// The 21-field, 96-byte customer schema.
pub fn customer_schema() -> Schema {
    Schema::of(&[
        ("c_id", DataType::Int64),           //  8
        ("c_d_id", DataType::Int32),         //  4
        ("c_w_id", DataType::Int32),         //  4
        ("c_first", DataType::Text(5)),      //  5
        ("c_middle", DataType::Text(2)),     //  2
        ("c_last", DataType::Text(5)),       //  5
        ("c_street_1", DataType::Text(5)),   //  5
        ("c_street_2", DataType::Text(5)),   //  5
        ("c_city", DataType::Text(4)),       //  4
        ("c_state", DataType::Text(2)),      //  2
        ("c_zip", DataType::Text(4)),        //  4
        ("c_phone", DataType::Text(5)),      //  5
        ("c_since", DataType::Date),         //  4
        ("c_credit", DataType::Text(2)),     //  2
        ("c_credit_lim", DataType::Float64), //  8
        ("c_discount", DataType::Float64),   //  8
        ("c_balance", DataType::Float64),    //  8
        ("c_ytd_payment", DataType::Int32),  //  4
        ("c_payment_cnt", DataType::Int32),  //  4
        ("c_delivery_cnt", DataType::Int32), //  4
        ("c_active", DataType::Bool),        //  1  => 96 bytes
    ])
}

/// The 5-field, 28-byte item schema (20 B + 8 B price).
pub fn item_schema() -> Schema {
    Schema::of(&[
        ("i_id", DataType::Int64),      //  8
        ("i_im_id", DataType::Int32),   //  4
        ("i_name", DataType::Text(6)),  //  6
        ("i_data", DataType::Text(2)),  //  2  => 20 bytes
        ("i_price", DataType::Float64), //  8  => 28 bytes
    ])
}

/// TPC-C last-name syllables.
const SYLLABLES: [&str; 10] =
    ["BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"];

/// TPC-C last name for a number in 0..=999, truncated to the fixed field.
pub fn c_last(num: u32) -> String {
    let n = num % 1000;
    let mut s = String::new();
    s.push_str(SYLLABLES[(n / 100) as usize]);
    s.push_str(SYLLABLES[(n / 10 % 10) as usize]);
    s.push_str(SYLLABLES[(n % 10) as usize]);
    s.truncate(5);
    s
}

/// TPC-C non-uniform random: NURand(A, x, y) with run-time constant `c`.
pub fn nurand(rng: &mut Prng, a: u64, c: u64, x: u64, y: u64) -> u64 {
    let r1 = rng.gen_range(0..=a);
    let r2 = rng.gen_range(x..=y);
    (((r1 | r2) + c) % (y - x + 1)) + x
}

/// Deterministic, seeded generator of customer and item records.
#[derive(Debug, Clone)]
pub struct Generator {
    seed: u64,
    /// NURand C constant, fixed per generator.
    pub c_const: u64,
}

impl Generator {
    pub fn new(seed: u64) -> Self {
        Generator { seed, c_const: seed.wrapping_mul(0x9E3779B9) % 256 }
    }

    fn rng_for(&self, stream: u64, index: u64) -> Prng {
        Prng::seed_from_u64(self.seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F) ^ index)
    }

    /// The `i`-th customer record (index-deterministic).
    pub fn customer(&self, i: u64) -> Record {
        let mut rng = self.rng_for(1, i);
        vec![
            Value::Int64(i as i64),
            Value::Int32((i % 10) as i32 + 1),
            Value::Int32((i % 4) as i32 + 1),
            Value::Text(format!("f{:03}", rng.gen_range(0..1000))),
            Value::Text("OE".into()),
            Value::Text(c_last(rng.gen_range(0u32..1000))),
            Value::Text(format!("s{:03}", rng.gen_range(0..1000))),
            Value::Text(format!("t{:03}", rng.gen_range(0..1000))),
            Value::Text(format!("c{:02}", rng.gen_range(0..100))),
            Value::Text(["CA", "NY", "TX", "WA"][rng.gen_range(0usize..4)].into()),
            Value::Text(format!("{:04}", rng.gen_range(0..10000))),
            Value::Text(format!("{:05}", rng.gen_range(0..100000))),
            Value::Date(rng.gen_range(10_000..20_000)),
            Value::Text(if rng.gen_bool(0.9) { "GC" } else { "BC" }.into()),
            Value::Float64(50_000.0),
            Value::Float64(rng.gen_range(0.0..0.5)),
            Value::Float64(rng.gen_range(-1_000.0..10_000.0)),
            Value::Int32(rng.gen_range(0..1_000_000)),
            Value::Int32(rng.gen_range(1..100)),
            Value::Int32(rng.gen_range(0..50)),
            Value::Bool(rng.gen_bool(0.95)),
        ]
    }

    /// The `i`-th item record (index-deterministic).
    pub fn item(&self, i: u64) -> Record {
        let mut rng = self.rng_for(2, i);
        vec![
            Value::Int64(i as i64),
            Value::Int32(rng.gen_range(1..10_000)),
            Value::Text(format!("it{:04}", rng.gen_range(0..10_000))),
            Value::Text(if rng.gen_bool(0.1) { "OR" } else { "NO" }.into()),
            Value::Float64((rng.gen_range(100..10_000) as f64) / 100.0),
        ]
    }

    /// A NURand-skewed customer row id in `0..n` (hot keys get more
    /// traffic, as TPC-C prescribes).
    pub fn skewed_row(&self, rng: &mut Prng, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        nurand(rng, 1023, self.c_const, 0, n - 1) % n
    }

    /// Exact analytic sum of `i_price` over items `0..n` (for verification
    /// without scanning).
    pub fn expected_item_price_sum(&self, n: u64) -> f64 {
        (0..n)
            .map(|i| match &self.item(i)[item_attr::I_PRICE as usize] {
                Value::Float64(p) => *p,
                _ => unreachable!(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn customer_is_21_fields_96_bytes() {
        let s = customer_schema();
        assert_eq!(s.arity(), 21, "paper: 21 fields");
        assert_eq!(s.tuple_width(), 96, "paper: 96 bytes");
    }

    #[test]
    fn item_is_20_plus_8_bytes() {
        let s = item_schema();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.tuple_width(), 28, "paper: 20 B + 8 B price");
        let price_w = s.ty(item_attr::I_PRICE).unwrap().width();
        assert_eq!(price_w, 8);
        assert_eq!(s.tuple_width() - price_w, 20);
    }

    #[test]
    fn records_validate_against_schemas() {
        let g = Generator::new(42);
        let cs = customer_schema();
        let is = item_schema();
        for i in 0..100 {
            cs.check_record(&g.customer(i)).unwrap();
            is.check_record(&g.item(i)).unwrap();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Generator::new(7);
        let b = Generator::new(7);
        for i in [0u64, 5, 99, 12345] {
            assert_eq!(a.customer(i), b.customer(i));
            assert_eq!(a.item(i), b.item(i));
        }
        let c = Generator::new(8);
        assert_ne!(a.customer(3), c.customer(3));
    }

    #[test]
    fn c_last_matches_tpcc_syllables() {
        assert_eq!(c_last(0), "BARBA"); // BAR BAR BAR truncated to 5
        assert!(c_last(371).starts_with("PRI"));
    }

    #[test]
    fn nurand_stays_in_range_and_skews() {
        let g = Generator::new(1);
        let mut rng = Prng::seed_from_u64(99);
        let n = 10_000u64;
        let mut counts = vec![0u32; 16];
        for _ in 0..20_000 {
            let r = g.skewed_row(&mut rng, n);
            assert!(r < n);
            counts[(r * 16 / n) as usize] += 1;
        }
        // All buckets hit (coverage), but not uniformly (skew).
        assert!(counts.iter().all(|&c| c > 0));
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min > 1.05, "expected skew, got {counts:?}");
    }

    #[test]
    fn prices_are_in_tpcc_range() {
        let g = Generator::new(3);
        for i in 0..1000 {
            match &g.item(i)[item_attr::I_PRICE as usize] {
                Value::Float64(p) => assert!((1.0..=100.0).contains(p), "price {p}"),
                _ => panic!(),
            }
        }
    }

    #[test]
    fn expected_sum_matches_manual() {
        let g = Generator::new(11);
        let n = 500;
        let manual: f64 =
            (0..n).map(|i| g.item(i)[item_attr::I_PRICE as usize].as_f64().unwrap()).sum();
        assert_eq!(g.expected_item_price_sum(n), manual);
    }
}
