//! The HTAP driver: concurrent transactional + analytical load against any
//! [`StorageEngine`], with per-class latency/throughput metrics.
//!
//! This is the workload of the paper's challenge (b.iii): "efficient
//! processing of both workload types without interferences between
//! long-running ad-hoc analytic queries and massive short-living
//! write-intensive transactional queries."

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use htapg_core::engine::StorageEngine;
use htapg_core::plan::LogicalPlan;
use htapg_core::{obs, AttrId, Error, RelationId, Result, Value};
use htapg_exec::threading::ThreadingPolicy;
use htapg_exec::{physical, pool};

use crate::queries::Op;

/// Registry handles for the driver's hot path, resolved once.
struct DriverMetrics {
    oltp_latency: Arc<obs::Histogram>,
    olap_latency: Arc<obs::Histogram>,
    cross_class_steals: Arc<obs::Counter>,
}

fn driver_metrics() -> &'static DriverMetrics {
    static METRICS: OnceLock<DriverMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let m = obs::metrics();
        DriverMetrics {
            oltp_latency: m.histogram("query.oltp.latency_ns"),
            olap_latency: m.histogram("query.olap.latency_ns"),
            cross_class_steals: m.counter("driver.cross_class_steals"),
        }
    })
}

/// Aggregated metrics for one operation class.
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassMetrics {
    pub ops: u64,
    pub total_ns: u64,
    pub max_ns: u64,
    pub errors: u64,
}

impl ClassMetrics {
    pub fn mean_ns(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.ops as f64
        }
    }

    /// Operations per second over the class's busy time.
    pub fn throughput(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.ops as f64 * 1e9 / self.total_ns as f64
        }
    }

    fn record(&mut self, ns: u64) {
        self.ops += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    fn merge(&mut self, other: ClassMetrics) {
        self.ops += other.ops;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.errors += other.errors;
    }
}

/// Full report of a driver run.
#[derive(Debug, Clone, Copy, Default)]
pub struct HtapReport {
    pub oltp: ClassMetrics,
    pub olap: ClassMetrics,
    /// Wall-clock duration of the whole run.
    pub wall_ns: u64,
}

impl HtapReport {
    pub fn render(&self) -> String {
        format!(
            "OLTP: {} ops, {:.1} kops/s, mean {:.1} µs, max {:.1} µs, {} errors\n\
             OLAP: {} scans, mean {:.2} ms, max {:.2} ms, {} errors\n\
             wall: {:.1} ms",
            self.oltp.ops,
            self.oltp.throughput() / 1e3,
            self.oltp.mean_ns() / 1e3,
            self.oltp.max_ns as f64 / 1e3,
            self.oltp.errors,
            self.olap.ops,
            self.olap.mean_ns() / 1e6,
            self.olap.max_ns as f64 / 1e6,
            self.olap.errors,
            self.wall_ns as f64 / 1e6,
        )
    }
}

/// Build the logical plan for one workload op: every variant of [`Op`] is
/// expressed in the plan IR — the driver holds no direct engine-method
/// dispatch.
fn logical_for(rel: RelationId, op: &Op) -> LogicalPlan {
    match op {
        Op::Materialize(positions) => LogicalPlan::Materialize { rel, rows: positions.clone() },
        Op::PointRead(row) => LogicalPlan::PointRead { rel, row: *row },
        Op::UpdateField { row, attr, value } => {
            LogicalPlan::Update { rel, row: *row, attr: *attr, value: value.clone() }
        }
        Op::SumColumn(attr) => LogicalPlan::sum(rel, *attr),
        Op::GroupSum { key_attr, value_attr } => {
            LogicalPlan::group_sum(rel, *key_attr, *value_attr)
        }
    }
}

/// Execute one op against the engine (shared by sequential and concurrent
/// drivers). Returns whether the op was analytic.
///
/// Every op is lowered to a [`LogicalPlan`], routed by the engine's
/// cost-based planner ([`StorageEngine::plan`]) and interpreted by the
/// physical executor — the same path the repro binary and benches take.
///
/// Each op runs under a `query.{class}.{kind}` span, and its *virtual*
/// latency (the engine's [`StorageEngine::trace_clock`] delta, when the
/// engine has one) lands in the `query.{class}.latency_ns` histogram — so
/// dashboard percentiles are a function of the seed, not host scheduling.
pub fn execute_op(engine: &dyn StorageEngine, rel: RelationId, op: &Op) -> Result<bool> {
    let name = match op {
        Op::Materialize(_) => "query.oltp.materialize",
        Op::PointRead(_) => "query.oltp.point_read",
        Op::UpdateField { .. } => "query.oltp.update_field",
        Op::SumColumn(_) => "query.olap.sum_column",
        Op::GroupSum { .. } => "query.olap.group_sum",
    };
    let clock = engine.trace_clock();
    let v0 = clock.as_ref().map(|c| c.now_ns());
    let _span = obs::span("query", name);
    // The driver's workers are themselves pool tasks, so routed host work
    // stays on the issuing thread rather than re-entering the pool.
    // Adaptive execution observes each op's residual into the engine's
    // calibration profiles (when it has any) and replans on divergence,
    // so a live mixed workload continuously corrects the cost model.
    let result = physical::execute_adaptive(engine, &logical_for(rel, op), ThreadingPolicy::Single)
        .map(|_| op.is_analytic());
    if let (Some(clock), Some(v0)) = (clock, v0) {
        let m = driver_metrics();
        let hist = if op.is_analytic() { &m.olap_latency } else { &m.oltp_latency };
        hist.record(clock.now_ns().saturating_sub(v0));
    }
    result
}

/// Plan-routed group-by: sum `value_attr` grouped by the integer
/// `key_attr`, ordered by key. A thin wrapper over the planner + physical
/// executor, kept for callers that want the grouped result directly.
pub fn group_sum(
    engine: &dyn StorageEngine,
    rel: RelationId,
    key_attr: u16,
    value_attr: u16,
) -> Result<Vec<(i64, f64)>> {
    let plan = engine.plan(&LogicalPlan::group_sum(rel, key_attr, value_attr))?;
    match physical::execute(engine, &plan, ThreadingPolicy::Single)? {
        physical::QueryOutput::Groups(groups) => Ok(groups),
        other => Err(Error::Internal(format!("group-sum plan returned {other:?}"))),
    }
}

/// Run a pre-generated op stream sequentially, timing each op.
pub fn run_sequential(engine: &dyn StorageEngine, rel: RelationId, ops: &[Op]) -> HtapReport {
    let mut report = HtapReport::default();
    let wall = Instant::now();
    for op in ops {
        let t = Instant::now();
        let outcome = execute_op(engine, rel, op);
        let ns = t.elapsed().as_nanos() as u64;
        let class = if op.is_analytic() { &mut report.olap } else { &mut report.oltp };
        class.record(ns);
        if outcome.is_err() {
            class.errors += 1;
        }
    }
    report.wall_ns = wall.elapsed().as_nanos() as u64;
    report
}

/// Concurrent HTAP run: `oltp_threads` workers drain the transactional ops
/// while `olap_threads` workers drain the analytic ops, all against the
/// same engine.
///
/// The workers are logical tasks on the persistent
/// [`htapg_exec::pool`] — nothing is spawned per call. The first
/// `oltp_threads` tasks start on the transactional queue, the rest on the
/// analytic queue; a task whose queue drains helps the other, so every op
/// completes no matter how many pool threads are actually free, and
/// metrics are attributed by the *op's* class rather than the worker's.
pub fn run_concurrent(
    engine: &dyn StorageEngine,
    rel: RelationId,
    ops: &[Op],
    oltp_threads: usize,
    olap_threads: usize,
) -> HtapReport {
    let oltp_ops: Vec<&Op> = ops.iter().filter(|o| !o.is_analytic()).collect();
    let olap_ops: Vec<&Op> = ops.iter().filter(|o| o.is_analytic()).collect();
    let oltp_cursor = AtomicU64::new(0);
    let olap_cursor = AtomicU64::new(0);
    let oltp_total = Mutex::new(ClassMetrics::default());
    let olap_total = Mutex::new(ClassMetrics::default());
    let oltp_threads = oltp_threads.max(1);
    let workers = oltp_threads + olap_threads.max(1);

    let wall = Instant::now();
    pool::run_tasks(workers as u64, workers, |task| {
        let mut oltp_local = ClassMetrics::default();
        let mut olap_local = ClassMetrics::default();
        let queues: [(&[&Op], &AtomicU64); 2] = if (task as usize) < oltp_threads {
            [(&oltp_ops, &oltp_cursor), (&olap_ops, &olap_cursor)]
        } else {
            [(&olap_ops, &olap_cursor), (&oltp_ops, &oltp_cursor)]
        };
        for (qi, (queue, cursor)) in queues.into_iter().enumerate() {
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= queue.len() {
                    break;
                }
                // A claim from the non-primary queue is a cross-class
                // steal: the worker's own class drained, it helps the
                // other.
                if qi == 1 {
                    driver_metrics().cross_class_steals.inc();
                }
                let op = queue[i];
                let t = Instant::now();
                let r = execute_op(engine, rel, op);
                let ns = t.elapsed().as_nanos() as u64;
                let m = if op.is_analytic() { &mut olap_local } else { &mut oltp_local };
                m.record(ns);
                if r.is_err() {
                    m.errors += 1;
                }
            }
        }
        oltp_total.lock().expect("metrics lock").merge(oltp_local);
        olap_total.lock().expect("metrics lock").merge(olap_local);
    });
    HtapReport {
        oltp: oltp_total.into_inner().expect("metrics lock"),
        olap: olap_total.into_inner().expect("metrics lock"),
        wall_ns: wall.elapsed().as_nanos() as u64,
    }
}

/// Load `n` generated customers into a fresh relation of `engine`.
pub fn load_customers(
    engine: &dyn StorageEngine,
    gen: &crate::tpcc::Generator,
    n: u64,
) -> Result<RelationId> {
    let rel = engine.create_relation(crate::tpcc::customer_schema())?;
    for i in 0..n {
        engine.insert(rel, &gen.customer(i))?;
    }
    Ok(rel)
}

/// Load `n` generated items into a fresh relation of `engine`.
pub fn load_items(
    engine: &dyn StorageEngine,
    gen: &crate::tpcc::Generator,
    n: u64,
) -> Result<RelationId> {
    let rel = engine.create_relation(crate::tpcc::item_schema())?;
    for i in 0..n {
        engine.insert(rel, &gen.item(i))?;
    }
    Ok(rel)
}

/// Apply a burst of `w` single-field updates to `w` *distinct* rows
/// starting at `offset` (wrapping at `rows`), deterministic in
/// `(offset, salt)`. This is the write half of an HTAP write-rate sweep:
/// replaying the same burst against two engines keeps their tables
/// bit-identical, and the distinct-row guarantee (for `w <= rows`) makes
/// the burst's device-replica staleness exactly `w` rows.
pub fn apply_write_burst(
    engine: &dyn StorageEngine,
    rel: RelationId,
    attr: AttrId,
    rows: u64,
    offset: u64,
    w: u64,
    salt: u64,
) -> Result<()> {
    for i in 0..w {
        let row = (offset + i) % rows;
        let v = Value::Float64((row % 89) as f64 * 1.25 + salt as f64);
        engine.update_field(rel, row, attr, &v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{mixed_stream, MixConfig};
    use crate::tpcc::Generator;
    use htapg_core::engine::MaintenanceReport;
    use htapg_core::sync::RwLock;
    use htapg_core::{AttrId, LayoutTemplate, Record, Relation, RowId, Schema, Value};
    use htapg_taxonomy::{survey, Classification};

    /// Minimal engine for driver tests.
    struct Mem {
        rels: RwLock<Vec<Relation>>,
    }

    impl Mem {
        fn new() -> Self {
            Mem { rels: RwLock::new(Vec::new()) }
        }
    }

    impl StorageEngine for Mem {
        fn name(&self) -> &'static str {
            "MEM"
        }
        fn classification(&self) -> Classification {
            survey::pax()
        }
        fn create_relation(&self, schema: Schema) -> htapg_core::Result<u32> {
            let template = LayoutTemplate::nsm(&schema);
            let mut rels = self.rels.write();
            rels.push(Relation::new(schema, template)?);
            Ok(rels.len() as u32 - 1)
        }
        fn schema(&self, rel: u32) -> htapg_core::Result<Schema> {
            Ok(self.rels.read()[rel as usize].schema().clone())
        }
        fn insert(&self, rel: u32, record: &Record) -> htapg_core::Result<RowId> {
            self.rels.write()[rel as usize].insert(record)
        }
        fn read_record(&self, rel: u32, row: RowId) -> htapg_core::Result<Record> {
            self.rels.read()[rel as usize].read_record(row)
        }
        fn read_field(&self, rel: u32, row: RowId, attr: AttrId) -> htapg_core::Result<Value> {
            self.rels.read()[rel as usize].read_value(
                row,
                attr,
                htapg_core::AccessHint::RecordCentric,
            )
        }
        fn update_field(
            &self,
            rel: u32,
            row: RowId,
            attr: AttrId,
            value: &Value,
        ) -> htapg_core::Result<()> {
            self.rels.write()[rel as usize].update_field(row, attr, value)
        }
        fn scan_column(
            &self,
            rel: u32,
            attr: AttrId,
            visit: &mut dyn FnMut(RowId, &Value),
        ) -> htapg_core::Result<()> {
            let rels = self.rels.read();
            let r = &rels[rel as usize];
            let ty = r.schema().ty(attr)?;
            r.for_each_field(attr, |row, bytes| visit(row, &Value::decode(ty, bytes)))
        }
        fn row_count(&self, rel: u32) -> htapg_core::Result<u64> {
            Ok(self.rels.read()[rel as usize].row_count())
        }
        fn maintain(&self) -> htapg_core::Result<MaintenanceReport> {
            Ok(MaintenanceReport::default())
        }
    }

    #[test]
    fn sequential_run_counts_classes() {
        let engine = Mem::new();
        let gen = Generator::new(1);
        let rel = load_customers(&engine, &gen, 500).unwrap();
        let ops = mixed_stream(&gen, 2, 500, 200, &MixConfig::default());
        let report = run_sequential(&engine, rel, &ops);
        assert_eq!(report.oltp.ops + report.olap.ops, 200);
        assert_eq!(report.oltp.errors, 0);
        assert_eq!(report.olap.errors, 0);
        assert!(report.wall_ns > 0);
        assert!(report.render().contains("OLTP"));
    }

    #[test]
    fn concurrent_run_completes_all_ops() {
        let engine = Mem::new();
        let gen = Generator::new(1);
        let rel = load_customers(&engine, &gen, 300).unwrap();
        let ops = mixed_stream(
            &gen,
            3,
            300,
            400,
            &MixConfig { olap_fraction: 0.05, ..Default::default() },
        );
        let report = run_concurrent(&engine, rel, &ops, 4, 1);
        assert_eq!(report.oltp.ops + report.olap.ops, 400);
        assert_eq!(report.oltp.errors + report.olap.errors, 0);
    }

    #[test]
    fn group_sum_matches_manual_grouping() {
        let engine = Mem::new();
        let gen = Generator::new(8);
        let rel = load_customers(&engine, &gen, 300).unwrap();
        let groups = group_sum(
            &engine,
            rel,
            crate::tpcc::customer_attr::C_D_ID,
            crate::tpcc::customer_attr::C_BALANCE,
        )
        .unwrap();
        // Manual oracle.
        let mut expect: std::collections::HashMap<i64, f64> = std::collections::HashMap::new();
        for i in 0..300 {
            let rec = gen.customer(i);
            let k = rec[crate::tpcc::customer_attr::C_D_ID as usize].as_i64().unwrap();
            let v = rec[crate::tpcc::customer_attr::C_BALANCE as usize].as_f64().unwrap();
            *expect.entry(k).or_insert(0.0) += v;
        }
        assert_eq!(groups.len(), expect.len());
        for (k, sum) in groups {
            assert!((sum - expect[&k]).abs() < 1e-6, "group {k}");
        }
    }

    #[test]
    fn streams_include_group_bys() {
        let gen = Generator::new(5);
        let cfg = MixConfig { olap_fraction: 0.5, group_fraction: 0.5, ..Default::default() };
        let ops = mixed_stream(&gen, 1, 100, 2000, &cfg);
        assert!(ops.iter().any(|o| matches!(o, Op::GroupSum { .. })));
        // And the driver executes them without error.
        let engine = Mem::new();
        let rel = load_customers(&engine, &gen, 100).unwrap();
        let report = run_sequential(&engine, rel, &ops[..200]);
        assert_eq!(report.olap.errors + report.oltp.errors, 0);
    }

    #[test]
    fn loaders_populate() {
        let engine = Mem::new();
        let gen = Generator::new(4);
        let c = load_customers(&engine, &gen, 50).unwrap();
        let i = load_items(&engine, &gen, 70).unwrap();
        assert_eq!(engine.row_count(c).unwrap(), 50);
        assert_eq!(engine.row_count(i).unwrap(), 70);
        // Sum over the engine matches the generator's analytic expectation.
        let sum = engine.sum_column_f64(i, crate::tpcc::item_attr::I_PRICE).unwrap();
        assert!((sum - gen.expected_item_price_sum(70)).abs() < 1e-9);
    }
}
