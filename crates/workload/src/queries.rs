//! Query streams: the record-centric (Q1) and attribute-centric (Q2)
//! operations of Section II, plus mixed HTAP streams.

use htapg_core::prng::Prng;
use htapg_core::{AttrId, RowId, Value};

use crate::tpcc::{customer_attr, Generator};

/// One operation of an HTAP stream.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Record-centric: materialize all fields of these rows (Q1 after the
    /// preceding join produced a position list).
    Materialize(Vec<RowId>),
    /// Attribute-centric: sum one column over the whole relation (Q2).
    SumColumn(AttrId),
    /// OLTP write: set `attr` of `row` to `value`.
    UpdateField { row: RowId, attr: AttrId, value: Value },
    /// OLTP point read of one record.
    PointRead(RowId),
    /// Attribute-centric group-by: sum `value_attr` grouped by `key_attr`.
    GroupSum { key_attr: AttrId, value_attr: AttrId },
}

impl Op {
    pub fn is_write(&self) -> bool {
        matches!(self, Op::UpdateField { .. })
    }

    pub fn is_analytic(&self) -> bool {
        matches!(self, Op::SumColumn(_) | Op::GroupSum { .. })
    }
}

/// Draw `k` distinct sorted positions from `0..n` (the paper's "sorted
/// position lists" produced by the upstream join).
pub fn sorted_positions(rng: &mut Prng, n: u64, k: usize) -> Vec<RowId> {
    if n == 0 {
        return Vec::new();
    }
    let mut set = std::collections::BTreeSet::new();
    while set.len() < k.min(n as usize) {
        set.insert(rng.gen_range(0..n));
    }
    set.into_iter().collect()
}

/// Configuration of a mixed stream over the customer table.
#[derive(Debug, Clone)]
pub struct MixConfig {
    /// Fraction of analytic ops (column sums); the rest is transactional.
    pub olap_fraction: f64,
    /// Within OLTP, fraction of writes (vs point reads).
    pub write_fraction: f64,
    /// Positions per materialize op (the paper uses 150).
    pub positions_per_materialize: usize,
    /// Column summed by analytic ops (default: `c_balance`).
    pub sum_attr: AttrId,
    /// Within analytic ops, fraction that are group-by aggregations
    /// (grouped by `group_attr`) rather than plain sums.
    pub group_fraction: f64,
    /// Grouping key for group-by ops (default: `c_d_id`).
    pub group_attr: AttrId,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            olap_fraction: 0.1,
            write_fraction: 0.5,
            positions_per_materialize: 150,
            sum_attr: customer_attr::C_BALANCE,
            group_fraction: 0.25,
            group_attr: customer_attr::C_D_ID,
        }
    }
}

/// Generate a deterministic mixed HTAP stream of `len` ops over a table of
/// `rows` rows, with NURand-skewed OLTP keys.
pub fn mixed_stream(gen: &Generator, seed: u64, rows: u64, len: usize, cfg: &MixConfig) -> Vec<Op> {
    let mut rng = Prng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        if rng.gen_bool(cfg.olap_fraction) {
            if rng.gen_bool(cfg.group_fraction) {
                out.push(Op::GroupSum { key_attr: cfg.group_attr, value_attr: cfg.sum_attr });
            } else {
                out.push(Op::SumColumn(cfg.sum_attr));
            }
        } else if rng.gen_bool(cfg.write_fraction) {
            let row = gen.skewed_row(&mut rng, rows);
            out.push(Op::UpdateField {
                row,
                attr: customer_attr::C_BALANCE,
                value: Value::Float64(rng.gen_range(-500.0..500.0)),
            });
        } else {
            out.push(Op::PointRead(gen.skewed_row(&mut rng, rows)));
        }
    }
    out
}

/// A pure record-centric stream: repeated materializations of `k` rows,
/// as in Figure 2's first panel.
pub fn materialize_stream(seed: u64, rows: u64, k: usize, reps: usize) -> Vec<Op> {
    let mut rng = Prng::seed_from_u64(seed);
    (0..reps).map(|_| Op::Materialize(sorted_positions(&mut rng, rows, k))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_positions_are_sorted_and_distinct() {
        let mut rng = Prng::seed_from_u64(1);
        let pos = sorted_positions(&mut rng, 1_000_000, 150);
        assert_eq!(pos.len(), 150);
        for w in pos.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(pos.iter().all(|&p| p < 1_000_000));
    }

    #[test]
    fn positions_capped_by_table_size() {
        let mut rng = Prng::seed_from_u64(1);
        assert_eq!(sorted_positions(&mut rng, 10, 150).len(), 10);
        assert!(sorted_positions(&mut rng, 0, 5).is_empty());
    }

    #[test]
    fn mixed_stream_respects_fractions_roughly() {
        let gen = Generator::new(5);
        let cfg = MixConfig { olap_fraction: 0.2, write_fraction: 0.5, ..Default::default() };
        let ops = mixed_stream(&gen, 9, 10_000, 10_000, &cfg);
        let olap = ops.iter().filter(|o| o.is_analytic()).count();
        let writes = ops.iter().filter(|o| o.is_write()).count();
        assert!((1500..2500).contains(&olap), "olap={olap}");
        assert!((3000..5000).contains(&writes), "writes={writes}");
    }

    #[test]
    fn mixed_stream_is_deterministic() {
        let gen = Generator::new(5);
        let cfg = MixConfig::default();
        let a = mixed_stream(&gen, 1, 1000, 100, &cfg);
        let b = mixed_stream(&gen, 1, 1000, 100, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn materialize_stream_shape() {
        let ops = materialize_stream(3, 1000, 150, 10);
        assert_eq!(ops.len(), 10);
        for op in &ops {
            match op {
                Op::Materialize(pos) => assert_eq!(pos.len(), 150),
                _ => panic!("unexpected op"),
            }
        }
    }
}
