//! # htapg-workload
//!
//! Workload substrate: TPC-C-shaped data generators and an HTAP
//! mixed-workload driver.
//!
//! The paper's experiments (Section II-B) "run both materialization and
//! summing on records stored in the customer- resp. item table of the
//! popular TPC-C benchmark dataset", with "a customer record \[of\] 96 bytes
//! for 21 fields, and an item record \[of\] 20 bytes for 4 fields + 8 bytes
//! for the price field". [`tpcc`] reproduces exactly those record shapes;
//! [`queries`] produces the record- and attribute-centric access streams;
//! [`driver`] mixes them into a concurrent HTAP load against any
//! [`htapg_core::engine::StorageEngine`].

pub mod driver;
pub mod queries;
pub mod tpcc;
