//! Randomized property tests for the simulated-hardware substrates,
//! driven by the deterministic in-repo [`Prng`] (seed honors `HTAPG_SEED`,
//! printed on failure).

use htapg_core::prng::{check_cases, Prng};
use htapg_device::cluster::SimCluster;
use htapg_device::disk::SimDisk;
use htapg_device::kernels::{self, tree_sum};
use htapg_device::{DeviceSpec, SimDevice};

fn upload_f64(device: &SimDevice, values: &[f64]) -> htapg_device::BufferId {
    let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    device.upload(&bytes).unwrap()
}

fn arb_finite_f64(rng: &mut Prng) -> f64 {
    loop {
        let v = f64::from_bits(rng.next_u64());
        if v.is_finite() {
            return v;
        }
    }
}

#[test]
fn reduction_is_accurate_and_deterministic() {
    check_cases("reduction_is_accurate_and_deterministic", 64, 0xDE71_CE01, |_, rng| {
        let values: Vec<f64> =
            (0..rng.gen_range(0usize..2000)).map(|_| rng.gen_range(-1e6..1e6)).collect();
        let device = SimDevice::with_defaults();
        let buf = upload_f64(&device, &values);
        let a = kernels::reduce_sum_f64(&device, buf).unwrap();
        let b = kernels::reduce_sum_f64(&device, buf).unwrap();
        assert_eq!(a.to_bits(), b.to_bits(), "bit-determinism");
        let reference: f64 = values.iter().sum();
        assert!((a - reference).abs() <= 1e-9 * reference.abs().max(1.0) + 1e-6);
        // Tree order equals the kernel's result exactly for the same split.
        assert!((tree_sum(&values) - a).abs() <= 1e-9 * reference.abs().max(1.0) + 1e-6);
    });
}

#[test]
fn gather_matches_model() {
    check_cases("gather_matches_model", 64, 0xDE71_CE02, |_, rng| {
        let values: Vec<f64> =
            (0..rng.gen_range(1usize..200)).map(|_| arb_finite_f64(rng)).collect();
        let picks: Vec<u16> =
            (0..rng.gen_range(0usize..50)).map(|_| rng.next_u64() as u16).collect();
        let device = SimDevice::with_defaults();
        let buf = upload_f64(&device, &values);
        let positions: Vec<u64> = picks.iter().map(|&p| p as u64 % values.len() as u64).collect();
        let out = kernels::gather(&device, buf, 8, &positions).unwrap();
        let bytes = device.download(out).unwrap();
        let got: Vec<f64> =
            bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        let want: Vec<f64> = positions.iter().map(|&p| values[p as usize]).collect();
        assert_eq!(got, want);
    });
}

#[test]
fn filter_matches_model() {
    check_cases("filter_matches_model", 64, 0xDE71_CE03, |_, rng| {
        let values: Vec<f64> =
            (0..rng.gen_range(0usize..300)).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let threshold = rng.gen_range(-100.0..100.0);
        let device = SimDevice::with_defaults();
        let buf = upload_f64(&device, &values);
        let got = kernels::filter_f64(&device, buf, |v| v > threshold).unwrap();
        let want: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > threshold)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(got, want);
    });
}

#[test]
fn allocator_accounting_never_drifts() {
    check_cases("allocator_accounting_never_drifts", 64, 0xDE71_CE04, |_, rng| {
        let sizes: Vec<usize> =
            (0..rng.gen_range(1usize..40)).map(|_| rng.gen_range(1usize..64_000)).collect();
        let device = SimDevice::new(0, DeviceSpec::default());
        let mut live = Vec::new();
        let mut expected = 0usize;
        for (i, &len) in sizes.iter().enumerate() {
            let buf = device.alloc(len).unwrap();
            expected += len;
            live.push((buf, len));
            assert_eq!(device.used_bytes(), expected);
            // Free every third allocation as we go.
            if i % 3 == 2 {
                let (b, l) = live.remove(0);
                device.free(b).unwrap();
                expected -= l;
                assert_eq!(device.used_bytes(), expected);
            }
        }
        for (b, l) in live {
            device.free(b).unwrap();
            expected -= l;
        }
        assert_eq!(device.used_bytes(), 0);
        assert_eq!(expected, 0);
    });
}

#[test]
fn upload_download_identity() {
    check_cases("upload_download_identity", 64, 0xDE71_CE05, |_, rng| {
        let payload: Vec<u8> =
            (0..rng.gen_range(0usize..8192)).map(|_| rng.next_u64() as u8).collect();
        let device = SimDevice::with_defaults();
        let buf = device.upload(&payload).unwrap();
        assert_eq!(device.download(buf).unwrap(), payload);
    });
}

#[test]
fn disk_pages_roundtrip() {
    check_cases("disk_pages_roundtrip", 64, 0xDE71_CE06, |_, rng| {
        let pages: Vec<(u64, Vec<u8>)> = (0..rng.gen_range(1usize..30))
            .map(|_| {
                let page = rng.gen_range(0u64..64);
                let data: Vec<u8> =
                    (0..rng.gen_range(0usize..512)).map(|_| rng.next_u64() as u8).collect();
                (page, data)
            })
            .collect();
        let disk = SimDisk::with_defaults(0);
        let mut model = std::collections::HashMap::new();
        for (page, data) in &pages {
            disk.write_page(*page, data).unwrap();
            model.insert(*page, data.clone());
        }
        for (page, data) in &model {
            assert_eq!(&disk.read_page(*page).unwrap(), data);
        }
    });
}

#[test]
fn cluster_blobs_roundtrip_and_ship() {
    check_cases("cluster_blobs_roundtrip_and_ship", 64, 0xDE71_CE07, |_, rng| {
        let blobs: Vec<(String, Vec<u8>)> = (0..rng.gen_range(1usize..20))
            .map(|_| {
                let len = rng.gen_range(1usize..=6);
                let key: String = std::iter::once('k')
                    .chain((0..len).map(|_| rng.gen_range(b'a'..=b'z') as char))
                    .collect();
                let data: Vec<u8> =
                    (0..rng.gen_range(0usize..256)).map(|_| rng.next_u64() as u8).collect();
                (key, data)
            })
            .collect();
        let cluster = SimCluster::with_defaults(3);
        let mut model = std::collections::HashMap::new();
        for (key, data) in &blobs {
            let home = cluster.place(key);
            cluster.node(home).unwrap().put(key.clone(), data.clone());
            model.insert(key.clone(), data.clone());
        }
        for (key, data) in &model {
            let home = cluster.place(key);
            // Fetch from the coordinator.
            assert_eq!(&cluster.fetch(0, home, key).unwrap(), data);
            // Ship to another node and read it there.
            let dest = (home + 1) % 3;
            cluster.ship(home, key, dest).unwrap();
            assert_eq!(&cluster.node(dest).unwrap().get(key).unwrap(), data);
        }
    });
}
