//! Property-based tests for the simulated-hardware substrates.

use proptest::collection::vec;
use proptest::prelude::*;

use htapg_device::cluster::SimCluster;
use htapg_device::disk::SimDisk;
use htapg_device::kernels::{self, tree_sum};
use htapg_device::{DeviceSpec, SimDevice};

fn upload_f64(device: &SimDevice, values: &[f64]) -> htapg_device::BufferId {
    let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    device.upload(&bytes).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn reduction_is_accurate_and_deterministic(values in vec(-1e6f64..1e6, 0..2000)) {
        let device = SimDevice::with_defaults();
        let buf = upload_f64(&device, &values);
        let a = kernels::reduce_sum_f64(&device, buf).unwrap();
        let b = kernels::reduce_sum_f64(&device, buf).unwrap();
        prop_assert_eq!(a.to_bits(), b.to_bits(), "bit-determinism");
        let reference: f64 = values.iter().sum();
        prop_assert!((a - reference).abs() <= 1e-9 * reference.abs().max(1.0) + 1e-6);
        // Tree order equals the kernel's result exactly for the same split.
        prop_assert!((tree_sum(&values) - a).abs() <= 1e-9 * reference.abs().max(1.0) + 1e-6);
    }

    #[test]
    fn gather_matches_model(
        values in vec(any::<f64>().prop_filter("no NaN", |v| !v.is_nan()), 1..200),
        picks in vec(any::<u16>(), 0..50),
    ) {
        let device = SimDevice::with_defaults();
        let buf = upload_f64(&device, &values);
        let positions: Vec<u64> =
            picks.iter().map(|&p| p as u64 % values.len() as u64).collect();
        let out = kernels::gather(&device, buf, 8, &positions).unwrap();
        let bytes = device.download(out).unwrap();
        let got: Vec<f64> =
            bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        let want: Vec<f64> = positions.iter().map(|&p| values[p as usize]).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn filter_matches_model(
        values in vec(-100f64..100.0, 0..300),
        threshold in -100f64..100.0,
    ) {
        let device = SimDevice::with_defaults();
        let buf = upload_f64(&device, &values);
        let got = kernels::filter_f64(&device, buf, |v| v > threshold).unwrap();
        let want: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > threshold)
            .map(|(i, _)| i as u64)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn allocator_accounting_never_drifts(sizes in vec(1usize..64_000, 1..40)) {
        let device = SimDevice::new(0, DeviceSpec::default());
        let mut live = Vec::new();
        let mut expected = 0usize;
        for (i, &len) in sizes.iter().enumerate() {
            let buf = device.alloc(len).unwrap();
            expected += len;
            live.push((buf, len));
            prop_assert_eq!(device.used_bytes(), expected);
            // Free every third allocation as we go.
            if i % 3 == 2 {
                let (b, l) = live.remove(0);
                device.free(b).unwrap();
                expected -= l;
                prop_assert_eq!(device.used_bytes(), expected);
            }
        }
        for (b, l) in live {
            device.free(b).unwrap();
            expected -= l;
        }
        prop_assert_eq!(device.used_bytes(), 0);
        prop_assert_eq!(expected, 0);
    }

    #[test]
    fn upload_download_identity(payload in vec(any::<u8>(), 0..8192)) {
        let device = SimDevice::with_defaults();
        let buf = device.upload(&payload).unwrap();
        prop_assert_eq!(device.download(buf).unwrap(), payload);
    }

    #[test]
    fn disk_pages_roundtrip(pages in vec((0u64..64, vec(any::<u8>(), 0..512)), 1..30)) {
        let disk = SimDisk::with_defaults(0);
        let mut model = std::collections::HashMap::new();
        for (page, data) in &pages {
            disk.write_page(*page, data).unwrap();
            model.insert(*page, data.clone());
        }
        for (page, data) in &model {
            prop_assert_eq!(&disk.read_page(*page).unwrap(), data);
        }
    }

    #[test]
    fn cluster_blobs_roundtrip_and_ship(
        blobs in vec(("k[a-z]{1,6}", vec(any::<u8>(), 0..256)), 1..20),
    ) {
        let cluster = SimCluster::with_defaults(3);
        let mut model = std::collections::HashMap::new();
        for (key, data) in &blobs {
            let home = cluster.place(key);
            cluster.node(home).unwrap().put(key.clone(), data.clone());
            model.insert(key.clone(), data.clone());
        }
        for (key, data) in &model {
            let home = cluster.place(key);
            // Fetch from the coordinator.
            prop_assert_eq!(&cluster.fetch(0, home, key).unwrap(), data);
            // Ship to another node and read it there.
            let dest = (home + 1) % 3;
            cluster.ship(home, key, dest).unwrap();
            prop_assert_eq!(&cluster.node(dest).unwrap().get(key).unwrap(), data);
        }
    }
}
