//! Device geometry and cost parameters.

/// Specification of a simulated SIMT device.
///
/// Defaults model the GPU the paper evaluated on (footnote 4): CUDA
/// capability 5.0, 4044 MB global memory, 5 multiprocessors × 128 cores,
/// 2 MB L2, max 1024 threads per block, no host-shared memory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    /// Global memory capacity in bytes.
    pub global_mem_bytes: usize,
    /// Number of streaming multiprocessors.
    pub sms: u32,
    /// Cores (lanes) per multiprocessor.
    pub cores_per_sm: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Device-memory bandwidth in bytes/second.
    pub mem_bandwidth: f64,
    /// Host↔device (PCIe) bandwidth in bytes/second.
    pub pcie_bandwidth: f64,
    /// Fixed latency per host↔device transfer, in nanoseconds.
    pub pcie_latency_ns: u64,
    /// Fixed overhead per kernel launch, in nanoseconds.
    pub kernel_launch_ns: u64,
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec {
            global_mem_bytes: 4044 * 1024 * 1024,
            sms: 5,
            cores_per_sm: 128,
            max_threads_per_block: 1024,
            clock_hz: 1.1e9,
            // Maxwell-class mobile GPU: ~80 GB/s GDDR5.
            mem_bandwidth: 80.0e9,
            // PCIe 3.0 x16 with realistic pinned-memory efficiency.
            pcie_bandwidth: 6.0e9,
            pcie_latency_ns: 10_000,
            kernel_launch_ns: 5_000,
        }
    }
}

impl DeviceSpec {
    /// Total parallel lanes (cores) on the device.
    pub fn lanes(&self) -> u32 {
        self.sms * self.cores_per_sm
    }

    /// A tiny device for out-of-memory tests: 1 MB of global memory.
    pub fn tiny() -> Self {
        DeviceSpec { global_mem_bytes: 1024 * 1024, ..Default::default() }
    }

    /// A data-center-class device (V100-era): 16 GB HBM2 at ~900 GB/s,
    /// 80 SMs, NVLink-class host interconnect.
    pub fn datacenter() -> Self {
        DeviceSpec {
            global_mem_bytes: 16 * 1024 * 1024 * 1024,
            sms: 80,
            cores_per_sm: 64,
            max_threads_per_block: 1024,
            clock_hz: 1.4e9,
            mem_bandwidth: 900.0e9,
            pcie_bandwidth: 40.0e9, // NVLink-ish effective host link
            pcie_latency_ns: 5_000,
            kernel_launch_ns: 4_000,
        }
    }

    /// An integrated GPU sharing host DRAM (Jetson/APU-class, the paper's
    /// "host-shared memory" taxonomy value): the host↔device link runs at
    /// device-memory bandwidth with microsecond latency. Transfer and
    /// kernel time are comparable here, so transfer/compute overlap — not
    /// the PCIe wall — decides wall time.
    pub fn unified() -> Self {
        DeviceSpec {
            global_mem_bytes: 8 * 1024 * 1024 * 1024,
            sms: 8,
            cores_per_sm: 128,
            max_threads_per_block: 1024,
            clock_hz: 1.3e9,
            mem_bandwidth: 25.6e9,
            pcie_bandwidth: 25.6e9,
            pcie_latency_ns: 1_000,
            kernel_launch_ns: 3_000,
        }
    }

    /// The planner-facing cost mirror of this spec (core cannot depend on
    /// this crate, so the router prices offloads through
    /// [`htapg_core::plan::DeviceCostProfile`]).
    pub fn cost_profile(&self) -> htapg_core::plan::DeviceCostProfile {
        htapg_core::plan::DeviceCostProfile {
            pcie_bandwidth: self.pcie_bandwidth,
            pcie_latency_ns: self.pcie_latency_ns,
            kernel_launch_ns: self.kernel_launch_ns,
            mem_bandwidth: self.mem_bandwidth,
            clock_hz: self.clock_hz,
            lanes: self.lanes() as u64,
        }
    }

    /// Virtual nanoseconds to move `bytes` across PCIe (one transfer).
    pub fn transfer_ns(&self, bytes: usize) -> u64 {
        self.pcie_latency_ns + (bytes as f64 / self.pcie_bandwidth * 1e9) as u64
    }

    /// Virtual nanoseconds for a kernel that touches `bytes` of device
    /// memory and performs `work_items` items of roughly `cycles_per_item`
    /// cycles each across `threads` launched threads.
    ///
    /// The model is `launch + max(compute, memory)`:
    /// compute = ceil(work / active_lanes) × cycles / clock;
    /// memory = bytes / bandwidth. Under-filled launches (threads < lanes)
    /// waste lanes — the GPUTx under-utilization effect.
    pub fn kernel_ns(
        &self,
        threads: u64,
        work_items: u64,
        cycles_per_item: f64,
        bytes: u64,
    ) -> u64 {
        let active = threads.min(self.lanes() as u64).max(1);
        let waves = (work_items + active - 1) / active.max(1);
        let compute_s = waves as f64 * cycles_per_item / self.clock_hz;
        let memory_s = bytes as f64 / self.mem_bandwidth;
        self.kernel_launch_ns + (compute_s.max(memory_s) * 1e9) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let s = DeviceSpec::default();
        assert_eq!(s.lanes(), 640);
        assert_eq!(s.global_mem_bytes, 4044 * 1024 * 1024);
        assert_eq!(s.max_threads_per_block, 1024);
    }

    #[test]
    fn transfer_scales_with_size() {
        let s = DeviceSpec::default();
        let small = s.transfer_ns(1024);
        let big = s.transfer_ns(32 * 1024 * 1024);
        assert!(big > small * 10);
        // 32 MB over 6 GB/s ≈ 5.3 ms.
        assert!(big > 5_000_000 && big < 6_500_000, "got {big}");
    }

    #[test]
    fn kernel_memory_bound_scan() {
        let s = DeviceSpec::default();
        // Summing 4M f64: 32 MB at 80 GB/s ≈ 0.4 ms; compute is cheap.
        let ns = s.kernel_ns(640 * 512, 4_000_000, 4.0, 32_000_000);
        assert!(ns > 300_000 && ns < 600_000, "got {ns}");
    }

    #[test]
    fn underfilled_launch_is_slower_per_item() {
        let s = DeviceSpec::default();
        let work = 1_000_000u64;
        let full = s.kernel_ns(640, work, 100.0, 0);
        let one_thread = s.kernel_ns(1, work, 100.0, 0);
        assert!(one_thread > full * 100, "full={full} one={one_thread}");
    }

    #[test]
    fn datacenter_device_is_strictly_faster() {
        let laptop = DeviceSpec::default();
        let dc = DeviceSpec::datacenter();
        let bytes = 32 * 1024 * 1024;
        assert!(dc.transfer_ns(bytes) < laptop.transfer_ns(bytes) / 3);
        assert!(
            dc.kernel_ns(1 << 20, 4_000_000, 4.0, bytes as u64)
                < laptop.kernel_ns(1 << 20, 4_000_000, 4.0, bytes as u64)
        );
    }

    #[test]
    fn launch_overhead_floors_tiny_kernels() {
        let s = DeviceSpec::default();
        assert!(s.kernel_ns(1, 1, 1.0, 8) >= s.kernel_launch_ns);
    }
}
