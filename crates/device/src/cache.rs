//! Device-resident column cache.
//!
//! Engines repeatedly offload analytics over the same columns; re-uploading
//! 80 MB over PCIe for every query is the Figure 2 panel-3 tax. The cache
//! keeps packed columns device-resident keyed by `(relation, attr)` with a
//! *version* stamp: a write through the engine bumps the version, so the
//! next lookup sees a stale entry — panel-4 ("data already
//! device-resident") becomes the steady state for repeat queries.
//!
//! Writes no longer have to re-pay the full upload (the *invalidation
//! cliff*): engines append `(row, value)` deltas to a per-column log via
//! [`DeviceColumnCache::append_delta`], the stale replica stays resident,
//! and [`DeviceColumnCache::merge_deltas`] ships the coalesced log over
//! the copy stream (double-buffered against the scatter kernel, bytes
//! charged as `delta_bytes` on the ledger) to stamp the replica fresh —
//! Polynesia's update-propagation path between the transactional and
//! analytical islands. A version *gap* (bulk insert, missed commits)
//! still drops the replica.
//!
//! Capacity pressure is handled with LRU eviction through the device's
//! all-or-nothing allocator: when an upload fails with
//! [`Error::DeviceOutOfMemory`], the least-recently-used entries are freed
//! one at a time and the upload retried. Callers that must *not* steal
//! memory from their neighbours (CoGaDB's maintain-time placement contract)
//! pass `may_evict = false` and surface the OOM unchanged.
//!
//! Hits, misses, and evictions are counted on the device's
//! [`CostLedger`](crate::ledger::CostLedger) next to the transfer bytes
//! they save.

use htapg_core::sync::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

use htapg_core::retry::{with_retry, RetryPolicy};
use htapg_core::{obs, AttrId, Error, RelationId, Result};

use crate::kernels;
use crate::memory::{BufferId, SimDevice};
use crate::stream::{sync_streams, SimStream, StreamEvent};

/// Registry handles for cache events, resolved once (hot path stays a
/// single atomic add per event).
struct CacheCounters {
    hits: Arc<obs::Counter>,
    misses: Arc<obs::Counter>,
    evictions: Arc<obs::Counter>,
}

fn counters() -> &'static CacheCounters {
    static C: OnceLock<CacheCounters> = OnceLock::new();
    C.get_or_init(|| CacheCounters {
        hits: obs::metrics().counter("device.cache.hits"),
        misses: obs::metrics().counter("device.cache.misses"),
        evictions: obs::metrics().counter("device.cache.evictions"),
    })
}

/// Cache key: one packed column of one relation.
pub type ColumnKey = (RelationId, AttrId);

/// A cache-resident column handle returned to callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedColumn {
    pub buf: BufferId,
    pub rows: u64,
}

#[derive(Debug)]
struct Entry {
    version: u64,
    buf: BufferId,
    rows: u64,
    bytes: usize,
    /// Recency stamp from the cache's logical clock (larger = more recent).
    used_at: u64,
    /// Version the pending delta log brings this replica up to. Fresh
    /// entries have `target_version == version` and an empty log; a stale
    /// entry (`version < target_version`) stays resident and mergeable.
    target_version: u64,
    /// Pending `(row → latest f64 value)` deltas, coalesced per row.
    deltas: BTreeMap<u64, f64>,
}

impl Entry {
    fn is_stale(&self) -> bool {
        self.version != self.target_version
    }
}

#[derive(Debug)]
struct CacheState {
    entries: HashMap<ColumnKey, Entry>,
    clock: u64,
    /// When off, [`DeviceColumnCache::append_delta`] reverts to the pre-
    /// delta-shipping behaviour (drop the replica — the invalidation
    /// cliff). The benches flip this for A/B comparison.
    ship_deltas: bool,
}

impl Default for CacheState {
    fn default() -> Self {
        CacheState { entries: HashMap::new(), clock: 0, ship_deltas: true }
    }
}

/// How shipped deltas reach the device replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaTransport {
    /// Encode `(row, value)` pairs host-side and ship them over the copy
    /// stream (PCIe bytes charged, counted as `delta_bytes`), double-
    /// buffered against the scatter kernel on the compute stream.
    Pcie,
    /// The authoritative data already lives on the device (GPUTx):
    /// scatter directly, kernel time only, zero PCIe bytes.
    DeviceLocal,
}

/// Staleness peek for the planner's evidence surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleInfo {
    /// Rows whose device copy is behind (pending coalesced deltas). Zero
    /// means the replica is fresh at the asked version.
    pub stale_rows: u64,
    /// Total rows in the replica.
    pub rows: u64,
}

/// Delta pairs shipped per staged chunk (64 KB of 16-byte records).
const DELTA_CHUNK_PAIRS: usize = 4096;

fn encode_pairs(pairs: &[(u64, f64)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(pairs.len() * kernels::DELTA_PAIR_BYTES);
    for &(row, value) in pairs {
        out.extend_from_slice(&row.to_le_bytes());
        out.extend_from_slice(&value.to_le_bytes());
    }
    out
}

/// LRU cache of device-resident packed columns (see module docs).
#[derive(Debug)]
pub struct DeviceColumnCache {
    device: Arc<SimDevice>,
    state: Mutex<CacheState>,
}

impl DeviceColumnCache {
    pub fn new(device: Arc<SimDevice>) -> Self {
        DeviceColumnCache { device, state: Mutex::new(CacheState::default()) }
    }

    pub fn device(&self) -> &Arc<SimDevice> {
        &self.device
    }

    /// Number of resident columns.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Device bytes currently held by cache entries.
    pub fn resident_bytes(&self) -> usize {
        self.state.lock().entries.values().map(|e| e.bytes).sum()
    }

    /// Whether `(rel, attr)` is resident at exactly `version`. Does not
    /// touch recency or the hit/miss counters (a peek, not a use).
    pub fn contains(&self, rel: RelationId, attr: AttrId, version: u64) -> bool {
        self.state.lock().entries.get(&(rel, attr)).is_some_and(|e| e.version == version)
    }

    /// Attrs of `rel` with any resident entry (any version), sorted.
    pub fn resident_attrs(&self, rel: RelationId) -> Vec<AttrId> {
        let state = self.state.lock();
        let mut attrs: Vec<AttrId> =
            state.entries.keys().filter(|(r, _)| *r == rel).map(|&(_, a)| a).collect();
        attrs.sort_unstable();
        attrs
    }

    /// Look up a column at `version`. A fresh entry counts a hit and
    /// refreshes recency. A *delta-stale* entry — one whose pending delta
    /// log reaches exactly `version` — counts a miss but **stays
    /// resident** (merge it with [`Self::merge_deltas`] or replace it via
    /// [`Self::get_or_insert_with`]). Any other version mismatch is freed
    /// and removed; absent and stale both count a miss.
    pub fn lookup(
        &self,
        rel: RelationId,
        attr: AttrId,
        version: u64,
    ) -> Result<Option<CachedColumn>> {
        self.lookup_locked(&mut self.state.lock(), rel, attr, version)
    }

    fn lookup_locked(
        &self,
        state: &mut CacheState,
        rel: RelationId,
        attr: AttrId,
        version: u64,
    ) -> Result<Option<CachedColumn>> {
        state.clock += 1;
        let clock = state.clock;
        #[derive(PartialEq)]
        enum Status {
            Fresh,
            /// Empty delta log already at `version`: stamp and hit.
            Stampable,
            /// Pending deltas reach `version`: keep resident, miss.
            DeltaStale,
            /// Unmergeable version mismatch: drop (the old cliff).
            Gap,
        }
        let ship = state.ship_deltas;
        let status = state.entries.get(&(rel, attr)).map(|e| {
            if e.version == version {
                Status::Fresh
            } else if ship && e.target_version == version {
                if e.deltas.is_empty() {
                    Status::Stampable
                } else {
                    Status::DeltaStale
                }
            } else {
                Status::Gap
            }
        });
        match status {
            Some(Status::Fresh) | Some(Status::Stampable) => {
                let e = state.entries.get_mut(&(rel, attr)).expect("entry just seen");
                e.version = version;
                e.used_at = clock;
                self.device.ledger().record_cache_hit();
                counters().hits.inc();
                if obs::enabled() {
                    obs::instant_with(
                        "cache",
                        "cache.hit",
                        &[("rel", &rel.to_string()), ("attr", &attr.to_string())],
                    );
                }
                Ok(Some(CachedColumn { buf: e.buf, rows: e.rows }))
            }
            Some(Status::DeltaStale) => {
                let stale_rows =
                    state.entries.get(&(rel, attr)).expect("entry just seen").deltas.len();
                self.device.ledger().record_cache_miss();
                counters().misses.inc();
                if obs::enabled() {
                    obs::instant_with(
                        "cache",
                        "cache.miss",
                        &[
                            ("rel", &rel.to_string()),
                            ("attr", &attr.to_string()),
                            ("stale", "1"),
                            ("stale_rows", &stale_rows.to_string()),
                        ],
                    );
                }
                Ok(None)
            }
            Some(Status::Gap) => {
                let e = state.entries.remove(&(rel, attr)).expect("entry just seen");
                self.device.free(e.buf)?;
                self.device.ledger().record_cache_miss();
                counters().misses.inc();
                if obs::enabled() {
                    obs::instant_with(
                        "cache",
                        "cache.miss",
                        &[("rel", &rel.to_string()), ("attr", &attr.to_string()), ("stale", "1")],
                    );
                }
                Ok(None)
            }
            None => {
                self.device.ledger().record_cache_miss();
                counters().misses.inc();
                if obs::enabled() {
                    obs::instant_with(
                        "cache",
                        "cache.miss",
                        &[("rel", &rel.to_string()), ("attr", &attr.to_string())],
                    );
                }
                Ok(None)
            }
        }
    }

    /// Look up `(rel, attr)` at `version`, uploading via `upload` on a
    /// miss. `upload` must return a device buffer holding exactly the
    /// packed column (it is responsible for freeing its own partial state
    /// on failure, as `SimDevice::upload` and the pipelined path already
    /// do — the cache never records an entry for a failed upload).
    ///
    /// With `may_evict`, an [`Error::DeviceOutOfMemory`] from `upload`
    /// triggers LRU eviction of other entries, one victim per retry, until
    /// the upload fits or the cache is empty. Without it the OOM is
    /// returned unchanged (all-or-nothing placement).
    pub fn get_or_insert_with(
        &self,
        rel: RelationId,
        attr: AttrId,
        version: u64,
        rows: u64,
        may_evict: bool,
        mut upload: impl FnMut() -> Result<BufferId>,
    ) -> Result<CachedColumn> {
        let mut state = self.state.lock();
        if let Some(hit) = self.lookup_locked(&mut state, rel, attr, version)? {
            return Ok(hit);
        }
        // A delta-stale replica may still be resident; this is the full
        // re-upload path, so free it first rather than holding both copies.
        if let Some(old) = state.entries.remove(&(rel, attr)) {
            self.device.free(old.buf)?;
        }
        let buf = loop {
            match upload() {
                Ok(buf) => break buf,
                Err(Error::DeviceOutOfMemory { .. }) if may_evict => {
                    // Delta-stale replicas are cheaper to lose than fresh
                    // ones (they'd need a merge before use), so they go
                    // first; fresh entries fall back to LRU order.
                    let victim = state
                        .entries
                        .iter()
                        .filter(|(k, _)| **k != (rel, attr))
                        .min_by_key(|(_, e)| (!e.is_stale(), e.used_at))
                        .map(|(k, _)| *k);
                    match victim {
                        Some(k) => {
                            let e = state.entries.remove(&k).expect("victim exists");
                            self.device.free(e.buf)?;
                            self.device.ledger().record_cache_eviction();
                            counters().evictions.inc();
                            if obs::enabled() {
                                obs::instant_with(
                                    "cache",
                                    "cache.evict",
                                    &[
                                        ("rel", &k.0.to_string()),
                                        ("attr", &k.1.to_string()),
                                        ("bytes", &e.bytes.to_string()),
                                    ],
                                );
                            }
                        }
                        None => {
                            return Err(Error::DeviceOutOfMemory {
                                requested: rows as usize * 8,
                                free: self.device.free_bytes(),
                            })
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        };
        state.clock += 1;
        let clock = state.clock;
        let bytes = self.device.buffer_len(buf)?;
        if let Some(old) = state.entries.insert(
            (rel, attr),
            Entry {
                version,
                buf,
                rows,
                bytes,
                used_at: clock,
                target_version: version,
                deltas: BTreeMap::new(),
            },
        ) {
            // Unreachable under the lock, but never leak a replaced buffer.
            self.device.free(old.buf)?;
        }
        Ok(CachedColumn { buf, rows })
    }

    /// Toggle delta shipping. When off, [`Self::append_delta`] drops the
    /// replica instead (the pre-delta invalidation cliff) and delta-stale
    /// lookups stop keeping entries resident — the benches A/B against
    /// exactly this.
    pub fn set_delta_shipping(&self, on: bool) {
        self.state.lock().ship_deltas = on;
    }

    /// Record one engine write: row `row` of `(rel, attr)` now holds
    /// `value` as of `new_version`. If a replica is resident and its delta
    /// log is contiguous with `new_version` (same commit batch, or the
    /// immediately next version), the delta is coalesced into the log and
    /// the replica stays resident-but-stale; any version gap — or delta
    /// shipping being off — drops the replica as before. No-op when the
    /// column is not resident.
    pub fn append_delta(
        &self,
        rel: RelationId,
        attr: AttrId,
        row: u64,
        value: f64,
        new_version: u64,
    ) -> Result<()> {
        let mut state = self.state.lock();
        let ship = state.ship_deltas;
        let Some(e) = state.entries.get_mut(&(rel, attr)) else {
            return Ok(());
        };
        if ship && (e.target_version == new_version || e.target_version + 1 == new_version) {
            e.deltas.insert(row, value);
            e.target_version = new_version;
            if obs::enabled() {
                obs::instant_with(
                    "delta",
                    "delta.append",
                    &[
                        ("rel", &rel.to_string()),
                        ("attr", &attr.to_string()),
                        ("pending", &e.deltas.len().to_string()),
                    ],
                );
            }
            Ok(())
        } else {
            let e = state.entries.remove(&(rel, attr)).expect("entry just seen");
            self.device.free(e.buf)
        }
    }

    /// Advance resident replicas of `rel` across a commit that moved the
    /// relation to `new_version` but did not touch their attrs: the delta
    /// log is still contiguous, and an empty log means the replica is
    /// fresh at the new version for free.
    pub fn note_commit(&self, rel: RelationId, new_version: u64, touched: &[AttrId]) {
        let mut state = self.state.lock();
        if !state.ship_deltas {
            return;
        }
        for ((r, a), e) in state.entries.iter_mut() {
            if *r == rel && !touched.contains(a) && e.target_version + 1 == new_version {
                e.target_version = new_version;
                if e.deltas.is_empty() {
                    e.version = new_version;
                }
            }
        }
    }

    /// Staleness peek for `(rel, attr)` at `version`: `Some` iff a replica
    /// is resident and reachable at that version (fresh ⇒ `stale_rows ==
    /// 0`; delta-stale ⇒ the pending coalesced row count). `None` means
    /// only a full upload can produce `version`. No counters, no recency.
    pub fn stale_info(&self, rel: RelationId, attr: AttrId, version: u64) -> Option<StaleInfo> {
        let state = self.state.lock();
        state.entries.get(&(rel, attr)).and_then(|e| {
            if e.version == version {
                Some(StaleInfo { stale_rows: 0, rows: e.rows })
            } else if state.ship_deltas && e.target_version == version {
                Some(StaleInfo { stale_rows: e.deltas.len() as u64, rows: e.rows })
            } else {
                None
            }
        })
    }

    /// Bring a delta-stale replica of `(rel, attr)` up to `version` by
    /// shipping its pending deltas and scattering them device-side, then
    /// stamp it fresh. Fresh replicas return immediately; a replica whose
    /// log does not reach `version` is an error (re-upload instead).
    ///
    /// Over [`DeltaTransport::Pcie`] the pairs are staged in 64 KB chunks,
    /// double-buffered: chunk N uploads on the copy stream while chunk
    /// N−1's scatter kernel runs on the compute stream; shipped bytes are
    /// charged to the ledger as both `bytes_to_device` and `delta_bytes`.
    /// [`DeltaTransport::DeviceLocal`] skips the staging writes (kernel
    /// time only).
    ///
    /// Failure safety: the version stamp and the delta log are updated
    /// only after every chunk landed, so a faulted transfer leaves the
    /// replica at its old version with the full log intact — readers (who
    /// ask for the *current* version) never see a partially-merged
    /// replica, and because the scatter writes coalesced latest-values, a
    /// retry that replays every pair converges to exactly the bytes of a
    /// fresh upload.
    pub fn merge_deltas(
        &self,
        rel: RelationId,
        attr: AttrId,
        version: u64,
        transport: DeltaTransport,
    ) -> Result<CachedColumn> {
        let mut state = self.state.lock();
        let Some(e) = state.entries.get(&(rel, attr)) else {
            return Err(Error::Internal("no resident replica to merge into".into()));
        };
        let (buf, rows) = (e.buf, e.rows);
        if e.version == version {
            return Ok(CachedColumn { buf, rows });
        }
        if e.target_version != version {
            return Err(Error::Internal("delta log does not reach the requested version".into()));
        }
        let pairs: Vec<(u64, f64)> = e.deltas.iter().map(|(&r, &v)| (r, v)).collect();
        if !pairs.is_empty() {
            self.ship_pairs(buf, &pairs, transport)?;
        }
        let e = state.entries.get_mut(&(rel, attr)).expect("entry held under lock");
        e.version = version;
        e.deltas.clear();
        self.device.ledger().record_delta_merge();
        if obs::enabled() {
            obs::instant_with(
                "delta",
                "delta.merge.done",
                &[
                    ("rel", &rel.to_string()),
                    ("attr", &attr.to_string()),
                    ("pairs", &pairs.len().to_string()),
                    ("bytes", &(pairs.len() * kernels::DELTA_PAIR_BYTES).to_string()),
                ],
            );
        }
        Ok(CachedColumn { buf, rows })
    }

    /// The transport core of [`Self::merge_deltas`] (state lock held by
    /// the caller; only device memory and streams are touched here).
    fn ship_pairs(
        &self,
        replica: BufferId,
        pairs: &[(u64, f64)],
        transport: DeltaTransport,
    ) -> Result<()> {
        let device = &*self.device;
        let policy = RetryPolicy::default();
        let mut compute = SimStream::new(device);
        match transport {
            DeltaTransport::DeviceLocal => {
                for batch in pairs.chunks(DELTA_CHUNK_PAIRS) {
                    with_retry(&policy, device.ledger(), || {
                        kernels::scatter_deltas_f64(&mut compute, replica, batch)
                    })?;
                }
                sync_streams(device, &[&compute]);
                Ok(())
            }
            DeltaTransport::Pcie => {
                let mut copy = SimStream::new(device);
                let chunk = DELTA_CHUNK_PAIRS.min(pairs.len());
                let stag0 = device.alloc(chunk * kernels::DELTA_PAIR_BYTES)?;
                let stag1 = match device.alloc(chunk * kernels::DELTA_PAIR_BYTES) {
                    Ok(b) => b,
                    Err(err) => {
                        let _ = device.free(stag0);
                        return Err(err);
                    }
                };
                let staging = [stag0, stag1];
                let trace_epoch = obs::current().map(|t| t.now_ns());
                let mut scatter_done: [Option<StreamEvent>; 2] = [None, None];
                let result = (|| -> Result<()> {
                    for (i, batch) in pairs.chunks(DELTA_CHUNK_PAIRS).enumerate() {
                        let slot = i % 2;
                        // The staging buffer is reused once the scatter
                        // that read it has retired (double buffering).
                        if let Some(ev) = scatter_done[slot] {
                            copy.wait(ev);
                        }
                        let encoded = encode_pairs(batch);
                        let c0 = copy.cursor_ns();
                        with_retry(&policy, device.ledger(), || {
                            copy.write(staging[slot], 0, &encoded)
                        })?;
                        device.ledger().record_delta_bytes(encoded.len() as u64);
                        if let Some(epoch) = trace_epoch {
                            obs::span_at(
                                "delta",
                                "delta.copy.chunk",
                                "delta.copy",
                                epoch + c0,
                                epoch + copy.cursor_ns(),
                            );
                        }
                        compute.wait(copy.record());
                        let k0 = compute.cursor_ns();
                        with_retry(&policy, device.ledger(), || {
                            kernels::merge_deltas_f64(
                                &mut compute,
                                replica,
                                staging[slot],
                                batch.len(),
                            )
                        })?;
                        if let Some(epoch) = trace_epoch {
                            obs::span_at(
                                "delta",
                                "delta.merge.chunk",
                                "delta.merge",
                                epoch + k0,
                                epoch + compute.cursor_ns(),
                            );
                        }
                        scatter_done[slot] = Some(compute.record());
                    }
                    Ok(())
                })();
                for buf in staging {
                    let _ = device.free(buf);
                }
                result?;
                sync_streams(device, &[&copy, &compute]);
                Ok(())
            }
        }
    }

    /// Drop the entry for one column, freeing its device memory. No-op if
    /// absent. (Engines may call this on write; the version check makes it
    /// equally correct to invalidate lazily at the next lookup.)
    pub fn invalidate(&self, rel: RelationId, attr: AttrId) -> Result<()> {
        let entry = self.state.lock().entries.remove(&(rel, attr));
        if let Some(e) = entry {
            self.device.free(e.buf)?;
        }
        Ok(())
    }

    /// Drop every entry of a relation (bulk writes, drop table).
    pub fn invalidate_relation(&self, rel: RelationId) -> Result<()> {
        let removed: Vec<Entry> = {
            let mut state = self.state.lock();
            let keys: Vec<ColumnKey> =
                state.entries.keys().filter(|(r, _)| *r == rel).copied().collect();
            keys.iter().filter_map(|k| state.entries.remove(k)).collect()
        };
        for e in removed {
            self.device.free(e.buf)?;
        }
        Ok(())
    }

    /// Drop everything.
    pub fn clear(&self) -> Result<()> {
        let removed: Vec<Entry> = {
            let mut state = self.state.lock();
            state.entries.drain().map(|(_, e)| e).collect()
        };
        for e in removed {
            self.device.free(e.buf)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    fn cache_with(spec: DeviceSpec) -> DeviceColumnCache {
        DeviceColumnCache::new(Arc::new(SimDevice::new(0, spec)))
    }

    fn col_bytes(n: usize, fill: u8) -> Vec<u8> {
        vec![fill; n * 8]
    }

    #[test]
    fn hit_skips_the_upload_and_counts() {
        let c = cache_with(DeviceSpec::default());
        let bytes = col_bytes(1000, 3);
        let mut uploads = 0;
        for _ in 0..3 {
            c.get_or_insert_with(1, 0, 7, 1000, true, || {
                uploads += 1;
                c.device().upload(&bytes)
            })
            .unwrap();
        }
        assert_eq!(uploads, 1);
        let snap = c.device().ledger().snapshot();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.bytes_to_device, 8000, "only the first query paid PCIe");
    }

    #[test]
    fn version_bump_invalidates_lazily() {
        let c = cache_with(DeviceSpec::default());
        c.get_or_insert_with(1, 0, 1, 10, true, || c.device().upload(&col_bytes(10, 1))).unwrap();
        let used = c.device().used_bytes();
        // Same column, new version: stale entry freed, fresh one uploaded.
        c.get_or_insert_with(1, 0, 2, 10, true, || c.device().upload(&col_bytes(10, 2))).unwrap();
        assert_eq!(c.device().used_bytes(), used, "stale buffer was freed");
        assert_eq!(c.len(), 1);
        assert!(c.contains(1, 0, 2));
        assert!(!c.contains(1, 0, 1));
        assert_eq!(c.device().ledger().snapshot().cache_misses, 2);
    }

    #[test]
    fn explicit_invalidate_frees_memory() {
        let c = cache_with(DeviceSpec::default());
        c.get_or_insert_with(1, 0, 1, 10, true, || c.device().upload(&col_bytes(10, 1))).unwrap();
        c.get_or_insert_with(1, 1, 1, 10, true, || c.device().upload(&col_bytes(10, 1))).unwrap();
        c.get_or_insert_with(2, 0, 1, 10, true, || c.device().upload(&col_bytes(10, 1))).unwrap();
        assert_eq!(c.resident_attrs(1), vec![0, 1]);
        c.invalidate(1, 0).unwrap();
        assert_eq!(c.resident_attrs(1), vec![1]);
        c.invalidate_relation(1).unwrap();
        assert_eq!(c.resident_attrs(1), Vec::<AttrId>::new());
        assert_eq!(c.len(), 1);
        c.clear().unwrap();
        assert!(c.is_empty());
        assert_eq!(c.device().used_bytes(), 0);
    }

    #[test]
    fn lru_eviction_frees_the_coldest_victim() {
        // 1 MB device; three 40 KB columns fit, the fourth forces eviction.
        let c = cache_with(DeviceSpec::tiny());
        let n = 40 * 1024 / 8;
        for attr in 0..3u16 {
            c.get_or_insert_with(1, attr, 1, n as u64, true, || {
                c.device().upload(&col_bytes(n, attr as u8))
            })
            .unwrap();
        }
        // Touch columns 0 and 2: column 1 becomes the LRU victim.
        c.lookup(1, 0, 1).unwrap().unwrap();
        c.lookup(1, 2, 1).unwrap().unwrap();
        // Fill the device down to < one column of slack, then ask for one
        // more column: it cannot fit without evicting.
        let filler = c.device().alloc(1024 * 1024 - 140 * 1024).unwrap();
        c.get_or_insert_with(1, 3, 1, n as u64, true, || c.device().upload(&col_bytes(n, 9)))
            .unwrap();
        assert_eq!(c.resident_attrs(1), vec![0, 2, 3], "attr 1 was the LRU victim");
        assert_eq!(c.device().ledger().snapshot().cache_evictions, 1);
        c.device().free(filler).unwrap();
    }

    #[test]
    fn without_may_evict_oom_is_surfaced_and_nothing_is_evicted() {
        let c = cache_with(DeviceSpec::tiny());
        let n = 40 * 1024 / 8;
        c.get_or_insert_with(1, 0, 1, n as u64, false, || c.device().upload(&col_bytes(n, 1)))
            .unwrap();
        let big = 2 * 1024 * 1024 / 8; // bigger than the whole device
        let err = c
            .get_or_insert_with(1, 1, 1, big as u64, false, || {
                c.device().upload(&col_bytes(big, 2))
            })
            .unwrap_err();
        assert!(matches!(err, Error::DeviceOutOfMemory { .. }));
        assert_eq!(c.resident_attrs(1), vec![0], "no eviction without may_evict");
        assert_eq!(c.device().ledger().snapshot().cache_evictions, 0);
    }

    #[test]
    fn may_evict_gives_up_cleanly_when_nothing_can_make_room() {
        let c = cache_with(DeviceSpec::tiny());
        let big = 2 * 1024 * 1024 / 8;
        let err = c
            .get_or_insert_with(1, 0, 1, big as u64, true, || c.device().upload(&col_bytes(big, 1)))
            .unwrap_err();
        assert!(matches!(err, Error::DeviceOutOfMemory { .. }));
        assert!(c.is_empty());
        assert_eq!(c.device().used_bytes(), 0, "failed insert leaks nothing");
    }

    fn pack(values: &[f64]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn delta_stale_replica_stays_resident_and_merges_bit_identically() {
        let c = cache_with(DeviceSpec::default());
        let mut values: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let bytes = pack(&values);
        c.get_or_insert_with(1, 0, 1, 1000, true, || c.device().upload(&bytes)).unwrap();
        let resident = c.resident_bytes();
        // Writes: coalesced per row, replica stays resident but stale.
        c.append_delta(1, 0, 7, 70.5, 2).unwrap();
        c.append_delta(1, 0, 900, -3.25, 2).unwrap();
        c.append_delta(1, 0, 7, 71.5, 3).unwrap();
        values[7] = 71.5;
        values[900] = -3.25;
        assert_eq!(c.len(), 1);
        assert_eq!(c.resident_bytes(), resident, "stale replica still counted");
        assert_eq!(c.device().used_bytes(), c.resident_bytes());
        assert!(c.lookup(1, 0, 3).unwrap().is_none(), "stale is a miss, not a hit");
        assert_eq!(c.len(), 1, "but the replica survived the miss");
        let info = c.stale_info(1, 0, 3).unwrap();
        assert_eq!((info.stale_rows, info.rows), (2, 1000));
        assert!(c.stale_info(1, 0, 9).is_none(), "unreachable version needs an upload");
        // Merge ships 2 coalesced pairs and stamps the replica fresh.
        let before = c.device().ledger().snapshot();
        let col = c.merge_deltas(1, 0, 3, DeltaTransport::Pcie).unwrap();
        let delta = c.device().ledger().snapshot().since(&before);
        assert_eq!(delta.delta_bytes, 2 * 16);
        assert_eq!(delta.bytes_to_device, 2 * 16, "only the pairs crossed PCIe");
        assert_eq!(delta.delta_merges, 1);
        assert!(delta.kernel_launches >= 1);
        assert!(delta.wall_ns > 0, "merge lands on the wall clock");
        assert!(c.lookup(1, 0, 3).unwrap().is_some(), "fresh after merge");
        let merged = c.device().download(col.buf).unwrap();
        assert_eq!(merged, pack(&values), "bit-identical to a fresh upload");
        // Re-merging at the same version is free.
        let before = c.device().ledger().snapshot();
        c.merge_deltas(1, 0, 3, DeltaTransport::Pcie).unwrap();
        assert_eq!(c.device().ledger().snapshot().since(&before), Default::default());
    }

    #[test]
    fn device_local_merge_ships_zero_pcie_bytes() {
        let c = cache_with(DeviceSpec::default());
        let bytes = pack(&[1.0, 2.0, 3.0]);
        c.get_or_insert_with(1, 0, 1, 3, true, || c.device().upload(&bytes)).unwrap();
        c.append_delta(1, 0, 2, 30.0, 2).unwrap();
        let before = c.device().ledger().snapshot();
        let col = c.merge_deltas(1, 0, 2, DeltaTransport::DeviceLocal).unwrap();
        let delta = c.device().ledger().snapshot().since(&before);
        assert_eq!(delta.bytes_to_device, 0);
        assert_eq!(delta.delta_bytes, 0);
        assert_eq!(delta.delta_merges, 1);
        assert_eq!(delta.kernel_launches, 1);
        let merged = c.device().download(col.buf).unwrap();
        assert_eq!(merged, pack(&[1.0, 2.0, 30.0]));
    }

    #[test]
    fn version_gap_still_drops_the_replica() {
        let c = cache_with(DeviceSpec::default());
        let bytes = pack(&[1.0; 10]);
        c.get_or_insert_with(1, 0, 1, 10, true, || c.device().upload(&bytes)).unwrap();
        // Version jumps 1 → 3 (e.g. an insert bumped without deltas).
        c.append_delta(1, 0, 0, 9.0, 3).unwrap();
        assert!(c.is_empty(), "gap is unmergeable; the old cliff applies");
        assert_eq!(c.device().used_bytes(), 0);
    }

    #[test]
    fn shipping_disabled_reverts_to_the_invalidation_cliff() {
        let c = cache_with(DeviceSpec::default());
        let bytes = pack(&[1.0; 10]);
        c.set_delta_shipping(false);
        c.get_or_insert_with(1, 0, 1, 10, true, || c.device().upload(&bytes)).unwrap();
        c.append_delta(1, 0, 3, 5.0, 2).unwrap();
        assert!(c.is_empty());
        assert_eq!(c.device().used_bytes(), 0);
    }

    #[test]
    fn note_commit_advances_untouched_replicas_for_free() {
        let c = cache_with(DeviceSpec::default());
        let bytes = pack(&[1.0; 10]);
        c.get_or_insert_with(1, 0, 1, 10, true, || c.device().upload(&bytes)).unwrap();
        c.get_or_insert_with(1, 1, 1, 10, true, || c.device().upload(&bytes)).unwrap();
        // Commit to version 2 touches only attr 0.
        c.append_delta(1, 0, 4, 2.0, 2).unwrap();
        c.note_commit(1, 2, &[0]);
        assert!(c.lookup(1, 1, 2).unwrap().is_some(), "untouched attr advanced for free");
        assert!(c.lookup(1, 0, 2).unwrap().is_none(), "touched attr needs a merge");
        assert_eq!(c.stale_info(1, 0, 2).unwrap().stale_rows, 1);
    }

    #[test]
    fn eviction_prefers_stale_replicas_over_lru_order() {
        // Same geometry as the LRU test, but attr 1 — the most recently
        // used column — is delta-stale and must be the victim anyway.
        let c = cache_with(DeviceSpec::tiny());
        let n = 40 * 1024 / 8;
        for attr in 0..3u16 {
            c.get_or_insert_with(1, attr, 1, n as u64, true, || {
                c.device().upload(&col_bytes(n, attr as u8))
            })
            .unwrap();
        }
        c.lookup(1, 0, 1).unwrap().unwrap();
        c.lookup(1, 1, 1).unwrap().unwrap();
        c.lookup(1, 2, 1).unwrap().unwrap();
        c.append_delta(1, 1, 0, 9.0, 2).unwrap();
        assert_eq!(c.resident_bytes(), 3 * n * 8, "stale entry still counted");
        let filler = c.device().alloc(1024 * 1024 - 140 * 1024).unwrap();
        c.get_or_insert_with(1, 3, 1, n as u64, true, || c.device().upload(&col_bytes(n, 9)))
            .unwrap();
        assert_eq!(c.resident_attrs(1), vec![0, 2, 3], "stale attr 1 evicted first");
        assert_eq!(c.device().ledger().snapshot().cache_evictions, 1);
        assert_eq!(c.device().used_bytes() - (1024 * 1024 - 140 * 1024), c.resident_bytes());
        c.device().free(filler).unwrap();
    }

    #[test]
    fn faulted_merge_leaves_old_version_and_no_phantom_bytes() {
        use crate::faults::{FaultPlan, FaultRates};
        let mut d = SimDevice::new(0, DeviceSpec::default());
        d.set_fault_plan(FaultPlan::seeded(
            11,
            FaultRates { device_transfer: 1.0, ..FaultRates::none() },
        ));
        let c = DeviceColumnCache::new(Arc::new(d));
        // Seed the replica device-side (no PCIe write → no fault roll).
        let buf = c.device().alloc(10 * 8).unwrap();
        c.get_or_insert_with(1, 0, 1, 10, true, || Ok(buf)).unwrap();
        let resident = c.resident_bytes();
        c.append_delta(1, 0, 3, 5.0, 2).unwrap();
        let err = c.merge_deltas(1, 0, 2, DeltaTransport::Pcie).unwrap_err();
        assert!(matches!(err, Error::Transient { .. }));
        assert!(c.contains(1, 0, 1), "replica still at the old version");
        assert!(!c.contains(1, 0, 2), "partially-merged version never visible");
        assert_eq!(c.stale_info(1, 0, 2).unwrap().stale_rows, 1, "log intact for retry");
        assert_eq!(c.device().used_bytes(), resident, "staging freed, no phantom bytes");
        assert_eq!(c.device().ledger().snapshot().delta_merges, 0);
    }

    #[test]
    fn failed_upload_records_no_phantom_entry() {
        use crate::faults::{FaultPlan, FaultRates};
        let mut d = SimDevice::new(0, DeviceSpec::default());
        d.set_fault_plan(FaultPlan::seeded(
            3,
            FaultRates { device_transfer: 1.0, ..FaultRates::none() },
        ));
        let c = DeviceColumnCache::new(Arc::new(d));
        let err = c
            .get_or_insert_with(1, 0, 1, 10, true, || c.device().upload(&col_bytes(10, 1)))
            .unwrap_err();
        assert!(matches!(err, Error::Transient { .. }));
        assert!(c.is_empty());
        assert_eq!(c.device().used_bytes(), 0);
        assert!(!c.contains(1, 0, 1));
    }
}
