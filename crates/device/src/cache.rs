//! Device-resident column cache.
//!
//! Engines repeatedly offload analytics over the same columns; re-uploading
//! 80 MB over PCIe for every query is the Figure 2 panel-3 tax. The cache
//! keeps packed columns device-resident keyed by `(relation, attr)` with a
//! *version* stamp: a write through the engine bumps the version, so the
//! next lookup sees a stale entry, frees it, and re-uploads — panel-4
//! ("data already device-resident") becomes the steady state for repeat
//! queries.
//!
//! Capacity pressure is handled with LRU eviction through the device's
//! all-or-nothing allocator: when an upload fails with
//! [`Error::DeviceOutOfMemory`], the least-recently-used entries are freed
//! one at a time and the upload retried. Callers that must *not* steal
//! memory from their neighbours (CoGaDB's maintain-time placement contract)
//! pass `may_evict = false` and surface the OOM unchanged.
//!
//! Hits, misses, and evictions are counted on the device's
//! [`CostLedger`](crate::ledger::CostLedger) next to the transfer bytes
//! they save.

use htapg_core::sync::Mutex;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use htapg_core::{obs, AttrId, Error, RelationId, Result};

use crate::memory::{BufferId, SimDevice};

/// Registry handles for cache events, resolved once (hot path stays a
/// single atomic add per event).
struct CacheCounters {
    hits: Arc<obs::Counter>,
    misses: Arc<obs::Counter>,
    evictions: Arc<obs::Counter>,
}

fn counters() -> &'static CacheCounters {
    static C: OnceLock<CacheCounters> = OnceLock::new();
    C.get_or_init(|| CacheCounters {
        hits: obs::metrics().counter("device.cache.hits"),
        misses: obs::metrics().counter("device.cache.misses"),
        evictions: obs::metrics().counter("device.cache.evictions"),
    })
}

/// Cache key: one packed column of one relation.
pub type ColumnKey = (RelationId, AttrId);

/// A cache-resident column handle returned to callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedColumn {
    pub buf: BufferId,
    pub rows: u64,
}

#[derive(Debug)]
struct Entry {
    version: u64,
    buf: BufferId,
    rows: u64,
    bytes: usize,
    /// Recency stamp from the cache's logical clock (larger = more recent).
    used_at: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<ColumnKey, Entry>,
    clock: u64,
}

/// LRU cache of device-resident packed columns (see module docs).
#[derive(Debug)]
pub struct DeviceColumnCache {
    device: Arc<SimDevice>,
    state: Mutex<CacheState>,
}

impl DeviceColumnCache {
    pub fn new(device: Arc<SimDevice>) -> Self {
        DeviceColumnCache { device, state: Mutex::new(CacheState::default()) }
    }

    pub fn device(&self) -> &Arc<SimDevice> {
        &self.device
    }

    /// Number of resident columns.
    pub fn len(&self) -> usize {
        self.state.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Device bytes currently held by cache entries.
    pub fn resident_bytes(&self) -> usize {
        self.state.lock().entries.values().map(|e| e.bytes).sum()
    }

    /// Whether `(rel, attr)` is resident at exactly `version`. Does not
    /// touch recency or the hit/miss counters (a peek, not a use).
    pub fn contains(&self, rel: RelationId, attr: AttrId, version: u64) -> bool {
        self.state.lock().entries.get(&(rel, attr)).is_some_and(|e| e.version == version)
    }

    /// Attrs of `rel` with any resident entry (any version), sorted.
    pub fn resident_attrs(&self, rel: RelationId) -> Vec<AttrId> {
        let state = self.state.lock();
        let mut attrs: Vec<AttrId> =
            state.entries.keys().filter(|(r, _)| *r == rel).map(|&(_, a)| a).collect();
        attrs.sort_unstable();
        attrs
    }

    /// Look up a column at `version`. A fresh entry counts a hit and
    /// refreshes recency; a stale entry (any other version) is freed and
    /// removed. Both stale and absent count a miss.
    pub fn lookup(
        &self,
        rel: RelationId,
        attr: AttrId,
        version: u64,
    ) -> Result<Option<CachedColumn>> {
        self.lookup_locked(&mut self.state.lock(), rel, attr, version)
    }

    fn lookup_locked(
        &self,
        state: &mut CacheState,
        rel: RelationId,
        attr: AttrId,
        version: u64,
    ) -> Result<Option<CachedColumn>> {
        state.clock += 1;
        let clock = state.clock;
        let fresh = state.entries.get(&(rel, attr)).map(|e| e.version == version);
        match fresh {
            Some(true) => {
                let e = state.entries.get_mut(&(rel, attr)).expect("entry just seen");
                e.used_at = clock;
                self.device.ledger().record_cache_hit();
                counters().hits.inc();
                if obs::enabled() {
                    obs::instant_with(
                        "cache",
                        "cache.hit",
                        &[("rel", &rel.to_string()), ("attr", &attr.to_string())],
                    );
                }
                Ok(Some(CachedColumn { buf: e.buf, rows: e.rows }))
            }
            Some(false) => {
                let e = state.entries.remove(&(rel, attr)).expect("entry just seen");
                self.device.free(e.buf)?;
                self.device.ledger().record_cache_miss();
                counters().misses.inc();
                if obs::enabled() {
                    obs::instant_with(
                        "cache",
                        "cache.miss",
                        &[("rel", &rel.to_string()), ("attr", &attr.to_string()), ("stale", "1")],
                    );
                }
                Ok(None)
            }
            None => {
                self.device.ledger().record_cache_miss();
                counters().misses.inc();
                if obs::enabled() {
                    obs::instant_with(
                        "cache",
                        "cache.miss",
                        &[("rel", &rel.to_string()), ("attr", &attr.to_string())],
                    );
                }
                Ok(None)
            }
        }
    }

    /// Look up `(rel, attr)` at `version`, uploading via `upload` on a
    /// miss. `upload` must return a device buffer holding exactly the
    /// packed column (it is responsible for freeing its own partial state
    /// on failure, as `SimDevice::upload` and the pipelined path already
    /// do — the cache never records an entry for a failed upload).
    ///
    /// With `may_evict`, an [`Error::DeviceOutOfMemory`] from `upload`
    /// triggers LRU eviction of other entries, one victim per retry, until
    /// the upload fits or the cache is empty. Without it the OOM is
    /// returned unchanged (all-or-nothing placement).
    pub fn get_or_insert_with(
        &self,
        rel: RelationId,
        attr: AttrId,
        version: u64,
        rows: u64,
        may_evict: bool,
        mut upload: impl FnMut() -> Result<BufferId>,
    ) -> Result<CachedColumn> {
        let mut state = self.state.lock();
        if let Some(hit) = self.lookup_locked(&mut state, rel, attr, version)? {
            return Ok(hit);
        }
        let buf = loop {
            match upload() {
                Ok(buf) => break buf,
                Err(Error::DeviceOutOfMemory { .. }) if may_evict => {
                    let victim = state
                        .entries
                        .iter()
                        .filter(|(k, _)| **k != (rel, attr))
                        .min_by_key(|(_, e)| e.used_at)
                        .map(|(k, _)| *k);
                    match victim {
                        Some(k) => {
                            let e = state.entries.remove(&k).expect("victim exists");
                            self.device.free(e.buf)?;
                            self.device.ledger().record_cache_eviction();
                            counters().evictions.inc();
                            if obs::enabled() {
                                obs::instant_with(
                                    "cache",
                                    "cache.evict",
                                    &[
                                        ("rel", &k.0.to_string()),
                                        ("attr", &k.1.to_string()),
                                        ("bytes", &e.bytes.to_string()),
                                    ],
                                );
                            }
                        }
                        None => {
                            return Err(Error::DeviceOutOfMemory {
                                requested: rows as usize * 8,
                                free: self.device.free_bytes(),
                            })
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        };
        state.clock += 1;
        let clock = state.clock;
        let bytes = self.device.buffer_len(buf)?;
        if let Some(old) =
            state.entries.insert((rel, attr), Entry { version, buf, rows, bytes, used_at: clock })
        {
            // Unreachable under the lock, but never leak a replaced buffer.
            self.device.free(old.buf)?;
        }
        Ok(CachedColumn { buf, rows })
    }

    /// Drop the entry for one column, freeing its device memory. No-op if
    /// absent. (Engines may call this on write; the version check makes it
    /// equally correct to invalidate lazily at the next lookup.)
    pub fn invalidate(&self, rel: RelationId, attr: AttrId) -> Result<()> {
        let entry = self.state.lock().entries.remove(&(rel, attr));
        if let Some(e) = entry {
            self.device.free(e.buf)?;
        }
        Ok(())
    }

    /// Drop every entry of a relation (bulk writes, drop table).
    pub fn invalidate_relation(&self, rel: RelationId) -> Result<()> {
        let removed: Vec<Entry> = {
            let mut state = self.state.lock();
            let keys: Vec<ColumnKey> =
                state.entries.keys().filter(|(r, _)| *r == rel).copied().collect();
            keys.iter().filter_map(|k| state.entries.remove(k)).collect()
        };
        for e in removed {
            self.device.free(e.buf)?;
        }
        Ok(())
    }

    /// Drop everything.
    pub fn clear(&self) -> Result<()> {
        let removed: Vec<Entry> = {
            let mut state = self.state.lock();
            state.entries.drain().map(|(_, e)| e).collect()
        };
        for e in removed {
            self.device.free(e.buf)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    fn cache_with(spec: DeviceSpec) -> DeviceColumnCache {
        DeviceColumnCache::new(Arc::new(SimDevice::new(0, spec)))
    }

    fn col_bytes(n: usize, fill: u8) -> Vec<u8> {
        vec![fill; n * 8]
    }

    #[test]
    fn hit_skips_the_upload_and_counts() {
        let c = cache_with(DeviceSpec::default());
        let bytes = col_bytes(1000, 3);
        let mut uploads = 0;
        for _ in 0..3 {
            c.get_or_insert_with(1, 0, 7, 1000, true, || {
                uploads += 1;
                c.device().upload(&bytes)
            })
            .unwrap();
        }
        assert_eq!(uploads, 1);
        let snap = c.device().ledger().snapshot();
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.cache_hits, 2);
        assert_eq!(snap.bytes_to_device, 8000, "only the first query paid PCIe");
    }

    #[test]
    fn version_bump_invalidates_lazily() {
        let c = cache_with(DeviceSpec::default());
        c.get_or_insert_with(1, 0, 1, 10, true, || c.device().upload(&col_bytes(10, 1))).unwrap();
        let used = c.device().used_bytes();
        // Same column, new version: stale entry freed, fresh one uploaded.
        c.get_or_insert_with(1, 0, 2, 10, true, || c.device().upload(&col_bytes(10, 2))).unwrap();
        assert_eq!(c.device().used_bytes(), used, "stale buffer was freed");
        assert_eq!(c.len(), 1);
        assert!(c.contains(1, 0, 2));
        assert!(!c.contains(1, 0, 1));
        assert_eq!(c.device().ledger().snapshot().cache_misses, 2);
    }

    #[test]
    fn explicit_invalidate_frees_memory() {
        let c = cache_with(DeviceSpec::default());
        c.get_or_insert_with(1, 0, 1, 10, true, || c.device().upload(&col_bytes(10, 1))).unwrap();
        c.get_or_insert_with(1, 1, 1, 10, true, || c.device().upload(&col_bytes(10, 1))).unwrap();
        c.get_or_insert_with(2, 0, 1, 10, true, || c.device().upload(&col_bytes(10, 1))).unwrap();
        assert_eq!(c.resident_attrs(1), vec![0, 1]);
        c.invalidate(1, 0).unwrap();
        assert_eq!(c.resident_attrs(1), vec![1]);
        c.invalidate_relation(1).unwrap();
        assert_eq!(c.resident_attrs(1), Vec::<AttrId>::new());
        assert_eq!(c.len(), 1);
        c.clear().unwrap();
        assert!(c.is_empty());
        assert_eq!(c.device().used_bytes(), 0);
    }

    #[test]
    fn lru_eviction_frees_the_coldest_victim() {
        // 1 MB device; three 40 KB columns fit, the fourth forces eviction.
        let c = cache_with(DeviceSpec::tiny());
        let n = 40 * 1024 / 8;
        for attr in 0..3u16 {
            c.get_or_insert_with(1, attr, 1, n as u64, true, || {
                c.device().upload(&col_bytes(n, attr as u8))
            })
            .unwrap();
        }
        // Touch columns 0 and 2: column 1 becomes the LRU victim.
        c.lookup(1, 0, 1).unwrap().unwrap();
        c.lookup(1, 2, 1).unwrap().unwrap();
        // Fill the device down to < one column of slack, then ask for one
        // more column: it cannot fit without evicting.
        let filler = c.device().alloc(1024 * 1024 - 140 * 1024).unwrap();
        c.get_or_insert_with(1, 3, 1, n as u64, true, || c.device().upload(&col_bytes(n, 9)))
            .unwrap();
        assert_eq!(c.resident_attrs(1), vec![0, 2, 3], "attr 1 was the LRU victim");
        assert_eq!(c.device().ledger().snapshot().cache_evictions, 1);
        c.device().free(filler).unwrap();
    }

    #[test]
    fn without_may_evict_oom_is_surfaced_and_nothing_is_evicted() {
        let c = cache_with(DeviceSpec::tiny());
        let n = 40 * 1024 / 8;
        c.get_or_insert_with(1, 0, 1, n as u64, false, || c.device().upload(&col_bytes(n, 1)))
            .unwrap();
        let big = 2 * 1024 * 1024 / 8; // bigger than the whole device
        let err = c
            .get_or_insert_with(1, 1, 1, big as u64, false, || {
                c.device().upload(&col_bytes(big, 2))
            })
            .unwrap_err();
        assert!(matches!(err, Error::DeviceOutOfMemory { .. }));
        assert_eq!(c.resident_attrs(1), vec![0], "no eviction without may_evict");
        assert_eq!(c.device().ledger().snapshot().cache_evictions, 0);
    }

    #[test]
    fn may_evict_gives_up_cleanly_when_nothing_can_make_room() {
        let c = cache_with(DeviceSpec::tiny());
        let big = 2 * 1024 * 1024 / 8;
        let err = c
            .get_or_insert_with(1, 0, 1, big as u64, true, || c.device().upload(&col_bytes(big, 1)))
            .unwrap_err();
        assert!(matches!(err, Error::DeviceOutOfMemory { .. }));
        assert!(c.is_empty());
        assert_eq!(c.device().used_bytes(), 0, "failed insert leaks nothing");
    }

    #[test]
    fn failed_upload_records_no_phantom_entry() {
        use crate::faults::{FaultPlan, FaultRates};
        let mut d = SimDevice::new(0, DeviceSpec::default());
        d.set_fault_plan(FaultPlan::seeded(
            3,
            FaultRates { device_transfer: 1.0, ..FaultRates::none() },
        ));
        let c = DeviceColumnCache::new(Arc::new(d));
        let err = c
            .get_or_insert_with(1, 0, 1, 10, true, || c.device().upload(&col_bytes(10, 1)))
            .unwrap_err();
        assert!(matches!(err, Error::Transient { .. }));
        assert!(c.is_empty());
        assert_eq!(c.device().used_bytes(), 0);
        assert!(!c.contains(1, 0, 1));
    }
}
