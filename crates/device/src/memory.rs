//! Simulated device global memory and the host↔device transfer engine.
//!
//! The allocator enforces the device's capacity — the wall behind CoGaDB's
//! "all or nothing" column placement (Section IV-B3): either the whole
//! column fits in device memory, or placement fails with
//! [`Error::DeviceOutOfMemory`] and the caller falls back to the host.

use htapg_core::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use htapg_core::{Error, Result};

use crate::faults::{FaultPlan, FaultSite};
use crate::ledger::CostLedger;
use crate::spec::DeviceSpec;

/// Handle to a device-resident buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(u64);

#[derive(Debug, Default)]
struct MemState {
    buffers: HashMap<u64, Vec<u8>>,
    used: usize,
    next_id: u64,
    peak: usize,
}

/// A simulated SIMT device: spec + global memory + cost ledger.
#[derive(Debug)]
pub struct SimDevice {
    id: u32,
    spec: DeviceSpec,
    ledger: Arc<CostLedger>,
    faults: Arc<FaultPlan>,
    mem: Mutex<MemState>,
}

impl SimDevice {
    pub fn new(id: u32, spec: DeviceSpec) -> Self {
        SimDevice {
            id,
            spec,
            ledger: Arc::new(CostLedger::new()),
            faults: FaultPlan::none(),
            mem: Mutex::new(MemState::default()),
        }
    }

    /// Install a fault injector (defaults to [`FaultPlan::none`]).
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = plan;
    }

    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.faults
    }

    /// One transfer-fault roll, shared by every host↔device copy path.
    fn roll_transfer(&self) -> Result<()> {
        if let Some(d) = self.faults.roll(FaultSite::DeviceTransfer) {
            self.faults.record(FaultSite::DeviceTransfer, d.op, "transfer-error");
            return Err(Error::Transient { site: "device.transfer", fault: "transfer-error" });
        }
        Ok(())
    }

    pub fn with_defaults() -> Self {
        Self::new(0, DeviceSpec::default())
    }

    pub fn id(&self) -> u32 {
        self.id
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    pub fn ledger(&self) -> &Arc<CostLedger> {
        &self.ledger
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> usize {
        self.mem.lock().used
    }

    /// High-water mark of allocation.
    pub fn peak_bytes(&self) -> usize {
        self.mem.lock().peak
    }

    /// Bytes still allocatable.
    pub fn free_bytes(&self) -> usize {
        self.spec.global_mem_bytes - self.used_bytes()
    }

    /// Allocate an uninitialized (zeroed) buffer of `len` bytes.
    ///
    /// Fails with [`Error::DeviceOutOfMemory`] when the capacity would be
    /// exceeded — allocation is all-or-nothing, never partial.
    pub fn alloc(&self, len: usize) -> Result<BufferId> {
        if let Some(d) = self.faults.roll(FaultSite::DeviceAlloc) {
            // Spurious OOM (fragmentation, a concurrent tenant): shaped as
            // the error engines already degrade on.
            self.faults.record(FaultSite::DeviceAlloc, d.op, "oom");
            return Err(Error::DeviceOutOfMemory { requested: len, free: self.free_bytes() });
        }
        let mut mem = self.mem.lock();
        if mem.used + len > self.spec.global_mem_bytes {
            return Err(Error::DeviceOutOfMemory {
                requested: len,
                free: self.spec.global_mem_bytes - mem.used,
            });
        }
        let id = mem.next_id;
        mem.next_id += 1;
        mem.used += len;
        mem.peak = mem.peak.max(mem.used);
        mem.buffers.insert(id, vec![0u8; len]);
        Ok(BufferId(id))
    }

    /// Release a buffer.
    pub fn free(&self, buf: BufferId) -> Result<()> {
        let mut mem = self.mem.lock();
        let data = mem
            .buffers
            .remove(&buf.0)
            .ok_or_else(|| Error::Internal(format!("double free of device buffer {:?}", buf)))?;
        mem.used -= data.len();
        Ok(())
    }

    /// Allocate and upload host bytes, charging PCIe transfer time.
    ///
    /// All-or-nothing: a failed transfer frees the allocation, so a fault
    /// never strands device memory.
    pub fn upload(&self, bytes: &[u8]) -> Result<BufferId> {
        let buf = self.alloc(bytes.len())?;
        match self.write(buf, 0, bytes) {
            Ok(()) => Ok(buf),
            Err(e) => {
                let _ = self.free(buf);
                Err(e)
            }
        }
    }

    /// Copy host bytes into an existing buffer at `offset`, charging PCIe
    /// transfer time.
    pub fn write(&self, buf: BufferId, offset: usize, bytes: &[u8]) -> Result<()> {
        let ns = self.write_overlapped(buf, offset, bytes)?;
        self.ledger.advance_wall(ns);
        Ok(())
    }

    /// Like [`write`](Self::write) but charges the transfer without
    /// advancing the wall clock — the copy runs on a
    /// [`SimStream`](crate::stream::SimStream), which owns the timeline.
    /// Returns the modeled transfer duration in virtual nanoseconds.
    pub fn write_overlapped(&self, buf: BufferId, offset: usize, bytes: &[u8]) -> Result<u64> {
        self.roll_transfer()?;
        let mut mem = self.mem.lock();
        let data = mem
            .buffers
            .get_mut(&buf.0)
            .ok_or_else(|| Error::Internal(format!("unknown device buffer {:?}", buf)))?;
        let end = offset
            .checked_add(bytes.len())
            .filter(|&e| e <= data.len())
            .ok_or_else(|| Error::Internal("device buffer overrun".into()))?;
        data[offset..end].copy_from_slice(bytes);
        drop(mem);
        let ns = self.spec.transfer_ns(bytes.len());
        self.ledger.charge_transfer_overlapped(ns, bytes.len() as u64, 0);
        Ok(ns)
    }

    /// Copy a buffer back to the host, charging PCIe transfer time.
    pub fn download(&self, buf: BufferId) -> Result<Vec<u8>> {
        self.roll_transfer()?;
        let mem = self.mem.lock();
        let data = mem
            .buffers
            .get(&buf.0)
            .ok_or_else(|| Error::Internal(format!("unknown device buffer {:?}", buf)))?
            .clone();
        drop(mem);
        self.ledger.charge_transfer(self.spec.transfer_ns(data.len()), 0, data.len() as u64);
        Ok(data)
    }

    /// Copy `len` bytes of a buffer back to the host, charging only that
    /// transfer (not the whole buffer).
    pub fn read_at(&self, buf: BufferId, offset: usize, len: usize) -> Result<Vec<u8>> {
        self.roll_transfer()?;
        let mem = self.mem.lock();
        let data = mem
            .buffers
            .get(&buf.0)
            .ok_or_else(|| Error::Internal(format!("unknown device buffer {:?}", buf)))?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= data.len())
            .ok_or_else(|| Error::Internal("device buffer overrun".into()))?;
        let out = data[offset..end].to_vec();
        drop(mem);
        self.ledger.charge_transfer(self.spec.transfer_ns(len), 0, len as u64);
        Ok(out)
    }

    /// Device-to-device copy of `src`'s populated prefix into `dst`
    /// (buffer growth, compaction). Charged as device memory traffic, not
    /// PCIe.
    pub fn device_copy(&self, src: BufferId, dst: BufferId) -> Result<usize> {
        let mut mem = self.mem.lock();
        let src_data = mem
            .buffers
            .get(&src.0)
            .ok_or_else(|| Error::Internal(format!("unknown device buffer {:?}", src)))?
            .clone();
        let dst_data = mem
            .buffers
            .get_mut(&dst.0)
            .ok_or_else(|| Error::Internal(format!("unknown device buffer {:?}", dst)))?;
        let n = src_data.len().min(dst_data.len());
        dst_data[..n].copy_from_slice(&src_data[..n]);
        drop(mem);
        // Read + write at device bandwidth.
        let ns = (2.0 * n as f64 / self.spec.mem_bandwidth * 1e9) as u64;
        self.ledger.charge_kernel(ns);
        Ok(n)
    }

    /// Run `f` over a buffer's bytes *on the device* (no transfer charge;
    /// kernel charging is the caller's responsibility via
    /// [`crate::simt::Executor`]).
    pub fn with_buffer<R>(&self, buf: BufferId, f: impl FnOnce(&[u8]) -> R) -> Result<R> {
        let mem = self.mem.lock();
        let data = mem
            .buffers
            .get(&buf.0)
            .ok_or_else(|| Error::Internal(format!("unknown device buffer {:?}", buf)))?;
        Ok(f(data))
    }

    /// Mutable device-side access (for kernels that write in place).
    pub fn with_buffer_mut<R>(&self, buf: BufferId, f: impl FnOnce(&mut [u8]) -> R) -> Result<R> {
        let mut mem = self.mem.lock();
        let data = mem
            .buffers
            .get_mut(&buf.0)
            .ok_or_else(|| Error::Internal(format!("unknown device buffer {:?}", buf)))?;
        Ok(f(data))
    }

    /// Length of a buffer in bytes.
    pub fn buffer_len(&self, buf: BufferId) -> Result<usize> {
        self.with_buffer(buf, |b| b.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_accounting() {
        let d = SimDevice::new(0, DeviceSpec::tiny());
        let a = d.alloc(1000).unwrap();
        let b = d.alloc(2000).unwrap();
        assert_eq!(d.used_bytes(), 3000);
        d.free(a).unwrap();
        assert_eq!(d.used_bytes(), 2000);
        assert_eq!(d.peak_bytes(), 3000);
        d.free(b).unwrap();
        assert_eq!(d.used_bytes(), 0);
    }

    #[test]
    fn all_or_nothing_capacity() {
        let d = SimDevice::new(0, DeviceSpec::tiny()); // 1 MB
        let _half = d.alloc(700 * 1024).unwrap();
        let err = d.alloc(700 * 1024).unwrap_err();
        match err {
            Error::DeviceOutOfMemory { requested, free } => {
                assert_eq!(requested, 700 * 1024);
                assert_eq!(free, 1024 * 1024 - 700 * 1024);
            }
            other => panic!("unexpected: {other}"),
        }
        // A smaller allocation still fits: no fragmentation in the model.
        assert!(d.alloc(100 * 1024).is_ok());
    }

    #[test]
    fn upload_download_roundtrip_and_charges() {
        let d = SimDevice::with_defaults();
        let payload: Vec<u8> = (0..=255).cycle().take(1 << 20).collect();
        let buf = d.upload(&payload).unwrap();
        let before = d.ledger().snapshot();
        assert!(before.transfer_ns > 0);
        assert_eq!(before.bytes_to_device, 1 << 20);
        let back = d.download(buf).unwrap();
        assert_eq!(back, payload);
        let after = d.ledger().snapshot();
        assert_eq!(after.bytes_from_device, 1 << 20);
        assert!(after.transfer_ns > before.transfer_ns);
    }

    #[test]
    fn double_free_is_an_error() {
        let d = SimDevice::with_defaults();
        let b = d.alloc(10).unwrap();
        d.free(b).unwrap();
        assert!(d.free(b).is_err());
    }

    #[test]
    fn write_bounds_checked() {
        let d = SimDevice::with_defaults();
        let b = d.alloc(10).unwrap();
        assert!(d.write(b, 8, &[1, 2, 3]).is_err());
        assert!(d.write(b, 7, &[1, 2, 3]).is_ok());
    }

    #[test]
    fn device_side_access_is_free_of_transfer_charges() {
        let d = SimDevice::with_defaults();
        let b = d.upload(&[1u8; 64]).unwrap();
        let before = d.ledger().snapshot();
        let sum: u32 = d.with_buffer(b, |bytes| bytes.iter().map(|&x| x as u32).sum()).unwrap();
        assert_eq!(sum, 64);
        assert_eq!(d.ledger().snapshot().transfer_ns, before.transfer_ns);
    }
}
