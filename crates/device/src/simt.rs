//! The SIMT kernel executor: grid/block launches with a virtual-time model.
//!
//! A launch executes a Rust closure once per *logical thread* (organized as
//! `grid_blocks × block_threads`, exactly like CUDA), then charges the cost
//! ledger with the modeled duration from [`DeviceSpec::kernel_ns`](crate::spec::DeviceSpec::kernel_ns). Data is
//! computed for real; time is virtual.

use htapg_core::{Error, Result};

use crate::faults::FaultSite;
use crate::memory::SimDevice;

/// A CUDA-style launch configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    pub grid_blocks: u32,
    pub block_threads: u32,
}

impl LaunchConfig {
    pub fn new(grid_blocks: u32, block_threads: u32) -> Self {
        LaunchConfig { grid_blocks, block_threads }
    }

    pub fn total_threads(&self) -> u64 {
        self.grid_blocks as u64 * self.block_threads as u64
    }
}

/// Identity of one logical thread within a launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadIdx {
    pub block: u32,
    pub thread: u32,
    pub block_dim: u32,
}

impl ThreadIdx {
    /// Global linear thread index (`blockIdx.x * blockDim.x + threadIdx.x`).
    pub fn global(&self) -> u64 {
        self.block as u64 * self.block_dim as u64 + self.thread as u64
    }
}

/// Resource accounting a kernel reports for the time model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCost {
    /// Number of logical work items processed.
    pub work_items: u64,
    /// Approximate device cycles per work item.
    pub cycles_per_item: f64,
    /// Device-memory bytes read + written.
    pub bytes: u64,
}

/// The kernel executor bound to a device.
#[derive(Debug)]
pub struct Executor<'d> {
    device: &'d SimDevice,
}

impl<'d> Executor<'d> {
    pub fn new(device: &'d SimDevice) -> Self {
        Executor { device }
    }

    pub fn device(&self) -> &SimDevice {
        self.device
    }

    /// Validate a launch configuration against device limits.
    pub fn validate(&self, cfg: LaunchConfig) -> Result<()> {
        if cfg.block_threads == 0 || cfg.grid_blocks == 0 {
            return Err(Error::Internal("empty launch configuration".into()));
        }
        if cfg.block_threads > self.device.spec().max_threads_per_block {
            return Err(Error::Internal(format!(
                "block of {} threads exceeds device limit {}",
                cfg.block_threads,
                self.device.spec().max_threads_per_block
            )));
        }
        Ok(())
    }

    /// One launch-fault roll, shared by [`Self::launch`] and
    /// [`Self::charge_launch`].
    fn roll_launch(&self) -> Result<()> {
        let plan = self.device.fault_plan();
        if let Some(d) = plan.roll(FaultSite::KernelLaunch) {
            plan.record(FaultSite::KernelLaunch, d.op, "launch-error");
            return Err(Error::Transient { site: "device.launch", fault: "launch-error" });
        }
        Ok(())
    }

    /// Launch `kernel` once per logical thread and charge the modeled cost.
    ///
    /// Returns the modeled duration in virtual nanoseconds. The closure runs
    /// sequentially on the host (blocks outer, threads inner) — determinism
    /// is the point; parallel speed is *modeled*, not exploited.
    pub fn launch<F>(&self, cfg: LaunchConfig, cost: KernelCost, mut kernel: F) -> Result<u64>
    where
        F: FnMut(ThreadIdx),
    {
        self.validate(cfg)?;
        self.roll_launch()?;
        for block in 0..cfg.grid_blocks {
            for thread in 0..cfg.block_threads {
                kernel(ThreadIdx { block, thread, block_dim: cfg.block_threads });
            }
        }
        let ns = self.device.spec().kernel_ns(
            cfg.total_threads(),
            cost.work_items.max(cfg.total_threads()),
            cost.cycles_per_item,
            cost.bytes,
        );
        self.device.ledger().charge_kernel(ns);
        Ok(ns)
    }

    /// Charge a launch without running per-thread closures — used by
    /// kernels that compute with bulk host operations for speed but want the
    /// same time model (the hot path for large reductions).
    pub fn charge_launch(&self, cfg: LaunchConfig, cost: KernelCost) -> Result<u64> {
        let ns = self.charge_launch_overlapped(cfg, cost)?;
        self.device.ledger().advance_wall(ns);
        Ok(ns)
    }

    /// Like [`charge_launch`](Self::charge_launch) but without advancing
    /// the wall clock — the launch runs on a
    /// [`SimStream`](crate::stream::SimStream), which owns the timeline.
    pub fn charge_launch_overlapped(&self, cfg: LaunchConfig, cost: KernelCost) -> Result<u64> {
        self.validate(cfg)?;
        self.roll_launch()?;
        let ns = self.device.spec().kernel_ns(
            cfg.total_threads(),
            cost.work_items.max(cfg.total_threads()),
            cost.cycles_per_item,
            cost.bytes,
        );
        self.device.ledger().charge_kernel_overlapped(ns);
        Ok(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    #[test]
    fn launch_runs_every_thread() {
        let d = SimDevice::with_defaults();
        let ex = Executor::new(&d);
        let cfg = LaunchConfig::new(4, 8);
        let mut seen = [false; 32];
        ex.launch(cfg, KernelCost::default(), |t| {
            seen[t.global() as usize] = true;
        })
        .unwrap();
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn launch_charges_ledger() {
        let d = SimDevice::with_defaults();
        let ex = Executor::new(&d);
        let cost = KernelCost { work_items: 1_000_000, cycles_per_item: 10.0, bytes: 8_000_000 };
        let ns = ex.charge_launch(LaunchConfig::new(1024, 512), cost).unwrap();
        let snap = d.ledger().snapshot();
        assert_eq!(snap.kernel_ns, ns);
        assert_eq!(snap.kernel_launches, 1);
        assert!(ns >= d.spec().kernel_launch_ns);
    }

    #[test]
    fn oversized_block_rejected() {
        let d = SimDevice::new(0, DeviceSpec::default());
        let ex = Executor::new(&d);
        assert!(ex.validate(LaunchConfig::new(1, 2048)).is_err());
        assert!(ex.validate(LaunchConfig::new(1, 1024)).is_ok());
        assert!(ex.validate(LaunchConfig::new(0, 1)).is_err());
    }
}
