//! `FaultPlan`: seeded, deterministic fault injection for every simulated
//! substrate.
//!
//! Real storage engines earn their keep when hardware misbehaves; the
//! simulated substrates were, until this module, implausibly perfect. A
//! [`FaultPlan`] wraps every simulated operation — disk reads/writes,
//! cluster sends, device transfers/allocations, kernel launches, WAL
//! appends — with a per-site probability roll driven by a counter-based
//! PRNG: the decision for the `n`-th operation at a site is
//! `splitmix64(seed ^ site_salt ^ n)`, so the same seed always yields the
//! same fault sequence regardless of wall-clock timing.
//!
//! Disabled plans ([`FaultPlan::none`], the default everywhere) cost one
//! predictable branch per operation — no locks, no allocation, no atomics
//! on the fault-free hot path.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use htapg_core::prng::splitmix64;
use htapg_core::sync::{Mutex, RwLock};
use htapg_core::wal::LogStorage;
use htapg_core::{Error, Result};

/// Every operation class a [`FaultPlan`] can interpose on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `SimDisk::read_page`.
    DiskRead = 0,
    /// `SimDisk::write_page`.
    DiskWrite = 1,
    /// `SimCluster::ship` / `SimCluster::fetch`.
    ClusterSend = 2,
    /// `SimDevice` host↔device copies (`write`, `download`, `read_at`).
    DeviceTransfer = 3,
    /// `SimDevice::alloc` (spurious out-of-memory).
    DeviceAlloc = 4,
    /// `simt::Executor` launches.
    KernelLaunch = 5,
    /// WAL appends through [`FaultyStorage`].
    WalAppend = 6,
}

impl FaultSite {
    pub const ALL: [FaultSite; 7] = [
        FaultSite::DiskRead,
        FaultSite::DiskWrite,
        FaultSite::ClusterSend,
        FaultSite::DeviceTransfer,
        FaultSite::DeviceAlloc,
        FaultSite::KernelLaunch,
        FaultSite::WalAppend,
    ];

    pub fn name(self) -> &'static str {
        match self {
            FaultSite::DiskRead => "disk.read",
            FaultSite::DiskWrite => "disk.write",
            FaultSite::ClusterSend => "cluster.send",
            FaultSite::DeviceTransfer => "device.transfer",
            FaultSite::DeviceAlloc => "device.alloc",
            FaultSite::KernelLaunch => "device.launch",
            FaultSite::WalAppend => "wal.append",
        }
    }

    /// Per-site stream separator so two sites never share a decision
    /// stream even under the same seed.
    fn salt(self) -> u64 {
        splitmix64(0xFA_17_5A_17 ^ (self as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// Per-site fault probabilities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    pub disk_read: f64,
    pub disk_write: f64,
    pub cluster_send: f64,
    pub device_transfer: f64,
    pub device_alloc: f64,
    pub kernel_launch: f64,
    pub wal_append: f64,
}

impl FaultRates {
    /// The same probability at every site.
    pub fn uniform(p: f64) -> Self {
        FaultRates {
            disk_read: p,
            disk_write: p,
            cluster_send: p,
            device_transfer: p,
            device_alloc: p,
            kernel_launch: p,
            wal_append: p,
        }
    }

    /// No faults anywhere.
    pub fn none() -> Self {
        Self::uniform(0.0)
    }

    fn get(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::DiskRead => self.disk_read,
            FaultSite::DiskWrite => self.disk_write,
            FaultSite::ClusterSend => self.cluster_send,
            FaultSite::DeviceTransfer => self.device_transfer,
            FaultSite::DeviceAlloc => self.device_alloc,
            FaultSite::KernelLaunch => self.kernel_launch,
            FaultSite::WalAppend => self.wal_append,
        }
    }
}

/// A positive fault decision: which operation fired plus a derived entropy
/// word the injection site uses to pick a fault flavor deterministically.
#[derive(Debug, Clone, Copy)]
pub struct FaultDraw {
    /// Zero-based index of the operation at its site.
    pub op: u64,
    /// Deterministic entropy for flavor/extent choices.
    pub entropy: u64,
}

impl FaultDraw {
    /// A deterministic value in `0..n` (n > 0), derived from the entropy by
    /// widening multiply (no modulo bias).
    pub fn pick(&self, n: u64) -> u64 {
        ((self.entropy as u128 * n as u128) >> 64) as u64
    }
}

/// One injected fault, for reproducibility reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    pub site: FaultSite,
    /// Which operation at the site (zero-based) the fault hit.
    pub op: u64,
    /// Flavor tag, e.g. `"torn-write"`, `"io-error"`, `"latency-spike"`.
    pub kind: &'static str,
}

/// The seeded, deterministic fault injector.
///
/// Shared (`Arc`) between a test harness and the substrates it wants to
/// shake. All decisions derive from `seed` and per-site operation
/// counters, so a failing run is reproducible from its seed alone.
#[derive(Debug)]
pub struct FaultPlan {
    enabled: bool,
    seed: u64,
    /// `p * 2^64` per site: a fault fires when the 64-bit roll is below it.
    thresholds: [u64; 7],
    counters: [AtomicU64; 7],
    has_down_nodes: AtomicBool,
    down_nodes: RwLock<Vec<u32>>,
    history: Mutex<Vec<FaultEvent>>,
}

fn threshold(p: f64) -> u64 {
    if p <= 0.0 {
        0
    } else if p >= 1.0 {
        u64::MAX
    } else {
        (p * (u64::MAX as f64 + 1.0)) as u64
    }
}

impl FaultPlan {
    /// A disabled plan: every roll is a single always-false branch.
    pub fn none() -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            enabled: false,
            seed: 0,
            thresholds: [0; 7],
            counters: Default::default(),
            has_down_nodes: AtomicBool::new(false),
            down_nodes: RwLock::new(Vec::new()),
            history: Mutex::new(Vec::new()),
        })
    }

    /// A plan injecting faults at `rates`, fully determined by `seed`.
    pub fn seeded(seed: u64, rates: FaultRates) -> Arc<FaultPlan> {
        let mut thresholds = [0u64; 7];
        for site in FaultSite::ALL {
            thresholds[site as usize] = threshold(rates.get(site));
        }
        Arc::new(FaultPlan {
            enabled: true,
            seed,
            thresholds,
            counters: Default::default(),
            has_down_nodes: AtomicBool::new(false),
            down_nodes: RwLock::new(Vec::new()),
            history: Mutex::new(Vec::new()),
        })
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decide whether the next operation at `site` faults. `None` means
    /// proceed normally. The disabled path is a single branch.
    #[inline]
    pub fn roll(&self, site: FaultSite) -> Option<FaultDraw> {
        if !self.enabled {
            return None;
        }
        self.roll_enabled(site)
    }

    fn roll_enabled(&self, site: FaultSite) -> Option<FaultDraw> {
        let i = site as usize;
        let op = self.counters[i].fetch_add(1, Ordering::Relaxed);
        let roll = splitmix64(self.seed ^ site.salt() ^ op);
        if roll < self.thresholds[i] {
            Some(FaultDraw { op, entropy: splitmix64(roll) })
        } else {
            None
        }
    }

    /// Record an injected fault (called by the site that decided the
    /// flavor). Only ever reached on the faulting path.
    pub fn record(&self, site: FaultSite, op: u64, kind: &'static str) {
        self.history.lock().push(FaultEvent { site, op, kind });
    }

    /// Everything injected so far, in order.
    pub fn history(&self) -> Vec<FaultEvent> {
        self.history.lock().clone()
    }

    /// The fault sequence as one line per event — the canonical form the
    /// chaos suite compares byte-for-byte across runs of the same seed.
    pub fn history_string(&self) -> String {
        let mut out = String::new();
        for ev in self.history.lock().iter() {
            out.push_str(ev.site.name());
            out.push('#');
            out.push_str(&ev.op.to_string());
            out.push(' ');
            out.push_str(ev.kind);
            out.push('\n');
        }
        out
    }

    /// Operations rolled at `site` so far.
    pub fn ops_at(&self, site: FaultSite) -> u64 {
        self.counters[site as usize].load(Ordering::Relaxed)
    }

    /// Take a node offline: cluster operations touching it fail with
    /// [`Error::NodeUnreachable`] until [`FaultPlan::mark_node_up`].
    /// Works on any plan, including rate-zero ones.
    pub fn mark_node_down(&self, node: u32) {
        let mut down = self.down_nodes.write();
        if !down.contains(&node) {
            down.push(node);
        }
        self.has_down_nodes.store(true, Ordering::Release);
    }

    /// Bring a node back online.
    pub fn mark_node_up(&self, node: u32) {
        let mut down = self.down_nodes.write();
        down.retain(|&n| n != node);
        self.has_down_nodes.store(!down.is_empty(), Ordering::Release);
    }

    /// Whether `node` is currently marked down. Lock-free when no node has
    /// been taken down.
    pub fn is_node_down(&self, node: u32) -> bool {
        self.has_down_nodes.load(Ordering::Acquire) && self.down_nodes.read().contains(&node)
    }

    /// Fail if `node` is down — the guard cluster operations call first.
    pub fn check_node(&self, node: u32) -> Result<()> {
        if self.is_node_down(node) {
            Err(Error::NodeUnreachable { node })
        } else {
            Ok(())
        }
    }
}

/// [`LogStorage`] wrapper that injects torn and failed appends.
///
/// Torn appends persist a strict prefix of the frame before failing — the
/// classic torn-page crash shape the WAL's CRC framing must survive.
#[derive(Debug)]
pub struct FaultyStorage<S> {
    inner: S,
    plan: Arc<FaultPlan>,
}

impl<S> FaultyStorage<S> {
    pub fn new(inner: S, plan: Arc<FaultPlan>) -> Self {
        FaultyStorage { inner, plan }
    }

    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    pub fn inner(&self) -> &S {
        &self.inner
    }

    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: LogStorage> LogStorage for FaultyStorage<S> {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        if let Some(d) = self.plan.roll(FaultSite::WalAppend) {
            if d.entropy & 1 == 0 && !bytes.is_empty() {
                // Tear: a strict prefix reaches storage, then the write
                // "fails". The caller sees an error; the log holds garbage.
                let keep = d.pick(bytes.len() as u64) as usize;
                self.inner.append(&bytes[..keep])?;
                self.plan.record(FaultSite::WalAppend, d.op, "torn-append");
                return Err(Error::Transient { site: "wal.append", fault: "torn-append" });
            }
            self.plan.record(FaultSite::WalAppend, d.op, "io-error");
            return Err(Error::Transient { site: "wal.append", fault: "io-error" });
        }
        self.inner.append(bytes)
    }

    fn read_all(&mut self) -> Result<Vec<u8>> {
        self.inner.read_all()
    }

    fn storage_len(&mut self) -> Result<u64> {
        self.inner.storage_len()
    }

    fn truncate_to(&mut self, len: u64) -> Result<()> {
        self.inner.truncate_to(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htapg_core::wal::MemStorage;

    #[test]
    fn disabled_plan_never_faults() {
        let plan = FaultPlan::none();
        for site in FaultSite::ALL {
            for _ in 0..1000 {
                assert!(plan.roll(site).is_none());
            }
        }
        assert!(plan.history().is_empty());
    }

    #[test]
    fn same_seed_same_sequence() {
        let a = FaultPlan::seeded(42, FaultRates::uniform(0.2));
        let b = FaultPlan::seeded(42, FaultRates::uniform(0.2));
        for _ in 0..500 {
            for site in FaultSite::ALL {
                let (da, db) = (a.roll(site), b.roll(site));
                match (da, db) {
                    (None, None) => {}
                    (Some(x), Some(y)) => {
                        assert_eq!(x.op, y.op);
                        assert_eq!(x.entropy, y.entropy);
                    }
                    other => panic!("diverged: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::seeded(1, FaultRates::uniform(0.3));
        let b = FaultPlan::seeded(2, FaultRates::uniform(0.3));
        let seq = |p: &FaultPlan| -> Vec<bool> {
            (0..200).map(|_| p.roll(FaultSite::DiskRead).is_some()).collect()
        };
        assert_ne!(seq(&a), seq(&b));
    }

    #[test]
    fn fault_rate_is_approximately_honored() {
        let plan = FaultPlan::seeded(7, FaultRates::uniform(0.1));
        let n = 20_000;
        let hits = (0..n).filter(|_| plan.roll(FaultSite::KernelLaunch).is_some()).count();
        let rate = hits as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "rate {rate}");
    }

    #[test]
    fn rate_edges() {
        let never = FaultPlan::seeded(3, FaultRates::uniform(0.0));
        assert!((0..1000).all(|_| never.roll(FaultSite::DiskWrite).is_none()));
        let always = FaultPlan::seeded(3, FaultRates::uniform(1.0));
        // p = 1.0 maps to u64::MAX: all but the single max roll fire.
        let hits = (0..1000).filter(|_| always.roll(FaultSite::DiskWrite).is_some()).count();
        assert!(hits >= 999);
    }

    #[test]
    fn down_nodes_toggle() {
        let plan = FaultPlan::none();
        assert!(plan.check_node(2).is_ok());
        plan.mark_node_down(2);
        assert!(plan.is_node_down(2));
        assert!(!plan.is_node_down(1));
        assert!(matches!(plan.check_node(2), Err(Error::NodeUnreachable { node: 2 })));
        plan.mark_node_up(2);
        assert!(plan.check_node(2).is_ok());
    }

    #[test]
    fn history_string_is_stable() {
        let plan = FaultPlan::seeded(9, FaultRates::uniform(1.0));
        let d = plan.roll(FaultSite::DiskRead).unwrap();
        plan.record(FaultSite::DiskRead, d.op, "io-error");
        assert_eq!(plan.history_string(), "disk.read#0 io-error\n");
    }

    #[test]
    fn faulty_storage_tears_and_recovers_prefix() {
        let plan = FaultPlan::seeded(11, FaultRates { wal_append: 1.0, ..FaultRates::none() });
        let mut st = FaultyStorage::new(MemStorage::new(), plan.clone());
        let payload = vec![0xABu8; 64];
        // Every append faults; some tear (prefix lands), some drop cleanly.
        let mut wrote_any = false;
        for _ in 0..32 {
            let before = st.inner().len();
            assert!(st.append(&payload).is_err());
            let after = st.inner().len();
            assert!(after - before < payload.len(), "never a full append");
            wrote_any |= after > before;
        }
        assert!(wrote_any, "expected at least one torn prefix in 32 tries");
        assert!(!plan.history().is_empty());
    }
}
