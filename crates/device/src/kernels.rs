//! Device kernels: real computation, modeled time.
//!
//! [`reduce_sum_f64`] reproduces the paper's experiment kernel: "an
//! optimized parallel reduction kernel to calculate the sum of price fields
//! ... configured to run with at least 1024 blocks (each having 512
//! threads). The final reduction was performed with 1 block and 1024
//! threads" (Section II-B, after Mark Harris' classic reduction).
//!
//! Reductions use a fixed pairwise tree order, so results are
//! bit-deterministic and independent of the launch geometry — the property
//! tests rely on this.

use htapg_core::{Error, Result};

use crate::memory::{BufferId, SimDevice};
use crate::simt::{Executor, KernelCost, LaunchConfig};
use crate::stream::SimStream;

/// The paper's reduction geometry.
pub const REDUCE_GRID: u32 = 1024;
pub const REDUCE_BLOCK: u32 = 512;
pub const FINAL_BLOCK: u32 = 1024;

/// Rows per segment of the canonical `REDUCE_GRID`-way segmentation of an
/// `n`-row column. Fixed by the *total* row count — chunked pipelines reuse
/// it so their partials are bit-identical to the single-shot reduction.
pub fn reduce_seg_len(n: usize) -> usize {
    n.div_ceil(REDUCE_GRID as usize).max(1)
}

/// Number of (non-empty) segments in the canonical segmentation of `n`.
pub fn reduce_segments(n: usize) -> usize {
    n.div_ceil(reduce_seg_len(n))
}

/// Pairwise (tree) summation of a slice — the deterministic order a
/// shared-memory tree reduction produces.
pub fn tree_sum(values: &[f64]) -> f64 {
    match values.len() {
        0 => 0.0,
        1 => values[0],
        n => {
            let mid = n / 2;
            tree_sum(&values[..mid]) + tree_sum(&values[mid..])
        }
    }
}

fn as_f64s(bytes: &[u8]) -> Result<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(Error::Internal("buffer is not a packed f64 column".into()));
    }
    Ok(bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect())
}

/// Sum a device-resident packed `f64` column with the two-pass Harris-style
/// reduction. Returns the sum; charges two kernel launches (partials +
/// final) to the device ledger.
pub fn reduce_sum_f64(device: &SimDevice, buf: BufferId) -> Result<f64> {
    let ex = Executor::new(device);
    let values = device.with_buffer(buf, as_f64s)??;
    let n = values.len();
    if n == 0 {
        // Even an empty reduction launches.
        ex.charge_launch(
            LaunchConfig::new(1, FINAL_BLOCK),
            KernelCost { work_items: 1, cycles_per_item: 1.0, bytes: 0 },
        )?;
        return Ok(0.0);
    }
    // Pass 1: REDUCE_GRID blocks × REDUCE_BLOCK threads; each block reduces
    // a contiguous segment into one partial.
    let segments = REDUCE_GRID as usize;
    let seg_len = n.div_ceil(segments);
    let mut partials = Vec::with_capacity(segments);
    for seg in values.chunks(seg_len.max(1)) {
        partials.push(tree_sum(seg));
    }
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID, REDUCE_BLOCK),
        KernelCost { work_items: n as u64, cycles_per_item: 4.0, bytes: (n * 8) as u64 },
    )?;
    // Pass 2: final reduction with 1 block × FINAL_BLOCK threads.
    let total = tree_sum(&partials);
    ex.charge_launch(
        LaunchConfig::new(1, FINAL_BLOCK),
        KernelCost {
            work_items: partials.len() as u64,
            cycles_per_item: 4.0,
            bytes: (partials.len() * 8) as u64,
        },
    )?;
    Ok(total)
}

/// Pass-1 partials for segments `[seg_lo, seg_hi)` of the canonical
/// segmentation of a `total_rows` column, read from the (possibly still
/// filling) buffer `buf` and charged as one launch on `stream`.
///
/// Because segment boundaries depend only on `total_rows`, a pipeline that
/// covers `[0, reduce_segments(n))` in any chunking produces exactly the
/// partials of [`reduce_sum_f64`]'s first pass — the bit-identity the
/// property tests assert.
pub fn reduce_partials_f64(
    stream: &mut SimStream<'_>,
    buf: BufferId,
    total_rows: usize,
    seg_lo: usize,
    seg_hi: usize,
) -> Result<Vec<f64>> {
    segment_partials(stream, buf, total_rows, seg_lo, seg_hi, None)
}

/// Fused pass-1 partials: per segment, the tree sum of only the values
/// satisfying `pred` — selection and aggregation in a single launch.
pub fn filter_partials_f64(
    stream: &mut SimStream<'_>,
    buf: BufferId,
    total_rows: usize,
    seg_lo: usize,
    seg_hi: usize,
    pred: &dyn Fn(f64) -> bool,
) -> Result<Vec<f64>> {
    segment_partials(stream, buf, total_rows, seg_lo, seg_hi, Some(pred))
}

fn segment_partials(
    stream: &mut SimStream<'_>,
    buf: BufferId,
    total_rows: usize,
    seg_lo: usize,
    seg_hi: usize,
    pred: Option<&dyn Fn(f64) -> bool>,
) -> Result<Vec<f64>> {
    let device = stream.device();
    let seg_len = reduce_seg_len(total_rows);
    let lo_row = seg_lo * seg_len;
    let hi_row = (seg_hi * seg_len).min(total_rows);
    if seg_hi <= seg_lo {
        return Ok(Vec::new());
    }
    let partials = device.with_buffer(buf, |bytes| {
        if lo_row > hi_row || hi_row * 8 > bytes.len() {
            return Err(Error::Internal("segment range beyond device buffer".into()));
        }
        let mut out = Vec::with_capacity(seg_hi - seg_lo);
        let mut seg = Vec::with_capacity(seg_len);
        for row_lo in (lo_row..hi_row).step_by(seg_len) {
            let row_hi = (row_lo + seg_len).min(hi_row);
            seg.clear();
            for c in bytes[row_lo * 8..row_hi * 8].chunks_exact(8) {
                let v = f64::from_le_bytes(c.try_into().unwrap());
                if pred.is_none_or(|p| p(v)) {
                    seg.push(v);
                }
            }
            out.push(tree_sum(&seg));
        }
        Ok(out)
    })??;
    let rows = (hi_row - lo_row) as u64;
    stream.charge_launch(
        LaunchConfig::new((seg_hi - seg_lo).max(1) as u32, REDUCE_BLOCK),
        KernelCost {
            work_items: rows.max(1),
            cycles_per_item: if pred.is_some() { 5.0 } else { 4.0 },
            bytes: rows * 8,
        },
    )?;
    Ok(partials)
}

/// Pass-2 final combine of pass-1 partials (1 block × [`FINAL_BLOCK`]
/// threads), charged on `stream`. Same tree order as [`reduce_sum_f64`]'s
/// final pass.
pub fn reduce_final_f64(stream: &mut SimStream<'_>, partials: &[f64]) -> Result<f64> {
    let total = tree_sum(partials);
    stream.charge_launch(
        LaunchConfig::new(1, FINAL_BLOCK),
        KernelCost {
            work_items: partials.len().max(1) as u64,
            cycles_per_item: 4.0,
            bytes: (partials.len() * 8) as u64,
        },
    )?;
    Ok(total)
}

/// Fused filter+sum over a device-resident packed `f64` column: one data
/// pass (selection folded into the partial reduction) plus the small final
/// combine — two launches, versus four for the unfused
/// filter → gather → reduce chain.
pub fn filter_sum_f64(
    device: &SimDevice,
    buf: BufferId,
    pred: impl Fn(f64) -> bool,
) -> Result<f64> {
    let n = device.buffer_len(buf)? / 8;
    let mut stream = SimStream::new(device);
    let partials = filter_partials_f64(&mut stream, buf, n, 0, reduce_segments(n), &pred)?;
    let total = reduce_final_f64(&mut stream, &partials)?;
    // Single-stream use: the whole span is serial wall time.
    device.ledger().advance_wall(stream.cursor_ns());
    Ok(total)
}

/// Per-fragment pass-1 partials for a shard's device-resident slice: the
/// buffer holds the shard's fragments back to back (`frag_rows` rows each,
/// the last possibly short), and each fragment reduces to one tree-ordered
/// partial. One launch over the whole slice. A gather that concatenates
/// these per-fragment partials in *global* fragment order and tree-reduces
/// them is bit-identical for every node count and placement — the
/// scatter-gather analogue of [`reduce_partials_f64`]'s segment property.
pub fn reduce_fragment_partials_f64(
    device: &SimDevice,
    buf: BufferId,
    frag_rows: usize,
) -> Result<Vec<f64>> {
    fragment_partials(device, buf, frag_rows, None)
}

/// Fused per-fragment filter+sum partials: each fragment's partial is the
/// tree sum of only its qualifying values (one extra cycle per item, like
/// [`filter_partials_f64`]).
pub fn filter_fragment_partials_f64(
    device: &SimDevice,
    buf: BufferId,
    frag_rows: usize,
    pred: &dyn Fn(f64) -> bool,
) -> Result<Vec<f64>> {
    fragment_partials(device, buf, frag_rows, Some(pred))
}

fn fragment_partials(
    device: &SimDevice,
    buf: BufferId,
    frag_rows: usize,
    pred: Option<&dyn Fn(f64) -> bool>,
) -> Result<Vec<f64>> {
    if frag_rows == 0 {
        return Err(Error::Internal("fragment size must be positive".into()));
    }
    let ex = Executor::new(device);
    let values = device.with_buffer(buf, as_f64s)??;
    let n = values.len();
    let mut out = Vec::with_capacity(n.div_ceil(frag_rows));
    let mut seg = Vec::with_capacity(frag_rows);
    for frag in values.chunks(frag_rows) {
        seg.clear();
        for &v in frag {
            if pred.is_none_or(|p| p(v)) {
                seg.push(v);
            }
        }
        out.push(tree_sum(&seg));
    }
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID.min(out.len().max(1) as u32), REDUCE_BLOCK),
        KernelCost {
            work_items: n.max(1) as u64,
            cycles_per_item: if pred.is_some() { 5.0 } else { 4.0 },
            bytes: (n * 8) as u64,
        },
    )?;
    Ok(out)
}

/// Per-fragment keyed partials for a scattered group-sum: `keys` holds the
/// (host-resident) group key of every row in the slice, `buf` the packed
/// values. Each fragment groups its values by key in row order and reduces
/// each group's values in tree order; inner vectors are sorted by key.
/// A gather that, per key, tree-reduces the key's per-fragment partials
/// concatenated in global fragment order is bit-identical for every
/// placement. One launch (values + key traffic).
pub fn keyed_fragment_partials_f64(
    device: &SimDevice,
    buf: BufferId,
    keys: &[i64],
    frag_rows: usize,
) -> Result<Vec<Vec<(i64, f64)>>> {
    if frag_rows == 0 {
        return Err(Error::Internal("fragment size must be positive".into()));
    }
    let ex = Executor::new(device);
    let values = device.with_buffer(buf, as_f64s)??;
    let n = values.len();
    if keys.len() != n {
        return Err(Error::Internal(format!(
            "key column has {} rows but value slice has {n}",
            keys.len()
        )));
    }
    let mut out = Vec::with_capacity(n.div_ceil(frag_rows));
    for (fi, frag) in values.chunks(frag_rows).enumerate() {
        // Row order within the fragment, as a shared-memory grouping pass
        // would see it.
        let mut groups: std::collections::BTreeMap<i64, Vec<f64>> =
            std::collections::BTreeMap::new();
        for (i, &v) in frag.iter().enumerate() {
            groups.entry(keys[fi * frag_rows + i]).or_default().push(v);
        }
        out.push(groups.into_iter().map(|(k, vs)| (k, tree_sum(&vs))).collect());
    }
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID.min(out.len().max(1) as u32), REDUCE_BLOCK),
        KernelCost { work_items: n.max(1) as u64, cycles_per_item: 8.0, bytes: (n * 16) as u64 },
    )?;
    Ok(out)
}

/// Sum a packed little-endian `i64` column on the device (same geometry).
pub fn reduce_sum_i64(device: &SimDevice, buf: BufferId) -> Result<i64> {
    let ex = Executor::new(device);
    let sum = device.with_buffer(buf, |bytes| {
        if bytes.len() % 8 != 0 {
            return Err(Error::Internal("buffer is not a packed i64 column".into()));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .fold(0i64, i64::wrapping_add))
    })??;
    let n = device.buffer_len(buf)? / 8;
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID, REDUCE_BLOCK),
        KernelCost { work_items: n as u64, cycles_per_item: 4.0, bytes: (n * 8) as u64 },
    )?;
    ex.charge_launch(
        LaunchConfig::new(1, FINAL_BLOCK),
        KernelCost {
            work_items: REDUCE_GRID as u64,
            cycles_per_item: 4.0,
            bytes: REDUCE_GRID as u64 * 8,
        },
    )?;
    Ok(sum)
}

/// Min and max of a device-resident packed `f64` column (same reduction
/// geometry as the sum).
pub fn reduce_min_max_f64(device: &SimDevice, buf: BufferId) -> Result<(f64, f64)> {
    let ex = Executor::new(device);
    let (min, max, n) = device.with_buffer(buf, |bytes| {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut n = 0u64;
        for c in bytes.chunks_exact(8) {
            let v = f64::from_le_bytes(c.try_into().unwrap());
            min = min.min(v);
            max = max.max(v);
            n += 1;
        }
        (min, max, n)
    })?;
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID, REDUCE_BLOCK),
        KernelCost { work_items: n.max(1), cycles_per_item: 4.0, bytes: n * 8 },
    )?;
    ex.charge_launch(
        LaunchConfig::new(1, FINAL_BLOCK),
        KernelCost {
            work_items: REDUCE_GRID as u64,
            cycles_per_item: 4.0,
            bytes: REDUCE_GRID as u64 * 8,
        },
    )?;
    Ok((min, max))
}

/// Elementwise map over a packed `f64` column, in place (e.g. price scaling
/// in bulk transactions).
pub fn map_f64(device: &SimDevice, buf: BufferId, f: impl Fn(f64) -> f64) -> Result<()> {
    let ex = Executor::new(device);
    let n = device.buffer_len(buf)? / 8;
    device.with_buffer_mut(buf, |bytes| {
        for chunk in bytes.chunks_exact_mut(8) {
            let v = f64::from_le_bytes(chunk.try_into().unwrap());
            chunk.copy_from_slice(&f(v).to_le_bytes());
        }
    })?;
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID, REDUCE_BLOCK),
        KernelCost { work_items: n as u64, cycles_per_item: 6.0, bytes: (n * 16) as u64 },
    )?;
    Ok(())
}

/// Gather fixed-width elements at `positions` from a device column into a
/// fresh device buffer (late materialization on the device).
pub fn gather(
    device: &SimDevice,
    buf: BufferId,
    width: usize,
    positions: &[u64],
) -> Result<BufferId> {
    let ex = Executor::new(device);
    let out_len = positions.len() * width;
    let mut out = vec![0u8; out_len];
    device.with_buffer(buf, |bytes| {
        for (i, &p) in positions.iter().enumerate() {
            let off = p as usize * width;
            if off + width > bytes.len() {
                return Err(Error::UnknownRow(p));
            }
            out[i * width..(i + 1) * width].copy_from_slice(&bytes[off..off + width]);
        }
        Ok(())
    })??;
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID.min(positions.len().max(1) as u32), REDUCE_BLOCK),
        KernelCost {
            work_items: positions.len() as u64,
            cycles_per_item: 8.0,
            bytes: (out_len * 2) as u64,
        },
    )?;
    let result = device.alloc(out_len)?;
    // Device-to-device copy: charged as kernel memory traffic, not PCIe.
    device.with_buffer_mut(result, |b| b.copy_from_slice(&out))?;
    Ok(result)
}

/// Byte width of one shipped delta pair: `(u64 row, f64 value)`.
pub const DELTA_PAIR_BYTES: usize = 16;

/// Scatter a staged batch of delta pairs into a device-resident packed
/// `f64` column. `staging` holds `pairs` packed little-endian
/// `(u64 row, f64 value)` records ([`DELTA_PAIR_BYTES`] each); each value
/// is written at `row * 8` in `replica`. One launch on `stream`; rows
/// beyond the replica are [`Error::UnknownRow`] and leave the ledger
/// uncharged. The scatter is idempotent: replaying the same pairs after a
/// partial failure converges to the same bytes.
pub fn merge_deltas_f64(
    stream: &mut SimStream<'_>,
    replica: BufferId,
    staging: BufferId,
    pairs: usize,
) -> Result<()> {
    let device = stream.device();
    let decoded = device.with_buffer(staging, |bytes| {
        if bytes.len() < pairs * DELTA_PAIR_BYTES {
            return Err(Error::Internal("staging buffer smaller than the delta batch".into()));
        }
        let mut out = Vec::with_capacity(pairs);
        for rec in bytes[..pairs * DELTA_PAIR_BYTES].chunks_exact(DELTA_PAIR_BYTES) {
            let row = u64::from_le_bytes(rec[..8].try_into().unwrap());
            let value = f64::from_le_bytes(rec[8..].try_into().unwrap());
            out.push((row, value));
        }
        Ok(out)
    })??;
    scatter_decoded(stream, replica, &decoded)
}

/// Scatter host-resident delta pairs directly into a device column —
/// the device-local transport for engines whose authoritative store is
/// already on the device (no PCIe staging write, kernel charge only).
pub fn scatter_deltas_f64(
    stream: &mut SimStream<'_>,
    replica: BufferId,
    pairs: &[(u64, f64)],
) -> Result<()> {
    scatter_decoded(stream, replica, pairs)
}

fn scatter_decoded(
    stream: &mut SimStream<'_>,
    replica: BufferId,
    pairs: &[(u64, f64)],
) -> Result<()> {
    let device = stream.device();
    device.with_buffer_mut(replica, |bytes| {
        for &(row, value) in pairs {
            let off = row as usize * 8;
            if off + 8 > bytes.len() {
                return Err(Error::UnknownRow(row));
            }
            bytes[off..off + 8].copy_from_slice(&value.to_le_bytes());
        }
        Ok(())
    })??;
    let n = pairs.len();
    stream.charge_launch(
        LaunchConfig::new(REDUCE_GRID.min(n.max(1) as u32), REDUCE_BLOCK),
        KernelCost {
            work_items: n.max(1) as u64,
            cycles_per_item: 8.0,
            bytes: (n * (DELTA_PAIR_BYTES + 8)) as u64,
        },
    )?;
    Ok(())
}

/// Filter a packed `f64` column by a predicate, returning the qualifying
/// positions (selection kernel with a host-side position list result).
pub fn filter_f64(
    device: &SimDevice,
    buf: BufferId,
    pred: impl Fn(f64) -> bool,
) -> Result<Vec<u64>> {
    let ex = Executor::new(device);
    let positions = device.with_buffer(buf, |bytes| {
        let mut out = Vec::new();
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            if pred(f64::from_le_bytes(chunk.try_into().unwrap())) {
                out.push(i as u64);
            }
        }
        out
    })?;
    let n = device.buffer_len(buf)? / 8;
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID, REDUCE_BLOCK),
        KernelCost { work_items: n as u64, cycles_per_item: 5.0, bytes: (n * 8) as u64 },
    )?;
    Ok(positions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload_f64(device: &SimDevice, values: &[f64]) -> BufferId {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        device.upload(&bytes).unwrap()
    }

    #[test]
    fn tree_sum_matches_sequential_for_ints() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        assert_eq!(tree_sum(&values), values.iter().sum::<f64>());
    }

    #[test]
    fn tree_sum_is_deterministic() {
        let values: Vec<f64> = (0..997).map(|i| (i as f64).sin()).collect();
        assert_eq!(tree_sum(&values).to_bits(), tree_sum(&values).to_bits());
    }

    #[test]
    fn reduce_matches_tree_order_regardless_of_geometry() {
        let d = SimDevice::with_defaults();
        let values: Vec<f64> = (0..100_000).map(|i| (i % 1000) as f64 * 0.01).collect();
        let buf = upload_f64(&d, &values);
        let got = reduce_sum_f64(&d, buf).unwrap();
        let expect: f64 = values.iter().sum();
        assert!((got - expect).abs() < 1e-6 * expect.abs().max(1.0));
    }

    #[test]
    fn reduce_charges_two_launches() {
        let d = SimDevice::with_defaults();
        let buf = upload_f64(&d, &[1.0, 2.0, 3.0]);
        let before = d.ledger().snapshot();
        let sum = reduce_sum_f64(&d, buf).unwrap();
        assert_eq!(sum, 6.0);
        let delta = d.ledger().snapshot().since(&before);
        assert_eq!(delta.kernel_launches, 2);
        assert!(delta.kernel_ns >= 2 * d.spec().kernel_launch_ns);
        assert_eq!(delta.transfer_ns, 0, "reduction must not touch PCIe");
    }

    #[test]
    fn reduce_empty_is_zero() {
        let d = SimDevice::with_defaults();
        let buf = d.alloc(0).unwrap();
        assert_eq!(reduce_sum_f64(&d, buf).unwrap(), 0.0);
    }

    #[test]
    fn reduce_i64() {
        let d = SimDevice::with_defaults();
        let values: Vec<i64> = (0..1000).map(|i| i * 3 - 500).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = d.upload(&bytes).unwrap();
        assert_eq!(reduce_sum_i64(&d, buf).unwrap(), values.iter().sum::<i64>());
    }

    #[test]
    fn min_max_reduction() {
        let d = SimDevice::with_defaults();
        let buf = upload_f64(&d, &[3.0, -7.5, 10.0, 0.0]);
        let before = d.ledger().snapshot();
        let (min, max) = reduce_min_max_f64(&d, buf).unwrap();
        assert_eq!((min, max), (-7.5, 10.0));
        assert_eq!(d.ledger().snapshot().since(&before).kernel_launches, 2);
    }

    #[test]
    fn map_scales_in_place() {
        let d = SimDevice::with_defaults();
        let buf = upload_f64(&d, &[1.0, 2.0, 4.0]);
        map_f64(&d, buf, |v| v * 2.0).unwrap();
        assert_eq!(reduce_sum_f64(&d, buf).unwrap(), 14.0);
    }

    #[test]
    fn gather_collects_positions() {
        let d = SimDevice::with_defaults();
        let buf = upload_f64(&d, &[10.0, 20.0, 30.0, 40.0]);
        let out = gather(&d, buf, 8, &[3, 1]).unwrap();
        let bytes = d.download(out).unwrap();
        let vals: Vec<f64> =
            bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(vals, vec![40.0, 20.0]);
        assert!(gather(&d, buf, 8, &[9]).is_err());
    }

    #[test]
    fn filter_returns_positions() {
        let d = SimDevice::with_defaults();
        let buf = upload_f64(&d, &[5.0, -1.0, 7.0, 0.0]);
        let pos = filter_f64(&d, buf, |v| v > 0.0).unwrap();
        assert_eq!(pos, vec![0, 2]);
    }

    #[test]
    fn split_partials_are_bit_identical_to_single_shot() {
        let d = SimDevice::with_defaults();
        let values: Vec<f64> = (0..50_000).map(|i| (i as f64).sin()).collect();
        let buf = upload_f64(&d, &values);
        let n = values.len();
        let segs = reduce_segments(n);
        let mut one = SimStream::new(&d);
        let whole = reduce_partials_f64(&mut one, buf, n, 0, segs).unwrap();
        let single_shot = reduce_final_f64(&mut one, &whole).unwrap();
        // Same segments computed across three arbitrary splits.
        let mut many = SimStream::new(&d);
        let mut pieced = Vec::new();
        for (lo, hi) in [(0, 7), (7, 700), (700, segs)] {
            pieced.extend(reduce_partials_f64(&mut many, buf, n, lo, hi).unwrap());
        }
        assert_eq!(
            whole.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            pieced.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        let pieced_total = reduce_final_f64(&mut many, &pieced).unwrap();
        assert_eq!(single_shot.to_bits(), pieced_total.to_bits());
        assert_eq!(single_shot.to_bits(), reduce_sum_f64(&d, buf).unwrap().to_bits());
    }

    #[test]
    fn fused_filter_sum_matches_host_and_saves_launches() {
        let d = SimDevice::with_defaults();
        let values: Vec<f64> = (0..10_000).map(|i| (i as f64) - 5_000.0).collect();
        let buf = upload_f64(&d, &values);
        let before = d.ledger().snapshot();
        let fused = filter_sum_f64(&d, buf, |v| v > 0.0).unwrap();
        let fused_delta = d.ledger().snapshot().since(&before);
        // Integers below 2^53: the tree order can't change the answer.
        let expect: f64 = values.iter().filter(|&&v| v > 0.0).sum();
        assert_eq!(fused, expect);
        assert_eq!(fused_delta.kernel_launches, 2, "fused path is one pass + final");
        assert_eq!(fused_delta.wall_ns, fused_delta.kernel_ns);
        // The unfused chain: filter + gather + two-pass reduce = 4 launches.
        let before = d.ledger().snapshot();
        let pos = filter_f64(&d, buf, |v| v > 0.0).unwrap();
        let gathered = gather(&d, buf, 8, &pos).unwrap();
        let unfused = reduce_sum_f64(&d, gathered).unwrap();
        let unfused_delta = d.ledger().snapshot().since(&before);
        assert_eq!(unfused, expect);
        assert_eq!(unfused_delta.kernel_launches, 4);
        assert!(fused_delta.kernel_ns < unfused_delta.kernel_ns);
    }

    #[test]
    fn merge_scatter_applies_pairs_and_charges_one_launch() {
        let d = SimDevice::with_defaults();
        let buf = upload_f64(&d, &[1.0, 2.0, 3.0, 4.0]);
        let pairs = [(1u64, 20.0f64), (3, 40.0)];
        let encoded: Vec<u8> = pairs
            .iter()
            .flat_map(|(r, v)| r.to_le_bytes().into_iter().chain(v.to_le_bytes()))
            .collect();
        let staging = d.upload(&encoded).unwrap();
        let before = d.ledger().snapshot();
        let mut stream = SimStream::new(&d);
        merge_deltas_f64(&mut stream, buf, staging, pairs.len()).unwrap();
        let delta = d.ledger().snapshot().since(&before);
        assert_eq!(delta.kernel_launches, 1);
        assert_eq!(delta.transfer_ns, 0, "scatter itself must not touch PCIe");
        assert_eq!(reduce_sum_f64(&d, buf).unwrap(), 1.0 + 20.0 + 3.0 + 40.0);
        // Replaying the same batch is idempotent.
        merge_deltas_f64(&mut stream, buf, staging, pairs.len()).unwrap();
        assert_eq!(reduce_sum_f64(&d, buf).unwrap(), 64.0);
        // Out-of-bounds rows are surfaced and charge nothing.
        let before = d.ledger().snapshot();
        let err = scatter_deltas_f64(&mut stream, buf, &[(9, 1.0)]).unwrap_err();
        assert!(matches!(err, Error::UnknownRow(9)));
        assert_eq!(d.ledger().snapshot().since(&before).kernel_launches, 0);
        d.free(staging).unwrap();
    }

    #[test]
    fn fragment_partials_merge_bit_identically_across_placements() {
        let d = SimDevice::with_defaults();
        let values: Vec<f64> = (0..20_000).map(|i| (i as f64).cos() * 3.7).collect();
        let frag_rows = 1024;
        // Single "node" holding every fragment.
        let whole = upload_f64(&d, &values);
        let single = reduce_fragment_partials_f64(&d, whole, frag_rows).unwrap();
        // Two nodes, fragments dealt round-robin; merging the per-node
        // partials back into global fragment order must reproduce the
        // single-node partials exactly.
        let frags: Vec<&[f64]> = values.chunks(frag_rows).collect();
        let mut merged = vec![0.0f64; frags.len()];
        for node in 0..2 {
            let slice: Vec<f64> = frags
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == node)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            let buf = upload_f64(&d, &slice);
            let partials = reduce_fragment_partials_f64(&d, buf, frag_rows).unwrap();
            for (local, p) in partials.into_iter().enumerate() {
                merged[local * 2 + node] = p;
            }
        }
        assert_eq!(
            single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            merged.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // With frag_rows = reduce_seg_len(n), the fragment partials ARE the
        // canonical pass-1 segments, so the merged tree equals the flat
        // two-pass reduction bit-for-bit.
        let n = values.len();
        let seg = reduce_seg_len(n);
        let canon = reduce_fragment_partials_f64(&d, whole, seg).unwrap();
        assert_eq!(tree_sum(&canon).to_bits(), reduce_sum_f64(&d, whole).unwrap().to_bits());
    }

    #[test]
    fn keyed_fragment_partials_group_in_row_order() {
        let d = SimDevice::with_defaults();
        let values = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let keys = vec![7i64, 3, 7, 3, 9];
        let buf = upload_f64(&d, &values);
        let before = d.ledger().snapshot();
        let partials = keyed_fragment_partials_f64(&d, buf, &keys, 3).unwrap();
        assert_eq!(d.ledger().snapshot().since(&before).kernel_launches, 1);
        assert_eq!(partials.len(), 2);
        assert_eq!(partials[0], vec![(3, 2.0), (7, 4.0)]);
        assert_eq!(partials[1], vec![(3, 4.0), (9, 5.0)]);
        assert!(keyed_fragment_partials_f64(&d, buf, &keys[..3], 3).is_err());
    }

    #[test]
    fn fused_filter_sum_none_qualify_and_empty() {
        let d = SimDevice::with_defaults();
        let buf = upload_f64(&d, &[1.0, 2.0, 3.0]);
        assert_eq!(filter_sum_f64(&d, buf, |_| false).unwrap(), 0.0);
        let empty = d.alloc(0).unwrap();
        assert_eq!(filter_sum_f64(&d, empty, |_| true).unwrap(), 0.0);
    }
}
