//! Device kernels: real computation, modeled time.
//!
//! [`reduce_sum_f64`] reproduces the paper's experiment kernel: "an
//! optimized parallel reduction kernel to calculate the sum of price fields
//! ... configured to run with at least 1024 blocks (each having 512
//! threads). The final reduction was performed with 1 block and 1024
//! threads" (Section II-B, after Mark Harris' classic reduction).
//!
//! Reductions use a fixed pairwise tree order, so results are
//! bit-deterministic and independent of the launch geometry — the property
//! tests rely on this.

use htapg_core::{Error, Result};

use crate::memory::{BufferId, SimDevice};
use crate::simt::{Executor, KernelCost, LaunchConfig};

/// The paper's reduction geometry.
pub const REDUCE_GRID: u32 = 1024;
pub const REDUCE_BLOCK: u32 = 512;
pub const FINAL_BLOCK: u32 = 1024;

/// Pairwise (tree) summation of a slice — the deterministic order a
/// shared-memory tree reduction produces.
pub fn tree_sum(values: &[f64]) -> f64 {
    match values.len() {
        0 => 0.0,
        1 => values[0],
        n => {
            let mid = n / 2;
            tree_sum(&values[..mid]) + tree_sum(&values[mid..])
        }
    }
}

fn as_f64s(bytes: &[u8]) -> Result<Vec<f64>> {
    if !bytes.len().is_multiple_of(8) {
        return Err(Error::Internal("buffer is not a packed f64 column".into()));
    }
    Ok(bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect())
}

/// Sum a device-resident packed `f64` column with the two-pass Harris-style
/// reduction. Returns the sum; charges two kernel launches (partials +
/// final) to the device ledger.
pub fn reduce_sum_f64(device: &SimDevice, buf: BufferId) -> Result<f64> {
    let ex = Executor::new(device);
    let values = device.with_buffer(buf, as_f64s)??;
    let n = values.len();
    if n == 0 {
        // Even an empty reduction launches.
        ex.charge_launch(
            LaunchConfig::new(1, FINAL_BLOCK),
            KernelCost { work_items: 1, cycles_per_item: 1.0, bytes: 0 },
        )?;
        return Ok(0.0);
    }
    // Pass 1: REDUCE_GRID blocks × REDUCE_BLOCK threads; each block reduces
    // a contiguous segment into one partial.
    let segments = REDUCE_GRID as usize;
    let seg_len = n.div_ceil(segments);
    let mut partials = Vec::with_capacity(segments);
    for seg in values.chunks(seg_len.max(1)) {
        partials.push(tree_sum(seg));
    }
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID, REDUCE_BLOCK),
        KernelCost { work_items: n as u64, cycles_per_item: 4.0, bytes: (n * 8) as u64 },
    )?;
    // Pass 2: final reduction with 1 block × FINAL_BLOCK threads.
    let total = tree_sum(&partials);
    ex.charge_launch(
        LaunchConfig::new(1, FINAL_BLOCK),
        KernelCost {
            work_items: partials.len() as u64,
            cycles_per_item: 4.0,
            bytes: (partials.len() * 8) as u64,
        },
    )?;
    Ok(total)
}

/// Sum a packed little-endian `i64` column on the device (same geometry).
pub fn reduce_sum_i64(device: &SimDevice, buf: BufferId) -> Result<i64> {
    let ex = Executor::new(device);
    let sum = device.with_buffer(buf, |bytes| {
        if bytes.len() % 8 != 0 {
            return Err(Error::Internal("buffer is not a packed i64 column".into()));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().unwrap()))
            .fold(0i64, i64::wrapping_add))
    })??;
    let n = device.buffer_len(buf)? / 8;
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID, REDUCE_BLOCK),
        KernelCost { work_items: n as u64, cycles_per_item: 4.0, bytes: (n * 8) as u64 },
    )?;
    ex.charge_launch(
        LaunchConfig::new(1, FINAL_BLOCK),
        KernelCost {
            work_items: REDUCE_GRID as u64,
            cycles_per_item: 4.0,
            bytes: REDUCE_GRID as u64 * 8,
        },
    )?;
    Ok(sum)
}

/// Min and max of a device-resident packed `f64` column (same reduction
/// geometry as the sum).
pub fn reduce_min_max_f64(device: &SimDevice, buf: BufferId) -> Result<(f64, f64)> {
    let ex = Executor::new(device);
    let (min, max, n) = device.with_buffer(buf, |bytes| {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut n = 0u64;
        for c in bytes.chunks_exact(8) {
            let v = f64::from_le_bytes(c.try_into().unwrap());
            min = min.min(v);
            max = max.max(v);
            n += 1;
        }
        (min, max, n)
    })?;
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID, REDUCE_BLOCK),
        KernelCost { work_items: n.max(1), cycles_per_item: 4.0, bytes: n * 8 },
    )?;
    ex.charge_launch(
        LaunchConfig::new(1, FINAL_BLOCK),
        KernelCost {
            work_items: REDUCE_GRID as u64,
            cycles_per_item: 4.0,
            bytes: REDUCE_GRID as u64 * 8,
        },
    )?;
    Ok((min, max))
}

/// Elementwise map over a packed `f64` column, in place (e.g. price scaling
/// in bulk transactions).
pub fn map_f64(device: &SimDevice, buf: BufferId, f: impl Fn(f64) -> f64) -> Result<()> {
    let ex = Executor::new(device);
    let n = device.buffer_len(buf)? / 8;
    device.with_buffer_mut(buf, |bytes| {
        for chunk in bytes.chunks_exact_mut(8) {
            let v = f64::from_le_bytes(chunk.try_into().unwrap());
            chunk.copy_from_slice(&f(v).to_le_bytes());
        }
    })?;
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID, REDUCE_BLOCK),
        KernelCost { work_items: n as u64, cycles_per_item: 6.0, bytes: (n * 16) as u64 },
    )?;
    Ok(())
}

/// Gather fixed-width elements at `positions` from a device column into a
/// fresh device buffer (late materialization on the device).
pub fn gather(
    device: &SimDevice,
    buf: BufferId,
    width: usize,
    positions: &[u64],
) -> Result<BufferId> {
    let ex = Executor::new(device);
    let out_len = positions.len() * width;
    let mut out = vec![0u8; out_len];
    device.with_buffer(buf, |bytes| {
        for (i, &p) in positions.iter().enumerate() {
            let off = p as usize * width;
            if off + width > bytes.len() {
                return Err(Error::UnknownRow(p));
            }
            out[i * width..(i + 1) * width].copy_from_slice(&bytes[off..off + width]);
        }
        Ok(())
    })??;
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID.min(positions.len().max(1) as u32), REDUCE_BLOCK),
        KernelCost {
            work_items: positions.len() as u64,
            cycles_per_item: 8.0,
            bytes: (out_len * 2) as u64,
        },
    )?;
    let result = device.alloc(out_len)?;
    // Device-to-device copy: charged as kernel memory traffic, not PCIe.
    device.with_buffer_mut(result, |b| b.copy_from_slice(&out))?;
    Ok(result)
}

/// Filter a packed `f64` column by a predicate, returning the qualifying
/// positions (selection kernel with a host-side position list result).
pub fn filter_f64(
    device: &SimDevice,
    buf: BufferId,
    pred: impl Fn(f64) -> bool,
) -> Result<Vec<u64>> {
    let ex = Executor::new(device);
    let positions = device.with_buffer(buf, |bytes| {
        let mut out = Vec::new();
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            if pred(f64::from_le_bytes(chunk.try_into().unwrap())) {
                out.push(i as u64);
            }
        }
        out
    })?;
    let n = device.buffer_len(buf)? / 8;
    ex.charge_launch(
        LaunchConfig::new(REDUCE_GRID, REDUCE_BLOCK),
        KernelCost { work_items: n as u64, cycles_per_item: 5.0, bytes: (n * 8) as u64 },
    )?;
    Ok(positions)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload_f64(device: &SimDevice, values: &[f64]) -> BufferId {
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        device.upload(&bytes).unwrap()
    }

    #[test]
    fn tree_sum_matches_sequential_for_ints() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        assert_eq!(tree_sum(&values), values.iter().sum::<f64>());
    }

    #[test]
    fn tree_sum_is_deterministic() {
        let values: Vec<f64> = (0..997).map(|i| (i as f64).sin()).collect();
        assert_eq!(tree_sum(&values).to_bits(), tree_sum(&values).to_bits());
    }

    #[test]
    fn reduce_matches_tree_order_regardless_of_geometry() {
        let d = SimDevice::with_defaults();
        let values: Vec<f64> = (0..100_000).map(|i| (i % 1000) as f64 * 0.01).collect();
        let buf = upload_f64(&d, &values);
        let got = reduce_sum_f64(&d, buf).unwrap();
        let expect: f64 = values.iter().sum();
        assert!((got - expect).abs() < 1e-6 * expect.abs().max(1.0));
    }

    #[test]
    fn reduce_charges_two_launches() {
        let d = SimDevice::with_defaults();
        let buf = upload_f64(&d, &[1.0, 2.0, 3.0]);
        let before = d.ledger().snapshot();
        let sum = reduce_sum_f64(&d, buf).unwrap();
        assert_eq!(sum, 6.0);
        let delta = d.ledger().snapshot().since(&before);
        assert_eq!(delta.kernel_launches, 2);
        assert!(delta.kernel_ns >= 2 * d.spec().kernel_launch_ns);
        assert_eq!(delta.transfer_ns, 0, "reduction must not touch PCIe");
    }

    #[test]
    fn reduce_empty_is_zero() {
        let d = SimDevice::with_defaults();
        let buf = d.alloc(0).unwrap();
        assert_eq!(reduce_sum_f64(&d, buf).unwrap(), 0.0);
    }

    #[test]
    fn reduce_i64() {
        let d = SimDevice::with_defaults();
        let values: Vec<i64> = (0..1000).map(|i| i * 3 - 500).collect();
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = d.upload(&bytes).unwrap();
        assert_eq!(reduce_sum_i64(&d, buf).unwrap(), values.iter().sum::<i64>());
    }

    #[test]
    fn min_max_reduction() {
        let d = SimDevice::with_defaults();
        let buf = upload_f64(&d, &[3.0, -7.5, 10.0, 0.0]);
        let before = d.ledger().snapshot();
        let (min, max) = reduce_min_max_f64(&d, buf).unwrap();
        assert_eq!((min, max), (-7.5, 10.0));
        assert_eq!(d.ledger().snapshot().since(&before).kernel_launches, 2);
    }

    #[test]
    fn map_scales_in_place() {
        let d = SimDevice::with_defaults();
        let buf = upload_f64(&d, &[1.0, 2.0, 4.0]);
        map_f64(&d, buf, |v| v * 2.0).unwrap();
        assert_eq!(reduce_sum_f64(&d, buf).unwrap(), 14.0);
    }

    #[test]
    fn gather_collects_positions() {
        let d = SimDevice::with_defaults();
        let buf = upload_f64(&d, &[10.0, 20.0, 30.0, 40.0]);
        let out = gather(&d, buf, 8, &[3, 1]).unwrap();
        let bytes = d.download(out).unwrap();
        let vals: Vec<f64> =
            bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().unwrap())).collect();
        assert_eq!(vals, vec![40.0, 20.0]);
        assert!(gather(&d, buf, 8, &[9]).is_err());
    }

    #[test]
    fn filter_returns_positions() {
        let d = SimDevice::with_defaults();
        let buf = upload_f64(&d, &[5.0, -1.0, 7.0, 0.0]);
        let pos = filter_f64(&d, buf, |v| v > 0.0).unwrap();
        assert_eq!(pos, vec![0, 2]);
    }
}
