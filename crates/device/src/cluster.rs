//! `SimCluster`: in-process shared-nothing nodes with an interconnect cost
//! model — the substrate for ES² (Section IV-A4), whose storage engine
//! places partitions "intentionally at a certain node" to "minimize the
//! number of workers that access multiple compute nodes".
//!
//! Each node owns a private key→bytes store (stand-in for its slice of the
//! distributed file system). Local operations are free; cross-node messages
//! charge latency + size/bandwidth to the cluster ledger, so placement
//! quality is measurable.

use htapg_core::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use htapg_core::{Error, Result};

use crate::faults::{FaultPlan, FaultSite};
use crate::ledger::CostLedger;

/// Interconnect cost parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetSpec {
    /// One-way message latency, ns.
    pub latency_ns: u64,
    /// Link bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl Default for NetSpec {
    /// Data-center Ethernet: 100 µs latency, 1 GbE effective ~100 MB/s.
    fn default() -> Self {
        NetSpec { latency_ns: 100_000, bandwidth: 100.0e6 }
    }
}

pub type NodeId = u32;

/// One shared-nothing node: a private blob store.
#[derive(Debug, Default)]
pub struct Node {
    blobs: Mutex<HashMap<String, Vec<u8>>>,
}

impl Node {
    pub fn put(&self, key: impl Into<String>, bytes: Vec<u8>) {
        self.blobs.lock().insert(key.into(), bytes);
    }

    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.blobs.lock().get(key).cloned()
    }

    pub fn with_blob<R>(&self, key: &str, f: impl FnOnce(&[u8]) -> R) -> Option<R> {
        self.blobs.lock().get(key).map(|b| f(b))
    }

    pub fn with_blob_mut<R>(&self, key: &str, f: impl FnOnce(&mut Vec<u8>) -> R) -> Option<R> {
        self.blobs.lock().get_mut(key).map(f)
    }

    pub fn remove(&self, key: &str) -> Option<Vec<u8>> {
        self.blobs.lock().remove(key)
    }

    pub fn keys(&self) -> Vec<String> {
        self.blobs.lock().keys().cloned().collect()
    }

    pub fn blob_count(&self) -> usize {
        self.blobs.lock().len()
    }

    pub fn used_bytes(&self) -> usize {
        self.blobs.lock().values().map(Vec::len).sum()
    }
}

/// A fixed-membership cluster of nodes plus the interconnect ledger.
#[derive(Debug)]
pub struct SimCluster {
    nodes: Vec<Node>,
    net: NetSpec,
    ledger: Arc<CostLedger>,
    faults: Arc<FaultPlan>,
}

impl SimCluster {
    pub fn new(n: usize, net: NetSpec) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        SimCluster {
            nodes: (0..n).map(|_| Node::default()).collect(),
            net,
            ledger: Arc::new(CostLedger::new()),
            faults: FaultPlan::none(),
        }
    }

    /// Install a fault injector (defaults to [`FaultPlan::none`]). The
    /// plan's down-node set governs [`Error::NodeUnreachable`] failures.
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = plan;
    }

    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.faults
    }

    pub fn with_defaults(n: usize) -> Self {
        Self::new(n, NetSpec::default())
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn ledger(&self) -> &Arc<CostLedger> {
        &self.ledger
    }

    pub fn net(&self) -> &NetSpec {
        &self.net
    }

    /// The interconnect price list in the planner's vocabulary, so the
    /// router charges cross-node movement exactly like PCIe: latency +
    /// bytes/bandwidth (core cannot depend on this crate).
    pub fn net_cost_profile(&self) -> htapg_core::plan::NetCostProfile {
        htapg_core::plan::NetCostProfile {
            latency_ns: self.net.latency_ns,
            bandwidth: self.net.bandwidth,
        }
    }

    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id as usize).ok_or(Error::UnknownDevice(id))
    }

    /// Charge a message of `bytes` from `from` to `to` (free if same node).
    pub fn charge_message(&self, from: NodeId, to: NodeId, bytes: usize) {
        if from == to {
            return;
        }
        let ns = self.net.latency_ns + (bytes as f64 / self.net.bandwidth * 1e9) as u64;
        self.ledger.charge_network(ns);
        self.ledger.record_network_bytes(bytes as u64);
    }

    /// Send a message whose flight time overlaps other traffic (scatter
    /// RPCs to different nodes fly concurrently): rolls the fault plan and
    /// node health like [`ship`](Self::ship), charges the `net` category
    /// *without* advancing the wall, and returns the message's virtual ns
    /// so the caller can settle the wall with the `max` across concurrent
    /// round trips. Same-node sends are free and return 0.
    pub fn send_overlapped(&self, from: NodeId, to: NodeId, bytes: usize) -> Result<u64> {
        self.faults.check_node(from)?;
        self.faults.check_node(to)?;
        self.roll_send(from, to)?;
        if from == to {
            return Ok(0);
        }
        let ns = self.net.latency_ns + (bytes as f64 / self.net.bandwidth * 1e9) as u64;
        self.ledger.charge_network_overlapped(ns);
        self.ledger.record_network_bytes(bytes as u64);
        Ok(ns)
    }

    /// Inject a cross-node message fault, if the plan says so: either the
    /// message is dropped (transient) or it merely stalls (latency charged,
    /// then delivered). Same-node traffic never faults.
    fn roll_send(&self, from: NodeId, to: NodeId) -> Result<()> {
        if from == to {
            return Ok(());
        }
        if let Some(d) = self.faults.roll(FaultSite::ClusterSend) {
            if d.entropy & 1 == 0 {
                self.ledger.charge_network(self.net.latency_ns.saturating_mul(20));
                self.faults.record(FaultSite::ClusterSend, d.op, "latency-spike");
            } else {
                self.faults.record(FaultSite::ClusterSend, d.op, "msg-drop");
                return Err(Error::Transient { site: "cluster.send", fault: "msg-drop" });
            }
        }
        Ok(())
    }

    /// Ship a blob from one node to another (copies the data, charges the
    /// message).
    pub fn ship(&self, from: NodeId, key: &str, to: NodeId) -> Result<()> {
        self.faults.check_node(from)?;
        self.faults.check_node(to)?;
        self.roll_send(from, to)?;
        let data = self
            .node(from)?
            .get(key)
            .ok_or_else(|| Error::Internal(format!("node {from} has no blob {key}")))?;
        self.charge_message(from, to, data.len());
        self.node(to)?.put(key, data);
        Ok(())
    }

    /// Fetch a remote blob to the coordinator (node `at` asks node `from`).
    pub fn fetch(&self, at: NodeId, from: NodeId, key: &str) -> Result<Vec<u8>> {
        self.faults.check_node(from)?;
        self.roll_send(from, at)?;
        let data = self
            .node(from)?
            .get(key)
            .ok_or_else(|| Error::Internal(format!("node {from} has no blob {key}")))?;
        self.charge_message(from, at, data.len());
        Ok(data)
    }

    /// Hash-place a key onto a node (ES²'s horizontal partition placement).
    pub fn place(&self, key: &str) -> NodeId {
        let mut h = 0xcbf29ce484222325u64;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % self.nodes.len() as u64) as NodeId
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_ops_are_free() {
        let c = SimCluster::with_defaults(3);
        c.node(0).unwrap().put("a", vec![1, 2, 3]);
        c.charge_message(1, 1, 1 << 20);
        assert_eq!(c.ledger().snapshot().network_ns, 0);
        assert_eq!(c.node(0).unwrap().get("a"), Some(vec![1, 2, 3]));
    }

    #[test]
    fn cross_node_messages_charge() {
        let c = SimCluster::with_defaults(3);
        c.node(0).unwrap().put("x", vec![0u8; 1 << 20]);
        c.ship(0, "x", 2).unwrap();
        let ns = c.ledger().snapshot().network_ns;
        // 1 MiB at 100 MB/s ≈ 10.5 ms plus latency.
        assert!(ns > 10_000_000, "got {ns}");
        assert_eq!(c.node(2).unwrap().get("x").unwrap().len(), 1 << 20);
    }

    #[test]
    fn fetch_returns_and_charges() {
        let c = SimCluster::with_defaults(2);
        c.node(1).unwrap().put("k", vec![9; 100]);
        let data = c.fetch(0, 1, "k").unwrap();
        assert_eq!(data.len(), 100);
        assert!(c.ledger().snapshot().network_ns >= c.net.latency_ns);
        assert!(c.fetch(0, 1, "missing").is_err());
    }

    #[test]
    fn placement_is_deterministic_and_spread() {
        let c = SimCluster::with_defaults(4);
        let mut counts = [0usize; 4];
        for i in 0..400 {
            let key = format!("partition-{i}");
            let n = c.place(&key);
            assert_eq!(n, c.place(&key));
            counts[n as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 50), "skewed placement: {counts:?}");
    }

    #[test]
    fn unknown_node_errors() {
        let c = SimCluster::with_defaults(1);
        assert!(c.node(5).is_err());
    }

    #[test]
    fn overlapped_sends_charge_net_but_not_wall() {
        let c = SimCluster::with_defaults(3);
        let a = c.send_overlapped(0, 1, 1000).unwrap();
        let b = c.send_overlapped(0, 2, 2000).unwrap();
        assert!(b > a, "bigger payload, longer flight");
        let s = c.ledger().snapshot();
        assert_eq!(s.network_ns, a + b);
        assert_eq!(s.network_bytes, 3000);
        assert_eq!(s.wall_ns, 0, "caller settles the wall at the gather");
        assert_eq!(c.send_overlapped(1, 1, 4096).unwrap(), 0, "same-node sends are free");
        assert_eq!(c.ledger().snapshot().network_bytes, 3000);
    }

    #[test]
    fn net_cost_profile_matches_charges() {
        let c = SimCluster::with_defaults(2);
        let p = c.net_cost_profile();
        let ns = c.send_overlapped(0, 1, 1 << 16).unwrap();
        assert_eq!(ns, p.transfer_ns(1 << 16));
    }

    #[test]
    fn charge_message_counts_bytes() {
        let c = SimCluster::with_defaults(2);
        c.charge_message(0, 1, 512);
        assert_eq!(c.ledger().snapshot().network_bytes, 512);
    }
}
