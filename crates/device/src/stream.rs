//! Asynchronous streams over the simulated device.
//!
//! A [`SimStream`] is a CUDA-stream analogue for virtual time: work issued
//! on a stream advances that stream's private cursor and charges its
//! category on the shared [`CostLedger`](crate::ledger::CostLedger) via the
//! `_overlapped` variants — *without* touching the critical-path wall
//! clock. When the host synchronizes ([`sync_streams`]), only the furthest
//! cursor (the `max(...)` across the concurrent timelines) lands on
//! `wall_ns`. Two streams doing 100 ns of copy and 60 ns of kernel thus
//! cost 160 ns of categorized work but only 100 ns of wall — the
//! double-buffered transfer pipeline in `htapg_exec::device_exec` is built
//! on exactly this composition.
//!
//! Cross-stream ordering uses CUDA-style events: [`SimStream::record`]
//! captures a point on one timeline, [`SimStream::wait`] makes another
//! stream's cursor at least that point (`cudaStreamWaitEvent`). Data is
//! still moved and computed for real and immediately — only the *time* is
//! modeled — so a kernel may safely consume bytes whose copy it waited on.
//!
//! Fault injection composes unchanged: stream ops roll the same
//! [`FaultSite`](crate::faults::FaultSite)s as their synchronous
//! counterparts, and a failed op charges nothing and leaves the cursor
//! where it was.

use crate::memory::{BufferId, SimDevice};
use crate::simt::{Executor, KernelCost, LaunchConfig};
use htapg_core::Result;

/// A point on a stream's virtual timeline (CUDA event analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct StreamEvent {
    at_ns: u64,
}

impl StreamEvent {
    /// Nanoseconds since the pipeline epoch (stream creation).
    pub fn at_ns(&self) -> u64 {
        self.at_ns
    }
}

/// A virtual-time stream of device work.
///
/// All streams created from the same epoch (e.g. the copy and compute
/// streams of one pipelined query) share a common t=0; their cursors are
/// directly comparable and [`sync_streams`] settles `max(cursors)` onto the
/// ledger wall.
#[derive(Debug)]
pub struct SimStream<'d> {
    device: &'d SimDevice,
    cursor: u64,
}

impl<'d> SimStream<'d> {
    pub fn new(device: &'d SimDevice) -> Self {
        SimStream { device, cursor: 0 }
    }

    pub fn device(&self) -> &'d SimDevice {
        self.device
    }

    /// Current position on this stream's timeline (ns since epoch).
    pub fn cursor_ns(&self) -> u64 {
        self.cursor
    }

    /// Record an event at the stream's current position.
    pub fn record(&self) -> StreamEvent {
        StreamEvent { at_ns: self.cursor }
    }

    /// Make this stream wait for `event`: the cursor becomes at least the
    /// event's timestamp (`cudaStreamWaitEvent`).
    pub fn wait(&mut self, event: StreamEvent) {
        self.cursor = self.cursor.max(event.at_ns);
    }

    /// Host→device copy on this stream: bytes land immediately (data is
    /// real), the transfer cost advances this stream's cursor only.
    pub fn write(&mut self, buf: BufferId, offset: usize, bytes: &[u8]) -> Result<()> {
        let ns = self.device.write_overlapped(buf, offset, bytes)?;
        self.cursor += ns;
        Ok(())
    }

    /// Charge a kernel launch on this stream (the bulk-host-compute
    /// counterpart of [`Executor::charge_launch`], minus the wall advance).
    /// Returns the modeled duration.
    pub fn charge_launch(&mut self, cfg: LaunchConfig, cost: KernelCost) -> Result<u64> {
        let ns = Executor::new(self.device).charge_launch_overlapped(cfg, cost)?;
        self.cursor += ns;
        Ok(ns)
    }
}

/// Synchronize a set of streams sharing one epoch: the furthest cursor —
/// the overlapped critical path — is charged to the ledger's wall clock.
/// Returns that wall span in nanoseconds.
pub fn sync_streams(device: &SimDevice, streams: &[&SimStream<'_>]) -> u64 {
    let wall = streams.iter().map(|s| s.cursor_ns()).max().unwrap_or(0);
    device.ledger().advance_wall(wall);
    wall
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    #[test]
    fn stream_work_charges_categories_but_not_wall() {
        let d = SimDevice::with_defaults();
        let buf = d.alloc(1024).unwrap();
        let wall0 = d.ledger().snapshot().wall_ns;
        let mut s = SimStream::new(&d);
        s.write(buf, 0, &[7u8; 1024]).unwrap();
        let snap = d.ledger().snapshot();
        assert!(snap.transfer_ns > 0);
        assert_eq!(snap.bytes_to_device, 1024);
        assert_eq!(snap.wall_ns, wall0, "stream write must not advance wall");
        assert_eq!(s.cursor_ns(), d.spec().transfer_ns(1024));
    }

    #[test]
    fn two_streams_compose_as_max_on_sync() {
        let d = SimDevice::with_defaults();
        let buf = d.alloc(4096).unwrap();
        let mut copy = SimStream::new(&d);
        let mut compute = SimStream::new(&d);
        copy.write(buf, 0, &[1u8; 4096]).unwrap();
        compute
            .charge_launch(
                LaunchConfig::new(4, 128),
                KernelCost { work_items: 512, cycles_per_item: 4.0, bytes: 4096 },
            )
            .unwrap();
        let wall0 = d.ledger().snapshot().wall_ns;
        let span = sync_streams(&d, &[&copy, &compute]);
        assert_eq!(span, copy.cursor_ns().max(compute.cursor_ns()));
        let snap = d.ledger().snapshot();
        assert_eq!(snap.wall_ns - wall0, span);
        assert!(
            snap.transfer_ns + snap.kernel_ns > span,
            "overlap: categorized work exceeds the wall span"
        );
    }

    #[test]
    fn events_order_across_streams() {
        let d = SimDevice::with_defaults();
        let buf = d.alloc(1 << 20).unwrap();
        let mut copy = SimStream::new(&d);
        let mut compute = SimStream::new(&d);
        copy.write(buf, 0, &vec![2u8; 1 << 20]).unwrap();
        let uploaded = copy.record();
        // The kernel must not start before its input finished copying.
        compute.wait(uploaded);
        let before = compute.cursor_ns();
        assert_eq!(before, uploaded.at_ns());
        compute
            .charge_launch(
                LaunchConfig::new(1, 32),
                KernelCost { work_items: 32, cycles_per_item: 1.0, bytes: 0 },
            )
            .unwrap();
        assert!(compute.cursor_ns() > copy.cursor_ns());
        // Waiting on an older event never rewinds a cursor.
        compute.wait(uploaded);
        assert!(compute.cursor_ns() > uploaded.at_ns());
    }

    #[test]
    fn serial_equivalence_when_nothing_overlaps() {
        // One stream used serially syncs to exactly the sum of its charges,
        // matching what the synchronous API would have put on the wall.
        let d = SimDevice::new(0, DeviceSpec::unified());
        let buf = d.alloc(8192).unwrap();
        let mut s = SimStream::new(&d);
        s.write(buf, 0, &[1u8; 8192]).unwrap();
        s.charge_launch(
            LaunchConfig::new(8, 64),
            KernelCost { work_items: 1024, cycles_per_item: 4.0, bytes: 8192 },
        )
        .unwrap();
        let wall0 = d.ledger().snapshot().wall_ns;
        sync_streams(&d, &[&s]);
        let snap = d.ledger().snapshot();
        assert_eq!(snap.wall_ns - wall0, snap.transfer_ns + snap.kernel_ns);
    }

    #[test]
    fn failed_stream_op_leaves_cursor_and_ledger_unchanged() {
        use crate::faults::{FaultPlan, FaultRates};
        let mut d = SimDevice::with_defaults();
        d.set_fault_plan(FaultPlan::seeded(
            7,
            FaultRates { device_transfer: 1.0, ..FaultRates::none() },
        ));
        let buf = d.alloc(64).unwrap();
        let mut s = SimStream::new(&d);
        let before = d.ledger().snapshot();
        assert!(s.write(buf, 0, &[1u8; 64]).is_err());
        assert_eq!(s.cursor_ns(), 0);
        assert_eq!(d.ledger().snapshot().transfer_ns, before.transfer_ns);
    }
}
