//! `SimDisk`: an in-memory block store with a seek/bandwidth cost model.
//!
//! Substitute for the disk(s) behind PAX's buffer manager and Fractured
//! Mirrors' disk array. Pages are stored for real (in memory); every read
//! and write charges virtual time — a seek penalty for non-adjacent
//! accesses plus transfer time at the disk's bandwidth. Sequential access
//! is therefore modeled as much cheaper than random access, the property
//! both engines exploit.

use htapg_core::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

use htapg_core::{Error, Result};

use crate::faults::{FaultPlan, FaultSite};
use crate::ledger::CostLedger;

/// Cost parameters of one simulated spindle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskSpec {
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Seek + rotational latency for a non-adjacent access, ns.
    pub seek_ns: u64,
    /// Sustained transfer bandwidth, bytes/second.
    pub bandwidth: f64,
}

impl Default for DiskSpec {
    /// A 2010s commodity HDD: 16 KiB pages, ~8 ms seek, 150 MB/s.
    fn default() -> Self {
        DiskSpec { page_bytes: 16 * 1024, seek_ns: 8_000_000, bandwidth: 150.0e6 }
    }
}

/// Page address: (disk id, page number).
pub type PageId = u64;

#[derive(Debug)]
struct DiskState {
    pages: HashMap<PageId, Vec<u8>>,
    last_page: Option<PageId>,
    reads: u64,
    writes: u64,
    seeks: u64,
}

/// One simulated disk.
#[derive(Debug)]
pub struct SimDisk {
    id: u32,
    spec: DiskSpec,
    ledger: Arc<CostLedger>,
    faults: Arc<FaultPlan>,
    state: Mutex<DiskState>,
}

impl SimDisk {
    pub fn new(id: u32, spec: DiskSpec) -> Self {
        SimDisk {
            id,
            spec,
            ledger: Arc::new(CostLedger::new()),
            faults: FaultPlan::none(),
            state: Mutex::new(DiskState {
                pages: HashMap::new(),
                last_page: None,
                reads: 0,
                writes: 0,
                seeks: 0,
            }),
        }
    }

    /// Install a fault injector (defaults to [`FaultPlan::none`]).
    pub fn set_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.faults = plan;
    }

    pub fn fault_plan(&self) -> &Arc<FaultPlan> {
        &self.faults
    }

    pub fn with_defaults(id: u32) -> Self {
        Self::new(id, DiskSpec::default())
    }

    pub fn id(&self) -> u32 {
        self.id
    }

    pub fn spec(&self) -> &DiskSpec {
        &self.spec
    }

    pub fn ledger(&self) -> &Arc<CostLedger> {
        &self.ledger
    }

    fn charge_access(&self, state: &mut DiskState, page: PageId, bytes: usize) {
        let sequential = state.last_page.is_some_and(|p| page == p + 1 || page == p);
        let mut ns = (bytes as f64 / self.spec.bandwidth * 1e9) as u64;
        if !sequential {
            ns += self.spec.seek_ns;
            state.seeks += 1;
        }
        state.last_page = Some(page);
        self.ledger.charge_disk(ns);
    }

    /// Write a full page.
    pub fn write_page(&self, page: PageId, data: &[u8]) -> Result<()> {
        if data.len() > self.spec.page_bytes {
            return Err(Error::Internal(format!(
                "page payload {} exceeds page size {}",
                data.len(),
                self.spec.page_bytes
            )));
        }
        if let Some(d) = self.faults.roll(FaultSite::DiskWrite) {
            match d.entropy % 3 {
                0 => {
                    // Latency spike: the write lands, but slowly.
                    self.ledger.charge_disk(self.spec.seek_ns.saturating_mul(10));
                    self.faults.record(FaultSite::DiskWrite, d.op, "latency-spike");
                }
                1 => {
                    // Torn page: a prefix reaches the platter, then the
                    // write fails. The stale/partial page stays visible.
                    let keep = d.pick(data.len() as u64 + 1) as usize;
                    let mut st = self.state.lock();
                    self.charge_access(&mut st, page, keep);
                    st.pages.insert(page, data[..keep].to_vec());
                    st.writes += 1;
                    self.faults.record(FaultSite::DiskWrite, d.op, "torn-write");
                    return Err(Error::Transient { site: "disk.write", fault: "torn-write" });
                }
                _ => {
                    self.faults.record(FaultSite::DiskWrite, d.op, "io-error");
                    return Err(Error::Transient { site: "disk.write", fault: "io-error" });
                }
            }
        }
        let mut st = self.state.lock();
        self.charge_access(&mut st, page, data.len());
        st.pages.insert(page, data.to_vec());
        st.writes += 1;
        Ok(())
    }

    /// Read a page previously written.
    pub fn read_page(&self, page: PageId) -> Result<Vec<u8>> {
        if let Some(d) = self.faults.roll(FaultSite::DiskRead) {
            if d.entropy & 1 == 0 {
                // Latency spike: retried sector read, then success.
                self.ledger.charge_disk(self.spec.seek_ns.saturating_mul(10));
                self.faults.record(FaultSite::DiskRead, d.op, "latency-spike");
            } else {
                self.faults.record(FaultSite::DiskRead, d.op, "io-error");
                return Err(Error::Transient { site: "disk.read", fault: "io-error" });
            }
        }
        let mut st = self.state.lock();
        let data = st
            .pages
            .get(&page)
            .cloned()
            .ok_or_else(|| Error::Internal(format!("disk {} has no page {}", self.id, page)))?;
        self.charge_access(&mut st, page, data.len());
        st.reads += 1;
        Ok(data)
    }

    pub fn contains(&self, page: PageId) -> bool {
        self.state.lock().pages.contains_key(&page)
    }

    pub fn page_count(&self) -> usize {
        self.state.lock().pages.len()
    }

    /// (reads, writes, seeks) since creation.
    pub fn io_stats(&self) -> (u64, u64, u64) {
        let st = self.state.lock();
        (st.reads, st.writes, st.seeks)
    }
}

/// A fixed array of disks with page striping — Fractured Mirrors'
/// substrate ("the pages of both fragments are distributed on disks such
/// that each disk holds a copy of the relation but both fragments are
/// equally represented on all disks").
#[derive(Debug)]
pub struct DiskArray {
    disks: Vec<SimDisk>,
}

impl DiskArray {
    pub fn new(n: usize, spec: DiskSpec) -> Self {
        DiskArray { disks: (0..n).map(|i| SimDisk::new(i as u32, spec)).collect() }
    }

    pub fn len(&self) -> usize {
        self.disks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.disks.is_empty()
    }

    pub fn disk(&self, i: usize) -> &SimDisk {
        &self.disks[i]
    }

    /// Install one fault injector on every disk in the array.
    pub fn set_fault_plan(&mut self, plan: &Arc<FaultPlan>) {
        for d in &mut self.disks {
            d.set_fault_plan(plan.clone());
        }
    }

    /// The disk a page of a given stripe lands on: round-robin with an
    /// offset per stripe, so two mirrored stripes are "equally represented
    /// on all disks" but never co-located page-for-page.
    pub fn place(&self, stripe: u32, page: PageId) -> &SimDisk {
        let n = self.disks.len() as u64;
        let idx = (page + stripe as u64) % n;
        &self.disks[idx as usize]
    }

    /// Total virtual disk time across the array.
    pub fn total_disk_ns(&self) -> u64 {
        self.disks.iter().map(|d| d.ledger().snapshot().disk_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_missing_page() {
        let d = SimDisk::with_defaults(0);
        d.write_page(3, b"hello").unwrap();
        assert_eq!(d.read_page(3).unwrap(), b"hello");
        assert!(d.read_page(4).is_err());
        assert_eq!(d.page_count(), 1);
    }

    #[test]
    fn sequential_cheaper_than_random() {
        let spec = DiskSpec::default();
        let page = vec![0u8; spec.page_bytes];
        let seq = SimDisk::new(0, spec);
        for p in 0..64 {
            seq.write_page(p, &page).unwrap();
        }
        let rand = SimDisk::new(1, spec);
        for p in 0..64u64 {
            rand.write_page(p.wrapping_mul(2654435761) % 1_000_003, &page).unwrap();
        }
        let seq_ns = seq.ledger().snapshot().disk_ns;
        let rand_ns = rand.ledger().snapshot().disk_ns;
        assert!(rand_ns > seq_ns * 5, "seq={seq_ns} rand={rand_ns}");
        let (_, _, seeks) = seq.io_stats();
        assert_eq!(seeks, 1, "one initial seek, then sequential");
    }

    #[test]
    fn oversized_page_rejected() {
        let d = SimDisk::with_defaults(0);
        let too_big = vec![0u8; d.spec().page_bytes + 1];
        assert!(d.write_page(0, &too_big).is_err());
    }

    #[test]
    fn array_stripes_mirrors_apart() {
        let arr = DiskArray::new(4, DiskSpec::default());
        for page in 0..16u64 {
            let d0 = arr.place(0, page).id();
            let d1 = arr.place(1, page).id();
            assert_ne!(d0, d1, "mirrored page {page} must live on different disks");
        }
        // Each stripe is spread evenly.
        let mut counts = [0; 4];
        for page in 0..16u64 {
            counts[arr.place(0, page).id() as usize] += 1;
        }
        assert_eq!(counts, [4, 4, 4, 4]);
    }
}
