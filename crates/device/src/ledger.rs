//! Virtual-time accounting for simulated hardware.
//!
//! Every simulated operation charges nanoseconds to a ledger instead of
//! sleeping. Figure 2's panels 3 and 4 differ only in whether transfer time
//! is charged — the ledger keeps the categories separate so the harness can
//! report either view.
//!
//! Besides the per-category totals, the ledger tracks a *critical-path*
//! wall clock (`wall_ns`): serial charges advance it by their full
//! duration, while work issued on concurrent [`SimStream`]s is charged to
//! its category with the `_overlapped` variants and only the streams'
//! synchronization span (the `max` across stream timelines, not the sum)
//! lands on the wall. `total_ns()` therefore answers "how much work was
//! done" and `wall_ns` answers "how long did it take" — they agree exactly
//! when nothing overlapped.
//!
//! Snapshot arithmetic saturates: a delta between swapped snapshots clamps
//! to zero and totals clamp to `u64::MAX` rather than wrapping, so cost
//! reporting can never panic or produce nonsense from counter races.
//!
//! [`SimStream`]: crate::stream::SimStream

use std::sync::atomic::{AtomicU64, Ordering};

use htapg_core::retry::BackoffClock;

/// Accumulated virtual costs, by category.
#[derive(Debug, Default)]
pub struct CostLedger {
    transfer_ns: AtomicU64,
    kernel_ns: AtomicU64,
    disk_ns: AtomicU64,
    network_ns: AtomicU64,
    backoff_ns: AtomicU64,
    wall_ns: AtomicU64,
    transfers: AtomicU64,
    kernel_launches: AtomicU64,
    bytes_to_device: AtomicU64,
    bytes_from_device: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    delta_bytes: AtomicU64,
    delta_merges: AtomicU64,
    network_bytes: AtomicU64,
}

/// A snapshot of the ledger counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    pub transfer_ns: u64,
    pub kernel_ns: u64,
    pub disk_ns: u64,
    pub network_ns: u64,
    /// Virtual wait time charged by retry backoff (fault recovery).
    pub backoff_ns: u64,
    /// Critical-path wall time: serial charges add their full duration,
    /// overlapped stream work only its synchronization span.
    pub wall_ns: u64,
    pub transfers: u64,
    pub kernel_launches: u64,
    pub bytes_to_device: u64,
    pub bytes_from_device: u64,
    /// Device column cache: lookups answered without a PCIe transfer.
    pub cache_hits: u64,
    /// Device column cache: lookups that required a (re-)upload.
    pub cache_misses: u64,
    /// Device column cache: entries freed to make room for others.
    pub cache_evictions: u64,
    /// Bytes shipped host→device as update *deltas* (also counted in
    /// `bytes_to_device` — this splits out the delta-propagation share so
    /// EXPLAIN can report it as its own category).
    pub delta_bytes: u64,
    /// Delta-merge operations completed (a stale replica brought back to
    /// the current version without a full re-upload).
    pub delta_merges: u64,
    /// Bytes moved between cluster nodes over the simulated interconnect
    /// (payloads of `network_ns` charges — the PCIe `bytes_to_device`
    /// analogue for the `net` category).
    pub network_bytes: u64,
}

impl CostSnapshot {
    /// Total virtual nanoseconds across all categories (saturating).
    pub fn total_ns(&self) -> u64 {
        self.transfer_ns
            .saturating_add(self.kernel_ns)
            .saturating_add(self.disk_ns)
            .saturating_add(self.network_ns)
            .saturating_add(self.backoff_ns)
    }

    /// Device time excluding host↔device transfers (the Figure 2 panel 4
    /// view: "transfer costs to device excluded").
    pub fn compute_only_ns(&self) -> u64 {
        self.kernel_ns
    }

    /// Costs accrued between `earlier` and `self`. Saturating: if the
    /// snapshots are swapped (or a counter was reset in between), the delta
    /// clamps to zero instead of wrapping.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            transfer_ns: self.transfer_ns.saturating_sub(earlier.transfer_ns),
            kernel_ns: self.kernel_ns.saturating_sub(earlier.kernel_ns),
            disk_ns: self.disk_ns.saturating_sub(earlier.disk_ns),
            network_ns: self.network_ns.saturating_sub(earlier.network_ns),
            backoff_ns: self.backoff_ns.saturating_sub(earlier.backoff_ns),
            wall_ns: self.wall_ns.saturating_sub(earlier.wall_ns),
            transfers: self.transfers.saturating_sub(earlier.transfers),
            kernel_launches: self.kernel_launches.saturating_sub(earlier.kernel_launches),
            bytes_to_device: self.bytes_to_device.saturating_sub(earlier.bytes_to_device),
            bytes_from_device: self.bytes_from_device.saturating_sub(earlier.bytes_from_device),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            cache_evictions: self.cache_evictions.saturating_sub(earlier.cache_evictions),
            delta_bytes: self.delta_bytes.saturating_sub(earlier.delta_bytes),
            delta_merges: self.delta_merges.saturating_sub(earlier.delta_merges),
            network_bytes: self.network_bytes.saturating_sub(earlier.network_bytes),
        }
    }
}

impl CostLedger {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn charge_transfer(&self, ns: u64, bytes_to_device: u64, bytes_from_device: u64) {
        self.charge_transfer_overlapped(ns, bytes_to_device, bytes_from_device);
        self.wall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Like [`charge_transfer`](Self::charge_transfer) but does NOT advance
    /// the wall clock: the caller runs this transfer on a [`SimStream`] and
    /// settles the wall with [`advance_wall`](Self::advance_wall) when the
    /// streams synchronize.
    ///
    /// [`SimStream`]: crate::stream::SimStream
    pub fn charge_transfer_overlapped(
        &self,
        ns: u64,
        bytes_to_device: u64,
        bytes_from_device: u64,
    ) {
        self.transfer_ns.fetch_add(ns, Ordering::Relaxed);
        self.transfers.fetch_add(1, Ordering::Relaxed);
        self.bytes_to_device.fetch_add(bytes_to_device, Ordering::Relaxed);
        self.bytes_from_device.fetch_add(bytes_from_device, Ordering::Relaxed);
    }

    pub fn charge_kernel(&self, ns: u64) {
        self.charge_kernel_overlapped(ns);
        self.wall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Kernel-category charge without wall advance (stream-issued work; see
    /// [`charge_transfer_overlapped`](Self::charge_transfer_overlapped)).
    pub fn charge_kernel_overlapped(&self, ns: u64) {
        self.kernel_ns.fetch_add(ns, Ordering::Relaxed);
        self.kernel_launches.fetch_add(1, Ordering::Relaxed);
    }

    pub fn charge_disk(&self, ns: u64) {
        self.disk_ns.fetch_add(ns, Ordering::Relaxed);
        self.wall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn charge_network(&self, ns: u64) {
        self.network_ns.fetch_add(ns, Ordering::Relaxed);
        self.wall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Network-category charge without wall advance: scatter RPCs to
    /// different nodes fly concurrently, so the caller settles the wall
    /// with [`advance_wall`](Self::advance_wall) when the gather
    /// synchronizes (the `max` across shard round trips, not the sum).
    pub fn charge_network_overlapped(&self, ns: u64) {
        self.network_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Virtual retry-backoff wait (see `htapg_core::retry`).
    pub fn charge_backoff(&self, ns: u64) {
        self.backoff_ns.fetch_add(ns, Ordering::Relaxed);
        self.wall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Advance the critical-path wall clock by `ns` without touching any
    /// category. Stream synchronization points use this to account the
    /// `max(...)` of the concurrent timelines.
    pub fn advance_wall(&self, ns: u64) {
        self.wall_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Current critical-path wall clock. A single atomic load — cheap
    /// enough for the span-tracing hot path (`obs::VirtualClock`), unlike
    /// a full [`snapshot`](Self::snapshot).
    pub fn wall_clock_ns(&self) -> u64 {
        self.wall_ns.load(Ordering::Relaxed)
    }

    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_cache_eviction(&self) {
        self.cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` bytes of a host→device transfer as delta traffic. The
    /// transfer itself is charged through the normal overlapped write path
    /// (so `bytes_to_device` includes these bytes too).
    pub fn record_delta_bytes(&self, n: u64) {
        self.delta_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Count one completed delta merge.
    pub fn record_delta_merge(&self) {
        self.delta_merges.fetch_add(1, Ordering::Relaxed);
    }

    /// Count `n` payload bytes moved over the cluster interconnect (the
    /// time is charged separately through the `charge_network*` pair).
    pub fn record_network_bytes(&self, n: u64) {
        self.network_bytes.fetch_add(n, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            transfer_ns: self.transfer_ns.load(Ordering::Relaxed),
            kernel_ns: self.kernel_ns.load(Ordering::Relaxed),
            disk_ns: self.disk_ns.load(Ordering::Relaxed),
            network_ns: self.network_ns.load(Ordering::Relaxed),
            backoff_ns: self.backoff_ns.load(Ordering::Relaxed),
            wall_ns: self.wall_ns.load(Ordering::Relaxed),
            transfers: self.transfers.load(Ordering::Relaxed),
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
            bytes_to_device: self.bytes_to_device.load(Ordering::Relaxed),
            bytes_from_device: self.bytes_from_device.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            delta_bytes: self.delta_bytes.load(Ordering::Relaxed),
            delta_merges: self.delta_merges.load(Ordering::Relaxed),
            network_bytes: self.network_bytes.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.transfer_ns.store(0, Ordering::Relaxed);
        self.kernel_ns.store(0, Ordering::Relaxed);
        self.disk_ns.store(0, Ordering::Relaxed);
        self.network_ns.store(0, Ordering::Relaxed);
        self.backoff_ns.store(0, Ordering::Relaxed);
        self.wall_ns.store(0, Ordering::Relaxed);
        self.transfers.store(0, Ordering::Relaxed);
        self.kernel_launches.store(0, Ordering::Relaxed);
        self.bytes_to_device.store(0, Ordering::Relaxed);
        self.bytes_from_device.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
        self.delta_bytes.store(0, Ordering::Relaxed);
        self.delta_merges.store(0, Ordering::Relaxed);
        self.network_bytes.store(0, Ordering::Relaxed);
    }
}

/// Retry backoff is virtual wait: it lands in its own ledger category so
/// fault-recovery time is visible separately from useful work.
impl BackoffClock for CostLedger {
    fn charge_backoff(&self, ns: u64) {
        CostLedger::charge_backoff(self, ns);
    }
}

/// The ledger's wall clock *is* the trace timeline: spans opened against
/// it get virtual timestamps, so traces are deterministic under a fixed
/// `HTAPG_SEED` (see `htapg_core::obs`).
impl htapg_core::obs::VirtualClock for CostLedger {
    fn now_ns(&self) -> u64 {
        self.wall_clock_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_category() {
        let l = CostLedger::new();
        l.charge_transfer(100, 64, 0);
        l.charge_transfer(50, 0, 32);
        l.charge_kernel(30);
        l.charge_disk(7);
        l.charge_network(3);
        let s = l.snapshot();
        assert_eq!(s.transfer_ns, 150);
        assert_eq!(s.kernel_ns, 30);
        assert_eq!(s.total_ns(), 190);
        assert_eq!(s.compute_only_ns(), 30);
        assert_eq!(s.transfers, 2);
        assert_eq!(s.kernel_launches, 1);
        assert_eq!(s.bytes_to_device, 64);
        assert_eq!(s.bytes_from_device, 32);
    }

    #[test]
    fn since_computes_deltas() {
        let l = CostLedger::new();
        l.charge_kernel(10);
        let a = l.snapshot();
        l.charge_kernel(25);
        l.charge_transfer(5, 1, 0);
        let b = l.snapshot();
        let d = b.since(&a);
        assert_eq!(d.kernel_ns, 25);
        assert_eq!(d.transfer_ns, 5);
        assert_eq!(d.kernel_launches, 1);
    }

    #[test]
    fn since_on_swapped_snapshots_clamps_to_zero() {
        let l = CostLedger::new();
        l.charge_kernel(10);
        l.charge_disk(20);
        let a = l.snapshot();
        l.charge_kernel(5);
        let b = l.snapshot();
        // Arguments reversed: earlier.since(&later) must clamp, not wrap.
        let d = a.since(&b);
        assert_eq!(d.kernel_ns, 0);
        assert_eq!(d.disk_ns, 0);
        assert_eq!(d, CostSnapshot::default());
    }

    #[test]
    fn total_ns_saturates_instead_of_overflowing() {
        let s = CostSnapshot {
            transfer_ns: u64::MAX,
            kernel_ns: u64::MAX,
            disk_ns: 1,
            network_ns: 2,
            backoff_ns: 3,
            ..CostSnapshot::default()
        };
        assert_eq!(s.total_ns(), u64::MAX);
    }

    #[test]
    fn category_charges_sum_to_total() {
        let l = CostLedger::new();
        l.charge_transfer(11, 0, 0);
        l.charge_kernel(13);
        l.charge_disk(17);
        l.charge_network(19);
        l.charge_backoff(23);
        let s = l.snapshot();
        assert_eq!(
            s.total_ns(),
            s.transfer_ns + s.kernel_ns + s.disk_ns + s.network_ns + s.backoff_ns
        );
        assert_eq!(s.total_ns(), 11 + 13 + 17 + 19 + 23);
    }

    #[test]
    fn backoff_charges_via_the_clock_trait() {
        let l = CostLedger::new();
        let clock: &dyn BackoffClock = &l;
        clock.charge_backoff(500);
        assert_eq!(l.snapshot().backoff_ns, 500);
        assert_eq!(l.snapshot().total_ns(), 500);
    }

    #[test]
    fn reset_zeroes() {
        let l = CostLedger::new();
        l.charge_kernel(10);
        l.charge_backoff(10);
        l.record_cache_hit();
        l.advance_wall(3);
        l.reset();
        assert_eq!(l.snapshot(), CostSnapshot::default());
    }

    #[test]
    fn serial_charges_advance_wall_in_lockstep_with_total() {
        let l = CostLedger::new();
        l.charge_transfer(11, 8, 0);
        l.charge_kernel(13);
        l.charge_disk(17);
        l.charge_network(19);
        l.charge_backoff(23);
        let s = l.snapshot();
        assert_eq!(s.wall_ns, s.total_ns());
    }

    #[test]
    fn overlapped_charges_keep_categories_but_not_wall() {
        let l = CostLedger::new();
        // Two streams: a 100ns copy overlapping a 60ns kernel.
        l.charge_transfer_overlapped(100, 64, 0);
        l.charge_kernel_overlapped(60);
        l.advance_wall(100); // sync point: max(100, 60)
        let s = l.snapshot();
        assert_eq!(s.transfer_ns, 100);
        assert_eq!(s.kernel_ns, 60);
        assert_eq!(s.total_ns(), 160);
        assert_eq!(s.wall_ns, 100);
        assert_eq!(s.transfers, 1);
        assert_eq!(s.kernel_launches, 1);
        assert_eq!(s.bytes_to_device, 64);
    }

    #[test]
    fn overlapped_network_charges_track_bytes_but_not_wall() {
        let l = CostLedger::new();
        // Two concurrent shard round trips; the gather settles the max.
        l.charge_network_overlapped(300);
        l.record_network_bytes(1024);
        l.charge_network_overlapped(500);
        l.record_network_bytes(2048);
        l.advance_wall(500);
        let s = l.snapshot();
        assert_eq!(s.network_ns, 800);
        assert_eq!(s.network_bytes, 3072);
        assert_eq!(s.wall_ns, 500);
        assert_eq!(s.total_ns(), 800);
    }

    #[test]
    fn cache_counters_accumulate_and_delta() {
        let l = CostLedger::new();
        l.record_cache_miss();
        let a = l.snapshot();
        l.record_cache_hit();
        l.record_cache_hit();
        l.record_cache_eviction();
        let d = l.snapshot().since(&a);
        assert_eq!(d.cache_hits, 2);
        assert_eq!(d.cache_misses, 0);
        assert_eq!(d.cache_evictions, 1);
        assert_eq!(l.snapshot().cache_misses, 1);
    }
}
