//! Virtual-time accounting for simulated hardware.
//!
//! Every simulated operation charges nanoseconds to a ledger instead of
//! sleeping. Figure 2's panels 3 and 4 differ only in whether transfer time
//! is charged — the ledger keeps the categories separate so the harness can
//! report either view.

use std::sync::atomic::{AtomicU64, Ordering};

/// Accumulated virtual costs, by category.
#[derive(Debug, Default)]
pub struct CostLedger {
    transfer_ns: AtomicU64,
    kernel_ns: AtomicU64,
    disk_ns: AtomicU64,
    network_ns: AtomicU64,
    transfers: AtomicU64,
    kernel_launches: AtomicU64,
    bytes_to_device: AtomicU64,
    bytes_from_device: AtomicU64,
}

/// A snapshot of the ledger counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostSnapshot {
    pub transfer_ns: u64,
    pub kernel_ns: u64,
    pub disk_ns: u64,
    pub network_ns: u64,
    pub transfers: u64,
    pub kernel_launches: u64,
    pub bytes_to_device: u64,
    pub bytes_from_device: u64,
}

impl CostSnapshot {
    /// Total virtual nanoseconds across all categories.
    pub fn total_ns(&self) -> u64 {
        self.transfer_ns + self.kernel_ns + self.disk_ns + self.network_ns
    }

    /// Device time excluding host↔device transfers (the Figure 2 panel 4
    /// view: "transfer costs to device excluded").
    pub fn compute_only_ns(&self) -> u64 {
        self.kernel_ns
    }

    /// Costs accrued between `earlier` and `self`.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            transfer_ns: self.transfer_ns - earlier.transfer_ns,
            kernel_ns: self.kernel_ns - earlier.kernel_ns,
            disk_ns: self.disk_ns - earlier.disk_ns,
            network_ns: self.network_ns - earlier.network_ns,
            transfers: self.transfers - earlier.transfers,
            kernel_launches: self.kernel_launches - earlier.kernel_launches,
            bytes_to_device: self.bytes_to_device - earlier.bytes_to_device,
            bytes_from_device: self.bytes_from_device - earlier.bytes_from_device,
        }
    }
}

impl CostLedger {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn charge_transfer(&self, ns: u64, bytes_to_device: u64, bytes_from_device: u64) {
        self.transfer_ns.fetch_add(ns, Ordering::Relaxed);
        self.transfers.fetch_add(1, Ordering::Relaxed);
        self.bytes_to_device.fetch_add(bytes_to_device, Ordering::Relaxed);
        self.bytes_from_device.fetch_add(bytes_from_device, Ordering::Relaxed);
    }

    pub fn charge_kernel(&self, ns: u64) {
        self.kernel_ns.fetch_add(ns, Ordering::Relaxed);
        self.kernel_launches.fetch_add(1, Ordering::Relaxed);
    }

    pub fn charge_disk(&self, ns: u64) {
        self.disk_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn charge_network(&self, ns: u64) {
        self.network_ns.fetch_add(ns, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> CostSnapshot {
        CostSnapshot {
            transfer_ns: self.transfer_ns.load(Ordering::Relaxed),
            kernel_ns: self.kernel_ns.load(Ordering::Relaxed),
            disk_ns: self.disk_ns.load(Ordering::Relaxed),
            network_ns: self.network_ns.load(Ordering::Relaxed),
            transfers: self.transfers.load(Ordering::Relaxed),
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
            bytes_to_device: self.bytes_to_device.load(Ordering::Relaxed),
            bytes_from_device: self.bytes_from_device.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.transfer_ns.store(0, Ordering::Relaxed);
        self.kernel_ns.store(0, Ordering::Relaxed);
        self.disk_ns.store(0, Ordering::Relaxed);
        self.network_ns.store(0, Ordering::Relaxed);
        self.transfers.store(0, Ordering::Relaxed);
        self.kernel_launches.store(0, Ordering::Relaxed);
        self.bytes_to_device.store(0, Ordering::Relaxed);
        self.bytes_from_device.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_by_category() {
        let l = CostLedger::new();
        l.charge_transfer(100, 64, 0);
        l.charge_transfer(50, 0, 32);
        l.charge_kernel(30);
        l.charge_disk(7);
        l.charge_network(3);
        let s = l.snapshot();
        assert_eq!(s.transfer_ns, 150);
        assert_eq!(s.kernel_ns, 30);
        assert_eq!(s.total_ns(), 190);
        assert_eq!(s.compute_only_ns(), 30);
        assert_eq!(s.transfers, 2);
        assert_eq!(s.kernel_launches, 1);
        assert_eq!(s.bytes_to_device, 64);
        assert_eq!(s.bytes_from_device, 32);
    }

    #[test]
    fn since_computes_deltas() {
        let l = CostLedger::new();
        l.charge_kernel(10);
        let a = l.snapshot();
        l.charge_kernel(25);
        l.charge_transfer(5, 1, 0);
        let b = l.snapshot();
        let d = b.since(&a);
        assert_eq!(d.kernel_ns, 25);
        assert_eq!(d.transfer_ns, 5);
        assert_eq!(d.kernel_launches, 1);
    }

    #[test]
    fn reset_zeroes() {
        let l = CostLedger::new();
        l.charge_kernel(10);
        l.reset();
        assert_eq!(l.snapshot(), CostSnapshot::default());
    }
}
