//! # htapg-device
//!
//! Simulated hardware substrates for the `htapg` workspace.
//!
//! The paper's experiments (Section II-B, Figure 2) and three of its
//! surveyed engines (GPUTx, CoGaDB, ES²) depend on hardware we substitute
//! per DESIGN.md: a CUDA GPU, a multi-disk array, and a shared-nothing
//! cluster. This crate provides deterministic software stand-ins that
//! preserve the *mechanisms* the paper argues from:
//!
//! * [`SimDevice`] — a SIMT co-processor with a capacity-limited global
//!   memory ([`memory`]), an explicit host↔device transfer engine with a
//!   PCIe cost model, a grid/block kernel executor ([`simt`]) whose virtual
//!   time reflects parallel lanes and memory bandwidth, and real
//!   (bit-deterministic) kernels ([`kernels`]);
//! * [`disk::SimDisk`] — a block store with seek/bandwidth accounting
//!   (PAX, Fractured Mirrors);
//! * [`cluster::SimCluster`] — in-process shared-nothing nodes with an
//!   interconnect cost model (ES²).
//!
//! All simulated time is *virtual*: it accumulates in [`ledger::CostLedger`]
//! and never sleeps. Data operations are always executed for real, so
//! results are exact; only durations are modeled.
//!
//! Every substrate can additionally be shaken by a seeded, deterministic
//! fault injector ([`faults::FaultPlan`]) — disk I/O errors and torn
//! writes, dropped cluster messages and down nodes, transfer failures,
//! spurious OOM, failed kernel launches — with zero cost when disabled.

pub mod cache;
pub mod cluster;
pub mod disk;
pub mod faults;
pub mod kernels;
pub mod ledger;
pub mod memory;
pub mod simt;
pub mod spec;
pub mod stream;

pub use cache::{CachedColumn, DeltaTransport, DeviceColumnCache, StaleInfo};
pub use faults::{FaultPlan, FaultRates, FaultSite, FaultyStorage};
pub use ledger::CostLedger;
pub use memory::{BufferId, SimDevice};
pub use spec::DeviceSpec;
pub use stream::{sync_streams, SimStream, StreamEvent};
