//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--quick] [--seed N] [--trace PATH] [table1] [fig2] [fig3] [fig4] [reference-check] [pool] [gpu_pipeline] [delta] [planner] [cluster] [obs] [ablations] [all]
//! ```
//!
//! With no selection, prints everything except the ablations. `--quick`
//! shrinks the Figure 2 sweeps for fast smoke runs. Build with `--release`
//! for meaningful CPU timings. The seed defaults to `HTAPG_SEED` when set
//! (else 42); `--trace PATH` writes the obs section's Chrome trace JSON
//! (open in `chrome://tracing` or Perfetto).

use htapg_bench::{ablation, cluster, delta, fig2, gpu_pipeline, obs, planner, pool, render_sweep};
use htapg_core::engine::StorageEngine;
use htapg_core::{Fragment, FragmentSpec, Linearization, Schema, Value};
use htapg_engines::{all_surveyed_engines, ReferenceEngine};
use htapg_taxonomy::{reference, survey, table, tree};

fn section(title: &str) {
    println!("\n{}", "=".repeat(78));
    println!("{title}");
    println!("{}", "=".repeat(78));
}

fn print_table1() {
    section("Table 1 — survey classification, derived from the live engine implementations");
    let classifications: Vec<_> =
        all_surveyed_engines().iter().map(|e| e.classification()).collect();
    print!("{}", table::render_text(&classifications));
    let expected = survey::paper_table1();
    let ok = classifications == expected;
    println!(
        "\nverbatim match against the paper's Table 1: {}",
        if ok { "YES" } else { "NO (divergence!)" }
    );
}

fn print_fig3() {
    section("Figure 3 — terminology: linearization byte orders on the example relation");
    // The paper's example: attributes A..E over four tuples, values a1..e4
    // (encoded here as Int32 codes: a1 = 0x0A01, etc.).
    let schema = Schema::of(&[
        ("A", htapg_core::DataType::Int32),
        ("B", htapg_core::DataType::Int32),
        ("C", htapg_core::DataType::Int32),
        ("D", htapg_core::DataType::Int32),
        ("E", htapg_core::DataType::Int32),
    ]);
    let code = |attr: u8, row: i32| Value::Int32(((attr as i32) << 8) | (row + 1));
    let name = |v: &Value| match v {
        Value::Int32(x) => format!("{}{}", (b'a' + (x >> 8) as u8 - 0x0A) as char, x & 0xFF),
        _ => unreachable!(),
    };
    let show = |label: &str, frag: &Fragment| {
        let ints: Vec<String> = frag
            .linearized_bytes()
            .chunks_exact(4)
            .map(|c| name(&Value::Int32(i32::from_le_bytes(c.try_into().unwrap()))))
            .collect();
        println!("{label:<58} {}", ints.join(" "));
    };
    // Fat fragment over A,B,C (the paper's layout-2 left fragment).
    for (label, order) in [
        ("NSM-Fixed (fat fragment A,B,C):", Linearization::Nsm),
        ("DSM-Fixed (fat fragment A,B,C):", Linearization::Dsm),
    ] {
        let mut f = Fragment::new(
            &schema,
            FragmentSpec { first_row: 0, capacity: 4, attrs: vec![0, 1, 2], order },
        )
        .unwrap();
        for row in 0..4 {
            f.append(&schema, &[code(0x0A, row), code(0x0B, row), code(0x0C, row)]).unwrap();
        }
        show(label, &f);
    }
    // Thin fragments over D and E: direct linearization; together they
    // emulate DSM ("columns as multiple distinct vectors").
    let mut thin = Vec::new();
    for attr in [3u16, 4] {
        let mut f = Fragment::new(
            &schema,
            FragmentSpec {
                first_row: 0,
                capacity: 4,
                attrs: vec![attr],
                order: Linearization::Direct,
            },
        )
        .unwrap();
        for row in 0..4 {
            f.append(&schema, &[code(0x0A + attr as u8, row)]).unwrap();
        }
        thin.push(f);
    }
    show("Direct (thin fragment D):", &thin[0]);
    show("Direct (thin fragment E):", &thin[1]);
    let emulated: Vec<String> = thin
        .iter()
        .flat_map(|f| {
            f.linearized_bytes()
                .chunks_exact(4)
                .map(|c| name(&Value::Int32(i32::from_le_bytes(c.try_into().unwrap()))))
                .collect::<Vec<_>>()
        })
        .collect();
    println!("{:<58} {}", "DSM-Emulated (thin D ++ thin E, separate blocks):", emulated.join(" "));
    // NSM-Emulated: one thin (single-tuplet) fragment per row over D,E.
    let mut nsm_emulated = Vec::new();
    for row in 0..4 {
        let mut f = Fragment::new(
            &schema,
            FragmentSpec {
                first_row: row,
                capacity: 1,
                attrs: vec![3, 4],
                order: Linearization::Direct,
            },
        )
        .unwrap();
        f.append(&schema, &[code(0x0D, row as i32), code(0x0E, row as i32)]).unwrap();
        for c in f.linearized_bytes().chunks_exact(4) {
            nsm_emulated.push(name(&Value::Int32(i32::from_le_bytes(c.try_into().unwrap()))));
        }
    }
    println!(
        "{:<58} {}",
        "NSM-Emulated (one thin tuplet fragment per row, D,E):",
        nsm_emulated.join(" ")
    );
}

fn print_fig4() {
    section("Figure 4 — taxonomy of classification properties");
    print!("{}", tree::render(&tree::figure4()));
}

fn print_reference_check() {
    section("Section IV-C — reference-design checklist");
    // Every surveyed engine fails ("not yet")…
    for engine in all_surveyed_engines() {
        let chk = reference::check(&engine.classification());
        println!("{:<16} misses {} of 6 requirement(s)", engine.name(), chk.missing().len());
    }
    // …and the reference engine satisfies all six.
    let chk = reference::check(&ReferenceEngine::new().classification());
    println!("\n{}", chk.render());
}

fn print_fig1() {
    section("Figure 1 — physical record layout re-organization and compute device re-assignment");
    use htapg_workload::tpcc::{customer_attr as c, customer_schema, Generator};
    let engine = ReferenceEngine::new();
    let gen = Generator::new(1);
    let rel = engine.create_relation(customer_schema()).unwrap();
    for i in 0..5_000 {
        engine.insert(rel, &gen.customer(i)).unwrap();
    }
    let describe = |phase: &str| {
        let groups = engine.primary_groups(rel).unwrap();
        println!(
            "{phase:<38} primary groups: {:>2}   delegated: {:?}   device-resident: {:?}",
            groups.len(),
            engine.delegated(rel).unwrap(),
            engine.device_resident(rel).unwrap(),
        );
    };
    describe("initial (transactional shape)");
    // Analytical phase: the balance column gets scanned hard.
    for _ in 0..40 {
        engine.sum_column_f64(rel, c::C_BALANCE).unwrap();
    }
    engine.maintain().unwrap();
    describe("after an analytical burst + maintain");
    // Transactional phase: point reads and updates dominate again.
    for i in 0..3_000u64 {
        engine.read_record(rel, i % 5_000).unwrap();
        if i % 5 == 0 {
            engine
                .update_field(rel, i % 5_000, c::C_BALANCE, &htapg_core::Value::Float64(0.0))
                .unwrap();
        }
    }
    engine.maintain().unwrap();
    describe("after a transactional burst + maintain");
    println!("\n(the layout re-organizes and the balance column moves on and off the");
    println!("device as the workload shifts — Figure 1's two feedback loops)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| htapg_core::prng::env_seed(42));
    let trace_path =
        args.iter().position(|a| a == "--trace").and_then(|i| args.get(i + 1)).cloned();
    let flag_values: Vec<usize> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--seed" || *a == "--trace")
        .map(|(i, _)| i + 1)
        .collect();
    let picked: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| !a.starts_with("--") && !flag_values.contains(i))
        .map(|(_, a)| a.as_str())
        .filter(|a| !a.chars().all(|c| c.is_ascii_digit()))
        .collect();
    let all = picked.is_empty() || picked.contains(&"all");
    let want = |what: &str| all || picked.contains(&what);

    println!("htapg repro — Pinnecke et al., ICDE 2017 (seed {seed}, quick={quick})");

    if want("table1") {
        print_table1();
    }
    if want("fig3") {
        print_fig3();
    }
    if want("fig4") {
        print_fig4();
    }
    if want("reference-check") {
        print_reference_check();
    }
    if want("fig1") {
        print_fig1();
    }
    if want("fig2") {
        section("Figure 2 — storage model × threading policy × compute platform");
        println!(
            "(CPU series: measured wall time on this host; device series: the\n\
             simulator's modeled time — see DESIGN.md substitutions)\n"
        );
        print!("{}", fig2::run_figure2(quick, seed));
    }
    if want("pool") {
        section("Executor crossover — spawn-per-call vs persistent pool vs single");
        let points = pool::measure(&pool::sweep_sizes(quick), if quick { 3 } else { 7 });
        let rows: Vec<(u64, Vec<f64>)> =
            points.iter().map(|p| (p.rows, vec![p.single_ms, p.pooled_ms, p.spawn_ms])).collect();
        print!(
            "{}",
            render_sweep(
                "f64 column sum, wall ms (8-way parallel series)",
                "#rows",
                &["single", "pooled_multi8", "spawn_multi8"],
                &rows,
            )
        );
        let show = |label: &str, x: Option<u64>| match x {
            Some(rows) => println!("{label}: {rows} rows"),
            None => println!("{label}: not reached in this sweep"),
        };
        show("pooled multi first beats single at", pool::pooled_crossover(&points));
        show("spawn-per-call multi first beats single at", pool::spawn_crossover(&points));
        let path = "BENCH_pool.json";
        match std::fs::write(path, pool::to_json(&points)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }
    if want("gpu_pipeline") {
        section("GPU transfer pipeline — serial vs stream-overlapped vs cache-warm");
        println!(
            "(virtual ns from the cost ledger on the unified-memory device\n\
             spec; deterministic, no repetitions needed)\n"
        );
        let points = gpu_pipeline::measure(&gpu_pipeline::sweep_sizes(quick));
        let rows: Vec<(u64, Vec<f64>)> = points
            .iter()
            .map(|p| (p.rows, vec![p.serial_ns as f64, p.overlapped_ns as f64, p.warm_ns as f64]))
            .collect();
        print!(
            "{}",
            render_sweep(
                "f64 column sum offload, virtual ns",
                "#rows",
                &["serial", "overlapped", "cache_warm"],
                &rows,
            )
        );
        for p in &points {
            println!(
                "{} rows: overlapped wall is {}% of serial; warm repeat uploaded {} bytes",
                p.rows,
                gpu_pipeline::overlap_pct(p),
                p.warm_bytes_to_device
            );
        }
        println!(
            "warm repeats skip PCIe entirely: {}",
            if gpu_pipeline::warm_skips_pcie(&points) { "YES" } else { "NO (regression!)" }
        );
        let path = "BENCH_gpu_pipeline.json";
        match std::fs::write(path, gpu_pipeline::to_json(&points)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }
    if want("delta") {
        section("Delta shipping — warm analytic latency under a rising write rate");
        println!(
            "(two identical reference engines, delta shipping on vs off; the\n\
             cost ledger measures each warm device sum in virtual ns)\n"
        );
        let points = delta::measure(seed, quick);
        let rows: Vec<(u64, Vec<f64>)> = points
            .iter()
            .map(|p| (p.writes_per_query, vec![p.ship_ns as f64, p.cliff_ns as f64]))
            .collect();
        print!(
            "{}",
            render_sweep(
                "warm f64 column sum under writes, virtual ns",
                "#writes/query",
                &["ship", "cliff"],
                &rows,
            )
        );
        for p in &points {
            println!(
                "W={:>5}: shipped {} delta bytes vs {} re-upload bytes",
                p.writes_per_query, p.ship_delta_bytes, p.cliff_bytes_to_device
            );
        }
        println!(
            "latency flat under writes (<=1.5x no-write warm): {}",
            if delta::latency_flat_under_writes(&points) { "YES" } else { "NO (regression!)" }
        );
        println!(
            "delta traffic undercuts re-uploads: {}",
            if delta::delta_beats_reupload(&points) { "YES" } else { "NO (regression!)" }
        );
        let path = "BENCH_delta.json";
        match std::fs::write(path, delta::to_json(seed, delta::table_rows(quick), &points)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }
    if want("planner") {
        section("Planner — cost-based routing, estimated vs actual virtual ns");
        println!(
            "(each op class lowered to a logical plan, routed by the engine's\n\
             cost model, executed through the physical interpreter; actual\n\
             virtual ns from the engine's own clock, 0 for host-only engines)\n"
        );
        let points = planner::measure(seed, quick);
        print!("{}", planner::render(&points));
        let path = "BENCH_planner.json";
        match std::fs::write(path, planner::to_json(seed, &points)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }
    if want("cluster") {
        section("Cluster scale-out — scatter-gather scan throughput vs node count");
        println!(
            "(sharded placement over SimCluster; cross-node messages priced\n\
             like PCIe — latency + bytes/bandwidth — on the cluster ledger;\n\
             every scattered result asserted bit-identical to the\n\
             single-node oracle)\n"
        );
        let rows = cluster::table_rows(quick);
        let points = cluster::measure(seed, quick);
        let table: Vec<(u64, Vec<f64>)> = points
            .iter()
            .map(|p| {
                (p.nodes as u64, vec![p.scan_wall_ns as f64, p.rows_per_sec, p.net_bytes as f64])
            })
            .collect();
        print!(
            "{}",
            render_sweep(
                &format!("warm f64 column sum over {rows} rows"),
                "#nodes",
                &["wall_ns", "rows_per_s", "net_bytes"],
                &table,
            )
        );
        for &n in &[2u32, 4, 8] {
            if let Some(s) = cluster::speedup_at(&points, n) {
                println!("{n} nodes: {s:.2}x single-node scan throughput");
            }
        }
        println!(
            "scatter plans priced under single-node: {:.0}%",
            100.0 * cluster::scatter_win_rate(&points)
        );
        println!(
            "scaling gates (>=1.6x @ 2 nodes, >=3x @ 4 nodes): {} / {}",
            if cluster::scaling_gate_2x(&points) { "YES" } else { "NO (regression!)" },
            if cluster::scaling_gate_4x(&points) { "YES" } else { "NO (regression!)" },
        );
        println!(
            "all results bit-identical to the single-node oracle: {}",
            if cluster::all_bit_identical(&points) { "YES" } else { "NO (regression!)" },
        );
        let path = "BENCH_cluster.json";
        match std::fs::write(path, cluster::to_json(seed, rows, &points)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => println!("could not write {path}: {e}"),
        }
    }
    if want("obs") {
        section("Observability — traced HTAP run on the virtual clock");
        let report = obs::run(seed, quick);
        print!("{}", obs::render(&report));
        // The full span tree has one node per op — print the header and
        // category table, leave the tree to --trace/Perfetto.
        println!();
        for line in report.explain_text.lines().take(24) {
            println!("{line}");
        }
        println!("  ... (span tree truncated; export the full trace with --trace PATH)");
        let path = "BENCH_obs.json";
        match std::fs::write(path, obs::to_json(&report)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => println!("could not write {path}: {e}"),
        }
        if let Some(path) = &trace_path {
            match std::fs::write(path, &report.chrome_json) {
                Ok(()) => println!("wrote {path} (open in chrome://tracing or Perfetto)"),
                Err(e) => println!("could not write {path}: {e}"),
            }
        }
    }
    if (all && !quick) || picked.contains(&"ablations") {
        section("Ablations A1–A7");
        print!("{}", ablation::run_all(seed));
    }
}
