//! The `repro planner` section: cost-model calibration of the query
//! planner across every surveyed engine.
//!
//! Each engine gets an identical TPC-C item table; every workload op class
//! is lowered to a [`LogicalPlan`], routed by the engine's own
//! [`StorageEngine::plan`], and interpreted by the physical executor while
//! the engine's virtual clock (when it has one) measures the *actual*
//! virtual nanoseconds. The section reports, per (engine, op class), the
//! route taken, the planner's estimate, the measured actual, and the
//! bounded relative error (see [`htapg_core::calibrate::bounded_rel_err`]).
//!
//! Every engine is wrapped in [`Calibrated`], and each op class is
//! measured twice: a **cold** pass on the uncalibrated analytic model,
//! then — after a warm-up phase of observed executions that feed the EWMA
//! calibration profiles — a **warm** pass on the corrected estimates. CI
//! asserts `mean_rel_error_warm` is at least 10x below
//! `mean_rel_error_cold`.

use htapg_core::calibrate::{self, Calibrated};
use htapg_core::engine::StorageEngine;
use htapg_core::plan::{LogicalPlan, Predicate};
use htapg_core::{RelationId, Value};
use htapg_engines::{all_surveyed_engines, ReferenceEngine};
use htapg_exec::physical;
use htapg_exec::threading::ThreadingPolicy;
use htapg_workload::driver::load_items;
use htapg_workload::tpcc::{item_attr, Generator};

/// One planned-and-executed op: the planner's routing decision and its
/// estimate against the clock's verdict.
#[derive(Debug, Clone)]
pub struct PlanPoint {
    pub engine: &'static str,
    /// Op class label (`sum_column`, `group_sum`, ...).
    pub op: &'static str,
    /// `"cold"` (uncalibrated estimates) or `"warm"` (after the
    /// calibration warm-up rounds).
    pub phase: &'static str,
    /// Route label from the physical plan root.
    pub route: &'static str,
    /// Bytes the plan expects to move over PCIe.
    pub bytes_to_device: u64,
    pub est_ns: u64,
    pub actual_ns: u64,
}

/// Bounded relative estimation error with a noise floor:
/// `|est − actual| / max(actual, est, 1000)`. Always in `[0, 1]`, defined
/// (0) when both sides are zero, and sub-noise-floor disagreements (host
/// ops advance no virtual time) are graded proportionally instead of as
/// total misses.
pub fn rel_err(est_ns: u64, actual_ns: u64) -> f64 {
    calibrate::bounded_rel_err(est_ns, actual_ns)
}

/// Mean bounded relative error over a set of points (0 when empty).
pub fn mean_rel_error(points: &[PlanPoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    points.iter().map(|p| rel_err(p.est_ns, p.actual_ns)).sum::<f64>() / points.len() as f64
}

/// Mean bounded relative error of one phase's points (0 when empty).
pub fn mean_rel_error_phase(points: &[PlanPoint], phase: &str) -> f64 {
    let sel: Vec<f64> = points
        .iter()
        .filter(|p| p.phase == phase)
        .map(|p| rel_err(p.est_ns, p.actual_ns))
        .collect();
    if sel.is_empty() {
        return 0.0;
    }
    sel.iter().sum::<f64>() / sel.len() as f64
}

/// Plan and execute one logical op, measuring actual virtual ns. The
/// observed execution also feeds the engine's calibration profiles.
fn run_one(
    engine: &dyn StorageEngine,
    op: &'static str,
    phase: &'static str,
    logical: &LogicalPlan,
) -> htapg_core::Result<PlanPoint> {
    let plan = engine.plan(logical)?;
    let outcome = physical::execute_observed(engine, &plan, ThreadingPolicy::Single)?;
    Ok(PlanPoint {
        engine: engine.name(),
        op,
        phase,
        route: plan.route().label(),
        bytes_to_device: plan.bytes_to_device(),
        est_ns: plan.estimated_ns(),
        actual_ns: outcome.actual_ns,
    })
}

/// The op classes measured per engine: one logical plan per workload op
/// kind, plus the fused filter+sum shape.
fn op_classes(rel: RelationId, rows: u64) -> Vec<(&'static str, LogicalPlan)> {
    vec![
        ("sum_column", LogicalPlan::sum(rel, item_attr::I_PRICE)),
        ("filter_sum", LogicalPlan::filter_sum(rel, item_attr::I_PRICE, Predicate::Ge(50.0))),
        ("group_sum", LogicalPlan::group_sum(rel, item_attr::I_IM_ID, item_attr::I_PRICE)),
        ("materialize", LogicalPlan::Materialize { rel, rows: (0..rows).step_by(97).collect() }),
        ("point_read", LogicalPlan::PointRead { rel, row: rows / 2 }),
        (
            "update_field",
            LogicalPlan::Update {
                rel,
                row: rows / 3,
                attr: item_attr::I_PRICE,
                value: Value::Float64(9.25),
            },
        ),
    ]
}

/// Measure every op class on every surveyed engine plus the reference
/// engine. Each engine is warmed (repeated analytic scans + `maintain`) so
/// the device-capable ones reach their steady placement, then measured
/// twice: a cold pass on the uncalibrated cost model, a calibration
/// warm-up phase of observed executions, and a warm pass on the corrected
/// estimates.
pub fn measure(seed: u64, quick: bool) -> Vec<PlanPoint> {
    let rows = if quick { 4_000 } else { 20_000 };
    let warmup_rounds = if quick { 24 } else { 32 };
    let gen = Generator::new(seed);
    let mut engines: Vec<Calibrated> =
        all_surveyed_engines().into_iter().map(Calibrated::new).collect();
    engines.push(Calibrated::new(Box::new(ReferenceEngine::new())));
    let mut points = Vec::new();
    for engine in &engines {
        let rel = match load_items(engine, &gen, rows) {
            Ok(rel) => rel,
            Err(_) => continue,
        };
        // Placement warm-up: device-capable engines reach their steady
        // delegation before anything is measured.
        for _ in 0..40 {
            let _ = engine.sum_column_f64(rel, item_attr::I_PRICE);
        }
        let _ = engine.maintain();
        // Cold pass: first planned execution per op class; the profiles
        // are empty, so estimates are the raw analytic model's.
        for (op, logical) in op_classes(rel, rows) {
            match run_one(engine, op, "cold", &logical) {
                Ok(p) => points.push(p),
                Err(e) => eprintln!("planner: {} {op} failed: {e}", engine.name()),
            }
        }
        // Calibration warm-up: repeated observed executions feed the EWMA
        // profiles past their warm-up threshold. maintain() per round
        // refreshes device replicas staled by the update op.
        for _ in 0..warmup_rounds {
            let _ = engine.maintain();
            for (_op, logical) in op_classes(rel, rows) {
                if let Ok(plan) = engine.plan(&logical) {
                    let _ = physical::execute_observed(engine, &plan, ThreadingPolicy::Single);
                }
            }
        }
        let _ = engine.maintain();
        // Warm pass: identical op classes, now planned with calibrated
        // estimates.
        for (op, logical) in op_classes(rel, rows) {
            match run_one(engine, op, "warm", &logical) {
                Ok(p) => points.push(p),
                Err(e) => eprintln!("planner: {} {op} failed: {e}", engine.name()),
            }
        }
    }
    points
}

/// Render the calibration table for the terminal.
pub fn render(points: &[PlanPoint]) -> String {
    let mut out = format!(
        "{:<16} {:<14} {:<6} {:<20} {:>12} {:>12} {:>8}\n",
        "engine", "op", "phase", "route", "est (vns)", "actual (vns)", "rel err"
    );
    for p in points {
        out.push_str(&format!(
            "{:<16} {:<14} {:<6} {:<20} {:>12} {:>12} {:>8.3}\n",
            p.engine,
            p.op,
            p.phase,
            p.route,
            p.est_ns,
            p.actual_ns,
            rel_err(p.est_ns, p.actual_ns)
        ));
    }
    out.push_str(&format!(
        "\nmean bounded relative error: {:.4} (cold {:.4} -> warm {:.4})\n",
        mean_rel_error(points),
        mean_rel_error_phase(points, "cold"),
        mean_rel_error_phase(points, "warm"),
    ));
    out
}

/// Serialize as BENCH_planner.json.
pub fn to_json(seed: u64, points: &[PlanPoint]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"planner\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"op\": \"{}\", \"phase\": \"{}\", \"route\": \"{}\", \
             \"bytes_to_device\": {}, \"est_ns\": {}, \"actual_ns\": {}, \"rel_err\": {:.6}}}{}\n",
            p.engine,
            p.op,
            p.phase,
            p.route,
            p.bytes_to_device,
            p.est_ns,
            p.actual_ns,
            rel_err(p.est_ns, p.actual_ns),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"mean_rel_error\": {:.6},\n", mean_rel_error(points)));
    out.push_str(&format!(
        "  \"mean_rel_error_cold\": {:.6},\n",
        mean_rel_error_phase(points, "cold")
    ));
    out.push_str(&format!(
        "  \"mean_rel_error_warm\": {:.6}\n",
        mean_rel_error_phase(points, "warm")
    ));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_err_is_bounded_and_symmetric() {
        assert_eq!(rel_err(0, 0), 0.0);
        // Sub-noise-floor disagreements are graded proportionally, not as
        // total (1.0) misses: 100 vs 0 is 100/1000.
        assert!((rel_err(100, 0) - 0.1).abs() < 1e-12);
        assert!((rel_err(0, 100) - 0.1).abs() < 1e-12);
        assert!((rel_err(50, 100) - 0.05).abs() < 1e-12);
        // At and above the floor the classic bounded form takes over.
        assert!((rel_err(5_000, 10_000) - 0.5).abs() < 1e-12);
        assert_eq!(rel_err(50, 100), rel_err(100, 50));
        assert_eq!(rel_err(5_000, 10_000), rel_err(10_000, 5_000));
    }

    #[test]
    fn measure_covers_every_engine_and_op_class() {
        let points = measure(7, true);
        let engines: std::collections::BTreeSet<_> = points.iter().map(|p| p.engine).collect();
        assert!(engines.len() >= 5, "expected all engines, got {engines:?}");
        for op in
            ["sum_column", "filter_sum", "group_sum", "materialize", "point_read", "update_field"]
        {
            assert!(points.iter().any(|p| p.op == op && p.phase == "cold"), "missing cold {op}");
            assert!(points.iter().any(|p| p.op == op && p.phase == "warm"), "missing warm {op}");
        }
        let mean = mean_rel_error(&points);
        assert!(mean.is_finite() && (0.0..=1.0).contains(&mean), "mean {mean}");
        // Known route labels only.
        for p in &points {
            assert!(
                ["device-pipelined", "host-pooled-morsel", "inline-volcano"].contains(&p.route),
                "unknown route {}",
                p.route
            );
        }
        let json = to_json(7, &points);
        assert!(json.contains("\"bench\": \"planner\""));
        assert!(json.contains("\"mean_rel_error\""));
        assert!(json.contains("\"mean_rel_error_cold\""));
        assert!(json.contains("\"mean_rel_error_warm\""));
        assert!(json.contains("\"phase\": \"cold\""));
        assert!(render(&points).contains("mean bounded relative error"));
    }

    #[test]
    fn warm_device_engines_take_the_device_route_for_sums() {
        let points = measure(3, true);
        // The reference engine delegates the hot column to the device after
        // warm-up + maintain; the uncalibrated (cold) planner must route
        // its sum there. (The warm pass may legitimately flip to the host
        // once calibration learns that host work is free in virtual time.)
        let p = points
            .iter()
            .find(|p| p.engine == "REFERENCE" && p.op == "sum_column" && p.phase == "cold")
            .expect("reference cold sum measured");
        assert_eq!(p.route, "device-pipelined", "warm reference sum routes to device");
        assert_eq!(p.bytes_to_device, 0, "warm replica: no PCIe in the plan");
        assert!(p.actual_ns > 0, "device work advances the virtual clock");
    }

    #[test]
    fn calibration_cuts_mean_error_at_least_10x() {
        let points = measure(1, true);
        let cold = mean_rel_error_phase(&points, "cold");
        let warm = mean_rel_error_phase(&points, "warm");
        assert!(cold > 0.0, "cold pass must show real estimation error");
        assert!(warm <= 0.1 * cold, "warm {warm} must be <= 0.1 x cold {cold}");
    }
}
