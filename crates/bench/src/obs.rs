//! The `repro obs` section: a traced, metered HTAP run on the virtual
//! clock.
//!
//! One sequential mixed stream runs against the [`ReferenceEngine`] with
//! the global tracer installed on the engine's own cost-ledger clock, so
//! every artifact — the Chrome trace, the EXPLAIN breakdown, the per-class
//! latency quantiles — is a deterministic function of the seed. The run is
//! wrapped in a single `htap.run` root span whose inclusive virtual time
//! equals the ledger's wall-clock delta exactly (same clock, read at the
//! same two instants).

use htapg_core::engine::StorageEngine;
use htapg_core::obs::{self, TraceReport, Tracer};
use htapg_engines::ReferenceEngine;
use htapg_workload::driver::{load_customers, run_sequential};
use htapg_workload::queries::{mixed_stream, MixConfig};
use htapg_workload::tpcc::Generator;

/// Everything the obs section produces in one run.
#[derive(Debug)]
pub struct ObsReport {
    pub engine: &'static str,
    pub seed: u64,
    /// Spans recorded (completes + instants).
    pub spans: usize,
    /// Inclusive virtual ns of the `htap.run` root span — equals the
    /// ledger wall-clock delta over the run.
    pub wall_virtual_ns: u64,
    /// Chrome trace format JSON (`chrome://tracing` / Perfetto).
    pub chrome_json: String,
    /// The engine's `explain()` rendering of the span tree.
    pub explain_text: String,
    /// Per class: (label, [p50, p95, p99]) virtual ns from the registry
    /// histograms. Classes with no observations report zeros.
    pub quantiles: Vec<(&'static str, [u64; 3])>,
    /// Registry counter deltas over the run, name-sorted.
    pub counters: Vec<(String, u64)>,
}

/// Run the traced workload. `quick` shrinks the table and stream for
/// smoke runs.
pub fn run(seed: u64, quick: bool) -> ObsReport {
    let (rows, ops) = if quick { (2_000, 400) } else { (10_000, 2_000) };
    let engine = ReferenceEngine::new();
    let clock = engine.trace_clock().expect("reference engine exposes its ledger clock");

    let gen = Generator::new(seed);
    let rel = load_customers(&engine, &gen, rows).expect("load");
    // Analytic warm-up so `maintain` delegates the balance column to the
    // device — the traced scans then do real (virtual-time) device work.
    for _ in 0..40 {
        engine
            .sum_column_f64(rel, htapg_workload::tpcc::customer_attr::C_BALANCE)
            .expect("warm-up scan");
    }
    engine.maintain().ok();
    let cfg = MixConfig { olap_fraction: 0.1, write_fraction: 0.5, ..Default::default() };
    let stream = mixed_stream(&gen, seed.wrapping_add(1), rows, ops, &cfg);

    // Trace only the query phase: install after load so the trace is the
    // workload, not the bulk insert.
    let tracer = Tracer::new(clock.clone());
    let base = obs::metrics().snapshot();
    obs::install(tracer.clone());
    let _proc = obs::process_scope(engine.name());
    {
        let _root = obs::span("query", "htap.run");
        // Interleave background maintenance the way a real deployment
        // would: each round merges committed versions and refreshes the
        // device replicas the round's writes staled, so analytic sums
        // keep hitting the device (and charging virtual kernel time)
        // under any seed.
        for batch in stream.chunks(stream.len().div_ceil(8).max(1)) {
            run_sequential(&engine, rel, batch);
            let _m = obs::span("maintain", "engine.maintain");
            engine.maintain().ok();
        }
    }
    drop(_proc);
    obs::uninstall();
    let delta = obs::metrics().snapshot().since(&base);

    let spans = tracer.drain();
    let span_count = spans.len();
    let report = TraceReport::from_spans(spans.clone());
    let explain_text = engine.explain(&report);
    let chrome_json = obs::to_chrome_trace(spans);
    let wall_virtual_ns = report.find_root("htap.run").map(|n| n.inclusive_ns).unwrap_or(0);

    let q = |name: &str| -> [u64; 3] {
        match delta.histograms.get(name) {
            Some(h) => [h.quantile(0.5), h.quantile(0.95), h.quantile(0.99)],
            None => [0; 3],
        }
    };
    ObsReport {
        engine: engine.name(),
        seed,
        spans: span_count,
        wall_virtual_ns,
        chrome_json,
        explain_text,
        quantiles: vec![("oltp", q("query.oltp.latency_ns")), ("olap", q("query.olap.latency_ns"))],
        counters: delta.counters.iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
    }
}

/// Serialize the report (minus the embedded Chrome trace, which goes to
/// its own file via `--trace`) as BENCH_obs.json.
pub fn to_json(r: &ObsReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"obs\",\n");
    out.push_str(&format!("  \"engine\": \"{}\",\n", r.engine));
    out.push_str(&format!("  \"seed\": {},\n", r.seed));
    out.push_str(&format!("  \"spans\": {},\n", r.spans));
    out.push_str(&format!("  \"wall_virtual_ns\": {},\n", r.wall_virtual_ns));
    out.push_str("  \"latency_ns\": {\n");
    for (i, (class, [p50, p95, p99])) in r.quantiles.iter().enumerate() {
        out.push_str(&format!(
            "    \"{class}\": {{\"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}}{}\n",
            if i + 1 < r.quantiles.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"counters\": {\n");
    for (i, (name, v)) in r.counters.iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {v}{}\n",
            if i + 1 < r.counters.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// Render the quantile table for the terminal.
pub fn render(r: &ObsReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{} spans recorded; htap.run root = {} virtual ns (== ledger wall delta)\n\n",
        r.spans, r.wall_virtual_ns
    ));
    out.push_str(&format!(
        "{:<8} {:>14} {:>14} {:>14}\n",
        "class", "p50 (vns)", "p95 (vns)", "p99 (vns)"
    ));
    for (class, [p50, p95, p99]) in &r.quantiles {
        out.push_str(&format!("{class:<8} {p50:>14} {p95:>14} {p99:>14}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_run_produces_all_artifacts() {
        let r = run(3, true);
        assert!(r.spans > 0, "traced run records spans");
        assert!(r.wall_virtual_ns > 0, "virtual wall advanced");
        assert!(r.chrome_json.starts_with("{\"traceEvents\":["));
        assert!(r.chrome_json.contains("\"htap.run\""));
        assert!(r.explain_text.contains("EXPLAIN REFERENCE"));
        assert!(r.explain_text.contains("htap.run"));
        // The reference engine ran OLTP ops; their virtual latencies landed
        // in the registry histogram.
        let oltp = r.quantiles.iter().find(|(c, _)| *c == "oltp").unwrap();
        assert!(oltp.1[0] > 0, "oltp p50 recorded");
        let json = to_json(&r);
        assert!(json.contains("\"bench\": \"obs\""));
        assert!(json.contains("\"p99\""));
        assert!(render(&r).contains("p95"));
    }
}
