//! Figure 2: "Different attribute- and record-centric operations executed
//! on the same tables of the TPC-C benchmark dataset. None of the solutions
//! is optimal for HTAP workloads w.r.t. the storage layout, the threading
//! policy or the data placement."
//!
//! Four panels, reproduced at scaled-down table sizes (documented in
//! EXPERIMENTS.md):
//!
//! 1. *materialize 150 customers* — record-centric; series = {row, column}
//!    × {single, multi(8)} on the host;
//! 2. *sum prices of 150 items* — attribute-centric over a tiny position
//!    list; same four host series;
//! 3. *sum all prices in items table* — full-column sum; the four host
//!    series plus "column-store / device" with PCIe transfer charged;
//! 4. the same with the price column resident in device memory — "transfer
//!    costs to device excluded".
//!
//! CPU series are measured wall time on this machine; device series are the
//! simulator's modeled (virtual) time, reported in the same milliseconds.

use std::sync::Arc;

use htapg_core::{DataType, Layout, LayoutTemplate, RowId, Schema};
use htapg_device::SimDevice;
use htapg_exec::device_exec;
use htapg_exec::materialize::materialize;
use htapg_exec::scan::{sum_at_positions_f64, sum_column_f64_typed};
use htapg_exec::threading::ThreadingPolicy;
use htapg_workload::queries::sorted_positions;
use htapg_workload::tpcc::{customer_schema, item_attr, item_schema, Generator};

use crate::min_time_ms;

/// The paper's series labels, in plot-legend order.
pub const HOST_SERIES: [&str; 4] = [
    "column-store / host & multi-threaded",
    "column-store / host & single-threaded",
    "row-store / host & multi-threaded",
    "row-store / host & single-threaded",
];

pub const DEVICE_SERIES: &str = "column-store / device";

/// Number of positions in the record-centric panels (the paper's 150).
pub const POSITIONS: usize = 150;

/// Sweep sizes (scaled ~40× down from the paper's 5M–85M / 5M–65M).
pub fn default_customer_sizes(quick: bool) -> Vec<u64> {
    if quick {
        vec![50_000, 100_000, 200_000]
    } else {
        vec![100_000, 200_000, 400_000, 800_000, 1_600_000]
    }
}

pub fn default_item_sizes(quick: bool) -> Vec<u64> {
    if quick {
        vec![100_000, 250_000, 500_000]
    } else {
        vec![250_000, 500_000, 1_000_000, 2_000_000, 4_000_000]
    }
}

/// A populated pair of layouts (column-store and row-store) for one table.
pub struct TablePair {
    pub schema: Schema,
    pub columns: Layout,
    pub rows_layout: Layout,
    pub n: u64,
}

/// Build both layouts of the customer table at size `n`.
pub fn build_customers(gen: &Generator, n: u64) -> TablePair {
    let schema = customer_schema();
    let mut columns = Layout::new(&schema, LayoutTemplate::dsm_emulated(&schema)).unwrap();
    let mut rows_layout = Layout::new(&schema, LayoutTemplate::nsm(&schema)).unwrap();
    for i in 0..n {
        let rec = gen.customer(i);
        columns.append(&schema, &rec).unwrap();
        rows_layout.append(&schema, &rec).unwrap();
    }
    TablePair { schema, columns, rows_layout, n }
}

/// Build both layouts of the item table at size `n`.
pub fn build_items(gen: &Generator, n: u64) -> TablePair {
    let schema = item_schema();
    let mut columns = Layout::new(&schema, LayoutTemplate::dsm_emulated(&schema)).unwrap();
    let mut rows_layout = Layout::new(&schema, LayoutTemplate::nsm(&schema)).unwrap();
    for i in 0..n {
        let rec = gen.item(i);
        columns.append(&schema, &rec).unwrap();
        rows_layout.append(&schema, &rec).unwrap();
    }
    TablePair { schema, columns, rows_layout, n }
}

fn host_series_ms(
    pair: &TablePair,
    reps: usize,
    mut run: impl FnMut(&Layout, ThreadingPolicy),
) -> Vec<f64> {
    let mut out = Vec::with_capacity(4);
    for (layout, policy) in [
        (&pair.columns, ThreadingPolicy::multi8()),
        (&pair.columns, ThreadingPolicy::Single),
        (&pair.rows_layout, ThreadingPolicy::multi8()),
        (&pair.rows_layout, ThreadingPolicy::Single),
    ] {
        out.push(min_time_ms(reps, || run(layout, policy)));
    }
    out
}

/// Panel 1: materialize 150 random customers. Returns ms per host series.
pub fn panel_materialize(pair: &TablePair, positions: &[RowId], reps: usize) -> Vec<f64> {
    host_series_ms(pair, reps, |layout, policy| {
        let recs = materialize(layout, &pair.schema, positions, policy).unwrap();
        assert_eq!(recs.len(), positions.len());
    })
}

/// Panel 2: sum prices of 150 items (tiny position list).
pub fn panel_sum_tiny(pair: &TablePair, positions: &[RowId], reps: usize) -> Vec<f64> {
    host_series_ms(pair, reps, |layout, policy| {
        let s =
            sum_at_positions_f64(layout, item_attr::I_PRICE, DataType::Float64, positions, policy)
                .unwrap();
        assert!(s.is_finite());
    })
}

/// Panels 3 & 4: sum all prices. Returns
/// `(host_series_ms[4], device_including_transfer_ms, device_resident_ms)`.
pub fn panel_sum_scan(
    pair: &TablePair,
    device: &Arc<SimDevice>,
    reps: usize,
) -> (Vec<f64>, f64, f64) {
    let host = host_series_ms(pair, reps, |layout, policy| {
        let s =
            sum_column_f64_typed(layout, item_attr::I_PRICE, DataType::Float64, policy).unwrap();
        assert!(s.is_finite());
    });
    // Device, transfer included (panel 3): one-shot offload; virtual time.
    let (_, transfer_ns, kernel_ns) =
        device_exec::offload_sum(device, &pair.columns, item_attr::I_PRICE, DataType::Float64)
            .unwrap();
    let including = (transfer_ns + kernel_ns) as f64 / 1e6;
    // Device, transfer excluded (panel 4): resident column, kernel only.
    let col =
        device_exec::upload_column(device, &pair.columns, item_attr::I_PRICE, DataType::Float64)
            .unwrap();
    let before = device.ledger().snapshot();
    let s = device_exec::device_sum(&col).unwrap();
    assert!(s.is_finite());
    let resident = device.ledger().snapshot().since(&before).kernel_ns as f64 / 1e6;
    col.release().unwrap();
    (host, including, resident)
}

/// One full Figure 2 reproduction at the given sizes. Returns the rendered
/// panels.
pub fn run_figure2(quick: bool, seed: u64) -> String {
    let gen = Generator::new(seed);
    let reps = if quick { 2 } else { 3 };
    let mut out = String::new();

    // Panel 1.
    let mut rows1 = Vec::new();
    for &n in &default_customer_sizes(quick) {
        let pair = build_customers(&gen, n);
        let mut rng = rand_seed(seed ^ n);
        let positions = sorted_positions(&mut rng, n, POSITIONS);
        rows1.push((n, panel_materialize(&pair, &positions, reps)));
    }
    out.push_str(&crate::render_sweep(
        "Fig. 2 / panel 1 — materialize 150 customers (ms)",
        "#customers",
        &HOST_SERIES,
        &rows1,
    ));
    out.push('\n');

    // Panel 2.
    let mut rows2 = Vec::new();
    for &n in &default_item_sizes(quick) {
        let pair = build_items(&gen, n);
        let mut rng = rand_seed(seed ^ n.rotate_left(13));
        let positions = sorted_positions(&mut rng, n, POSITIONS);
        rows2.push((n, panel_sum_tiny(&pair, &positions, reps)));
    }
    out.push_str(&crate::render_sweep(
        "Fig. 2 / panel 2 — sum prices of 150 items (ms)",
        "#items",
        &HOST_SERIES,
        &rows2,
    ));
    out.push('\n');

    // Panels 3 & 4.
    let device = Arc::new(SimDevice::with_defaults());
    let mut rows3 = Vec::new();
    let mut rows4 = Vec::new();
    for &n in &default_item_sizes(quick) {
        let pair = build_items(&gen, n);
        let (host, including, resident) = panel_sum_scan(&pair, &device, reps);
        let mut all3 = host.clone();
        all3.push(including);
        rows3.push((n, all3));
        let mut all4 = host;
        all4.push(resident);
        rows4.push((n, all4));
    }
    let mut series34: Vec<&str> = HOST_SERIES.to_vec();
    series34.push(DEVICE_SERIES);
    out.push_str(&crate::render_sweep(
        "Fig. 2 / panel 3 — sum all prices in items table, transfer included (ms)",
        "#items",
        &series34,
        &rows3,
    ));
    out.push('\n');
    out.push_str(&crate::render_sweep(
        "Fig. 2 / panel 4 — sum all prices, transfer costs to device excluded (ms)",
        "#items",
        &series34,
        &rows4,
    ));
    out
}

fn rand_seed(seed: u64) -> htapg_core::prng::Prng {
    htapg_core::prng::Prng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_agree_across_all_series_and_the_device() {
        let gen = Generator::new(3);
        let n = 20_000;
        let pair = build_items(&gen, n);
        let expect = gen.expected_item_price_sum(n);
        for (layout, policy) in [
            (&pair.columns, ThreadingPolicy::Single),
            (&pair.columns, ThreadingPolicy::multi8()),
            (&pair.rows_layout, ThreadingPolicy::Single),
            (&pair.rows_layout, ThreadingPolicy::multi8()),
        ] {
            let s = sum_column_f64_typed(layout, item_attr::I_PRICE, DataType::Float64, policy)
                .unwrap();
            assert!((s - expect).abs() < 1e-6 * expect, "{s} vs {expect}");
        }
        let device = Arc::new(SimDevice::with_defaults());
        let (s, t, k) =
            device_exec::offload_sum(&device, &pair.columns, item_attr::I_PRICE, DataType::Float64)
                .unwrap();
        assert!((s - expect).abs() < 1e-6 * expect);
        assert!(t > 0 && k > 0);
    }

    #[test]
    fn panel_shapes_hold_at_small_scale() {
        // The qualitative findings (i)-(iv) of Section II-B, checked on a
        // size big enough to escape the L2 but small enough for CI. The
        // cache-traffic shapes only manifest in optimized builds — debug
        // builds are dominated by per-iteration interpreter-style overhead.
        if cfg!(debug_assertions) {
            eprintln!("skipping timing-shape assertions in debug build");
            return;
        }
        let gen = Generator::new(7);
        let pair = build_items(&gen, 400_000);
        let device = Arc::new(SimDevice::with_defaults());
        let (host, including, resident) = panel_sum_scan(&pair, &device, 3);
        let [col_multi, col_single, row_multi, row_single] = [host[0], host[1], host[2], host[3]];
        // (iii) attribute-centric: DSM beats NSM under the same policy.
        assert!(col_single < row_single, "DSM {col_single:.3}ms should beat NSM {row_single:.3}ms");
        // (iv) resident device beats every host series.
        let best_host = col_multi.min(col_single).min(row_multi).min(row_single);
        assert!(
            resident < best_host,
            "device resident {resident:.3}ms vs best host {best_host:.3}ms"
        );
        // Transfers dominate the one-shot offload.
        assert!(including > resident * 3.0, "{including:.3} vs {resident:.3}");
    }

    #[test]
    fn tiny_queries_no_longer_pay_thread_management() {
        // Finding (i): under spawn-per-call execution, thread management
        // dominates tiny position lists. The persistent morsel pool makes
        // that cost a property of the scheduler: a one-morsel input runs
        // inline, so Multi ties Single and beats the spawn-per-call
        // baseline outright.
        use htapg_exec::pool::spawn_blocks;
        let gen = Generator::new(9);
        let n = 100_000;
        let pair = build_items(&gen, n);
        let mut rng = rand_seed(1);
        let positions = sorted_positions(&mut rng, n, POSITIONS);
        let ms = panel_sum_tiny(&pair, &positions, 5);
        let [col_multi, col_single, _, _] = [ms[0], ms[1], ms[2], ms[3]];
        // The pre-pool executor, measured on the same 150 positions.
        let spawn_multi = min_time_ms(5, || {
            let s = spawn_blocks(
                positions.len() as u64,
                8,
                |lo, hi| {
                    sum_at_positions_f64(
                        &pair.columns,
                        item_attr::I_PRICE,
                        DataType::Float64,
                        &positions[lo as usize..hi as usize],
                        ThreadingPolicy::Single,
                    )
                    .unwrap()
                },
                |a, b| a + b,
                0.0,
            );
            assert!(s.is_finite());
        });
        assert!(
            col_single < spawn_multi,
            "single {col_single:.4}ms should beat spawn-per-call multi {spawn_multi:.4}ms \
             on 150 positions (the paper's finding i)"
        );
        assert!(
            col_multi < spawn_multi,
            "pooled multi {col_multi:.4}ms should beat spawn-per-call multi {spawn_multi:.4}ms \
             on 150 positions"
        );
        assert!(
            col_multi <= col_single * 4.0,
            "pooled multi {col_multi:.4}ms should tie single {col_single:.4}ms on one morsel"
        );
    }
}
