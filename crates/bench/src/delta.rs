//! The `repro delta` section: delta-shipping vs the invalidation cliff
//! under a rising write rate.
//!
//! Two identical reference engines run the same HTAP loop — `W` field
//! updates followed by one warm device sum — with delta shipping on
//! (updates append to the cache's per-column delta log, the next analytic
//! query merges them on-device) and off (any update drops the replica, the
//! next query re-uploads the full column). The virtual cost ledger
//! measures each analytic query; the sweep raises `W` and watches whether
//! warm latency stays flat (shipping) or falls off the re-upload cliff.
//!
//! Gates for CI: `latency_flat_under_writes` (warm latency at the highest
//! write rate stays within 1.5x of the no-write baseline) and
//! `delta_beats_reupload` (total bytes shipped as deltas stay below the
//! cliff side's re-upload traffic). Both sides' query results are asserted
//! bit-identical every round — shipping is a transport optimization, never
//! a semantics change.

use htapg_core::engine::StorageEngine;
use htapg_engines::ReferenceEngine;
use htapg_workload::driver::{apply_write_burst, load_items};
use htapg_workload::tpcc::{item_attr, Generator};

/// One write-rate step: warm analytic latency and transfer traffic on the
/// shipping and cliff sides.
#[derive(Debug, Clone, Copy)]
pub struct DeltaPoint {
    /// Updates applied (to distinct rows) before the measured query.
    pub writes_per_query: u64,
    /// Virtual ns of the measured analytic query with delta shipping on.
    pub ship_ns: u64,
    /// Same query with shipping off — the invalidation-cliff baseline.
    pub cliff_ns: u64,
    /// Delta pairs shipped over PCIe during the measured query (bytes).
    pub ship_delta_bytes: u64,
    /// Total PCIe traffic of the measured query on the shipping side.
    pub ship_bytes_to_device: u64,
    /// Total PCIe traffic on the cliff side (the full-column re-upload).
    pub cliff_bytes_to_device: u64,
}

/// The write-rate ladder. `quick` stops at 1024 writes/query to keep the
/// merge-vs-reupload ratio meaningful on the shrunk 200k-row table.
pub fn write_rates(quick: bool) -> Vec<u64> {
    if quick {
        vec![0, 1, 16, 128, 1024]
    } else {
        vec![0, 1, 16, 128, 1024, 4096]
    }
}

/// Standard table size for the sweep. The quick size must stay large
/// enough that the reduce kernel amortizes the fixed per-merge PCIe
/// latency (10us), or the 1.5x flatness gate measures the latency floor
/// instead of the shipping pipeline: 500k rows puts the deterministic
/// ship/baseline ratio at ~1.39 for the top quick rate.
pub fn table_rows(quick: bool) -> u64 {
    if quick {
        500_000
    } else {
        1_000_000
    }
}

/// Run the sweep at the standard geometry.
pub fn measure(seed: u64, quick: bool) -> Vec<DeltaPoint> {
    measure_with(seed, table_rows(quick), &write_rates(quick))
}

/// Run the write-rate sweep on a `rows`-row item table. Both engines see
/// identical loads and identical update streams; each rate runs one settle
/// round and one measured round so the shipping side is in its steady
/// write→merge cadence when the ledger looks at it.
pub fn measure_with(seed: u64, rows: u64, rates: &[u64]) -> Vec<DeltaPoint> {
    let gen = Generator::new(seed);
    let ship = ReferenceEngine::new();
    let cliff = ReferenceEngine::new();
    let rel_s = load_items(&ship, &gen, rows).expect("load ship table");
    let rel_c = load_items(&cliff, &gen, rows).expect("load cliff table");
    cliff.cache().set_delta_shipping(false);
    // Place the replica on both sides before anything is measured.
    let warm_s = ship.device_sum_column(rel_s, item_attr::I_PRICE).expect("warm ship");
    let warm_c = cliff.device_sum_column(rel_c, item_attr::I_PRICE).expect("warm cliff");
    assert_eq!(warm_s.to_bits(), warm_c.to_bits(), "warm sums must agree bit-for-bit");

    let mut points = Vec::new();
    let mut offset = 0u64;
    for &w in rates {
        let mut point = None;
        for round in 0..2u64 {
            // W updates to distinct rows, mirrored on both engines.
            apply_write_burst(&ship, rel_s, item_attr::I_PRICE, rows, offset, w, round)
                .expect("ship burst");
            apply_write_burst(&cliff, rel_c, item_attr::I_PRICE, rows, offset, w, round)
                .expect("cliff burst");
            offset += w;
            let before_s = ship.device().ledger().snapshot();
            let sum_s = ship.device_sum_column(rel_s, item_attr::I_PRICE).expect("ship sum");
            let d_s = ship.device().ledger().snapshot().since(&before_s);
            let before_c = cliff.device().ledger().snapshot();
            let sum_c = cliff.device_sum_column(rel_c, item_attr::I_PRICE).expect("cliff sum");
            let d_c = cliff.device().ledger().snapshot().since(&before_c);
            assert_eq!(
                sum_s.to_bits(),
                sum_c.to_bits(),
                "shipped-merge sum must be bit-identical to the re-uploaded sum \
                 (W={w}, round={round})"
            );
            // Record the second (steady-state) round.
            point = Some(DeltaPoint {
                writes_per_query: w,
                ship_ns: d_s.wall_ns,
                cliff_ns: d_c.wall_ns,
                ship_delta_bytes: d_s.delta_bytes,
                ship_bytes_to_device: d_s.bytes_to_device,
                cliff_bytes_to_device: d_c.bytes_to_device,
            });
        }
        points.push(point.expect("at least one round per rate"));
    }
    points
}

/// The headline gate: warm analytic latency at the highest write rate must
/// stay within 1.5x of the no-write warm baseline. The cliff side fails
/// this by construction once the re-upload dwarfs the kernel.
pub fn latency_flat_under_writes(points: &[DeltaPoint]) -> bool {
    let Some(base) = points.iter().find(|p| p.writes_per_query == 0) else {
        return false;
    };
    let Some(top) = points.iter().max_by_key(|p| p.writes_per_query) else {
        return false;
    };
    top.writes_per_query > 0 && (top.ship_ns as f64) <= 1.5 * (base.ns_floor() as f64)
}

impl DeltaPoint {
    /// Baseline latency with a 1ns floor so a degenerate zero-cost round
    /// cannot make the flatness gate unsatisfiable.
    fn ns_floor(&self) -> u64 {
        self.ship_ns.max(1)
    }
}

/// The traffic gate: across every write-carrying step, the shipping side's
/// delta bytes must undercut the cliff side's re-upload traffic.
pub fn delta_beats_reupload(points: &[DeltaPoint]) -> bool {
    let (mut ship, mut cliff) = (0u64, 0u64);
    for p in points.iter().filter(|p| p.writes_per_query > 0) {
        ship += p.ship_delta_bytes;
        cliff += p.cliff_bytes_to_device;
    }
    ship > 0 && cliff > 0 && ship < cliff
}

/// Render the sweep as a `BENCH_delta.json` document (hand-formatted; the
/// workspace has no JSON dependency).
pub fn to_json(seed: u64, rows: u64, points: &[DeltaPoint]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"delta_ship\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"rows\": {rows},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"writes_per_query\": {}, \"ship_ns\": {}, \"cliff_ns\": {}, \
             \"ship_delta_bytes\": {}, \"ship_bytes_to_device\": {}, \
             \"cliff_bytes_to_device\": {}}}{}\n",
            p.writes_per_query,
            p.ship_ns,
            p.cliff_ns,
            p.ship_delta_bytes,
            p.ship_bytes_to_device,
            p.cliff_bytes_to_device,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"latency_flat_under_writes\": {},\n",
        latency_flat_under_writes(points)
    ));
    out.push_str(&format!("  \"delta_beats_reupload\": {}\n", delta_beats_reupload(points)));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_flat_ship_latency_and_cheaper_traffic() {
        // A shrunk geometry of the real sweep. At 20k rows the fixed PCIe
        // latency (10us/transfer) still dwarfs the 2us reduce, so the 1.5x
        // flatness gate only holds at the real sweep sizes — here we pin
        // the scale-independent facts: exact delta traffic, the cliff's
        // full-column re-upload, and shipping winning outright.
        let points = measure_with(1, 20_000, &[0, 8, 64]);
        assert_eq!(points.len(), 3);
        assert!(delta_beats_reupload(&points), "delta bytes must undercut re-uploads: {points:?}");
        let top = points.last().unwrap();
        // 64 distinct rows × 16-byte pairs over PCIe on the shipping side…
        assert_eq!(top.ship_delta_bytes, 64 * 16);
        assert_eq!(top.ship_bytes_to_device, 64 * 16);
        // …vs the full 8-byte-per-row column on the cliff side.
        assert_eq!(top.cliff_bytes_to_device, 20_000 * 8);
        assert!(top.ship_ns < top.cliff_ns, "shipping must beat the cliff at W=64");
    }

    #[test]
    fn no_write_rounds_move_no_bytes_on_either_side() {
        let points = measure_with(3, 10_000, &[0]);
        let p = points[0];
        assert_eq!(p.writes_per_query, 0);
        assert_eq!(p.ship_bytes_to_device, 0);
        assert_eq!(p.cliff_bytes_to_device, 0);
        assert_eq!(p.ship_delta_bytes, 0);
        assert!(p.ship_ns > 0, "the warm kernel still advances the virtual clock");
    }

    #[test]
    fn json_document_is_well_formed() {
        let points = vec![
            DeltaPoint {
                writes_per_query: 0,
                ship_ns: 100_000,
                cliff_ns: 100_000,
                ship_delta_bytes: 0,
                ship_bytes_to_device: 0,
                cliff_bytes_to_device: 0,
            },
            DeltaPoint {
                writes_per_query: 1024,
                ship_ns: 112_000,
                cliff_ns: 1_500_000,
                ship_delta_bytes: 16_384,
                ship_bytes_to_device: 16_384,
                cliff_bytes_to_device: 8_000_000,
            },
        ];
        let json = to_json(42, 1_000_000, &points);
        assert!(json.contains("\"bench\": \"delta_ship\""));
        assert!(json.contains("\"writes_per_query\": 1024"));
        assert!(json.contains("\"latency_flat_under_writes\": true"));
        assert!(json.contains("\"delta_beats_reupload\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn gates_fail_on_cliff_shaped_data() {
        // If shipping regressed to the cliff (latency blowing up with W,
        // delta traffic matching re-uploads), both gates must go red.
        let points = vec![
            DeltaPoint {
                writes_per_query: 0,
                ship_ns: 100_000,
                cliff_ns: 100_000,
                ship_delta_bytes: 0,
                ship_bytes_to_device: 0,
                cliff_bytes_to_device: 0,
            },
            DeltaPoint {
                writes_per_query: 1024,
                ship_ns: 1_500_000,
                cliff_ns: 1_500_000,
                ship_delta_bytes: 8_000_000,
                ship_bytes_to_device: 8_000_000,
                cliff_bytes_to_device: 8_000_000,
            },
        ];
        assert!(!latency_flat_under_writes(&points));
        assert!(!delta_beats_reupload(&points));
    }
}
