//! A tiny micro-benchmark runner (the workspace builds offline, so the
//! `benches/` targets use this instead of an external framework).
//!
//! Usage mirrors the common group/function shape:
//!
//! ```no_run
//! let mut g = htapg_bench::micro::Group::new("index_point_lookup");
//! g.bench("bplustree", || 1 + 1);
//! g.finish();
//! ```
//!
//! Each benchmark is warmed up, then timed over batches until a per-bench
//! time budget is spent; the per-iteration mean of the fastest batch is
//! reported (min-of-means is the low-variance estimator the perf guide
//! recommends for shape comparisons). The budget defaults to a quick run
//! and can be raised via `HTAPG_BENCH_MS` for careful measurements.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-benchmark time budget: `HTAPG_BENCH_MS` milliseconds, default 40.
fn budget() -> Duration {
    let ms = std::env::var("HTAPG_BENCH_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(40u64);
    Duration::from_millis(ms.max(1))
}

/// A named group of related benchmarks, printed as one block.
pub struct Group {
    name: String,
    budget: Duration,
}

impl Group {
    pub fn new(name: &str) -> Self {
        println!("\n## {name}");
        Self { name: name.to_string(), budget: budget() }
    }

    /// Time `f` and print mean nanoseconds per iteration.
    pub fn bench<R>(&mut self, name: impl AsRef<str>, mut f: impl FnMut() -> R) {
        let ns = bench_ns(self.budget, &mut f);
        println!("{:>14.1} ns/iter  {}/{}", ns, self.name, name.as_ref());
    }

    /// End the group (symmetry with framework APIs; prints nothing).
    pub fn finish(self) {}
}

fn bench_ns<R>(budget: Duration, f: &mut impl FnMut() -> R) -> f64 {
    // Warm-up and batch sizing: grow the batch until it runs >= ~1/20 of
    // the budget, so timer overhead stays negligible.
    let mut batch = 1u64;
    let min_batch_time = budget / 20;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let elapsed = t.elapsed();
        if elapsed >= min_batch_time || batch >= 1 << 24 {
            break;
        }
        batch = (batch * 2)
            .max(
                (batch as f64 * min_batch_time.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                    as u64,
            )
            .min(1 << 24);
    }
    // Timed batches: min of per-iteration means.
    let mut best = f64::INFINITY;
    let deadline = Instant::now() + budget;
    let mut batches = 0;
    while Instant::now() < deadline || batches < 3 {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        best = best.min(t.elapsed().as_nanos() as f64 / batch as f64);
        batches += 1;
        if batches >= 1000 {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ns_is_finite_and_positive() {
        let mut x = 0u64;
        let ns = bench_ns(Duration::from_millis(5), &mut || {
            x = x.wrapping_add(1);
            x
        });
        assert!(ns.is_finite() && ns >= 0.0, "{ns}");
    }
}
