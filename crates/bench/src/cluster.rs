//! The `repro cluster` section: scatter-gather scan throughput vs node
//! count on the sharded engine (DESIGN.md §15).
//!
//! One seeded f64 column is loaded into a [`ShardedEngine`] at every node
//! count; the planner lowers each aggregate to the scatter plan, every
//! shard reduces its local fragments on its own simulated device, and the
//! coordinator settles the cluster wall with the slowest shard's
//! `exec + round trip`. The sweep reports the measured *warm* scan wall
//! (virtual ns off the cluster ledger), the network bytes the scatter
//! moved, and the planner's own estimate for the same plan.
//!
//! Geometry: `partition_rows` is chosen as `rows.div_ceil(1024)` — the
//! flat executor's reduction segment length — so the fragment-granularity
//! scatter result is bit-identical not only to the single-node scatter
//! plan but to the *flat* single-node canonical sum. Every point asserts
//! that equality and reports it as `bit_identical`.
//!
//! Gates for CI: `scaling_gate_2x` (≥ 1.6× single-node scan throughput at
//! 2 nodes), `scaling_gate_4x` (≥ 3× at 4 nodes), `bit_identical` (every
//! scattered result byte-equal to the single-node oracle), and
//! `scatter_win_rate` (fraction of multi-node scatter plans the cost model
//! prices under the single-node plan).

use htapg_core::engine::StorageEngine;
use htapg_core::plan::{LogicalPlan, Predicate, Route};
use htapg_core::prng::Prng;
use htapg_core::{DataType, Schema, ShardingKind, Value};
use htapg_device::cluster::NetSpec;
use htapg_exec::physical::{self, canonical_filter_sum, canonical_sum};
use htapg_exec::{ShardedEngine, ThreadingPolicy};

/// The scaling ladder of the acceptance sweep.
pub const NODE_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// Sweep table size: large enough that per-shard kernel time dwarfs the
/// fixed launch + round-trip overhead, so the scaling gates measure the
/// scatter, not the floor.
pub fn table_rows(quick: bool) -> u64 {
    if quick {
        1 << 21
    } else {
        1 << 22
    }
}

/// Placement-fragment size for `rows`: the flat executor's reduction
/// segment length (`rows.div_ceil(1024)`), which makes the sharded
/// fragment geometry coincide bitwise with the flat canonical sum.
pub fn partition_rows(rows: u64) -> u64 {
    rows.div_ceil(1024).max(1)
}

/// A datacenter-ish interconnect (2 µs, 10 GB/s) — faster than the
/// default WAN-ish `NetSpec`, slower than PCIe, priced identically.
pub fn cluster_net() -> NetSpec {
    NetSpec { latency_ns: 2_000, bandwidth: 10.0e9 }
}

/// One node-count step of the scaling sweep.
#[derive(Debug, Clone, Copy)]
pub struct ClusterPoint {
    pub nodes: u32,
    /// Cluster-ledger wall ns of one warm scattered column sum.
    pub scan_wall_ns: u64,
    /// Scan throughput implied by the warm wall (rows / virtual second).
    pub rows_per_sec: f64,
    /// Network bytes the measured scatter moved (requests + partials).
    pub net_bytes: u64,
    /// Planner estimate for the scatter sum plan at this node count.
    pub est_sum_ns: u64,
    /// Planner estimate for the scatter filter-sum plan.
    pub est_filter_ns: u64,
    /// Every scattered result matched the single-node oracle bit-for-bit.
    pub bit_identical: bool,
}

/// Run the sweep at the standard geometry.
pub fn measure(seed: u64, quick: bool) -> Vec<ClusterPoint> {
    measure_with(seed, table_rows(quick), &NODE_COUNTS)
}

/// Run the node-count sweep on a `rows`-row single-column table. Every
/// engine sees the identical seeded value stream; range sharding keeps the
/// per-node fragment counts exactly balanced so the settle measures the
/// scatter, not placement skew.
pub fn measure_with(seed: u64, rows: u64, node_counts: &[u32]) -> Vec<ClusterPoint> {
    let part = partition_rows(rows);
    let mut rng = Prng::seed_from_u64(seed);
    let values: Vec<f64> = (0..rows).map(|_| rng.gen_range(0..1_000_000) as f64 / 7.0).collect();
    let pred = Predicate::Ge(70_000.0);
    // The flat single-node oracles: the whole sweep must reproduce these
    // bits at every node count (see `partition_rows`).
    let want_sum = canonical_sum(&values);
    let want_filter = canonical_filter_sum(&values, &pred);

    let mut points = Vec::new();
    for &nodes in node_counts {
        let e = ShardedEngine::with_config(ShardingKind::Range, nodes, part, cluster_net());
        let schema = Schema::of(&[("v", DataType::Float64)]);
        let rel = e.create_relation(schema).expect("create relation");
        for &v in &values {
            e.insert(rel, &vec![Value::Float64(v)]).expect("insert");
        }

        let sum_plan = e.plan(&LogicalPlan::sum(rel, 0)).expect("plan sum");
        assert_eq!(
            sum_plan.root.route,
            Route::Scatter { shards: nodes as u16 },
            "the sharded engine must lower analytics to the scatter plan"
        );
        let filter_plan = e.plan(&LogicalPlan::filter_sum(rel, 0, pred)).expect("plan filter");

        // Warm-up round: places every shard's device replica, so the
        // measured round prices steady-state kernels, not cold uploads.
        let warm = physical::execute(&e, &sum_plan, ThreadingPolicy::Single)
            .expect("warm scatter")
            .as_sum()
            .expect("sum output");

        let base = e.cluster_ledger().snapshot();
        let got_sum = physical::execute(&e, &sum_plan, ThreadingPolicy::Single)
            .expect("measured scatter")
            .as_sum()
            .expect("sum output");
        let d = e.cluster_ledger().snapshot().since(&base);
        let got_filter = physical::execute(&e, &filter_plan, ThreadingPolicy::Single)
            .expect("measured filter scatter")
            .as_sum()
            .expect("sum output");

        let bit_identical = warm.to_bits() == want_sum.to_bits()
            && got_sum.to_bits() == want_sum.to_bits()
            && got_filter.to_bits() == want_filter.to_bits();
        points.push(ClusterPoint {
            nodes,
            scan_wall_ns: d.wall_ns.max(1),
            rows_per_sec: rows as f64 * 1e9 / d.wall_ns.max(1) as f64,
            net_bytes: d.network_bytes,
            est_sum_ns: sum_plan.estimated_ns(),
            est_filter_ns: filter_plan.estimated_ns(),
            bit_identical,
        });
    }
    points
}

/// Measured scan speedup of `nodes` over the single-node point.
pub fn speedup_at(points: &[ClusterPoint], nodes: u32) -> Option<f64> {
    let base = points.iter().find(|p| p.nodes == 1)?;
    let at = points.iter().find(|p| p.nodes == nodes)?;
    Some(base.scan_wall_ns as f64 / at.scan_wall_ns as f64)
}

/// Fraction of multi-node scatter plans the cost model prices strictly
/// under the single-node plan for the same query.
pub fn scatter_win_rate(points: &[ClusterPoint]) -> f64 {
    let Some(base) = points.iter().find(|p| p.nodes == 1) else {
        return 0.0;
    };
    let (mut wins, mut total) = (0u32, 0u32);
    for p in points.iter().filter(|p| p.nodes > 1) {
        total += 2;
        wins += u32::from(p.est_sum_ns < base.est_sum_ns);
        wins += u32::from(p.est_filter_ns < base.est_filter_ns);
    }
    if total == 0 {
        0.0
    } else {
        wins as f64 / total as f64
    }
}

/// The headline scaling gate: ≥ 1.6× scan throughput at 2 nodes.
pub fn scaling_gate_2x(points: &[ClusterPoint]) -> bool {
    speedup_at(points, 2).is_some_and(|s| s >= 1.6)
}

/// The second scaling gate: ≥ 3× scan throughput at 4 nodes.
pub fn scaling_gate_4x(points: &[ClusterPoint]) -> bool {
    speedup_at(points, 4).is_some_and(|s| s >= 3.0)
}

/// Every point's results matched the single-node oracle bit-for-bit.
pub fn all_bit_identical(points: &[ClusterPoint]) -> bool {
    !points.is_empty() && points.iter().all(|p| p.bit_identical)
}

/// Render the sweep as a `BENCH_cluster.json` document (hand-formatted;
/// the workspace has no JSON dependency).
pub fn to_json(seed: u64, rows: u64, points: &[ClusterPoint]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"cluster\",\n");
    out.push_str(&format!("  \"seed\": {seed},\n"));
    out.push_str(&format!("  \"rows\": {rows},\n"));
    out.push_str(&format!("  \"partition_rows\": {},\n", partition_rows(rows)));
    out.push_str("  \"sharding\": \"range\",\n");
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"nodes\": {}, \"scan_wall_ns\": {}, \"rows_per_sec\": {:.1}, \
             \"net_bytes\": {}, \"est_sum_ns\": {}, \"est_filter_ns\": {}, \
             \"bit_identical\": {}}}{}\n",
            p.nodes,
            p.scan_wall_ns,
            p.rows_per_sec,
            p.net_bytes,
            p.est_sum_ns,
            p.est_filter_ns,
            p.bit_identical,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"scatter_win_rate\": {:.3},\n", scatter_win_rate(points)));
    out.push_str(&format!("  \"speedup_2x\": {:.3},\n", speedup_at(points, 2).unwrap_or(0.0)));
    out.push_str(&format!("  \"speedup_4x\": {:.3},\n", speedup_at(points, 4).unwrap_or(0.0)));
    out.push_str(&format!("  \"scaling_gate_2x\": {},\n", scaling_gate_2x(points)));
    out.push_str(&format!("  \"scaling_gate_4x\": {},\n", scaling_gate_4x(points)));
    out.push_str(&format!("  \"bit_identical\": {}\n", all_bit_identical(points)));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrunk_sweep_is_bit_identical_and_scales() {
        // A shrunk geometry of the real sweep: the fixed launch and
        // round-trip overhead keeps the full ≥3× gate out of reach at this
        // size, so we pin the scale-independent facts — bit-identity at
        // every width, a free single-node interconnect, real network
        // traffic and a real win at 4 nodes.
        let points = measure_with(7, 1 << 19, &[1, 4]);
        assert_eq!(points.len(), 2);
        assert!(all_bit_identical(&points), "{points:?}");
        let single = &points[0];
        assert_eq!(single.net_bytes, 0, "coordinator-local scatter moves no bytes");
        let four = &points[1];
        assert!(four.net_bytes > 0, "remote shards must move bytes");
        let s = speedup_at(&points, 4).unwrap();
        assert!(s > 1.5, "4 nodes must meaningfully beat 1 at 512k rows: {s:.2}x {points:?}");
        assert_eq!(scatter_win_rate(&points), 1.0, "{points:?}");
    }

    #[test]
    fn json_document_is_well_formed() {
        let points = vec![
            ClusterPoint {
                nodes: 1,
                scan_wall_ns: 100,
                rows_per_sec: 1e9,
                net_bytes: 0,
                est_sum_ns: 90,
                est_filter_ns: 95,
                bit_identical: true,
            },
            ClusterPoint {
                nodes: 2,
                scan_wall_ns: 55,
                rows_per_sec: 1.8e9,
                net_bytes: 4_096,
                est_sum_ns: 50,
                est_filter_ns: 52,
                bit_identical: true,
            },
        ];
        let json = to_json(1, 1 << 20, &points);
        assert!(json.starts_with("{\n") && json.ends_with("}\n"));
        assert_eq!(json.matches("\"nodes\"").count(), 2);
        assert!(json.contains("\"scaling_gate_2x\": true"));
        assert!(json.contains("\"bit_identical\": true"));
        assert!(json.contains("\"scatter_win_rate\": 1.000"));
    }
}
