//! GPU transfer pipeline study: synchronous offload vs the
//! stream-overlapped double-buffered pipeline vs a cache-warm repeat,
//! swept over column sizes.
//!
//! All three series are *virtual* nanoseconds from the cost ledger — the
//! simulation is deterministic, so there is no timer noise and no need for
//! repetitions. The sweep runs on [`DeviceSpec::unified`] (copy and
//! compute bandwidths comparable), where overlap has room to help; on the
//! default PCIe device the copy so dominates that Amdahl caps the win near
//! the kernel share (see EXPERIMENTS.md). Feeds the `gpu_pipeline` bench
//! target and `repro`'s `BENCH_gpu_pipeline.json`.

use std::sync::Arc;

use htapg_core::{DataType, Layout, LayoutTemplate, Schema, Value};
use htapg_device::{DeviceColumnCache, DeviceSpec, SimDevice};
use htapg_exec::device_exec::{
    cached_offload_sum, offload_sum, pipelined_offload_sum, PipelineConfig,
};

/// Virtual-time cost of the three offload strategies at one column size.
#[derive(Debug, Clone, Copy)]
pub struct GpuPipelinePoint {
    pub rows: u64,
    /// Synchronous upload-then-reduce: `transfer_ns + kernel_ns`.
    pub serial_ns: u64,
    /// Double-buffered pipeline: critical-path wall across both streams.
    pub overlapped_ns: u64,
    /// Cache-warm repeat of the same query: reduction only.
    pub warm_ns: u64,
    /// PCIe bytes the warm repeat charged — the cache contract says zero.
    pub warm_bytes_to_device: u64,
}

/// The standard sweep ladder (1e5 .. 1e7 rows); `quick` stops at 1e6.
pub fn sweep_sizes(quick: bool) -> Vec<u64> {
    let all = [100_000u64, 1_000_000, 10_000_000];
    let n = if quick { 2 } else { all.len() };
    all[..n].to_vec()
}

fn price_layout(rows: u64) -> Layout {
    let s = Schema::of(&[("price", DataType::Float64)]);
    let mut l = Layout::new(&s, LayoutTemplate::dsm_emulated(&s)).unwrap();
    for i in 0..rows {
        l.append(&s, &vec![Value::Float64((i % 1009) as f64 * 0.25)]).unwrap();
    }
    l
}

/// Charge all three strategies at each size on a unified-memory device.
pub fn measure(sizes: &[u64]) -> Vec<GpuPipelinePoint> {
    sizes
        .iter()
        .map(|&rows| {
            let l = price_layout(rows);
            let device = Arc::new(SimDevice::new(0, DeviceSpec::unified()));
            let (serial_sum, transfer_ns, kernel_ns) =
                offload_sum(&device, &l, 0, DataType::Float64).unwrap();
            let (pipe_sum, overlapped_ns) =
                pipelined_offload_sum(&device, &l, 0, DataType::Float64, PipelineConfig::default())
                    .unwrap();
            assert_eq!(serial_sum.to_bits(), pipe_sum.to_bits());
            let cache = DeviceColumnCache::new(device.clone());
            let cold = cached_offload_sum(
                &cache,
                &l,
                0,
                DataType::Float64,
                0,
                1,
                PipelineConfig::default(),
            )
            .unwrap();
            let before = device.ledger().snapshot();
            let warm = cached_offload_sum(
                &cache,
                &l,
                0,
                DataType::Float64,
                0,
                1,
                PipelineConfig::default(),
            )
            .unwrap();
            assert_eq!(cold.to_bits(), warm.to_bits());
            let delta = device.ledger().snapshot().since(&before);
            GpuPipelinePoint {
                rows,
                serial_ns: transfer_ns + kernel_ns,
                overlapped_ns,
                warm_ns: delta.kernel_ns,
                warm_bytes_to_device: delta.bytes_to_device,
            }
        })
        .collect()
}

/// Overlapped wall as a percentage of the serial wall (the acceptance bar
/// for ≥1e7-row columns is ≤ 70 on unified memory).
pub fn overlap_pct(p: &GpuPipelinePoint) -> u64 {
    p.overlapped_ns * 100 / p.serial_ns.max(1)
}

/// True when every warm repeat in the sweep skipped PCIe entirely.
pub fn warm_skips_pcie(points: &[GpuPipelinePoint]) -> bool {
    points.iter().all(|p| p.warm_bytes_to_device == 0)
}

/// Render the sweep as a `BENCH_gpu_pipeline.json` document (no external
/// JSON crate in the workspace, so the document is formatted by hand).
pub fn to_json(points: &[GpuPipelinePoint]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"gpu_pipeline\",\n");
    out.push_str("  \"device\": \"unified\",\n");
    out.push_str(
        "  \"series\": [\"serial_ns\", \"overlapped_ns\", \"warm_ns\", \
         \"overlap_pct\", \"warm_bytes_to_device\"],\n",
    );
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rows\": {}, \"serial_ns\": {}, \"overlapped_ns\": {}, \
             \"warm_ns\": {}, \"overlap_pct\": {}, \"warm_bytes_to_device\": {}}}{}\n",
            p.rows,
            p.serial_ns,
            p.overlapped_ns,
            p.warm_ns,
            overlap_pct(p),
            p.warm_bytes_to_device,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"warm_repeat_skips_pcie\": {}\n", warm_skips_pcie(points)));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_wins_and_warm_repeats_skip_pcie() {
        let points = measure(&[1_000_000]);
        let p = &points[0];
        assert!(
            p.overlapped_ns < p.serial_ns,
            "overlap {} ns should beat serial {} ns",
            p.overlapped_ns,
            p.serial_ns
        );
        assert!(p.warm_ns < p.overlapped_ns, "warm repeat pays kernel time only");
        assert_eq!(p.warm_bytes_to_device, 0);
        assert!(warm_skips_pcie(&points));
    }

    #[test]
    fn json_document_is_well_formed() {
        let points = vec![
            GpuPipelinePoint {
                rows: 100_000,
                serial_ns: 1_000,
                overlapped_ns: 600,
                warm_ns: 200,
                warm_bytes_to_device: 0,
            },
            GpuPipelinePoint {
                rows: 10_000_000,
                serial_ns: 100_000,
                overlapped_ns: 54_000,
                warm_ns: 20_000,
                warm_bytes_to_device: 0,
            },
        ];
        let json = to_json(&points);
        assert!(json.contains("\"bench\": \"gpu_pipeline\""));
        assert!(json.contains("\"rows\": 10000000"));
        assert!(json.contains("\"overlap_pct\": 54"));
        assert!(json.contains("\"warm_repeat_skips_pcie\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn leaked_pcie_bytes_are_reported() {
        let points = vec![GpuPipelinePoint {
            rows: 1,
            serial_ns: 10,
            overlapped_ns: 10,
            warm_ns: 5,
            warm_bytes_to_device: 8,
        }];
        assert!(!warm_skips_pcie(&points));
        assert!(to_json(&points).contains("\"warm_repeat_skips_pcie\": false"));
    }
}
